// Incremental recomputation benchmark (DESIGN.md §11): how much of the
// offline phase does the content-hash cache save under realistic churn?
//
// Scenario: a k-ary fat tree with the standard §8.1 test suite's trace.
// After a full (cache-seeding) run, a small fraction of devices sees a FIB
// edit — the daily-operations case the incremental layer exists for — and
// the engine is rebuilt three ways: from scratch, and incrementally.
//
// Gate: the incremental rebuild after small churn must be at least
// YS_INC_MIN_SPEEDUP (default 5.0) times faster than the from-scratch
// rebuild, or the bench exits non-zero. Export YS_INC_K to change the
// topology size and YS_INC_CHURN_PCT for the device-churn percentage.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/tracker.hpp"

using namespace yardstick;

namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoi(value);
}

struct TimedRun {
  double seconds = 0.0;
  size_t match_hits = 0;
  size_t devices = 0;
};

TimedRun build_engine(const net::Network& network, const coverage::CoverageTrace& trace,
                      const std::string& cache_dir) {
  TimedRun result;
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const coverage::CoverageTrace local = trace.imported_into(mgr);
  benchutil::Stopwatch watch;
  const ys::CoverageEngine engine(mgr, network, local,
                                  ys::EngineOptions{nullptr, 1, cache_dir});
  result.seconds = watch.seconds();
  if (const ys::CacheStats* stats = engine.cache_stats()) {
    result.match_hits = stats->match_hits;
    result.devices = stats->devices;
  }
  return result;
}

}  // namespace

int main() {
  const int k = env_int("YS_INC_K", 8);
  const double churn_pct = env_double("YS_INC_CHURN_PCT", 5.0);
  const double floor = env_double("YS_INC_MIN_SPEEDUP", 5.0);
  const std::string cache_dir = "/tmp/ys_bench_incremental";
  std::remove((cache_dir + "/coverage.cache").c_str());

  topo::FatTree tree = topo::make_fat_tree({.k = k});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);

  // Production-shaped tables: every device carries a 5-tuple ingress ACL
  // (port ranges + prefixes) on top of its FIB. ACL match fields are where
  // the offline phase spends its BDD budget — exactly the work a warm
  // cache avoids. YS_INC_ACL_RULES scales the per-device ACL size.
  const int acl_rules = env_int("YS_INC_ACL_RULES", 24);
  for (const net::Device& dev : tree.network.devices()) {
    for (int i = 0; i < acl_rules; ++i) {
      net::MatchSpec match;
      match.src_prefix = packet::Ipv4Prefix::parse(
          "10." + std::to_string((dev.id.value * 7 + i) % 200) + ".0.0/16");
      match.proto = i % 2 == 0 ? uint8_t{6} : uint8_t{17};
      match.src_port = net::PortRange{static_cast<uint16_t>(1024 + i * 137),
                                      static_cast<uint16_t>(1024 + i * 137 + 99)};
      match.dst_port = net::PortRange{static_cast<uint16_t>(2000 + i * 211),
                                      static_cast<uint16_t>(2000 + i * 211 + 499)};
      tree.network.add_rule(dev.id, match,
                            i % 3 == 0 ? net::Action::drop() : net::Action::permit(),
                            net::RouteKind::Other, static_cast<uint32_t>(i),
                            net::TableKind::Acl);
    }
  }
  std::printf("# bench_incremental (DESIGN.md §11), k=%d: %zu devices, %zu rules "
              "(%d-rule ACL per device)\n",
              k, tree.network.device_count(), tree.network.rule_count(), acl_rules);

  // The trace's packet sets live in this manager for the whole bench; each
  // engine run imports a structural copy into its own manager.
  bdd::BddManager trace_mgr(packet::kNumHeaderBits);
  coverage::CoverageTrace trace;
  {
    const dataplane::MatchSetIndex index(trace_mgr, tree.network);
    const dataplane::Transfer transfer(index);
    ys::CoverageTracker tracker;
    nettest::TestSuite suite("bench");
    suite.add(std::make_unique<nettest::DefaultRouteCheck>());
    suite.add(std::make_unique<nettest::ToRContract>());
    suite.add(std::make_unique<nettest::ToRPingmesh>());
    (void)suite.run_all(transfer, tracker);
    trace = tracker.trace();
  }

  // Telemetry-shaped marks: YS_INC_FLOWS narrow five-tuple flows observed
  // at every device. The offline covered-sets phase intersects each rule
  // with the device's observed-header union, so a rich trace is what makes
  // from-scratch recomputation expensive — while the cached per-rule
  // covered sets (narrow flow slices) stay compact.
  const int flows = env_int("YS_INC_FLOWS", 512);
  for (const net::Device& dev : tree.network.devices()) {
    for (int i = 0; i < flows; ++i) {
      // Exact 5-tuples, the shape real telemetry samples take. Every flow
      // is a distinct BDD path, so the device's observed-header union has
      // no structure to collapse into — scratch recomputation walks it per
      // rule, while the cached intersections stay near-empty.
      const uint32_t d = dev.id.value;
      const packet::PacketSet flow =
          packet::PacketSet::src_prefix(
              trace_mgr, packet::Ipv4Prefix::parse(
                             "10." + std::to_string((d * 5 + i) % 200) + "." +
                             std::to_string(i % 256) + "." +
                             std::to_string((d + i * 13) % 256) + "/32"))
              .intersect(packet::PacketSet::dst_prefix(
                  trace_mgr, packet::Ipv4Prefix::parse(
                                 "10." + std::to_string((d * 11 + i * 3) % 200) +
                                 "." + std::to_string((i * 7) % 256) + "." +
                                 std::to_string((d * 3 + i) % 256) + "/32")))
              .intersect(packet::PacketSet::field_equals(
                  trace_mgr, packet::Field::Proto, i % 2 == 0 ? 6 : 17))
              .intersect(packet::PacketSet::field_equals(
                  trace_mgr, packet::Field::SrcPort, (1024 + i * 97) % 65536))
              .intersect(packet::PacketSet::field_equals(
                  trace_mgr, packet::Field::DstPort, (2000 + i * 53) % 65536));
      trace.mark_packet(net::device_location(dev.id), flow);
    }
  }

  const TimedRun scratch_cold = build_engine(tree.network, trace, "");
  std::printf("  scratch (no cache)            %8.3fs\n", scratch_cold.seconds);
  const TimedRun seed = build_engine(tree.network, trace, cache_dir);
  std::printf("  incremental, cold (seeds)     %8.3fs\n", seed.seconds);
  const TimedRun full_hit = build_engine(tree.network, trace, cache_dir);
  std::printf("  incremental, unchanged        %8.3fs  (%zu/%zu records reused)\n",
              full_hit.seconds, full_hit.match_hits, full_hit.devices);

  // Churn: one route edit on churn_pct% of the ToRs — the daily-operations
  // delta. Each edit invalidates exactly that device.
  size_t churned = 0;
  const size_t target =
      std::max<size_t>(1, static_cast<size_t>(tree.network.device_count() * churn_pct / 100.0));
  for (const net::DeviceId tor : tree.tors) {
    if (churned >= target) break;
    const auto fib = tree.network.table(tor);
    if (fib.empty()) continue;
    tree.network.mutable_rule(fib.front()).action = net::Action::drop();
    ++churned;
  }
  std::printf("  churn: FIB edit on %zu/%zu devices (%.1f%%)\n", churned,
              tree.network.device_count(),
              100.0 * static_cast<double>(churned) /
                  static_cast<double>(tree.network.device_count()));

  if (std::getenv("YS_INC_SPANS") != nullptr) obs::set_enabled(true);
  const TimedRun scratch_churn = build_engine(tree.network, trace, "");
  std::printf("  scratch after churn           %8.3fs\n", scratch_churn.seconds);
  const TimedRun inc_churn = build_engine(tree.network, trace, cache_dir);
  std::printf("  incremental after churn       %8.3fs  (%zu/%zu records reused)\n",
              inc_churn.seconds, inc_churn.match_hits, inc_churn.devices);

  if (std::getenv("YS_INC_SPANS") != nullptr) {
    // Per-span totals for the two churn-phase runs (enabled just before).
    std::unordered_map<std::string, uint64_t> by_name;
    for (const auto& ev : obs::Tracer::global().snapshot()) {
      by_name[ev.name] += ev.dur_us;
    }
    for (const auto& [name, us] : by_name) {
      std::printf("    span %-28s %8.3fms\n", name.c_str(),
                  static_cast<double>(us) / 1000.0);
    }
  }

  const double speedup = scratch_churn.seconds / inc_churn.seconds;
  std::printf("  speedup: %.1fx (floor %.1fx)\n", speedup, floor);
  if (std::getenv("YS_INC_KEEP") == nullptr) {
    std::remove((cache_dir + "/coverage.cache").c_str());
  }

  if (inc_churn.match_hits != inc_churn.devices - churned) {
    std::fprintf(stderr, "FAIL: expected %zu reused records, got %zu\n",
                 inc_churn.devices - churned, inc_churn.match_hits);
    return 1;
  }
  if (speedup < floor) {
    std::fprintf(stderr, "FAIL: incremental speedup %.2fx below the %.2fx floor\n",
                 speedup, floor);
    return 1;
  }
  return 0;
}
