// Scaling trajectory: the offline phase across fat-tree arities, with the
// shard-manager garbage collector on vs off (ROADMAP item 1).
//
// For each k the full offline phase (trace -> match sets -> covered sets ->
// all-local metrics) runs twice on fresh managers: GC armed at
// YS_SCALING_GC_THRESHOLD (default 0.5) and GC off. Per run we record wall
// time, the budget's peak concurrent node charge across every manager
// (primary + shards — the memory number GC is meant to shrink), process
// peak RSS, apply-cache hit rate, and the GC's own work counters; the two
// runs' metric rows must be bit-identical (GC only renumbers shard-private
// nodes). Results go to stdout and BENCH_scaling.json so every PR has a
// visible scaling trajectory.
//
// Gates (all env-driven so CI can tighten without a rebuild; unset = off):
//   YS_SCALING_KS                sweep arities (default "4 8 16 32 48")
//   YS_SCALING_GATE_K            require GC-on peak arena nodes strictly
//                                below GC-off at this k (plus
//                                YS_SCALING_MIN_REDUCTION_PCT, default 0)
//   YS_SCALING_MAX_OVERHEAD_PCT  fail if arming the GC machinery with a
//                                never-firing threshold costs more than
//                                this vs GC-off (min-of-2 alternating
//                                reps, same idiom as bench_tracking_overhead)
//
// Peak-RSS caveat: VmHWM is process-monotone, so within each k the GC-on
// run goes first and later ks inherit earlier highs — peak_arena_nodes is
// the comparable signal; RSS is recorded for absolute context only.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "nettest/contract_checks.hpp"
#include "nettest/state_checks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "yardstick/engine.hpp"

using namespace yardstick;

namespace {

double env_f64(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::atof(env);
}

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::atoi(env);
}

/// Process high-water RSS in kB (VmHWM from /proc/self/status; 0 when the
/// file is unavailable, e.g. non-Linux).
size_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

uint64_t counter_value(const char* name) {
  return obs::metrics().counter(name).value();
}

struct RunResult {
  double wall_s = 0.0;
  size_t peak_arena_nodes = 0;
  size_t peak_rss_kb = 0;
  double cache_hit_rate = 0.0;  // apply-cache, primary + shard managers
  uint64_t gc_runs = 0;
  uint64_t gc_reclaimed_nodes = 0;
  size_t op_cache_entries = 0;  // primary manager, after the run
  ys::MetricRow row;
};

/// One full offline phase on fresh managers. The budget carries no caps —
/// it is attached purely for its cross-manager node accounting, whose
/// high-water mark is the "peak arena nodes" this bench reports.
RunResult run_offline(const topo::FatTree& tree, const coverage::CoverageTrace& trace,
                      unsigned threads, double gc_threshold) {
  RunResult out;
  const uint64_t gc_runs0 = counter_value("ys.bdd.gc.runs");
  const uint64_t gc_reclaimed0 = counter_value("ys.bdd.gc.reclaimed_nodes");
  const uint64_t shard_hits0 = counter_value("ys.bdd.shard_cache_hits");
  const uint64_t shard_misses0 = counter_value("ys.bdd.shard_cache_misses");

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const coverage::CoverageTrace local_trace = trace.imported_into(mgr);
  ys::ResourceBudget budget;  // accounting only: no caps, no deadline
  benchutil::Stopwatch watch;
  const ys::CoverageEngine engine(mgr, tree.network, local_trace,
                                  ys::EngineOptions{&budget, threads, "", gc_threshold});
  out.row = engine.metrics();
  out.wall_s = watch.seconds();

  out.peak_arena_nodes = budget.peak_bdd_nodes();
  out.peak_rss_kb = peak_rss_kb();
  const bdd::BddManager::Stats primary = mgr.stats();
  out.op_cache_entries = primary.op_cache_entries;
  const uint64_t hits =
      primary.cache_hits + (counter_value("ys.bdd.shard_cache_hits") - shard_hits0);
  const uint64_t misses =
      primary.cache_misses + (counter_value("ys.bdd.shard_cache_misses") - shard_misses0);
  out.cache_hit_rate =
      hits + misses == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(hits + misses);
  out.gc_runs = counter_value("ys.bdd.gc.runs") - gc_runs0;
  out.gc_reclaimed_nodes = counter_value("ys.bdd.gc.reclaimed_nodes") - gc_reclaimed0;
  return out;
}

bool rows_equal(const ys::MetricRow& a, const ys::MetricRow& b) {
  return a.device_fractional == b.device_fractional &&
         a.interface_fractional == b.interface_fractional &&
         a.rule_fractional == b.rule_fractional && a.rule_weighted == b.rule_weighted;
}

struct SweepPoint {
  int k = 0;
  size_t routers = 0;
  size_t rules = 0;
  RunResult gc_on;
  RunResult gc_off;
  bool identical = false;
  double reduction_pct = 0.0;  // peak-arena-node reduction, GC on vs off
};

void emit_json(const std::vector<SweepPoint>& sweep, unsigned threads,
               double gc_threshold, double overhead_pct, int overhead_k) {
  std::FILE* f = std::fopen("BENCH_scaling.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scaling: cannot write BENCH_scaling.json\n");
    return;
  }
  const auto emit_run = [f](const char* key, const RunResult& r) {
    std::fprintf(f,
                 "      \"%s\": {\"wall_s\": %.6f, \"peak_arena_nodes\": %zu, "
                 "\"peak_rss_kb\": %zu, \"cache_hit_rate\": %.6f, \"gc_runs\": %llu, "
                 "\"gc_reclaimed_nodes\": %llu, \"op_cache_entries\": %zu}",
                 key, r.wall_s, r.peak_arena_nodes, r.peak_rss_kb, r.cache_hit_rate,
                 static_cast<unsigned long long>(r.gc_runs),
                 static_cast<unsigned long long>(r.gc_reclaimed_nodes),
                 r.op_cache_entries);
  };
  std::fprintf(f, "{\n  \"bench\": \"scaling\",\n  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"gc_threshold\": %.3f,\n  \"sweep\": [\n", gc_threshold);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f, "    {\n      \"k\": %d, \"routers\": %zu, \"rules\": %zu,\n", p.k,
                 p.routers, p.rules);
    emit_run("gc_on", p.gc_on);
    std::fprintf(f, ",\n");
    emit_run("gc_off", p.gc_off);
    std::fprintf(f, ",\n      \"peak_node_reduction_pct\": %.2f,", p.reduction_pct);
    std::fprintf(f, "\n      \"outputs_identical\": %s\n    }%s\n", p.identical ? "true" : "false",
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"gc_armed_overhead\": {\"k\": %d, \"overhead_pct\": %.2f}\n}\n",
               overhead_k, overhead_pct);
  std::fclose(f);
}

}  // namespace

int main() {
  const unsigned threads = benchutil::bench_threads();
  const double gc_threshold = env_f64("YS_SCALING_GC_THRESHOLD", 0.5);
  const std::vector<int> ks = [] {
    const char* env = std::getenv("YS_SCALING_KS");
    if (env == nullptr) return std::vector<int>{4, 8, 16, 32, 48};
    std::vector<int> out;
    for (const char* p = env; *p != '\0';) {
      char* end = nullptr;
      const long v = std::strtol(p, &end, 10);
      if (end == p) break;
      out.push_back(static_cast<int>(v));
      p = end;
    }
    return out.empty() ? std::vector<int>{4, 8, 16, 32, 48} : out;
  }();

  // Counters (GC work, shard cache traffic) feed the per-run numbers.
  obs::set_enabled(true);

  std::printf("# bench_scaling: offline phase, GC on (threshold %.2f) vs off, "
              "%u worker thread(s)\n",
              gc_threshold, threads);
  std::printf("%6s %8s %9s | %10s %12s %8s %7s %9s | %10s %12s %8s | %7s %5s\n", "k",
              "routers", "rules", "on-wall(s)", "on-peaknode", "on-hit%", "gc-runs",
              "reclaimed", "off-wall(s)", "off-peaknode", "off-hit%", "peak-red", "same");

  std::vector<SweepPoint> sweep;
  for (const int k : ks) {
    topo::FatTree tree = topo::make_fat_tree({.k = k});
    routing::FibBuilder::compute_and_build(tree.network, tree.routing);

    // Collect the trace once per k; both runs import it, so neither pays
    // trace construction. The trace manager must outlive the runs — the
    // trace's handles live in it until imported_into() copies them out.
    bdd::BddManager trace_mgr(packet::kNumHeaderBits);
    ys::CoverageTracker tracker;
    {
      const dataplane::MatchSetIndex match_sets(trace_mgr, tree.network);
      const dataplane::Transfer transfer(match_sets);
      nettest::TestSuite suite("scaling");
      suite.add(std::make_unique<nettest::DefaultRouteCheck>());
      suite.add(std::make_unique<nettest::ToRContract>());
      (void)suite.run_all(transfer, tracker);
    }

    SweepPoint p;
    p.k = k;
    p.routers = tree.network.device_count();
    p.rules = tree.network.rule_count();
    // GC-on first: VmHWM is process-monotone, so this order keeps the
    // GC-on RSS reading untainted by the larger GC-off run.
    p.gc_on = run_offline(tree, tracker.trace(), threads, gc_threshold);
    p.gc_off = run_offline(tree, tracker.trace(), threads, 0.0);
    p.identical = rows_equal(p.gc_on.row, p.gc_off.row);
    p.reduction_pct =
        p.gc_off.peak_arena_nodes == 0
            ? 0.0
            : (1.0 - static_cast<double>(p.gc_on.peak_arena_nodes) /
                         static_cast<double>(p.gc_off.peak_arena_nodes)) *
                  100.0;
    std::printf("%6d %8zu %9zu | %10.3f %12zu %7.1f%% %7llu %9llu | %10.3f %12zu "
                "%7.1f%% | %6.1f%% %5s\n",
                p.k, p.routers, p.rules, p.gc_on.wall_s, p.gc_on.peak_arena_nodes,
                p.gc_on.cache_hit_rate * 100.0,
                static_cast<unsigned long long>(p.gc_on.gc_runs),
                static_cast<unsigned long long>(p.gc_on.gc_reclaimed_nodes),
                p.gc_off.wall_s, p.gc_off.peak_arena_nodes,
                p.gc_off.cache_hit_rate * 100.0, p.reduction_pct,
                p.identical ? "yes" : "NO");
    sweep.push_back(std::move(p));
  }

  int exit_code = 0;
  for (const SweepPoint& p : sweep) {
    if (!p.identical) {
      std::fprintf(stderr,
                   "bench_scaling: FAIL — coverage output differs with GC on/off "
                   "at k=%d\n",
                   p.k);
      exit_code = 1;
    }
  }

  // Overhead probe: arming the GC machinery with a threshold that never
  // fires (1.0) measures pure bookkeeping cost — root tracking, gc_due()
  // polls — against a plain GC-off run. Min of 3 alternating reps per mode
  // absorbs scheduler noise (the bench_tracking_overhead idiom). Probes at
  // the largest sweep k <= YS_SCALING_OVERHEAD_K (default 16): small ks
  // finish in single-digit milliseconds where fixed costs swamp the
  // percentage, and the local k=32/48 points would make the probe's 6 extra
  // runs slower than the sweep itself.
  const int overhead_cap = env_int("YS_SCALING_OVERHEAD_K", 16);
  int overhead_k = 0;
  for (const SweepPoint& p : sweep) {
    if (p.k <= overhead_cap && p.k > overhead_k) overhead_k = p.k;
  }
  if (overhead_k == 0 && !sweep.empty()) overhead_k = sweep.front().k;
  double overhead_pct = 0.0;
  if (overhead_k != 0) {
    topo::FatTree tree = topo::make_fat_tree({.k = overhead_k});
    routing::FibBuilder::compute_and_build(tree.network, tree.routing);
    bdd::BddManager trace_mgr(packet::kNumHeaderBits);
    ys::CoverageTracker tracker;
    {
      const dataplane::MatchSetIndex match_sets(trace_mgr, tree.network);
      const dataplane::Transfer transfer(match_sets);
      nettest::TestSuite suite("scaling");
      suite.add(std::make_unique<nettest::DefaultRouteCheck>());
      suite.add(std::make_unique<nettest::ToRContract>());
      (void)suite.run_all(transfer, tracker);
    }
    double off_s = 0.0;
    double armed_s = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const double off = run_offline(tree, tracker.trace(), threads, 0.0).wall_s;
      const double armed = run_offline(tree, tracker.trace(), threads, 1.0).wall_s;
      off_s = rep == 0 ? off : std::min(off_s, off);
      armed_s = rep == 0 ? armed : std::min(armed_s, armed);
    }
    overhead_pct = off_s > 0.0 ? (armed_s / off_s - 1.0) * 100.0 : 0.0;
    std::printf("\n# GC machinery armed-but-idle overhead (k=%d, min of 5): "
                "off %.3fs, armed %.3fs, %+.2f%%\n",
                overhead_k, off_s, armed_s, overhead_pct);
    const double max_overhead = env_f64("YS_SCALING_MAX_OVERHEAD_PCT", 0.0);
    if (max_overhead > 0.0 && overhead_pct > max_overhead) {
      std::fprintf(stderr,
                   "bench_scaling: FAIL — GC-disabled overhead %.2f%% exceeds %.2f%%\n",
                   overhead_pct, max_overhead);
      exit_code = 1;
    }
  }

  const int gate_k = env_int("YS_SCALING_GATE_K", 0);
  if (gate_k > 0) {
    const double min_reduction = env_f64("YS_SCALING_MIN_REDUCTION_PCT", 0.0);
    bool found = false;
    for (const SweepPoint& p : sweep) {
      if (p.k != gate_k) continue;
      found = true;
      if (p.gc_on.peak_arena_nodes >= p.gc_off.peak_arena_nodes ||
          p.reduction_pct < min_reduction) {
        std::fprintf(stderr,
                     "bench_scaling: FAIL — at k=%d GC-on peak %zu vs GC-off %zu "
                     "(%.1f%% reduction, need strict drop and >= %.1f%%)\n",
                     gate_k, p.gc_on.peak_arena_nodes, p.gc_off.peak_arena_nodes,
                     p.reduction_pct, min_reduction);
        exit_code = 1;
      }
    }
    if (!found) {
      std::fprintf(stderr, "bench_scaling: FAIL — gate k=%d not in sweep\n", gate_k);
      exit_code = 1;
    }
  }

  emit_json(sweep, threads, gc_threshold, overhead_pct, overhead_k);
  return exit_code;
}
