// yardstickd ingestion throughput: what the daemon boundary costs.
//
// Concurrent IngestClients stream batched mark events over a Unix socket
// at an in-process daemon, across the durability ladder: no journal, a
// journal without fsync, and the full durable-before-ack contract
// (fsync per batch). Reports events/second, batches, Busy rejections and
// peak RSS, so CI can watch for ingestion-path regressions.
//
// Knobs: YS_INGEST_EVENTS (per client, default 200000), YS_INGEST_CLIENTS
// (default 4), YS_INGEST_BATCH (events per batch, default 1024), and
// YS_INGEST_MIN_EPS — when set, the run exits nonzero if the fastest
// configuration falls below this events/second floor (the CI gate).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"

using namespace yardstick;

namespace {

size_t env_size(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

/// Peak resident set (VmHWM) in MiB, from /proc/self/status.
double peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::atol(line + 6);
      break;
    }
  }
  std::fclose(f);
  return static_cast<double>(kb) / 1024.0;
}

struct Config {
  const char* label;
  bool wal;
  bool fsync;
};

struct Result {
  double seconds = 0.0;
  double events_per_sec = 0.0;
  uint64_t events = 0;
  uint64_t batches = 0;
  uint64_t busy = 0;
};

Result run_config(const Config& cfg, size_t clients, size_t events_per_client,
                  size_t batch) {
  const std::string dir = "/tmp/ys_bench_ingest_" + std::to_string(::getpid());
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());

  service::DaemonOptions dopts;
  dopts.socket_path = dir + "/ys.sock";
  if (cfg.wal) dopts.wal_path = dir + "/ys.wal";
  dopts.wal_fsync = cfg.fsync;
  dopts.snapshot_path = dir + "/ys.trace";
  service::Daemon daemon(std::move(dopts));
  daemon.start();
  std::thread runner([&] { daemon.run(); });

  benchutil::Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      service::ClientOptions copts;
      copts.socket_path = dir + "/ys.sock";
      copts.session_id = c + 1;
      copts.jitter_seed = (c + 1) * 0x9e3779b97f4a7c15ull;
      copts.batch_events = batch;
      // Distinct rule ids per client: every mark is a new event, so the
      // daemon-side count matches what the clients pushed.
      const uint32_t base = static_cast<uint32_t>(c * events_per_client);
      service::IngestClient client(copts);
      for (size_t i = 0; i < events_per_client; ++i) {
        client.mark_rule(net::RuleId{base + static_cast<uint32_t>(i)});
      }
      client.close();
    });
  }
  for (auto& w : workers) w.join();
  const double seconds = watch.seconds();

  daemon.request_stop();
  runner.join();
  daemon.shutdown();
  const service::DaemonStats stats = daemon.stats();

  Result r;
  r.seconds = seconds;
  r.events = stats.events;
  r.batches = stats.batches;
  r.busy = stats.busy_rejections;
  r.events_per_sec = seconds > 0.0 ? static_cast<double>(stats.events) / seconds : 0.0;
  std::system(("rm -rf " + dir).c_str());
  return r;
}

}  // namespace

int main() {
  const size_t clients = env_size("YS_INGEST_CLIENTS", 4);
  const size_t events_per_client = env_size("YS_INGEST_EVENTS", 200000);
  const size_t batch = env_size("YS_INGEST_BATCH", 1024);
  const size_t total = clients * events_per_client;

  std::printf("# bench_ingest: %zu clients x %zu events, batch %zu (%zu total)\n",
              clients, events_per_client, batch, total);
  std::printf("%-22s %10s %14s %10s %8s\n", "config", "time(s)", "events/s",
              "batches", "busy");

  const Config configs[] = {
      {"no-wal", false, false},
      {"wal-nofsync", true, false},
      {"wal-fsync (durable)", true, true},
  };
  double best_eps = 0.0;
  for (const Config& cfg : configs) {
    const Result r = run_config(cfg, clients, events_per_client, batch);
    if (r.events != total) {
      std::printf("!! %s merged %llu events, expected %zu\n", cfg.label,
                  static_cast<unsigned long long>(r.events), total);
      return 1;
    }
    if (r.events_per_sec > best_eps) best_eps = r.events_per_sec;
    std::printf("%-22s %10.3f %14.0f %10llu %8llu\n", cfg.label, r.seconds,
                r.events_per_sec, static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(r.busy));
  }
  std::printf("# peak RSS %.1f MiB\n", peak_rss_mib());

  if (const char* floor = std::getenv("YS_INGEST_MIN_EPS")) {
    const double min_eps = std::atof(floor);
    if (best_eps < min_eps) {
      std::printf("!! best throughput %.0f events/s below floor %.0f\n", best_eps,
                  min_eps);
      return 1;
    }
    std::printf("# throughput floor %.0f events/s: ok\n", min_eps);
  }
  return 0;
}
