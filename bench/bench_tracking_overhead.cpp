// Figure 8 reproduction: the overhead of coverage tracking.
//
// For each fat-tree size and each of the four §8.1 tests
// (DefaultRouteCheck, ToRContract, ToRReachability, ToRPingmesh), run the
// test with the tracker disabled (baseline) and enabled, and report both
// times and the relative overhead. Also reports the dedup-vs-log tracker
// ablation (trace memory stays flat vs. grows with API calls).
//
// Expected shape (paper §8.1): absolute overhead small; relative overhead
// largest on the cheap state-inspection test and under ~10% whenever the
// baseline test is substantial; ToRReachability is by far the slowest
// test. Sweep sizes via YS_FATTREE_KS="4 8 12 16 24 ...".
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"

using namespace yardstick;

int main() {
  std::printf("# bench_tracking_overhead (Figure 8)\n");
  std::printf("%6s %8s  %-18s %12s %12s %10s\n", "k", "routers", "test", "off(s)",
              "on(s)", "overhead");

  for (const int k : benchutil::fat_tree_sweep()) {
    topo::FatTree tree = topo::make_fat_tree({.k = k});
    routing::FibBuilder::compute_and_build(tree.network, tree.routing);
    bdd::BddManager mgr(packet::kNumHeaderBits);
    const dataplane::MatchSetIndex match_sets(mgr, tree.network);
    const dataplane::Transfer transfer(match_sets);

    std::vector<std::unique_ptr<nettest::NetworkTest>> tests;
    tests.push_back(std::make_unique<nettest::DefaultRouteCheck>());
    tests.push_back(std::make_unique<nettest::ToRContract>());
    tests.push_back(std::make_unique<nettest::ToRReachability>());
    tests.push_back(std::make_unique<nettest::ToRPingmesh>());

    for (const auto& test : tests) {
      ys::CoverageTracker tracker;

      // Warm-up: populate the BDD manager's node arena and operation
      // caches so the off/on comparison is not skewed by first-run costs.
      tracker.set_enabled(false);
      (void)test->run(transfer, tracker);

      // Alternate off/on twice and keep the min of each: one-time effects
      // (unique-table rehashes, allocator growth) land on a single run and
      // must not be attributed to either mode.
      double off = 1e300, on = 1e300;
      bool ok = true;
      for (int rep = 0; rep < 2; ++rep) {
        tracker.set_enabled(false);
        benchutil::Stopwatch off_watch;
        ok = ok && test->run(transfer, tracker).passed();
        off = std::min(off, off_watch.seconds());

        tracker.set_enabled(true);
        benchutil::Stopwatch on_watch;
        ok = ok && test->run(transfer, tracker).passed();
        on = std::min(on, on_watch.seconds());
      }
      if (!ok) {
        std::printf("!! %s failed on k=%d\n", test->name().c_str(), k);
        continue;
      }
      std::printf("%6d %8zu  %-18s %12.3f %12.3f %9.1f%%\n", k,
                  tree.network.device_count(), test->name().c_str(), off, on,
                  off > 0.0 ? (on - off) / off * 100.0 : 0.0);
    }
  }

  // Dedup-vs-log ablation (DESIGN.md): the on-the-fly union keeps the
  // trace bounded by distinct state touched; the append log grows with
  // every markPacket call.
  std::printf("\n# tracker ablation: on-the-fly dedup vs append-only log (k=%d)\n",
              benchutil::fat_tree_sweep().front());
  topo::FatTree tree = topo::make_fat_tree({.k = benchutil::fat_tree_sweep().front()});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex match_sets(mgr, tree.network);
  const dataplane::Transfer transfer(match_sets);

  for (const auto mode :
       {ys::CoverageTracker::Mode::Dedup, ys::CoverageTracker::Mode::Log}) {
    ys::CoverageTracker tracker(mode);
    benchutil::Stopwatch watch;
    (void)nettest::ToRPingmesh().run(transfer, tracker);
    const double track_time = watch.seconds();
    const size_t pending = tracker.log_entries();
    watch.reset();
    const auto& trace = tracker.trace();  // folds the log if any
    const double fold_time = watch.seconds();
    std::printf("  mode=%-6s track=%.3fs pending_log_entries=%zu fold=%.3fs "
                "trace_locations=%zu\n",
                mode == ys::CoverageTracker::Mode::Dedup ? "dedup" : "log", track_time,
                pending, fold_time, trace.marked_packets().location_count());
  }
  return 0;
}
