// Suite optimization: parallel coverage-matrix build + minimization
// fidelity (ISSUE 10 tentpole).
//
// On a fat-tree (YS_SUITEOPT_K, default 8) with the standard 4-test suite:
//   1. Times build_suite_matrix at 1 thread vs YS_BENCH_THREADS (default 4)
//      worker threads — fresh BddManager/MatchSetIndex per measurement, so
//      the apply cache never poisons the comparison — and checks the two
//      matrices are bit-identical. Min of YS_SUITEOPT_REPS (default 3)
//      alternating reps absorbs scheduler noise.
//   2. Minimizes the suite and recomputes both the full and the minimized
//      suite's fractional rule coverage through fresh CoverageEngines; the
//      two doubles must be EXACTLY equal (the set-cover stop condition's
//      whole point). Inexact recomputation always fails the bench.
//   3. Emits the prioritized coverage/cost curve and the gap-report totals.
//
// Gates (env-driven, unset = off):
//   YS_SUITEOPT_MIN_SPEEDUP   fail unless parallel matrix build beats the
//                             serial one by at least this factor (CI: 2).
//
// Results go to stdout and BENCH_suiteopt.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "obs/trace.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/optimize.hpp"

using namespace yardstick;

namespace {

double env_f64(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::atof(env);
}

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::atoi(env);
}

/// A production-shaped suite: the end-to-end tests arrive pre-sharded by
/// source ToR (YS_SUITEOPT_SHARDS slices each, default 4) the way real
/// pingmesh deployments slice their probe fleets — which also gives the
/// parallel matrix build balanced work to schedule. Expensive shards go
/// first: the worker queue drains in suite order.
nettest::TestSuite make_suite(size_t shards) {
  nettest::TestSuite suite("suiteopt");
  for (size_t s = 0; s < shards; ++s) {
    suite.add(std::make_unique<nettest::ToRReachability>(nettest::TestShard{s, shards}));
  }
  for (size_t s = 0; s < shards; ++s) {
    suite.add(std::make_unique<nettest::ToRPingmesh>(nettest::TestShard{s, shards}));
  }
  suite.add(std::make_unique<nettest::ToRContract>());
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());
  return suite;
}

/// One matrix build on a fresh manager — the whole pipeline the optimizer
/// sees, timed end to end (test runs + per-test covered-set builds).
ys::SuiteCoverageMatrix build_once(const topo::FatTree& tree,
                                   const nettest::TestSuite& suite, unsigned threads,
                                   double* wall_s) {
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, tree.network);
  const dataplane::Transfer transfer(index);
  benchutil::Stopwatch watch;
  ys::SuiteCoverageMatrix m = ys::build_suite_matrix(transfer, suite, nullptr, threads);
  *wall_s = watch.seconds();
  return m;
}

bool matrices_identical(const ys::SuiteCoverageMatrix& a,
                        const ys::SuiteCoverageMatrix& b) {
  return a.covers == b.covers && a.vacuous == b.vacuous &&
         a.vacuous_count == b.vacuous_count && a.rule_count == b.rule_count;
}

}  // namespace

int main() {
  const int k = env_int("YS_SUITEOPT_K", 8);
  const unsigned threads = benchutil::bench_threads();
  const int reps = std::max(1, env_int("YS_SUITEOPT_REPS", 3));
  const int shards = std::max(1, env_int("YS_SUITEOPT_SHARDS", 4));
  obs::set_enabled(true);

  topo::FatTree tree = topo::make_fat_tree({.k = k});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const nettest::TestSuite suite = make_suite(static_cast<size_t>(shards));

  std::printf("# bench_suite_opt: k=%d (%zu routers, %zu rules), %zu tests, "
              "%u worker thread(s), min of %d reps\n",
              k, tree.network.device_count(), tree.network.rule_count(), suite.size(),
              threads, reps);

  // --- 1. Serial vs parallel matrix build ------------------------------
  double serial_s = 0.0;
  double parallel_s = 0.0;
  ys::SuiteCoverageMatrix serial_m;
  ys::SuiteCoverageMatrix parallel_m;
  for (int rep = 0; rep < reps; ++rep) {
    double s = 0.0;
    double p = 0.0;
    serial_m = build_once(tree, suite, 1, &s);
    parallel_m = build_once(tree, suite, threads, &p);
    serial_s = rep == 0 ? s : std::min(serial_s, s);
    parallel_s = rep == 0 ? p : std::min(parallel_s, p);
  }
  const bool identical = matrices_identical(serial_m, parallel_m);
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  std::printf("# matrix build: serial %.3fs, %u threads %.3fs -> %.2fx speedup, "
              "bit-identical: %s\n",
              serial_s, threads, parallel_s, speedup, identical ? "yes" : "NO");

  // --- 2. Minimization + exact recomputation cross-check ---------------
  ys::MinimizeResult min = ys::minimize_suite(serial_m);
  {
    bdd::BddManager mgr(packet::kNumHeaderBits);
    const dataplane::MatchSetIndex index(mgr, tree.network);
    const dataplane::Transfer transfer(index);
    ys::CoverageTracker full_tracker;
    (void)suite.run_all(transfer, full_tracker);
    ys::CoverageTracker subset_tracker;
    for (const ys::SelectedTest& s : min.selected) {
      (void)suite.test(s.index).run(transfer, subset_tracker);
    }
    const ys::CoverageEngine full_engine(mgr, tree.network, full_tracker.trace());
    const ys::CoverageEngine subset_engine(mgr, tree.network, subset_tracker.trace());
    min.recomputed_full = full_engine.metrics().rule_fractional;
    min.recomputed_subset = subset_engine.metrics().rule_fractional;
  }
  const bool exact = min.recomputed_full == min.recomputed_subset &&
                     min.achieved_coverage == min.recomputed_subset;
  std::printf("# minimize: kept %zu/%zu tests, coverage %.6f (recomputed full "
              "%.6f, subset %.6f) — exact: %s\n",
              min.selected.size(), min.suite_size, min.achieved_coverage,
              min.recomputed_full, min.recomputed_subset, exact ? "yes" : "NO");

  // --- 3. Coverage/cost curve + gap totals -----------------------------
  const ys::PrioritizeResult pri = ys::prioritize_suite(serial_m);
  for (const ys::PrioritizedTest& t : pri.order) {
    std::printf("#   prioritize: %-20s +%.6f in %.3fs -> %.6f after %.3fs\n",
                t.name.c_str(), t.marginal, t.seconds, t.cumulative_coverage,
                t.cumulative_seconds);
  }
  ys::GapReport gaps;
  {
    bdd::BddManager mgr(packet::kNumHeaderBits);
    ys::CoverageTracker tracker;
    {
      const dataplane::MatchSetIndex index(mgr, tree.network);
      const dataplane::Transfer transfer(index);
      (void)suite.run_all(transfer, tracker);
    }
    const ys::CoverageEngine engine(mgr, tree.network, tracker.trace(),
                                    ys::EngineOptions{nullptr, threads, "", 0.0});
    gaps = ys::build_gap_report(engine);
  }
  std::printf("# gap report: %zu uncovered rules, %zu packet witnesses, %zu "
              "state-only\n",
              gaps.uncovered_rules, gaps.packet_witnesses, gaps.state_only);

  // --- Gates -----------------------------------------------------------
  int exit_code = 0;
  if (!identical) {
    std::fprintf(stderr, "bench_suite_opt: FAIL — matrix differs at 1 vs %u threads\n",
                 threads);
    exit_code = 1;
  }
  if (!exact) {
    std::fprintf(stderr,
                 "bench_suite_opt: FAIL — minimized suite does not recompute to the "
                 "full suite's coverage (full %.17g, subset %.17g, matrix %.17g)\n",
                 min.recomputed_full, min.recomputed_subset, min.achieved_coverage);
    exit_code = 1;
  }
  const double min_speedup = env_f64("YS_SUITEOPT_MIN_SPEEDUP", 0.0);
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_suite_opt: FAIL — %.2fx parallel speedup below the %.2fx "
                 "gate (serial %.3fs, parallel %.3fs at %u threads)\n",
                 speedup, min_speedup, serial_s, parallel_s, threads);
    exit_code = 1;
  }

  // --- JSON ------------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_suiteopt.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_suite_opt: cannot write BENCH_suiteopt.json\n");
    return exit_code == 0 ? 1 : exit_code;
  }
  std::fprintf(f, "{\n  \"bench\": \"suiteopt\",\n  \"k\": %d,\n", k);
  std::fprintf(f, "  \"routers\": %zu,\n  \"rules\": %zu,\n  \"suite_size\": %zu,\n",
               tree.network.device_count(), tree.network.rule_count(), suite.size());
  std::fprintf(f,
               "  \"matrix\": {\"serial_s\": %.6f, \"parallel_s\": %.6f, "
               "\"threads\": %u, \"speedup\": %.3f, \"identical\": %s},\n",
               serial_s, parallel_s, threads, speedup, identical ? "true" : "false");
  std::fprintf(f,
               "  \"minimize\": {\"kept\": %zu, \"suite_size\": %zu, "
               "\"full_coverage\": %.6f, \"achieved_coverage\": %.6f, "
               "\"recomputed_full\": %.6f, \"recomputed_subset\": %.6f, "
               "\"exact\": %s},\n",
               min.selected.size(), min.suite_size, min.full_coverage,
               min.achieved_coverage, min.recomputed_full, min.recomputed_subset,
               exact ? "true" : "false");
  std::fprintf(f, "  \"prioritize\": [\n");
  for (size_t i = 0; i < pri.order.size(); ++i) {
    const ys::PrioritizedTest& t = pri.order[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"marginal\": %.6f, \"seconds\": %.6f, "
                 "\"cumulative_coverage\": %.6f, \"cumulative_seconds\": %.6f}%s\n",
                 t.name.c_str(), t.marginal, t.seconds, t.cumulative_coverage,
                 t.cumulative_seconds, i + 1 < pri.order.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gap_report\": {\"uncovered_rules\": %zu, \"packet_witnesses\": "
               "%zu, \"state_only\": %zu}\n}\n",
               gaps.uncovered_rules, gaps.packet_witnesses, gaps.state_only);
  std::fclose(f);
  return exit_code;
}
