// Microbenchmarks for the Figure 5 packet-set operations, plus the BDD
// operation-cache ablation called out in DESIGN.md.
//
// The paper implements these operations on BDDs because they are the
// inner loop of both coverage tracking (markPacket unions) and metric
// computation (match-set intersections, counting). The benchmarks measure
// them on realistic operands: unions of hundreds of /24 routes, the
// shapes that appear in data-center FIBs.
#include <benchmark/benchmark.h>

#include "packet/packet_set.hpp"

namespace {

using yardstick::bdd::BddManager;
using yardstick::packet::Field;
using yardstick::packet::Ipv4Prefix;
using yardstick::packet::kNumHeaderBits;
using yardstick::packet::PacketSet;

/// A union of `n` distinct /24 destination prefixes (FIB-like operand).
PacketSet prefixes(BddManager& mgr, int n, uint32_t base = 0x0a000000u) {
  PacketSet acc = PacketSet::none(mgr);
  for (int i = 0; i < n; ++i) {
    acc = acc.union_with(
        PacketSet::dst_prefix(mgr, Ipv4Prefix(base + (static_cast<uint32_t>(i) << 8), 24)));
  }
  return acc;
}

void BM_FromRulePrefix(benchmark::State& state) {
  BddManager mgr(kNumHeaderBits);
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PacketSet::dst_prefix(mgr, Ipv4Prefix(0x0a000000u + (i++ << 8), 24)));
  }
}
BENCHMARK(BM_FromRulePrefix);

void BM_Union(benchmark::State& state) {
  BddManager mgr(kNumHeaderBits);
  const PacketSet a = prefixes(mgr, static_cast<int>(state.range(0)));
  const PacketSet b = prefixes(mgr, static_cast<int>(state.range(0)), 0x0b000000u);
  for (auto _ : state) benchmark::DoNotOptimize(a.union_with(b));
  state.SetLabel(std::to_string(state.range(0)) + " prefixes/operand");
}
BENCHMARK(BM_Union)->Arg(16)->Arg(128)->Arg(1024);

void BM_Intersect(benchmark::State& state) {
  BddManager mgr(kNumHeaderBits);
  const PacketSet a = prefixes(mgr, static_cast<int>(state.range(0)));
  const PacketSet b =
      PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/9"));
  for (auto _ : state) benchmark::DoNotOptimize(a.intersect(b));
}
BENCHMARK(BM_Intersect)->Arg(16)->Arg(128)->Arg(1024);

void BM_Negate(benchmark::State& state) {
  BddManager mgr(kNumHeaderBits);
  const PacketSet a = prefixes(mgr, static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(a.negate());
}
BENCHMARK(BM_Negate)->Arg(128);

void BM_Equal(benchmark::State& state) {
  BddManager mgr(kNumHeaderBits);
  const PacketSet a = prefixes(mgr, 256);
  const PacketSet b = prefixes(mgr, 256);
  for (auto _ : state) benchmark::DoNotOptimize(a.equal(b));  // O(1): canonical form
}
BENCHMARK(BM_Equal);

void BM_Count(benchmark::State& state) {
  BddManager mgr(kNumHeaderBits);
  const PacketSet a = prefixes(mgr, static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(a.count());
}
BENCHMARK(BM_Count)->Arg(16)->Arg(1024);

void BM_DisjointMatchSetWalk(benchmark::State& state) {
  // The §5.2 step-1 pattern: walk an ordered table, carving each match
  // field against everything claimed so far.
  BddManager mgr(kNumHeaderBits);
  const int rules = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PacketSet claimed = PacketSet::none(mgr);
    for (int i = 0; i < rules; ++i) {
      const PacketSet field =
          PacketSet::dst_prefix(mgr, Ipv4Prefix(0x0a000000u + (static_cast<uint32_t>(i) << 8), 24));
      benchmark::DoNotOptimize(field.minus(claimed));
      claimed = claimed.union_with(field);
    }
  }
  state.SetItemsProcessed(state.iterations() * rules);
}
BENCHMARK(BM_DisjointMatchSetWalk)->Arg(128)->Arg(1024);

void BM_UnionCacheAblation(benchmark::State& state) {
  // Design-choice ablation: the same FIB-style union workload with the
  // BDD operation cache disabled.
  BddManager mgr(kNumHeaderBits);
  mgr.set_cache_enabled(state.range(0) == 0);
  const PacketSet a = prefixes(mgr, 256);
  const PacketSet b = prefixes(mgr, 256, 0x0b000000u);
  for (auto _ : state) benchmark::DoNotOptimize(a.union_with(b));
  state.SetLabel(state.range(0) == 0 ? "cache on" : "cache OFF");
}
BENCHMARK(BM_UnionCacheAblation)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
