// Figure 9 reproduction: time to compute coverage metrics after testing.
//
// For each fat-tree size, collect a realistic coverage trace (the four
// §8.1 tests), then time each fractional metric computed by itself —
// device, interface, rule — plus the path-coverage sweep, and finally all
// three local metrics together (§8.2 reports that shared work makes the
// combined computation barely more expensive than one metric).
//
// Expected shape: local metrics cheap and near-linear in network size;
// path coverage orders of magnitude more expensive and hitting its
// wall-clock budget (the paper's 1-hour timeout, here YS_PATH_BUDGET_S,
// default 60s) on larger topologies.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "yardstick/engine.hpp"

using namespace yardstick;

int main() {
  const double path_budget = benchutil::path_budget_seconds();
  std::printf("# bench_metric_computation (Figure 9), path budget %.0fs\n", path_budget);
  std::printf("%6s %8s %12s %12s %12s %12s %14s %16s\n", "k", "routers", "device(s)",
              "iface(s)", "rule(s)", "all-local(s)", "path(s)", "paths");

  for (const int k : benchutil::fat_tree_sweep()) {
    topo::FatTree tree = topo::make_fat_tree({.k = k});
    routing::FibBuilder::compute_and_build(tree.network, tree.routing);
    bdd::BddManager mgr(packet::kNumHeaderBits);

    // Build the coverage trace with the standard suite (not timed here;
    // Figure 8 covers test time).
    ys::CoverageTracker tracker;
    {
      const dataplane::MatchSetIndex match_sets(mgr, tree.network);
      const dataplane::Transfer transfer(match_sets);
      nettest::TestSuite suite("fig9");
      suite.add(std::make_unique<nettest::DefaultRouteCheck>());
      suite.add(std::make_unique<nettest::ToRContract>());
      suite.add(std::make_unique<nettest::ToRPingmesh>());
      (void)suite.run_all(transfer, tracker);
    }

    // Each metric timed on a fresh engine so per-metric cost includes the
    // shared step-1/step-2 work, as in the paper's per-metric bars. One
    // warm-up engine construction first, so one-time BDD arena costs are
    // not billed to whichever metric happens to run first.
    { const ys::CoverageEngine warmup(mgr, tree.network, tracker.trace()); }
    const auto timed = [&](auto&& metric_fn) {
      benchutil::Stopwatch watch;
      const ys::CoverageEngine engine(mgr, tree.network, tracker.trace());
      metric_fn(engine);
      return watch.seconds();
    };

    const double device_s = timed([](const ys::CoverageEngine& e) {
      (void)e.devices_coverage(coverage::fractional_aggregator());
    });
    const double iface_s = timed([](const ys::CoverageEngine& e) {
      (void)e.interfaces_coverage(coverage::fractional_aggregator());
    });
    const double rule_s = timed([](const ys::CoverageEngine& e) {
      (void)e.rules_coverage(coverage::fractional_aggregator());
    });
    // §8.2: all local metrics together — shared match-set/covered-set
    // computation makes this barely more than a single metric.
    const double all_local_s = timed([](const ys::CoverageEngine& e) {
      (void)e.devices_coverage(coverage::fractional_aggregator());
      (void)e.interfaces_coverage(coverage::fractional_aggregator());
      (void)e.rules_coverage(coverage::fractional_aggregator());
    });

    benchutil::Stopwatch path_watch;
    const ys::CoverageEngine engine(mgr, tree.network, tracker.trace());
    const ys::PathCoverageResult paths = engine.path_coverage({}, path_budget);
    const double path_s = path_watch.seconds();

    char path_note[64];
    std::snprintf(path_note, sizeof(path_note), "%llu%s",
                  static_cast<unsigned long long>(paths.total_paths),
                  paths.truncated ? " (budget hit)" : "");
    std::printf("%6d %8zu %12.3f %12.3f %12.3f %12.3f %14.3f %16s\n", k,
                tree.network.device_count(), device_s, iface_s, rule_s, all_local_s,
                path_s, path_note);
    // Per-phase breakdown from the engine's own phase timers (not the
    // ad-hoc stopwatches above, which also bill engine construction).
    char klabel[16];
    std::snprintf(klabel, sizeof(klabel), "k=%d", k);
    benchutil::print_phase_breakdown(klabel, engine.timings(), paths.seconds);
  }

  // Tentpole comparison: the offline phase (match sets + covered sets +
  // local metrics, and the path-universe sweep) serial vs parallel. Each
  // measurement runs in a fresh BDD manager with the trace structurally
  // imported in, so neither mode benefits from another run's warm caches;
  // "identical" checks the two modes' outputs bit-for-bit (n/a when the
  // path budget truncated either sweep — truncation points are timing-
  // dependent by design).
  {
    const unsigned threads = benchutil::bench_threads();
    std::printf("\n# parallel offline phase: 1 thread vs %u threads (YS_BENCH_THREADS); "
                "%u hardware threads available\n",
                threads, std::thread::hardware_concurrency());
    if (std::thread::hardware_concurrency() < threads) {
      std::printf("# NOTE: fewer cores than workers — speedup columns reflect "
                  "scheduling overhead, not the parallel design; 'identical' "
                  "is the meaningful column on this host\n");
    }
    std::printf("%6s %12s %12s %8s %12s %12s %8s %10s\n", "k", "local-1t(s)",
                "local-Nt(s)", "speedup", "path-1t(s)", "path-Nt(s)", "speedup",
                "identical");
    for (const int k : benchutil::fat_tree_sweep()) {
      topo::FatTree tree = topo::make_fat_tree({.k = k});
      routing::FibBuilder::compute_and_build(tree.network, tree.routing);
      bdd::BddManager trace_mgr(packet::kNumHeaderBits);
      ys::CoverageTracker tracker;
      {
        const dataplane::MatchSetIndex match_sets(trace_mgr, tree.network);
        const dataplane::Transfer transfer(match_sets);
        nettest::TestSuite suite("fig9");
        suite.add(std::make_unique<nettest::DefaultRouteCheck>());
        suite.add(std::make_unique<nettest::ToRContract>());
        suite.add(std::make_unique<nettest::ToRPingmesh>());
        (void)suite.run_all(transfer, tracker);
      }

      struct Sample {
        double local_s = 0.0;
        double path_s = 0.0;
        ys::MetricRow row;
        ys::PathCoverageResult paths;
      };
      const auto measure = [&](unsigned t) {
        Sample s;
        bdd::BddManager m(packet::kNumHeaderBits);
        const coverage::CoverageTrace local_trace = tracker.trace().imported_into(m);
        benchutil::Stopwatch local_watch;
        const ys::CoverageEngine engine(m, tree.network, local_trace,
                                        ys::EngineOptions{nullptr, t});
        s.row = engine.metrics();
        s.local_s = local_watch.seconds();
        benchutil::Stopwatch path_watch;
        s.paths = engine.path_coverage({}, path_budget);
        s.path_s = path_watch.seconds();
        return s;
      };
      const Sample serial = measure(1);
      const Sample parallel = measure(threads);

      const bool rows_equal =
          serial.row.device_fractional == parallel.row.device_fractional &&
          serial.row.interface_fractional == parallel.row.interface_fractional &&
          serial.row.rule_fractional == parallel.row.rule_fractional &&
          serial.row.rule_weighted == parallel.row.rule_weighted;
      const bool paths_equal =
          serial.paths.total_paths == parallel.paths.total_paths &&
          serial.paths.covered_paths == parallel.paths.covered_paths &&
          serial.paths.fractional == parallel.paths.fractional &&
          serial.paths.mean == parallel.paths.mean;
      const bool any_truncated = serial.paths.truncated || parallel.paths.truncated;
      const char* identical = !rows_equal                  ? "NO"
                              : any_truncated              ? "n/a"
                              : paths_equal                ? "yes"
                                                           : "NO";
      std::printf("%6d %12.3f %12.3f %7.2fx %12.3f %12.3f %7.2fx %10s\n", k,
                  serial.local_s, parallel.local_s,
                  parallel.local_s > 0 ? serial.local_s / parallel.local_s : 0.0,
                  serial.path_s, parallel.path_s,
                  parallel.path_s > 0 ? serial.path_s / parallel.path_s : 0.0,
                  identical);
    }
  }

  // Design-choice ablation (DESIGN.md §5): Equation-3 survivor sets are
  // threaded through the DFS; the naive alternative re-walks every emitted
  // path with path_measure, which is quadratic in path length. Compare
  // both on the same bounded sample of the smallest topology's universe.
  {
    const int k = benchutil::fat_tree_sweep().front();
    topo::FatTree tree = topo::make_fat_tree({.k = k});
    routing::FibBuilder::compute_and_build(tree.network, tree.routing);
    bdd::BddManager mgr(packet::kNumHeaderBits);
    ys::CoverageTracker tracker;
    {
      const dataplane::MatchSetIndex match_sets(mgr, tree.network);
      const dataplane::Transfer transfer(match_sets);
      (void)nettest::ToRPingmesh().run(transfer, tracker);
    }
    const ys::CoverageEngine engine(mgr, tree.network, tracker.trace());
    coverage::PathExplorerOptions options;
    options.max_paths = 5000;

    benchutil::Stopwatch streamed_watch;
    const coverage::PathExplorer streamed(engine.transfer(), &engine.covered_sets(),
                                          options);
    uint64_t streamed_covered = 0;
    const uint64_t sample = streamed.explore_universe([&](const coverage::ExploredPath& p) {
      if (p.covered_ratio > 0.0) ++streamed_covered;
      return true;
    });
    const double streamed_s = streamed_watch.seconds();

    benchutil::Stopwatch naive_watch;
    const coverage::PathExplorer enumerator(engine.transfer(), nullptr, options);
    uint64_t naive_covered = 0;
    const coverage::Measure measure = coverage::path_measure(engine.transfer());
    (void)enumerator.explore_universe([&](const coverage::ExploredPath& p) {
      // Re-derive the guard and re-walk the path (the naive design).
      packet::PacketSet guard = p.final_set;
      for (auto it = p.rules.rbegin(); it != p.rules.rend(); ++it) {
        const net::Rule& rule = engine.network().rule(*it);
        guard = engine.transfer().rewrite_preimage(rule, guard).intersect(
            engine.match_sets().match_set(*it));
      }
      const coverage::GuardedString g{guard, p.rules, packet::kNoLocation};
      if (measure(engine.covered_sets(), g).value > 0.0) ++naive_covered;
      return true;
    });
    const double naive_s = naive_watch.seconds();
    std::printf("\n# Equation-3 ablation on %llu paths (k=%d): streamed %.3fs vs "
                "per-path recompute %.3fs (%.1fx); covered %llu/%llu agree=%s\n",
                static_cast<unsigned long long>(sample), k, streamed_s, naive_s,
                streamed_s > 0 ? naive_s / streamed_s : 0.0,
                static_cast<unsigned long long>(streamed_covered),
                static_cast<unsigned long long>(naive_covered),
                streamed_covered == naive_covered ? "yes" : "NO");
  }

  // Observability overhead budget (DESIGN.md §9): the instrumented offline
  // phase + all-local metrics, observability off vs on, must stay within
  // 3%. Median of several repetitions absorbs scheduler noise; a breach
  // fails the bench (nonzero exit) so regressions cannot land silently.
  int exit_code = 0;
  {
    const int k = benchutil::fat_tree_sweep().front();
    topo::FatTree tree = topo::make_fat_tree({.k = k});
    routing::FibBuilder::compute_and_build(tree.network, tree.routing);
    bdd::BddManager trace_mgr(packet::kNumHeaderBits);
    ys::CoverageTracker tracker;
    {
      const dataplane::MatchSetIndex match_sets(trace_mgr, tree.network);
      const dataplane::Transfer transfer(match_sets);
      nettest::TestSuite suite("fig9");
      suite.add(std::make_unique<nettest::DefaultRouteCheck>());
      suite.add(std::make_unique<nettest::ToRContract>());
      suite.add(std::make_unique<nettest::ToRPingmesh>());
      (void)suite.run_all(transfer, tracker);
    }

    const auto run_once = [&] {
      bdd::BddManager m(packet::kNumHeaderBits);
      const coverage::CoverageTrace local_trace = tracker.trace().imported_into(m);
      benchutil::Stopwatch watch;
      const ys::CoverageEngine engine(m, tree.network, local_trace);
      (void)engine.devices_coverage(coverage::fractional_aggregator());
      (void)engine.interfaces_coverage(coverage::fractional_aggregator());
      (void)engine.rules_coverage(coverage::fractional_aggregator());
      return watch.seconds();
    };
    const auto median_of = [&](int reps) {
      std::vector<double> samples;
      samples.reserve(reps);
      for (int i = 0; i < reps; ++i) samples.push_back(run_once());
      std::sort(samples.begin(), samples.end());
      return samples[samples.size() / 2];
    };

    constexpr int kReps = 7;
    obs::set_enabled(false);
    const double off_s = median_of(kReps);
    obs::set_enabled(true);
    const double on_s = median_of(kReps);
    obs::Tracer::global().clear();  // bound the buffers for repeated runs
    obs::set_enabled(false);

    const double overhead_pct = off_s > 0.0 ? (on_s / off_s - 1.0) * 100.0 : 0.0;
    const bool within_budget = overhead_pct < 3.0;
    std::printf("\n# observability overhead (k=%d, offline phase + all-local metrics, "
                "median of %d): off %.3fs, on %.3fs, overhead %+.2f%% — "
                "within <3%% budget: %s\n",
                k, kReps, off_s, on_s, overhead_pct, within_budget ? "yes" : "NO");
    if (!within_budget) exit_code = 1;
  }
  return exit_code;
}
