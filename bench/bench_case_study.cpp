// Figure 6 + Figure 7 reproduction harness.
//
// Emits the exact panel series of the paper's case study on the synthetic
// regional network: for each test-suite stage, per-router-role bars of
// device (fractional), interface (fractional), rule (fractional) and rule
// (weighted) coverage — Fig. 6a-6d — followed by the Fig. 7 whole-network
// progression and the §7.3 headline improvement numbers.
//
// Expected shapes vs. the paper (absolute values depend on the synthetic
// topology; see EXPERIMENTS.md):
//   6a: device ~100% everywhere (hubs slightly lower), interfaces high
//       only on Aggregation, rule-fractional ~0, rule-weighted ~100%.
//   6b: rule-fractional >90% on ToR/Agg, mid-range on Spine/Hub.
//   6c: interface coverage near-complete except ToRs.
//   6d: spine/hub rule-fractional capped by wide-area routes; ToR
//       interfaces stay low (host ports untested).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "nettest/contract_checks.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/regional.hpp"
#include "yardstick/engine.hpp"

using namespace yardstick;

namespace {

enum class Stage { Original, InternalOnly, ConnectedOnly, Final };

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::Original: return "fig6a-original-suite";
    case Stage::InternalOnly: return "fig6b-internal-route-check";
    case Stage::ConnectedOnly: return "fig6c-connected-route-check";
    case Stage::Final: return "fig6d-final-suite";
  }
  return "?";
}

nettest::TestSuite make_suite(Stage stage, const topo::RegionalNetwork& region) {
  const std::unordered_set<net::DeviceId> excluded(
      region.routing.no_default_devices.begin(), region.routing.no_default_devices.end());
  nettest::TestSuite suite(stage_name(stage));
  if (stage == Stage::Original || stage == Stage::Final) {
    suite.add(std::make_unique<nettest::DefaultRouteCheck>(excluded));
    suite.add(std::make_unique<nettest::AggCanReachTorLoopback>());
  }
  if (stage == Stage::InternalOnly || stage == Stage::Final) {
    suite.add(std::make_unique<nettest::InternalRouteCheck>());
  }
  if (stage == Stage::ConnectedOnly || stage == Stage::Final) {
    suite.add(std::make_unique<nettest::ConnectedRouteCheck>());
  }
  return suite;
}

void print_panel(const char* panel, const ys::CoverageReport& report) {
  std::printf("%s\n", panel);
  std::printf("  %-14s %10s %10s %10s %10s\n", "role", "device(f)", "iface(f)", "rule(f)",
              "rule(w)");
  for (const auto& row : report.by_role) {
    if (row.role == net::Role::Wan) continue;  // the paper plots router roles only
    std::printf("  %-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", to_string(row.role),
                row.metrics.device_fractional * 100.0,
                row.metrics.interface_fractional * 100.0,
                row.metrics.rule_fractional * 100.0, row.metrics.rule_weighted * 100.0);
  }
}

}  // namespace

int main() {
  topo::RegionalParams params;
  topo::RegionalNetwork region = topo::make_regional(params);
  routing::FibBuilder::compute_and_build(region.network, region.routing);
  std::printf("# bench_case_study: %s\n\n", region.network.summary().c_str());

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex match_sets(mgr, region.network);
  const dataplane::Transfer transfer(match_sets);

  std::vector<ys::MetricRow> fig7;
  std::vector<const char*> fig7_labels;

  for (const Stage stage :
       {Stage::Original, Stage::InternalOnly, Stage::ConnectedOnly, Stage::Final}) {
    ys::CoverageTracker tracker;
    const nettest::TestSuite suite = make_suite(stage, region);
    benchutil::Stopwatch watch;
    const auto results = suite.run_all(transfer, tracker);
    const double test_time = watch.seconds();
    size_t failures = 0;
    for (const auto& r : results) failures += r.failures;

    watch.reset();
    const ys::CoverageEngine engine(mgr, region.network, tracker.trace());
    const ys::CoverageReport report = engine.report();
    const double metric_time = watch.seconds();

    print_panel(stage_name(stage), report);
    std::printf("  (tests: %.2fs, %zu failures; metrics: %.2fs)\n\n", test_time, failures,
                metric_time);

    if (stage != Stage::InternalOnly && stage != Stage::ConnectedOnly) {
      // Fig. 7 plots the suite iterations: original, +internal, final.
      if (stage == Stage::Original) {
        fig7.push_back(report.overall);
        fig7_labels.push_back("start: original suite");
        // Intermediate iteration: original + InternalRouteCheck.
        ys::CoverageTracker mid_tracker;
        nettest::TestSuite mid("mid");
        const std::unordered_set<net::DeviceId> excluded(
            region.routing.no_default_devices.begin(),
            region.routing.no_default_devices.end());
        mid.add(std::make_unique<nettest::DefaultRouteCheck>(excluded));
        mid.add(std::make_unique<nettest::AggCanReachTorLoopback>());
        mid.add(std::make_unique<nettest::InternalRouteCheck>());
        (void)mid.run_all(transfer, mid_tracker);
        const ys::CoverageEngine mid_engine(mgr, region.network, mid_tracker.trace());
        fig7.push_back(mid_engine.report().overall);
        fig7_labels.push_back("add: internal route check");
      } else {
        fig7.push_back(report.overall);
        fig7_labels.push_back("add: connected route check");
      }
    }
  }

  std::printf("fig7-suite-iterations (all devices)\n");
  std::printf("  %-28s %10s %10s %10s %10s\n", "iteration", "device(f)", "iface(f)",
              "rule(f)", "rule(w)");
  for (size_t i = 0; i < fig7.size(); ++i) {
    std::printf("  %-28s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", fig7_labels[i],
                fig7[i].device_fractional * 100.0, fig7[i].interface_fractional * 100.0,
                fig7[i].rule_fractional * 100.0, fig7[i].rule_weighted * 100.0);
  }

  const auto rel = [](double now, double was) {
    return was == 0.0 ? 0.0 : (now - was) / was * 100.0;
  };
  std::printf("\nheadline (paper: +89%% rules, +17%% interfaces within the first month)\n");
  std::printf("  rule coverage improvement:      +%.0f%% relative (%.1f%% -> %.1f%%)\n",
              rel(fig7.back().rule_fractional, fig7.front().rule_fractional),
              fig7.front().rule_fractional * 100.0, fig7.back().rule_fractional * 100.0);
  std::printf("  interface coverage improvement: +%.0f%% relative (%.1f%% -> %.1f%%)\n",
              rel(fig7.back().interface_fractional, fig7.front().interface_fractional),
              fig7.front().interface_fractional * 100.0,
              fig7.back().interface_fractional * 100.0);
  return 0;
}
