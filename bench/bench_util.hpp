// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace yardstick::benchutil {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Fat-tree arities to sweep: from YS_FATTREE_KS ("4 8 12"), else default.
/// The paper sweeps k=8..88 (up to 9680 routers, §8); defaults here keep
/// the full bench suite minutes-scale — export YS_FATTREE_KS to go larger.
inline std::vector<int> fat_tree_sweep(std::vector<int> fallback = {4, 8, 12, 16}) {
  const char* env = std::getenv("YS_FATTREE_KS");
  if (env == nullptr) return fallback;
  std::vector<int> ks;
  std::istringstream in(env);
  int k = 0;
  while (in >> k) ks.push_back(k);
  return ks.empty() ? fallback : ks;
}

/// Wall-clock budget for the path-coverage sweep (seconds), from
/// YS_PATH_BUDGET_S; the paper used a 1-hour timeout (Fig. 9).
inline double path_budget_seconds(double fallback = 60.0) {
  const char* env = std::getenv("YS_PATH_BUDGET_S");
  return env == nullptr ? fallback : std::atof(env);
}

/// Worker-thread count for the parallel-offline-phase comparison, from
/// YS_BENCH_THREADS (default 4).
inline unsigned bench_threads(unsigned fallback = 4) {
  const char* env = std::getenv("YS_BENCH_THREADS");
  if (env == nullptr) return fallback;
  const int n = std::atoi(env);
  return n > 0 ? static_cast<unsigned>(n) : fallback;
}

}  // namespace yardstick::benchutil
