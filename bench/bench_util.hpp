// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "yardstick/report.hpp"

namespace yardstick::benchutil {

/// Monotonic stopwatch on std::chrono::steady_clock — immune to NTP slews
/// and wall-clock jumps, so bench numbers stay comparable across runs.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "bench timings require a monotonic clock");

  Stopwatch() : start_(Clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  void reset() { start_ = Clock::now(); }

 private:
  Clock::time_point start_;
};

/// Per-phase breakdown for one engine run: the engine's own steady-clock
/// phase timers (always measured), plus — when the observability switch is
/// on — the matching work counters from the metrics registry, replacing
/// the ad-hoc end-to-end stopwatch as the source of per-phase numbers.
inline void print_phase_breakdown(const char* label, const ys::PhaseTimings& timings,
                                  double path_sweep_seconds = 0.0) {
  std::printf("#   %-14s match-sets %.3fs  covered-sets %.3fs", label,
              timings.match_sets_seconds, timings.covered_sets_seconds);
  if (path_sweep_seconds > 0.0) std::printf("  path-sweep %.3fs", path_sweep_seconds);
  if (obs::enabled()) {
    std::printf("  (dfs-nodes %llu, paths %llu, imported-nodes %llu)",
                static_cast<unsigned long long>(
                    obs::metrics().counter("ys.paths.dfs_nodes").value()),
                static_cast<unsigned long long>(
                    obs::metrics().counter("ys.paths.emitted").value()),
                static_cast<unsigned long long>(
                    obs::metrics().counter("ys.bdd.imported_nodes").value()));
  }
  std::printf("\n");
}

/// Fat-tree arities to sweep: from YS_FATTREE_KS ("4 8 12"), else default.
/// The paper sweeps k=8..88 (up to 9680 routers, §8); defaults here keep
/// the full bench suite minutes-scale — export YS_FATTREE_KS to go larger.
inline std::vector<int> fat_tree_sweep(std::vector<int> fallback = {4, 8, 12, 16}) {
  const char* env = std::getenv("YS_FATTREE_KS");
  if (env == nullptr) return fallback;
  std::vector<int> ks;
  std::istringstream in(env);
  int k = 0;
  while (in >> k) ks.push_back(k);
  return ks.empty() ? fallback : ks;
}

/// Wall-clock budget for the path-coverage sweep (seconds), from
/// YS_PATH_BUDGET_S; the paper used a 1-hour timeout (Fig. 9).
inline double path_budget_seconds(double fallback = 60.0) {
  const char* env = std::getenv("YS_PATH_BUDGET_S");
  return env == nullptr ? fallback : std::atof(env);
}

/// Worker-thread count for the parallel-offline-phase comparison, from
/// YS_BENCH_THREADS (default 4).
inline unsigned bench_threads(unsigned fallback = 4) {
  const char* env = std::getenv("YS_BENCH_THREADS");
  if (env == nullptr) return fallback;
  const int n = std::atoi(env);
  return n > 0 ? static_cast<unsigned>(n) : fallback;
}

}  // namespace yardstick::benchutil
