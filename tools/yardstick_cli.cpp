// yardstick — command-line front end.
//
// Builds a synthetic topology (fat-tree or multi-DC regional network),
// computes its forwarding state with the eBGP substrate, runs a test
// suite with coverage tracking, and prints the coverage report.
//
//   yardstick fattree --k 8 --suite fattree --paths
//   yardstick regional --suite original --json
//   yardstick regional --suite final --acl --save-trace trace.txt
//   yardstick regional --load-trace trace.txt
//
// Daemon mode (yardstickd, the fault-tolerant online phase):
//   yardstick serve --socket /run/ys.sock --wal ys.wal --snapshot ys.trace
//   yardstick ingest fattree --k 8 --socket /run/ys.sock --session 1
//   yardstick ingest-replay --wal ys.wal --save-trace recovered.trace
//
// Exit codes map the error taxonomy so scripts can dispatch on failures:
//   0 all tests passed          4 corrupt trace file
//   1 test failures             5 I/O error
//   2 usage error               6 resource budget exceeded
//   3 invalid input             7 cancelled
//                              10 internal error
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "netio/network_format.hpp"
#include "nettest/acl_checks.hpp"
#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "nettest/transform_checks.hpp"
#include "routing/fib_builder.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "topo/acl.hpp"
#include "topo/fattree.hpp"
#include "topo/regional.hpp"
#include "topo/transforms.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/signal.hpp"
#include "yardstick/analysis.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/optimize.hpp"
#include "yardstick/json.hpp"
#include "yardstick/persist.hpp"

using namespace yardstick;

namespace {

// --- strict numeric flag parsing ----------------------------------------
//
// atoi/atof silently turn garbage into 0 and saturate nothing: "--port
// 70000" used to pass a `> 0` check and wrap through a uint16_t cast to
// port 4464. Every numeric flag goes through these instead: the whole
// token must parse, and the value must sit inside the flag's range —
// anything else is a usage error (exit 2), never a silent reinterpretation.

/// Parse a complete base-10 integer token. Rejects empty strings, trailing
/// garbage ("5x"), and values outside long long.
bool parse_i64(const char* s, long long& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(s, &end, 10);
  return errno == 0 && end != s && *end == '\0';
}

/// Parse a complete finite floating-point token.
bool parse_f64(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtod(s, &end);
  return errno == 0 && end != s && *end == '\0' && std::isfinite(out);
}

/// Integer token constrained to [lo, hi].
bool parse_range(const char* s, long long lo, long long hi, long long& out) {
  return parse_i64(s, out) && out >= lo && out <= hi;
}

/// TCP port: 1..65535, no wrapping.
bool parse_port(const char* s, uint16_t& out) {
  long long v = 0;
  if (!parse_range(s, 1, 65535, v)) return false;
  out = static_cast<uint16_t>(v);
  return true;
}

struct CliOptions {
  std::string topology;       // "fattree" | "regional" | "file"
  std::string network_file;   // for topology == "file"
  int k = 4;
  topo::RegionalParams regional;
  std::string suite = "final";
  bool with_acl = false;
  bool json = false;
  bool paths = false;
  double path_budget_s = 60.0;
  bool analyze = false;
  size_t suggest = 0;
  std::optional<std::string> save_trace;
  std::optional<std::string> load_trace;
  double deadline_s = 0.0;       // 0 = unlimited
  size_t max_bdd_nodes = 0;      // 0 = unlimited
  unsigned threads = 0;          // offline-phase workers; 0 = all hardware threads
  double gc_threshold = 0.0;     // shard-manager GC dead-fraction trigger; 0 = off
  std::string cache_dir;         // incremental result cache; empty = off
  std::optional<std::string> trace_out;    // Chrome trace-event JSON
  std::optional<std::string> metrics_out;  // metrics JSON (+ FILE.prom)
  int transforms = 0;            // tunnels + NAT rules per WAN (regional only)
  // Scenario mode (the `scenarios` subcommand):
  std::string scenario_spec;     // spec file; mutually exclusive with random_links
  int random_links = 0;          // generate N random link-down scenarios
  uint64_t scenario_seed = 1;    // PRNG seed for --random-links
  int links_per_scenario = 1;    // failed links per random scenario
  // Optimize mode (the `optimize` subcommand):
  bool minimize = false;         // greedy set-cover suite minimization
  bool prioritize = false;       // cost-aware ordering + coverage/cost curve
  bool gap_report = false;       // exhaustive gap witnesses
  double min_coverage = 1.0;     // minimization slack knob (fraction of full)
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <fattree|regional|file PATH> [options]\n"
               "  --k N                fat-tree arity (default 4)\n"
               "  --datacenters N      regional: datacenter count\n"
               "  --pods N             regional: pods per datacenter\n"
               "  --tors N             regional: ToRs per pod\n"
               "  --suite NAME         original|new|final|fattree (default final)\n"
               "  --acl                install ToR ingress ACLs and ACL tests\n"
               "  --json               JSON output\n"
               "  --paths [SECONDS]    also compute path coverage (budget)\n"
               "  --analyze            per-test contributions + redundancy\n"
               "  --suggest N          synthesize probes for N untested rules\n"
               "  --save-trace FILE    persist the coverage trace\n"
               "  --load-trace FILE    skip testing; compute metrics from FILE\n"
               "  --deadline SECONDS   overall wall-clock budget (partial results)\n"
               "  --max-bdd-nodes N    cap BDD arena size (partial results)\n"
               "  --threads N          offline-phase worker threads (default: all\n"
               "                       hardware threads; results are identical)\n"
               "  --gc-threshold F     collect shard BDD arenas when the dead fraction\n"
               "                       may exceed F in (0,1] (default off; results are\n"
               "                       identical, peak memory shrinks)\n"
               "  --incremental        cache offline-phase results in .yardstick-cache\n"
               "                       and recompute only what changed (bit-identical)\n"
               "  --cache-dir DIR      like --incremental, with an explicit cache directory\n"
               "  --trace-out FILE     write a Chrome trace-event JSON span timeline\n"
               "                       (open in about:tracing or ui.perfetto.dev)\n"
               "  --metrics-out FILE   write engine metrics as JSON to FILE and\n"
               "                       Prometheus text exposition to FILE.prom\n"
               "  --transforms N       regional: N tunnels (VIP encap/decap across ToRs)\n"
               "                       and N NAT rules per WAN, plus their checks\n"
               "Scenario mode (coverage under failure, DESIGN.md §13):\n"
               "  %s scenarios <topology> [options] --scenario-spec FILE\n"
               "  %s scenarios <topology> [options] --random-links N [--seed S]\n"
               "  --scenario-spec FILE named device/link failure sets (see DESIGN.md)\n"
               "  --random-links N     N seeded random link-down scenarios instead\n"
               "  --seed S             PRNG seed for --random-links (default 1)\n"
               "  --links-per-scenario L  failed links per random scenario (default 1)\n"
               "Optimize mode (suite minimization / prioritization / gap witnesses,\n"
               "DESIGN.md §14):\n"
               "  %s optimize <topology> [options] --minimize [--min-coverage F]\n"
               "  %s optimize <topology> [options] --prioritize --gap-report --json\n"
               "  --minimize           smallest subset preserving full-suite coverage\n"
               "  --min-coverage F     keep >= F of the full suite's fractional rule\n"
               "                       coverage, F in (0,1] (default 1.0 = exact)\n"
               "  --prioritize         marginal-coverage-per-second order + cost curve\n"
               "  --gap-report         witness packet (or state-only marker) for every\n"
               "                       uncovered rule, grouped by device\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

std::optional<CliOptions> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  CliOptions opts;
  opts.topology = argv[1];
  int first_option = 2;
  if (opts.topology == "file") {
    if (argc < 3) return std::nullopt;
    opts.network_file = argv[2];
    first_option = 3;
  } else if (opts.topology != "fattree" && opts.topology != "regional") {
    return std::nullopt;
  }

  for (int i = first_option; i < argc; ++i) {
    const std::string arg = argv[i];
    // Positive int / positive size flag values, strictly parsed.
    const auto next_int = [&](int& out) {
      long long v = 0;
      if (i + 1 >= argc || !parse_range(argv[++i], 1, INT_MAX, v)) return false;
      out = static_cast<int>(v);
      return true;
    };
    const auto next_size = [&](size_t& out) {
      long long v = 0;
      if (i + 1 >= argc || !parse_range(argv[++i], 1, LLONG_MAX, v)) return false;
      out = static_cast<size_t>(v);
      return true;
    };
    if (arg == "--k") {
      if (!next_int(opts.k)) return std::nullopt;
    } else if (arg == "--datacenters") {
      if (!next_int(opts.regional.datacenters)) return std::nullopt;
    } else if (arg == "--pods") {
      if (!next_int(opts.regional.pods_per_dc)) return std::nullopt;
    } else if (arg == "--tors") {
      if (!next_int(opts.regional.tors_per_pod)) return std::nullopt;
    } else if (arg == "--suite") {
      if (i + 1 >= argc) return std::nullopt;
      opts.suite = argv[++i];
    } else if (arg == "--acl") {
      opts.with_acl = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--paths") {
      opts.paths = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        if (!parse_f64(argv[++i], opts.path_budget_s) || opts.path_budget_s <= 0.0) {
          return std::nullopt;
        }
      }
    } else if (arg == "--analyze") {
      opts.analyze = true;
    } else if (arg == "--suggest") {
      if (!next_size(opts.suggest)) return std::nullopt;
    } else if (arg == "--save-trace") {
      if (i + 1 >= argc) return std::nullopt;
      opts.save_trace = argv[++i];
    } else if (arg == "--load-trace") {
      if (i + 1 >= argc) return std::nullopt;
      opts.load_trace = argv[++i];
    } else if (arg == "--deadline") {
      if (i + 1 >= argc || !parse_f64(argv[++i], opts.deadline_s) ||
          opts.deadline_s <= 0.0) {
        return std::nullopt;
      }
    } else if (arg == "--max-bdd-nodes") {
      if (!next_size(opts.max_bdd_nodes)) return std::nullopt;
    } else if (arg == "--threads") {
      int n = 0;
      if (!next_int(n)) return std::nullopt;
      opts.threads = static_cast<unsigned>(n);
    } else if (arg == "--gc-threshold") {
      if (i + 1 >= argc || !parse_f64(argv[++i], opts.gc_threshold) ||
          opts.gc_threshold <= 0.0 || opts.gc_threshold > 1.0) {
        return std::nullopt;
      }
    } else if (arg == "--incremental") {
      if (opts.cache_dir.empty()) opts.cache_dir = ".yardstick-cache";
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) return std::nullopt;
      opts.cache_dir = argv[++i];
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) return std::nullopt;
      opts.trace_out = argv[++i];
    } else if (arg == "--metrics-out") {
      if (i + 1 >= argc) return std::nullopt;
      opts.metrics_out = argv[++i];
    } else if (arg == "--transforms") {
      if (!next_int(opts.transforms)) return std::nullopt;
    } else if (arg == "--scenario-spec") {
      if (i + 1 >= argc) return std::nullopt;
      opts.scenario_spec = argv[++i];
    } else if (arg == "--random-links") {
      if (!next_int(opts.random_links)) return std::nullopt;
    } else if (arg == "--seed") {
      long long v = 0;
      if (i + 1 >= argc || !parse_range(argv[++i], 0, LLONG_MAX, v)) return std::nullopt;
      opts.scenario_seed = static_cast<uint64_t>(v);
    } else if (arg == "--links-per-scenario") {
      if (!next_int(opts.links_per_scenario)) return std::nullopt;
    } else if (arg == "--minimize") {
      opts.minimize = true;
    } else if (arg == "--prioritize") {
      opts.prioritize = true;
    } else if (arg == "--gap-report") {
      opts.gap_report = true;
    } else if (arg == "--min-coverage") {
      if (i + 1 >= argc || !parse_f64(argv[++i], opts.min_coverage) ||
          opts.min_coverage <= 0.0 || opts.min_coverage > 1.0) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
  }
  return opts;
}

/// Topology + routing config + optional transform plan, built from the CLI
/// options. Out-parameter style: the struct holds both the storage and the
/// interior pointers, so it must not be moved after building.
struct BuiltTopology {
  net::Network* network = nullptr;
  routing::RoutingConfig* routing = nullptr;
  std::vector<net::DeviceId> tors;
  topo::FatTree fattree;
  topo::RegionalNetwork regional;
  netio::LoadedNetwork from_file;
  bool state_loaded = false;
  topo::TransformState transforms;
};

void build_topology(const CliOptions& opts, BuiltTopology& t) {
  if (opts.topology == "fattree") {
    t.fattree = topo::make_fat_tree({.k = opts.k});
    t.network = &t.fattree.network;
    t.routing = &t.fattree.routing;
    t.tors = t.fattree.tors;
  } else if (opts.topology == "regional") {
    t.regional = topo::make_regional(opts.regional);
    t.network = &t.regional.network;
    t.routing = &t.regional.routing;
    t.tors = t.regional.tors;
  } else {
    t.from_file = netio::load_network_file(opts.network_file);
    t.network = &t.from_file.network;
    t.routing = &t.from_file.routing;
    t.tors = t.network->devices_with_role(net::Role::ToR);
    t.state_loaded = t.from_file.has_forwarding_state;
  }
  if (opts.transforms > 0) {
    if (opts.topology != "regional") {
      throw ys::InvalidInputError("--transforms requires the regional topology");
    }
    // Must run before FIB computation: tunnel endpoints are BGP-originated.
    t.transforms = topo::plan_transforms(
        t.regional, {.tunnels = opts.transforms, .nat_rules_per_wan = opts.transforms});
  }
}

/// Post-FIB state (ingress ACLs, transform rules) — everything that
/// FibBuilder::build wipes and that must be reinstalled per FIB rebuild.
void install_post_fib_state(const CliOptions& opts, const BuiltTopology& t,
                            net::Network& network,
                            const routing::RoutingConfig& routing) {
  if (opts.with_acl) {
    std::vector<net::DeviceId> alive;
    alive.reserve(t.tors.size());
    for (const net::DeviceId tor : t.tors) {
      if (!routing.failed_devices.contains(tor)) alive.push_back(tor);
    }
    topo::install_ingress_acls(network, alive);
  }
  if (!t.transforms.empty()) {
    topo::install_transform_rules(network, t.transforms, routing);
  }
}

nettest::TestSuite build_suite(const CliOptions& opts,
                               const std::unordered_set<net::DeviceId>& excluded) {
  nettest::TestSuite suite(opts.suite);
  const bool original = opts.suite == "original" || opts.suite == "final";
  const bool fresh = opts.suite == "new" || opts.suite == "final";
  if (opts.suite == "fattree") {
    suite.add(std::make_unique<nettest::DefaultRouteCheck>(excluded));
    suite.add(std::make_unique<nettest::ToRContract>());
    suite.add(std::make_unique<nettest::ToRReachability>());
    suite.add(std::make_unique<nettest::ToRPingmesh>());
  }
  if (original) {
    suite.add(std::make_unique<nettest::DefaultRouteCheck>(excluded));
    suite.add(std::make_unique<nettest::AggCanReachTorLoopback>());
  }
  if (fresh) {
    suite.add(std::make_unique<nettest::InternalRouteCheck>());
    suite.add(std::make_unique<nettest::ConnectedRouteCheck>());
  }
  if (opts.with_acl) {
    suite.add(std::make_unique<nettest::AclBlockCheck>());
    suite.add(std::make_unique<nettest::BlockedPortCheck>());
  }
  if (opts.transforms > 0) {
    suite.add(std::make_unique<nettest::TunnelRoundTripCheck>());
    suite.add(std::make_unique<nettest::NatTranslationCheck>());
  }
  return suite;
}

/// Maps the error taxonomy onto the documented exit codes.
int exit_code_for(ys::Error code) {
  switch (code) {
    case ys::Error::InvalidInput: return 3;
    case ys::Error::CorruptTrace: return 4;
    case ys::Error::IoError: return 5;
    case ys::Error::BudgetExceeded: return 6;
    case ys::Error::Cancelled: return 7;
    default: return 10;
  }
}

/// Writes `content` to `path`, mapping failure onto the I/O exit code.
void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.flush();
  if (!out) throw ys::IoError("cannot write " + path);
}

int run_impl(const CliOptions& opts) {

  // Build topology + forwarding state.
  BuiltTopology built;
  build_topology(opts, built);
  net::Network* network = built.network;
  routing::RoutingConfig* routing = built.routing;
  if (!built.state_loaded) {
    routing::FibBuilder::compute_and_build(*network, *routing);
    install_post_fib_state(opts, built, *network, *routing);
  }
  if (!opts.json) std::printf("%s\n", network->summary().c_str());

  bdd::BddManager mgr(packet::kNumHeaderBits);
  ys::ResourceBudget budget;
  if (opts.deadline_s > 0.0) budget.with_deadline(opts.deadline_s);
  if (opts.max_bdd_nodes > 0) budget.with_max_bdd_nodes(opts.max_bdd_nodes);
  const bool budgeted = opts.deadline_s > 0.0 || opts.max_bdd_nodes > 0;
  ys::CoverageTracker tracker;
  size_t failures = 0;

  if (opts.load_trace) {
    obs::Span span("trace.load", "io");
    coverage::CoverageTrace loaded = ys::load_trace(*opts.load_trace, mgr);
    tracker.mark_packet(loaded.marked_packets());
    for (const net::RuleId rid : loaded.marked_rules()) tracker.mark_rule(rid);
    if (!opts.json) std::printf("loaded trace from %s\n", opts.load_trace->c_str());
  } else {
    const dataplane::MatchSetIndex match_sets(mgr, *network);
    const dataplane::Transfer transfer(match_sets);
    const std::unordered_set<net::DeviceId> excluded(routing->no_default_devices.begin(),
                                                     routing->no_default_devices.end());
    const nettest::TestSuite suite = build_suite(opts, excluded);
    const auto results = [&] {
      obs::Span span("suite.run", "online");
      span.arg("tests", suite.size());
      return suite.run_all(transfer, tracker);
    }();
    for (const auto& r : results) failures += r.failures;
    if (opts.json) {
      std::printf("{\"tests\":%s,", ys::results_to_json(results).c_str());
    } else {
      for (const auto& r : results) {
        std::printf("test %-24s %s (%zu checks, %zu failures)\n", r.name.c_str(),
                    r.passed() ? "PASS" : "FAIL", r.checks, r.failures);
      }
    }
    if (opts.analyze && !opts.json) {
      const ys::SuiteAnalyzer analyzer(mgr, *network, budgeted ? &budget : nullptr,
                                       opts.threads);
      const ys::SuiteAnalysis analysis = analyzer.analyze(transfer, suite);
      if (analysis.truncated) {
        std::fprintf(stderr, "warning: budget exhausted; suite analysis is partial\n");
      }
      std::printf("\nsuite analysis (fractional rule coverage, %.3fs):\n",
                  analysis.analyze_seconds);
      for (const auto& t : analysis.tests) {
        std::printf("  %-24s solo %6.1f%%  marginal %6.1f%%  %7.3fs  %s\n",
                    t.name.c_str(), t.solo * 100.0, t.marginal * 100.0, t.seconds,
                    t.redundant ? "REDUNDANT" : "keep");
      }
    }
  }

  const ys::CoverageEngine engine(
      mgr, *network, tracker.trace(),
      ys::EngineOptions{budgeted ? &budget : nullptr, opts.threads, opts.cache_dir,
                        opts.gc_threshold});
  // Cache telemetry goes to stderr so stdout (human or JSON report) stays
  // byte-identical to a from-scratch run — which is what CI diffs.
  if (const ys::CacheStats* cs = engine.cache_stats()) {
    if (!cs->loaded) {
      std::fprintf(stderr, "cache: full rebuild (%s)\n", cs->fallback_reason.c_str());
    } else {
      std::fprintf(stderr,
                   "cache: %zu/%zu match records reused, %zu/%zu covered records "
                   "reused, %zu device(s) invalidated\n",
                   cs->match_hits, cs->devices, cs->cover_hits, cs->devices,
                   cs->invalidated);
    }
    if (!cs->save_error.empty()) {
      std::fprintf(stderr, "warning: cache not saved: %s\n", cs->save_error.c_str());
    }
  }
  const ys::CoverageReport report = engine.report();
  if (report.truncated && !opts.json) {
    std::fprintf(stderr, "warning: budget exhausted; coverage results are partial\n");
  }
  if (opts.json) {
    if (opts.load_trace) std::printf("{");
    std::printf("\"coverage\":%s", ys::report_to_json(report).c_str());
  } else {
    std::printf("\n%s", report.to_text().c_str());
  }

  if (opts.paths) {
    const ys::PathCoverageResult paths = engine.path_coverage({}, opts.path_budget_s);
    if (opts.json) {
      // JSON has no NaN/Infinity literals; a degraded ratio prints as 0.
      const double fractional = std::isfinite(paths.fractional) ? paths.fractional : 0.0;
      std::printf(",\"paths\":{\"total\":%llu,\"covered\":%llu,\"fractional\":%f,"
                  "\"truncated\":%s}",
                  static_cast<unsigned long long>(paths.total_paths),
                  static_cast<unsigned long long>(paths.covered_paths), fractional,
                  paths.truncated ? "true" : "false");
    } else {
      std::printf("path coverage: %llu/%llu covered (%.1f%%) in %.3fs%s\n",
                  static_cast<unsigned long long>(paths.covered_paths),
                  static_cast<unsigned long long>(paths.total_paths),
                  paths.fractional * 100.0, paths.seconds,
                  paths.truncated ? " [truncated]" : "");
    }
  }
  if (opts.json) std::printf("}\n");

  if (opts.suggest > 0 && !opts.json) {
    std::printf("\nsuggested probes for untested rules:\n");
    for (const ys::TestSuggestion& s : ys::suggest_tests(engine, opts.suggest)) {
      std::printf("  %s\n", s.to_string(*network).c_str());
    }
  }

  if (opts.save_trace) {
    obs::Span span("trace.save", "io");
    ys::save_trace(*opts.save_trace, tracker.trace(), mgr);
    if (!opts.json) std::printf("trace saved to %s\n", opts.save_trace->c_str());
  }
  return failures == 0 ? 0 : 1;
}

int run(const CliOptions& opts) {
  // The observability switch flips on only when an output was requested;
  // default runs keep the near-zero disabled-mode cost.
  if (opts.trace_out || opts.metrics_out) obs::set_enabled(true);
  int code = 0;
  {
    // Scoped so the root span is recorded before the trace is serialized.
    obs::Span root("cli.run", "cli");
    code = run_impl(opts);
  }
  if (opts.trace_out) {
    write_file(*opts.trace_out, obs::Tracer::global().to_chrome_json());
    if (!opts.json) std::printf("trace timeline written to %s\n", opts.trace_out->c_str());
  }
  if (opts.metrics_out) {
    write_file(*opts.metrics_out, obs::metrics().to_json());
    write_file(*opts.metrics_out + ".prom", obs::metrics().to_prometheus());
    if (!opts.json) {
      std::printf("metrics written to %s (+ %s.prom)\n", opts.metrics_out->c_str(),
                  opts.metrics_out->c_str());
    }
  }
  return code;
}

// --- scenario mode -------------------------------------------------------

/// `yardstick scenarios <topology> [...] --scenario-spec FILE | --random-links N`
///
/// Reuses the main option grammar (argv[0] is skipped by parse()); the
/// forwarding state is always recomputed per scenario, so hand-authored
/// state in `file` topologies is replaced by the BGP substrate's output.
int run_scenarios(int argc, char** argv) {
  const std::optional<CliOptions> parsed = parse(argc - 1, argv + 1);
  if (!parsed) return usage(argv[0]);
  const CliOptions& opts = *parsed;
  const bool have_spec = !opts.scenario_spec.empty();
  if (have_spec == (opts.random_links > 0)) {
    std::fprintf(stderr,
                 "error: scenarios needs exactly one of --scenario-spec / --random-links\n");
    return usage(argv[0]);
  }

  BuiltTopology built;
  build_topology(opts, built);
  if (!opts.json) std::printf("%s\n", built.network->summary().c_str());

  const scenario::ScenarioSpec spec =
      have_spec ? scenario::ScenarioSpec::load(opts.scenario_spec)
                : scenario::random_link_scenarios(*built.network, opts.random_links,
                                                  opts.scenario_seed,
                                                  opts.links_per_scenario);

  ys::ResourceBudget budget;
  if (opts.deadline_s > 0.0) budget.with_deadline(opts.deadline_s);
  if (opts.max_bdd_nodes > 0) budget.with_max_bdd_nodes(opts.max_bdd_nodes);
  const bool budgeted = opts.deadline_s > 0.0 || opts.max_bdd_nodes > 0;

  scenario::ScenarioRunnerOptions ropts;
  ropts.engine = ys::EngineOptions{budgeted ? &budget : nullptr, opts.threads,
                                   opts.cache_dir, opts.gc_threshold};

  const std::unordered_set<net::DeviceId> excluded(
      built.routing->no_default_devices.begin(), built.routing->no_default_devices.end());
  const nettest::TestSuite suite = build_suite(opts, excluded);

  scenario::ScenarioRunner runner(*built.network, *built.routing, suite, ropts);
  runner.set_post_fib_hook(
      [&opts, &built](net::Network& network, const routing::RoutingConfig& routing) {
        install_post_fib_state(opts, built, network, routing);
      });
  const scenario::ScenarioReport report = runner.run(spec);

  if (report.truncated) {
    std::fprintf(stderr, "warning: budget exhausted; scenario results are partial\n");
  }
  if (opts.json) {
    std::printf("%s\n", scenario::report_to_json(report).c_str());
  } else {
    std::printf("%s", report.to_text().c_str());
  }
  return 0;
}

// --- optimize mode -------------------------------------------------------

/// `yardstick optimize <topology> [...] --minimize|--prioritize|--gap-report`
///
/// Reuses the main option grammar (argv[0] is skipped by parse()). Runs the
/// suite twice over the same match-set index: once per-test in isolation
/// (the coverage matrix the optimizers fold over) and once merged (the
/// engine the gap report and the recomputation cross-check read).
int run_optimize(int argc, char** argv) {
  const std::optional<CliOptions> parsed = parse(argc - 1, argv + 1);
  if (!parsed) return usage(argv[0]);
  const CliOptions& opts = *parsed;
  if (!opts.minimize && !opts.prioritize && !opts.gap_report) {
    std::fprintf(stderr,
                 "error: optimize needs at least one of --minimize / --prioritize / "
                 "--gap-report\n");
    return usage(argv[0]);
  }

  BuiltTopology built;
  build_topology(opts, built);
  net::Network* network = built.network;
  if (!built.state_loaded) {
    routing::FibBuilder::compute_and_build(*network, *built.routing);
    install_post_fib_state(opts, built, *network, *built.routing);
  }
  if (!opts.json) std::printf("%s\n", network->summary().c_str());

  ys::ResourceBudget budget;
  if (opts.deadline_s > 0.0) budget.with_deadline(opts.deadline_s);
  if (opts.max_bdd_nodes > 0) budget.with_max_bdd_nodes(opts.max_bdd_nodes);
  const bool budgeted = opts.deadline_s > 0.0 || opts.max_bdd_nodes > 0;

  bdd::BddManager mgr(packet::kNumHeaderBits);
  if (budgeted) mgr.set_budget(&budget);
  const dataplane::MatchSetIndex match_sets(mgr, *network,
                                            budgeted ? &budget : nullptr);
  const dataplane::Transfer transfer(match_sets);
  const std::unordered_set<net::DeviceId> excluded(
      built.routing->no_default_devices.begin(),
      built.routing->no_default_devices.end());
  const nettest::TestSuite suite = build_suite(opts, excluded);

  // Per-test coverage matrix: the substrate minimization/prioritization
  // fold over (bit-identical at any --threads value).
  const ys::SuiteCoverageMatrix matrix =
      ys::build_suite_matrix(transfer, suite, budgeted ? &budget : nullptr,
                             opts.threads);

  // Merged full-suite run for the engine-side artifacts.
  ys::CoverageTracker tracker;
  (void)suite.run_all(transfer, tracker);
  const ys::CoverageEngine engine(
      mgr, *network, tracker.trace(),
      ys::EngineOptions{budgeted ? &budget : nullptr, opts.threads, opts.cache_dir,
                        opts.gc_threshold});

  std::optional<ys::MinimizeResult> minimized;
  std::optional<ys::PrioritizeResult> prioritized;
  std::optional<ys::GapReport> gaps;
  if (opts.minimize) {
    minimized = ys::minimize_suite(matrix, opts.min_coverage);
    // End-to-end cross-check: re-run only the retained tests and push the
    // merged trace through a fresh engine — the recomputed fractional rule
    // coverage must equal the full suite's bit-for-bit at min-coverage 1.
    ys::CoverageTracker subset_tracker;
    for (const ys::SelectedTest& s : minimized->selected) {
      (void)suite.test(s.index).run(transfer, subset_tracker);
    }
    const ys::CoverageEngine subset_engine(
        mgr, *network, subset_tracker.trace(),
        ys::EngineOptions{budgeted ? &budget : nullptr, opts.threads, "",
                          opts.gc_threshold});
    minimized->recomputed_full = engine.metrics().rule_fractional;
    minimized->recomputed_subset = subset_engine.metrics().rule_fractional;
  }
  if (opts.prioritize) prioritized = ys::prioritize_suite(matrix);
  if (opts.gap_report) gaps = ys::build_gap_report(engine);

  const bool truncated = matrix.truncated || engine.truncated();
  if (truncated) {
    std::fprintf(stderr, "warning: budget exhausted; optimization results are partial\n");
  }
  if (opts.json) {
    std::printf("%s\n",
                ys::optimize_to_json(matrix, minimized ? &*minimized : nullptr,
                                     prioritized ? &*prioritized : nullptr,
                                     gaps ? &*gaps : nullptr)
                    .c_str());
  } else {
    if (minimized) std::printf("%s", minimized->to_text(matrix).c_str());
    if (prioritized) std::printf("%s", prioritized->to_text().c_str());
    if (gaps) std::printf("%s", gaps->to_text().c_str());
  }
  return 0;
}

// --- daemon-mode subcommands --------------------------------------------

int serve_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s serve [options]\n"
               "  --socket PATH        unix-domain listener (default: none)\n"
               "  --tcp PORT           TCP listener on 127.0.0.1\n"
               "  --wal FILE           write-ahead journal (durable-before-ack)\n"
               "  --snapshot FILE      snapshot for compaction + graceful shutdown\n"
               "  --queue N            ingress queue bound (default 1024)\n"
               "  --compact-bytes N    compact once the WAL exceeds N bytes\n"
               "  --no-fsync           skip per-append fsync (throughput over durability)\n"
               "  --metrics-out FILE   write ingest metrics JSON (+ FILE.prom) at exit\n"
               "  --json               machine-readable stats on shutdown\n"
               "At least one of --socket/--tcp is required. SIGTERM/SIGINT drain\n"
               "accepted batches, snapshot, truncate the WAL and exit 0; a second\n"
               "signal aborts immediately.\n",
               argv0);
  return 2;
}

int run_serve(int argc, char** argv) {
  service::DaemonOptions dopts;
  bool json = false;
  std::optional<std::string> metrics_out;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return serve_usage(argv[0]);
      dopts.socket_path = v;
    } else if (arg == "--tcp") {
      const char* v = next();
      if (v == nullptr || !parse_port(v, dopts.tcp_port)) return serve_usage(argv[0]);
    } else if (arg == "--wal") {
      const char* v = next();
      if (v == nullptr) return serve_usage(argv[0]);
      dopts.wal_path = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return serve_usage(argv[0]);
      dopts.snapshot_path = v;
    } else if (arg == "--queue") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !parse_range(v, 1, LLONG_MAX, n)) return serve_usage(argv[0]);
      dopts.queue_capacity = static_cast<size_t>(n);
    } else if (arg == "--compact-bytes") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !parse_range(v, 1, LLONG_MAX, n)) return serve_usage(argv[0]);
      dopts.compact_wal_bytes = static_cast<uint64_t>(n);
    } else if (arg == "--no-fsync") {
      dopts.wal_fsync = false;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return serve_usage(argv[0]);
      metrics_out = v;
    } else if (arg == "--json") {
      json = true;
    } else {
      return serve_usage(argv[0]);
    }
  }
  if (dopts.socket_path.empty() && dopts.tcp_port == 0) return serve_usage(argv[0]);
  if (metrics_out) obs::set_enabled(true);

  service::ShutdownSignal& sig = service::ShutdownSignal::install();
  service::Daemon daemon(std::move(dopts));
  daemon.start();
  const service::DaemonStats at_start = daemon.stats();
  // The readiness line is the CI handshake: once it appears (flushed),
  // clients may connect.
  std::printf("yardstickd ready");
  if (daemon.tcp_port() != 0) std::printf(" tcp=%u", daemon.tcp_port());
  std::printf(" recovered_records=%llu recovered_snapshot=%d\n",
              static_cast<unsigned long long>(at_start.recovered_records),
              at_start.recovered_snapshot ? 1 : 0);
  std::fflush(stdout);

  daemon.run(sig.fd());
  daemon.shutdown();

  const service::DaemonStats s = daemon.stats();
  if (json) {
    std::printf("{\"connections\":%llu,\"frames\":%llu,\"batches\":%llu,"
                "\"events\":%llu,\"busy_rejections\":%llu,\"rejected_batches\":%llu,"
                "\"corrupt_frames\":%llu,\"accept_failures\":%llu,"
                "\"compactions\":%llu,\"sessions\":%llu,"
                "\"recovered_records\":%llu,\"recovered_torn_tail\":%s}\n",
                static_cast<unsigned long long>(s.connections),
                static_cast<unsigned long long>(s.frames),
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.events),
                static_cast<unsigned long long>(s.busy_rejections),
                static_cast<unsigned long long>(s.rejected_batches),
                static_cast<unsigned long long>(s.corrupt_frames),
                static_cast<unsigned long long>(s.accept_failures),
                static_cast<unsigned long long>(s.compactions),
                static_cast<unsigned long long>(s.sessions),
                static_cast<unsigned long long>(s.recovered_records),
                s.recovered_torn_tail ? "true" : "false");
  } else {
    std::printf("yardstickd drained: %llu batches (%llu events) from %llu "
                "connections, %llu sessions, %llu busy rejections\n",
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.events),
                static_cast<unsigned long long>(s.connections),
                static_cast<unsigned long long>(s.sessions),
                static_cast<unsigned long long>(s.busy_rejections));
  }
  if (metrics_out) {
    write_file(*metrics_out, obs::metrics().to_json());
    write_file(*metrics_out + ".prom", obs::metrics().to_prometheus());
  }
  return 0;
}

int ingest_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s ingest <fattree|regional> [options]\n"
               "  --k N                fat-tree arity (default 4)\n"
               "  --suite NAME         original|new|final|fattree (default final)\n"
               "  --acl                install ToR ingress ACLs and ACL tests\n"
               "  --socket PATH        daemon unix socket\n"
               "  --tcp-port N         daemon TCP port (127.0.0.1)\n"
               "  --session ID         session identity (default 1)\n"
               "  --shard I M          send only shard I of M (deterministic split)\n"
               "  --batch-events N     auto-flush threshold (default 64)\n"
               "  --max-attempts N     per-batch retry cap (default 8)\n"
               "  --backoff-base-ms N  first retry delay (default 10)\n"
               "  --ack-timeout-ms N   per-reply wait (default 5000)\n"
               "  --json               machine-readable stats\n",
               argv0);
  return 2;
}

int run_ingest(int argc, char** argv) {
  if (argc < 3) return ingest_usage(argv[0]);
  const std::string topology = argv[2];
  if (topology != "fattree" && topology != "regional") return ingest_usage(argv[0]);
  int k = 4;
  std::string suite_name = "final";
  bool with_acl = false;
  bool json = false;
  size_t shard = 0, shards = 1;
  service::ClientOptions copts;
  copts.batch_events = 64;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--k") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !parse_range(v, 1, INT_MAX, n)) return ingest_usage(argv[0]);
      k = static_cast<int>(n);
    } else if (arg == "--suite") {
      const char* v = next();
      if (v == nullptr) return ingest_usage(argv[0]);
      suite_name = v;
    } else if (arg == "--acl") {
      with_acl = true;
    } else if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return ingest_usage(argv[0]);
      copts.socket_path = v;
    } else if (arg == "--tcp-port") {
      const char* v = next();
      if (v == nullptr || !parse_port(v, copts.tcp_port)) return ingest_usage(argv[0]);
    } else if (arg == "--session") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !parse_range(v, 1, LLONG_MAX, n)) return ingest_usage(argv[0]);
      copts.session_id = static_cast<uint64_t>(n);
      copts.jitter_seed = copts.session_id * 0x9e3779b97f4a7c15ull + 1;
    } else if (arg == "--shard") {
      const char* a = next();
      const char* b = next();
      long long index = 0, total = 0;
      if (a == nullptr || b == nullptr || !parse_range(a, 0, LLONG_MAX, index) ||
          !parse_range(b, 1, LLONG_MAX, total) || index >= total) {
        return ingest_usage(argv[0]);
      }
      shard = static_cast<size_t>(index);
      shards = static_cast<size_t>(total);
    } else if (arg == "--batch-events") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !parse_range(v, 1, LLONG_MAX, n)) return ingest_usage(argv[0]);
      copts.batch_events = static_cast<size_t>(n);
    } else if (arg == "--max-attempts") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !parse_range(v, 1, UINT32_MAX, n)) return ingest_usage(argv[0]);
      copts.max_attempts = static_cast<uint32_t>(n);
    } else if (arg == "--backoff-base-ms") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !parse_range(v, 1, UINT32_MAX, n)) return ingest_usage(argv[0]);
      copts.backoff_base_ms = static_cast<uint32_t>(n);
    } else if (arg == "--ack-timeout-ms") {
      const char* v = next();
      long long n = 0;
      if (v == nullptr || !parse_range(v, 1, UINT32_MAX, n)) return ingest_usage(argv[0]);
      copts.ack_timeout_ms = static_cast<uint32_t>(n);
    } else if (arg == "--json") {
      json = true;
    } else {
      return ingest_usage(argv[0]);
    }
  }
  if (copts.socket_path.empty() && copts.tcp_port == 0) return ingest_usage(argv[0]);

  // Run the suite locally into a trace, exactly like the in-process path.
  CliOptions sopts;
  sopts.topology = topology;
  sopts.k = k;
  sopts.suite = suite_name;
  sopts.with_acl = with_acl;
  net::Network* network = nullptr;
  routing::RoutingConfig* routing = nullptr;
  std::vector<net::DeviceId> tors;
  topo::FatTree fattree;
  topo::RegionalNetwork regional;
  if (topology == "fattree") {
    fattree = topo::make_fat_tree({.k = k});
    network = &fattree.network;
    routing = &fattree.routing;
    tors = fattree.tors;
  } else {
    regional = topo::make_regional(sopts.regional);
    network = &regional.network;
    routing = &regional.routing;
    tors = regional.tors;
  }
  routing::FibBuilder::compute_and_build(*network, *routing);
  if (with_acl) topo::install_ingress_acls(*network, tors);

  bdd::BddManager mgr(packet::kNumHeaderBits);
  ys::CoverageTracker tracker;
  const dataplane::MatchSetIndex match_sets(mgr, *network);
  const dataplane::Transfer transfer(match_sets);
  const std::unordered_set<net::DeviceId> excluded(routing->no_default_devices.begin(),
                                                   routing->no_default_devices.end());
  const nettest::TestSuite suite = build_suite(sopts, excluded);
  size_t failures = 0;
  for (const auto& r : suite.run_all(transfer, tracker)) failures += r.failures;
  const coverage::CoverageTrace& trace = tracker.trace();

  // Stream the trace to the daemon, optionally as one deterministic
  // shard: locations in map order, then rules sorted — so shard i of m
  // from concurrent processes unions back to exactly the full trace.
  service::IngestClient client(copts);
  size_t index = 0;
  for (const auto& [loc, ps] : trace.marked_packets().entries()) {
    if (index++ % shards == shard) client.mark_packet(loc, ps);
  }
  std::vector<uint32_t> rules;
  rules.reserve(trace.marked_rules().size());
  for (const net::RuleId rid : trace.marked_rules()) rules.push_back(rid.value);
  std::sort(rules.begin(), rules.end());
  for (const uint32_t rid : rules) {
    if (index++ % shards == shard) client.mark_rule(net::RuleId{rid});
  }
  client.close();

  const service::ClientStats& cs = client.stats();
  if (json) {
    std::printf("{\"flushes\":%llu,\"events_sent\":%llu,\"retries\":%llu,"
                "\"busy_backoffs\":%llu,\"reconnects\":%llu,\"test_failures\":%zu}\n",
                static_cast<unsigned long long>(cs.flushes),
                static_cast<unsigned long long>(cs.events_sent),
                static_cast<unsigned long long>(cs.retries),
                static_cast<unsigned long long>(cs.busy_backoffs),
                static_cast<unsigned long long>(cs.reconnects), failures);
  } else {
    std::printf("ingested %llu events in %llu batches (%llu retries, %llu busy, "
                "%llu connections)\n",
                static_cast<unsigned long long>(cs.events_sent),
                static_cast<unsigned long long>(cs.flushes),
                static_cast<unsigned long long>(cs.retries),
                static_cast<unsigned long long>(cs.busy_backoffs),
                static_cast<unsigned long long>(cs.reconnects));
  }
  return failures == 0 ? 0 : 1;
}

int ingest_replay_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s ingest-replay --wal FILE [--snapshot FILE] "
               "--save-trace OUT [--json]\n"
               "Offline recovery: rebuild the merged trace a daemon would\n"
               "recover from the snapshot plus journal, and persist it.\n",
               argv0);
  return 2;
}

int run_ingest_replay(int argc, char** argv) {
  std::string wal_path, snapshot_path, out_path;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--wal") {
      const char* v = next();
      if (v == nullptr) return ingest_replay_usage(argv[0]);
      wal_path = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return ingest_replay_usage(argv[0]);
      snapshot_path = v;
    } else if (arg == "--save-trace") {
      const char* v = next();
      if (v == nullptr) return ingest_replay_usage(argv[0]);
      out_path = v;
    } else if (arg == "--json") {
      json = true;
    } else {
      return ingest_replay_usage(argv[0]);
    }
  }
  if (wal_path.empty() && snapshot_path.empty()) return ingest_replay_usage(argv[0]);

  bdd::BddManager mgr(packet::kNumHeaderBits);
  service::DaemonStats stats;
  const coverage::CoverageTrace trace =
      service::recover_trace(snapshot_path, wal_path, mgr, &stats);
  if (!out_path.empty()) ys::save_trace(out_path, trace, mgr);
  if (json) {
    std::printf("{\"recovered_records\":%llu,\"sessions\":%llu,"
                "\"recovered_snapshot\":%s,\"torn_tail\":%s,"
                "\"rejected_records\":%llu}\n",
                static_cast<unsigned long long>(stats.recovered_records),
                static_cast<unsigned long long>(stats.sessions),
                stats.recovered_snapshot ? "true" : "false",
                stats.recovered_torn_tail ? "true" : "false",
                static_cast<unsigned long long>(stats.rejected_batches));
  } else {
    std::printf("replayed %llu journal records (%llu sessions%s%s)%s%s\n",
                static_cast<unsigned long long>(stats.recovered_records),
                static_cast<unsigned long long>(stats.sessions),
                stats.recovered_snapshot ? ", snapshot loaded" : "",
                stats.recovered_torn_tail ? ", torn tail discarded" : "",
                out_path.empty() ? "" : ", saved to ", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Daemon-mode subcommands dispatch before the topology grammar.
  if (argc >= 2) {
    const std::string cmd = argv[1];
    try {
      if (cmd == "serve") return run_serve(argc, argv);
      if (cmd == "ingest") return run_ingest(argc, argv);
      if (cmd == "ingest-replay") return run_ingest_replay(argc, argv);
      if (cmd == "scenarios") return run_scenarios(argc, argv);
      if (cmd == "optimize") return run_optimize(argc, argv);
    } catch (const ys::StatusError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return exit_code_for(e.code());
    } catch (const ys::InvalidInputError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return exit_code_for(e.code());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "internal error: %s\n", e.what());
      return 10;
    }
  }
  const std::optional<CliOptions> parsed = parse(argc, argv);
  if (!parsed) return usage(argv[0]);
  try {
    return run(*parsed);
  } catch (const ys::StatusError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.code());
  } catch (const ys::InvalidInputError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 10;
  }
}
