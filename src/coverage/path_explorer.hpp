// Streaming exploration of the path universe (§5.2, step 3).
//
// Path-based metrics need a denominator: the number of all paths that
// carry non-zero traffic under the current forwarding state. That universe
// cannot be derived from topology alone (unrealistic zig-zag walks would
// inflate it), and it is far too large to materialize — so, exactly as the
// paper prescribes, we explore it symbolically, depth-first, emitting each
// maximal path to a callback and keeping nothing in memory.
//
// A path is a maximal valid rule sequence r1,...,rk: packets enter at an
// edge ingress port, are claimed hop by hop, and terminate by delivery
// (leaving through an edge port), an explicit drop rule, a ruleless drop
// (unmatched at some device — per §4.3.2 those packets belong to the path
// ending at the previous rule), or the depth bound.
//
// When covered sets are supplied, the explorer threads the Equation (3)
// survivor set through the DFS alongside the unconstrained set, so each
// emitted path carries its coverage ratio at no extra asymptotic cost
// (design-choice ablation: recomputing Eq. 3 per emitted path would be
// quadratic in path length).
#pragma once

#include <cstdint>
#include <functional>

#include "coverage/covered_sets.hpp"
#include "dataplane/transfer.hpp"

namespace yardstick::coverage {

/// How an explored path ended. BudgetExceeded marks a path cut short
/// because a resource budget tripped mid-DFS — distinct from DepthLimit
/// (structural bound reached) so degraded sweeps are recognizable in
/// reports.
enum class PathEnd : uint8_t { Delivered, Dropped, Unmatched, DepthLimit, BudgetExceeded };

[[nodiscard]] inline const char* to_string(PathEnd e) {
  switch (e) {
    case PathEnd::Delivered: return "delivered";
    case PathEnd::Dropped: return "dropped";
    case PathEnd::Unmatched: return "unmatched";
    case PathEnd::DepthLimit: return "depth-limit";
    case PathEnd::BudgetExceeded: return "budget-exceeded";
  }
  return "invalid";
}

struct ExploredPath {
  /// The rule sequence r1,...,rk (empty only for Unmatched at hop 0).
  const std::vector<net::RuleId>& rules;
  /// Headers at the end of the path (post-transformation).
  packet::PacketSet final_set;
  /// |guard|: how many packets traverse the whole path. Equal to
  /// |final_set| when the path applies only one-to-one transforms; the
  /// explorer reverses rewrites through BDD pre-images otherwise.
  bdd::Uint128 guard_size = 0;
  /// Equation-(3) coverage of this path (min survivor ratio across hops);
  /// only populated when the explorer was given covered sets.
  double covered_ratio = 0.0;
  /// Where the path began.
  packet::LocationId origin = packet::kNoLocation;
  PathEnd end = PathEnd::Delivered;
};

struct PathExplorerOptions {
  int max_depth = 32;
  /// Stop after emitting this many paths (0 = unlimited).
  uint64_t max_paths = 0;
  /// Emit paths that end in a ruleless drop.
  bool include_unmatched = true;
  /// Cooperative resource budget (non-owning, may be null). When the
  /// deadline or cancel flag trips, the in-flight path is emitted with
  /// PathEnd::BudgetExceeded and the DFS unwinds; the BDD node cap
  /// additionally throws from inside set operations (callers catch and
  /// flag the sweep truncated — see CoverageEngine::path_coverage).
  const ys::ResourceBudget* budget = nullptr;
  /// Absolute wall-clock deadline for this exploration, active when
  /// `has_deadline` is set. Checked at every DFS node expansion alongside
  /// the budget gate — not merely every N emitted paths — so even a sweep
  /// stuck deep inside one enormous ingress subtree stops on time.
  ys::ResourceBudget::Clock::time_point deadline{};
  bool has_deadline = false;
};

class PathExplorer {
 public:
  using Options = PathExplorerOptions;

  /// `covered` may be null: exploration then only enumerates the universe
  /// (e.g. to size it) without computing coverage ratios.
  PathExplorer(const dataplane::Transfer& transfer, const CoveredSets* covered,
               Options options = {})
      : transfer_(transfer), covered_(covered), options_(options) {}

  /// Visit every maximal path of `headers` injected at `device` (arriving
  /// on `in_interface`, which may be invalid). The callback returns false
  /// to stop exploration early. Returns the number of paths emitted.
  uint64_t explore(net::DeviceId device, net::InterfaceId in_interface,
                   const packet::PacketSet& headers,
                   const std::function<bool(const ExploredPath&)>& visit) const;

  /// Explore the full path universe: all possible headers injected at
  /// every edge ingress port (host and external ports).
  uint64_t explore_universe(const std::function<bool(const ExploredPath&)>& visit) const;

 private:
  struct DfsState;
  bool dfs(DfsState& state, net::DeviceId device, net::InterfaceId in_interface,
           const packet::PacketSet& flowing, const packet::PacketSet& survivors,
           double min_ratio, int depth) const;
  bool fib_stage(DfsState& state, net::DeviceId device, net::InterfaceId in_interface,
                 const packet::PacketSet& flowing, const packet::PacketSet& survivors,
                 double min_ratio, int depth) const;
  bool emit(DfsState& state, const packet::PacketSet& final_set, double ratio,
            PathEnd end) const;

  const dataplane::Transfer& transfer_;
  const CoveredSets* covered_;
  Options options_;
};

}  // namespace yardstick::coverage
