#include "coverage/framework.hpp"

#include <algorithm>
#include <cassert>

namespace yardstick::coverage {

using bdd::Uint128;
using packet::PacketSet;

double component_coverage(const CoveredSets& covered, const ComponentSpec& spec) {
  std::vector<MeasureResult> results;
  results.reserve(spec.strings.size());
  for (const GuardedString& g : spec.strings) {
    results.push_back(spec.measure(covered, g));
  }
  return spec.combinator(results);
}

ComponentCoverage component_coverage_weighted(const CoveredSets& covered,
                                              const ComponentSpec& spec) {
  std::vector<MeasureResult> results;
  results.reserve(spec.strings.size());
  Uint128 total_weight = 0;
  for (const GuardedString& g : spec.strings) {
    results.push_back(spec.measure(covered, g));
    total_weight += results.back().weight;
  }
  return {spec.combinator(results), total_weight};
}

double collection_coverage(const CoveredSets& covered,
                           const std::vector<ComponentSpec>& collection,
                           const Aggregator& aggregate) {
  std::vector<ComponentCoverage> per_component;
  per_component.reserve(collection.size());
  for (const ComponentSpec& spec : collection) {
    per_component.push_back(component_coverage_weighted(covered, spec));
  }
  return aggregate(per_component);
}

namespace {

/// The covered set of the string's rule, honoring a location restriction.
PacketSet covered_for(const CoveredSets& covered, const GuardedString& g,
                      net::RuleId rule) {
  if (g.at_location != packet::kNoLocation && !net::is_device_location(g.at_location)) {
    return covered.covered_on_interface(rule, net::from_location(g.at_location));
  }
  return covered.covered(rule);
}

}  // namespace

Measure fraction_measure() {
  return [](const CoveredSets& covered, const GuardedString& g) -> MeasureResult {
    assert(g.rules.size() == 1);
    const Uint128 total = g.guard.count();
    if (total == 0) return {1.0, 0};  // vacuous: nothing can ever exercise it
    const PacketSet tested = covered_for(covered, g, g.rules.front());
    const Uint128 hit = tested.intersect(g.guard).count();
    return {bdd::ratio(hit, total), total};
  };
}

Measure exists_measure() {
  return [](const CoveredSets& covered, const GuardedString& g) -> MeasureResult {
    assert(g.rules.size() == 1);
    const Uint128 total = g.guard.count();
    if (total == 0) return {1.0, 0};
    const PacketSet tested = covered_for(covered, g, g.rules.front());
    return {tested.intersect(g.guard).empty() ? 0.0 : 1.0, total};
  };
}

Measure path_measure(const dataplane::Transfer& transfer) {
  return [&transfer](const CoveredSets& covered, const GuardedString& g) -> MeasureResult {
    const Uint128 guard_size = g.guard.count();
    if (guard_size == 0 || g.rules.empty()) return {1.0, 0};

    PacketSet survivors = g.guard;      // P_i: covered packets still flowing
    PacketSet unconstrained = g.guard;  // P'_i: all packets still flowing
    double min_ratio = 1.0;

    for (const net::RuleId rid : g.rules) {
      const net::Rule& rule = covered.network().rule(rid);
      unconstrained =
          transfer.rewrite(rule, unconstrained.intersect(covered.index().match_set(rid)));
      survivors = transfer.rewrite(rule, survivors.intersect(covered.covered(rid)));
      const Uint128 all = unconstrained.count();
      if (all == 0) return {min_ratio, guard_size};  // path carries nothing past here
      min_ratio = std::min(min_ratio, bdd::ratio(survivors.count(), all));
      if (min_ratio == 0.0) break;
    }
    return {min_ratio, guard_size};
  };
}

Combinator single_combinator() {
  return [](const std::vector<MeasureResult>& results) -> double {
    assert(results.size() == 1);
    return results.front().value;
  };
}

Combinator mean_combinator() {
  return [](const std::vector<MeasureResult>& results) -> double {
    if (results.empty()) return 1.0;
    double sum = 0.0;
    for (const MeasureResult& r : results) sum += r.value;
    return sum / static_cast<double>(results.size());
  };
}

Combinator weighted_mean_combinator() {
  return [](const std::vector<MeasureResult>& results) -> double {
    double weight_sum = 0.0;
    double value_sum = 0.0;
    for (const MeasureResult& r : results) {
      const double w = bdd::to_double(r.weight);
      weight_sum += w;
      value_sum += w * r.value;
    }
    return weight_sum == 0.0 ? 1.0 : value_sum / weight_sum;
  };
}

Combinator min_combinator() {
  return [](const std::vector<MeasureResult>& results) -> double {
    double out = 1.0;
    for (const MeasureResult& r : results) out = std::min(out, r.value);
    return out;
  };
}

Combinator max_combinator() {
  return [](const std::vector<MeasureResult>& results) -> double {
    double out = results.empty() ? 1.0 : 0.0;
    for (const MeasureResult& r : results) out = std::max(out, r.value);
    return out;
  };
}

Aggregator simple_average_aggregator() {
  return [](const std::vector<ComponentCoverage>& components) -> double {
    if (components.empty()) return 1.0;
    double sum = 0.0;
    for (const ComponentCoverage& c : components) sum += c.value;
    return sum / static_cast<double>(components.size());
  };
}

Aggregator weighted_average_aggregator() {
  return [](const std::vector<ComponentCoverage>& components) -> double {
    double weight_sum = 0.0;
    double value_sum = 0.0;
    for (const ComponentCoverage& c : components) {
      const double w = bdd::to_double(c.weight);
      weight_sum += w;
      value_sum += w * c.value;
    }
    return weight_sum == 0.0 ? 1.0 : value_sum / weight_sum;
  };
}

Aggregator fractional_aggregator() {
  return [](const std::vector<ComponentCoverage>& components) -> double {
    if (components.empty()) return 1.0;
    double covered_count = 0.0;
    for (const ComponentCoverage& c : components) {
      if (c.value > 0.0) covered_count += 1.0;
    }
    return covered_count / static_cast<double>(components.size());
  };
}

}  // namespace yardstick::coverage
