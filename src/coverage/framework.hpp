// The coverage-computation framework of §4.3.1.
//
// A component's coverage is specified by three pieces:
//   * a dependency specification G — a set of guarded strings
//     P ▷ r1,...,rj (what must be tested to test the component),
//   * a measure µ — how well a test suite covers one guarded string,
//   * a combinator κ — how per-string measures fold into one number.
//
// Equation (1):  CompCov[T](κ, µ, G) = κ (map (µ[T]) G)
// Equation (2):  Cov[T](α, C)        = α (map (CompCov[T]) C)
//
// Measures return their value together with the guard's packet-space size
// so that weighted combinators/aggregators (§4.3.3) have the weights the
// paper calls for without recomputing counts.
#pragma once

#include <functional>
#include <vector>

#include "coverage/covered_sets.hpp"
#include "dataplane/transfer.hpp"

namespace yardstick::coverage {

/// A guarded string P ▷ r1,...,rj: a packet-set guard flowing along a
/// valid rule path. Single-rule strings describe local components (rules,
/// devices, interfaces); multi-rule strings describe paths and flows.
struct GuardedString {
  packet::PacketSet guard;
  std::vector<net::RuleId> rules;
  /// When set to an interface location, the guard represents only packets
  /// arriving on that interface (incoming-interface coverage, §4.3.2).
  packet::LocationId at_location = packet::kNoLocation;
};

/// Value in [0,1] plus the guard's weight (its packet-space size).
struct MeasureResult {
  double value = 0.0;
  bdd::Uint128 weight = 0;
};

/// µ: how much of one guarded string the suite covered.
using Measure = std::function<MeasureResult(const CoveredSets&, const GuardedString&)>;

/// κ: fold per-string measures into the component's coverage.
using Combinator = std::function<double(const std::vector<MeasureResult>&)>;

/// A full component specification (G, µ, κ).
struct ComponentSpec {
  std::vector<GuardedString> strings;
  Measure measure;
  Combinator combinator;
};

/// Equation (1).
[[nodiscard]] double component_coverage(const CoveredSets& covered,
                                        const ComponentSpec& spec);

/// Component coverage along with the component's total weight (sum of its
/// guards' sizes) — what collection aggregators need.
struct ComponentCoverage {
  double value = 0.0;
  bdd::Uint128 weight = 0;
};

[[nodiscard]] ComponentCoverage component_coverage_weighted(const CoveredSets& covered,
                                                            const ComponentSpec& spec);

/// α: fold per-component coverages into a collection-level number.
using Aggregator = std::function<double(const std::vector<ComponentCoverage>&)>;

/// Equation (2).
[[nodiscard]] double collection_coverage(const CoveredSets& covered,
                                         const std::vector<ComponentSpec>& collection,
                                         const Aggregator& aggregate);

// --- Standard measures ---

/// Fraction of the guard covered on the string's single rule:
/// |T[r] ∩ P| / |P|. Empty guards are vacuously covered (value 1,
/// weight 0) so fully-shadowed rules cannot cap a suite below 1.0.
[[nodiscard]] Measure fraction_measure();

/// 1 if any packet of the guard exercises the rule, else 0.
[[nodiscard]] Measure exists_measure();

/// Equation (3) with the footnote-2 generalization: walk the rule path,
/// propagating both the covered survivor set
///   P_i = F[r_i][P_{i-1} ∩ T[r_i]]
/// and the unconstrained companion P'_i (with M[r_i] in place of T[r_i]),
/// and return the minimum |P_i| / |P'_i| across hops. For one-to-one
/// transformations this equals |P_k| / |P| exactly.
[[nodiscard]] Measure path_measure(const dataplane::Transfer& transfer);

// --- Standard combinators ---

[[nodiscard]] Combinator single_combinator();      // the one-string case
[[nodiscard]] Combinator mean_combinator();        // unweighted average
[[nodiscard]] Combinator weighted_mean_combinator();  // weight = guard size
[[nodiscard]] Combinator min_combinator();
[[nodiscard]] Combinator max_combinator();

// --- Standard aggregators (§4.3.3) ---

[[nodiscard]] Aggregator simple_average_aggregator();
[[nodiscard]] Aggregator weighted_average_aggregator();
/// Fraction of components with non-zero coverage.
[[nodiscard]] Aggregator fractional_aggregator();

}  // namespace yardstick::coverage
