#include "coverage/covered_sets.hpp"

namespace yardstick::coverage {

using packet::PacketSet;

CoveredSets::CoveredSets(const dataplane::MatchSetIndex& index, const CoverageTrace& trace,
                         const ys::ResourceBudget* budget)
    : index_(index), trace_(trace), truncated_(index.truncated()) {
  bdd::BddManager& mgr = index.manager();
  const net::Network& network = index.network();
  covered_.resize(network.rule_count());

  try {
    for (const net::Device& dev : network.devices()) {
      if (budget != nullptr) budget->poll("covered-set computation");
      // One device-level P_T slice shared by all rules of the device.
      PacketSet at_device;
      bool at_device_computed = false;
      const auto device_headers = [&]() -> const PacketSet& {
        if (!at_device_computed) {
          at_device = trace.headers_at_device(mgr, network, dev.id);
          at_device_computed = true;
        }
        return at_device;
      };
      for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
        for (const net::RuleId rid : network.table(dev.id, table)) {
          if (trace.rule_marked(rid)) {
            covered_[rid.value] = index.match_set(rid);
            continue;
          }
          PacketSet headers = device_headers();
          // Packets the ingress ACL denies never reach the forwarding
          // table, so they cannot exercise FIB rules behaviorally.
          if (table == net::TableKind::Fib && network.has_acl(dev.id)) {
            headers = headers.intersect(index.acl_permitted_space(dev.id));
          }
          covered_[rid.value] = headers.intersect(index.match_set(rid));
        }
      }
    }
  } catch (const ys::StatusError& e) {
    if (!ys::is_resource_exhaustion(e.code())) throw;
    truncated_ = true;
  }

  // Degraded completion: rules never reached get empty (terminal-only)
  // covered sets so metric queries stay well-formed.
  if (truncated_) {
    for (PacketSet& ps : covered_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
  }
}

PacketSet CoveredSets::covered_on_interface(net::RuleId rule, net::InterfaceId intf) const {
  if (trace_.rule_marked(rule)) return index_.match_set(rule);
  PacketSet at = trace_.headers_at_interface(manager(), intf);
  const net::Rule& r = network().rule(rule);
  if (r.table == net::TableKind::Fib && network().has_acl(r.device)) {
    at = at.intersect(index_.acl_permitted_space(r.device));
  }
  return at.intersect(index_.match_set(rule));
}

}  // namespace yardstick::coverage
