#include "coverage/covered_sets.hpp"

#include <memory>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "packet/gc_roots.hpp"

namespace yardstick::coverage {

using packet::PacketSet;

namespace {

/// Per-worker shard of the parallel Algorithm 1: a private manager, an
/// importer pulling inputs (trace slices, match sets) from the primary
/// manager, and covered sets for the rules of the devices this worker owns.
struct CoverShard {
  std::unique_ptr<bdd::BddManager> mgr;
  std::vector<PacketSet> covered;
  bool truncated = false;
};

/// Algorithm 1 for one device. `import` maps a primary-manager set into
/// the manager the computation runs in (identity for the serial path).
/// Marked rules are skipped when `skip_marked` — the parallel merge
/// assigns them straight from the primary index, avoiding a pointless
/// round-trip through the shard.
template <typename ImportFn>
void cover_device(bdd::BddManager& mgr, const dataplane::MatchSetIndex& index,
                  const CoverageTrace& trace, const net::Device& dev,
                  const ImportFn& import, bool skip_marked,
                  std::vector<PacketSet>& covered) {
  const net::Network& network = index.network();
  // One device-level P_T slice shared by all rules of the device,
  // computed lazily (devices with no unmarked rules skip the unions).
  PacketSet at_device;
  bool at_device_computed = false;
  const auto device_headers = [&]() -> const PacketSet& {
    if (!at_device_computed) {
      PacketSet acc = PacketSet::none(mgr);
      const PacketSet local = trace.marked_packets().at(net::device_location(dev.id));
      if (local.valid()) acc = acc.union_with(import(local));
      for (const net::InterfaceId intf : network.device(dev.id).interfaces) {
        const PacketSet at = trace.marked_packets().at(net::to_location(intf));
        if (at.valid()) acc = acc.union_with(import(at));
      }
      at_device = acc;
      at_device_computed = true;
    }
    return at_device;
  };
  for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
    for (const net::RuleId rid : network.table(dev.id, table)) {
      if (trace.rule_marked(rid)) {
        if (!skip_marked) covered[rid.value] = index.match_set(rid);
        continue;
      }
      PacketSet headers = device_headers();
      // Packets the ingress ACL denies never reach the forwarding
      // table, so they cannot exercise FIB rules behaviorally.
      if (table == net::TableKind::Fib && network.has_acl(dev.id)) {
        headers = headers.intersect(import(index.acl_permitted_space(dev.id)));
      }
      covered[rid.value] = headers.intersect(import(index.match_set(rid)));
    }
  }
}

}  // namespace

CoveredSets::CoveredSets(const dataplane::MatchSetIndex& index, const CoverageTrace& trace,
                         const ys::ResourceBudget* budget, unsigned threads,
                         const CoverPrefill* prefill, double gc_threshold)
    : index_(index), trace_(trace), truncated_(index.truncated()) {
  obs::Span build_span("covered_sets.build", "offline");
  bdd::BddManager& mgr = index.manager();
  const net::Network& network = index.network();
  covered_.resize(network.rule_count());

  // Adopt cached devices; only the misses form the work list. Prefilled
  // covered sets already live in the index's manager, so adoption copies
  // handles without any BDD operation.
  const std::vector<net::Device>& devices = network.devices();
  std::vector<const net::Device*> work;
  work.reserve(devices.size());
  for (const net::Device& dev : devices) {
    if (prefill != nullptr && prefill->hit(dev.id)) {
      for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
        for (const net::RuleId rid : network.table(dev.id, table)) {
          covered_[rid.value] = prefill->covered[rid.value];
        }
      }
    } else {
      work.push_back(&dev);
    }
  }

  const unsigned workers = ys::resolve_threads(threads, work.size());
  build_span.arg("devices", devices.size());
  build_span.arg("prefilled", devices.size() - work.size());
  build_span.arg("rules", network.rule_count());
  build_span.arg("workers", workers);

  // As in MatchSetIndex: GC runs only on shard managers, so an armed
  // threshold forces the sharded path even at one thread.
  const bool sharded = workers > 1 || (gc_threshold > 0.0 && !work.empty());

  if (!sharded) {
    const auto identity = [](const PacketSet& ps) -> const PacketSet& { return ps; };
    try {
      for (const net::Device* dev : work) {
        if (budget != nullptr) budget->poll("covered-set computation");
        cover_device(mgr, index, trace, *dev, identity, /*skip_marked=*/false, covered_);
      }
    } catch (const ys::StatusError& e) {
      if (!ys::is_resource_exhaustion(e.code())) throw;
      truncated_ = true;
    }
  } else {
    // Sharded Algorithm 1: worker w owns work items w, w+T, ..., importing
    // its inputs (trace slices, match sets, ACL spaces) from the quiescent
    // primary manager and intersecting in a private one; the main thread
    // merges per-rule results back in device order.
    std::vector<CoverShard> shards(workers);
    ys::run_workers(workers, [&](unsigned w) {
      CoverShard& shard = shards[w];
      shard.mgr = std::make_unique<bdd::BddManager>(mgr.num_vars());
      // Attached manually (not ScopedBudget): the charge must stay until
      // the main thread finishes the merge below.
      if (budget != nullptr) shard.mgr->set_budget(budget);
      shard.covered.resize(network.rule_count());
      bdd::BddImporter from_primary(*shard.mgr, mgr);
      const auto import = [&from_primary](const PacketSet& ps) {
        return PacketSet(from_primary.import(ps.raw()));
      };
      // shard.covered is fully sized above and never reallocates, so the
      // tracker may hold raw pointers into it across the whole build.
      if (gc_threshold > 0.0) shard.mgr->set_gc_threshold(gc_threshold);
      packet::GcRootTracker gc_roots(*shard.mgr);
      try {
        for (size_t d = w; d < work.size(); d += workers) {
          if (budget != nullptr) budget->poll("covered-set computation");
          const net::Device& dev = *work[d];
          cover_device(*shard.mgr, index, trace, dev, import,
                       /*skip_marked=*/true, shard.covered);
          if (gc_threshold > 0.0) {
            for (const net::TableKind table :
                 {net::TableKind::Acl, net::TableKind::Fib}) {
              for (const net::RuleId rid : network.table(dev.id, table)) {
                gc_roots.track(shard.covered[rid.value]);
              }
            }
            if (gc_roots.due()) {
              // The input importer's memo values live in this manager:
              // collect() renumbers them (dead entries re-import later).
              obs::Span gc_span("bdd.gc", "offline");
              const bdd::GcResult gc = gc_roots.collect(&from_primary);
              gc_span.arg("reclaimed", gc.reclaimed);
              gc_span.arg("live", gc.live_nodes);
            }
          }
        }
      } catch (const ys::StatusError& e) {
        if (!ys::is_resource_exhaustion(e.code())) throw;
        shard.truncated = true;
      }
    });

    // Queue occupancy: worker w owns the work items ≡ w (mod workers).
    for (unsigned w = 0; w < workers; ++w) {
      ys::worker_items_histogram().observe(
          static_cast<double>((work.size() - w + workers - 1) / workers));
    }

    obs::Span merge_span("covered_sets.merge", "offline");
    std::vector<std::unique_ptr<bdd::BddImporter>> importers;
    importers.reserve(workers);
    for (CoverShard& shard : shards) {
      truncated_ = truncated_ || shard.truncated;
      importers.push_back(std::make_unique<bdd::BddImporter>(mgr, *shard.mgr));
    }
    try {
      for (size_t d = 0; d < work.size(); ++d) {
        const net::Device& dev = *work[d];
        CoverShard& shard = shards[d % workers];
        bdd::BddImporter& imp = *importers[d % workers];
        for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
          for (const net::RuleId rid : network.table(dev.id, table)) {
            if (trace.rule_marked(rid)) {
              covered_[rid.value] = index.match_set(rid);
            } else if (shard.covered[rid.value].valid()) {
              covered_[rid.value] = PacketSet(imp.import(shard.covered[rid.value].raw()));
            }
          }
        }
      }
    } catch (const ys::StatusError& e) {
      if (!ys::is_resource_exhaustion(e.code())) throw;
      truncated_ = true;
    }
    if (obs::enabled()) {
      static obs::Counter& imported = obs::metrics().counter(
          "ys.bdd.imported_nodes", "nodes copied across BDD managers");
      size_t total = 0;
      for (const auto& imp : importers) total += imp->imported_nodes();
      imported.add(total);
      static obs::Counter& gc_runs = obs::metrics().counter(
          "ys.bdd.gc.runs", "phase-boundary mark-compact collections");
      static obs::Counter& gc_reclaimed = obs::metrics().counter(
          "ys.bdd.gc.reclaimed_nodes", "dead BDD nodes reclaimed by GC");
      static obs::Counter& shard_hits = obs::metrics().counter(
          "ys.bdd.shard_cache_hits", "apply-cache hits across shard managers");
      static obs::Counter& shard_misses = obs::metrics().counter(
          "ys.bdd.shard_cache_misses", "apply-cache misses across shard managers");
      for (const CoverShard& shard : shards) {
        const bdd::BddManager::Stats s = shard.mgr->stats();
        gc_runs.add(s.gc_runs);
        gc_reclaimed.add(s.gc_reclaimed_nodes);
        shard_hits.add(s.cache_hits);
        shard_misses.add(s.cache_misses);
      }
    }
    // Release the shards' node accounting before their managers die.
    for (CoverShard& shard : shards) shard.mgr->set_budget(nullptr);
  }
  if (obs::enabled()) {
    static obs::Counter& covered_rules = obs::metrics().counter(
        "ys.covered_sets.rules_computed", "rules given covered sets T[r] (Algorithm 1)");
    covered_rules.add(network.rule_count());
  }

  // Degraded completion: rules never reached get empty (terminal-only)
  // covered sets so metric queries stay well-formed.
  if (truncated_) {
    for (PacketSet& ps : covered_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
  }
}

CoveredSets::CoveredSets(const dataplane::MatchSetIndex& index, const CoveredSets& other)
    : index_(index), trace_(other.trace_), truncated_(other.truncated_) {
  obs::Span span("covered_sets.clone", "offline");
  bdd::BddImporter imp(index.manager(), other.manager());
  covered_.reserve(other.covered_.size());
  for (const PacketSet& ps : other.covered_) {
    covered_.push_back(ps.valid() ? PacketSet(imp.import(ps.raw())) : PacketSet{});
  }
  if (obs::enabled()) {
    obs::metrics()
        .counter("ys.bdd.imported_nodes", "nodes copied across BDD managers")
        .add(imp.imported_nodes());
  }
}

PacketSet CoveredSets::covered_on_interface(net::RuleId rule, net::InterfaceId intf) const {
  if (trace_.rule_marked(rule)) return index_.match_set(rule);
  PacketSet at = trace_.headers_at_interface(manager(), intf);
  const net::Rule& r = network().rule(rule);
  if (r.table == net::TableKind::Fib && network().has_acl(r.device)) {
    at = at.intersect(index_.acl_permitted_space(r.device));
  }
  return at.intersect(index_.match_set(rule));
}

}  // namespace yardstick::coverage
