// CoverageTrace — the compact record (P_T, R_T) of everything a test suite
// reported (§5.2).
//
// P_T is the union of all located packet sets passed to markPacket; R_T is
// the set of rules passed to markRule. The union is maintained on the fly
// (no log is kept), which bounds memory by the size of the distinct header
// space touched rather than the number of API calls.
#pragma once

#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "netmodel/network.hpp"
#include "packet/located_packet_set.hpp"

namespace yardstick::coverage {

class CoverageTrace {
 public:
  /// Record located packets used by a behavioral test.
  void mark_packet(const packet::LocatedPacketSet& packets) {
    marked_packets_ = marked_packets_.union_with(packets);
  }

  /// Record packets at a single location.
  void mark_packet(packet::LocationId location, const packet::PacketSet& packets) {
    marked_packets_.insert(location, packets);
  }

  /// Record a rule inspected by a state-inspection test.
  void mark_rule(net::RuleId rule) { marked_rules_.insert(rule); }

  /// Merge another trace into this one (e.g. traces from parallel test
  /// shards); the result is as if all calls had been made on one trace.
  void merge(const CoverageTrace& other) {
    marked_packets_ = marked_packets_.union_with(other.marked_packets_);
    marked_rules_.insert(other.marked_rules_.begin(), other.marked_rules_.end());
  }

  void clear() {
    marked_packets_ = {};
    marked_rules_.clear();
  }

  [[nodiscard]] const packet::LocatedPacketSet& marked_packets() const {
    return marked_packets_;
  }
  [[nodiscard]] const std::unordered_set<net::RuleId>& marked_rules() const {
    return marked_rules_;
  }

  [[nodiscard]] bool rule_marked(net::RuleId rule) const {
    return marked_rules_.contains(rule);
  }

  /// All headers reported at a device, regardless of ingress interface:
  /// the union of the device-local injection location and every interface
  /// of the device. This is the P_T slice Algorithm 1 intersects with a
  /// rule's match set.
  [[nodiscard]] packet::PacketSet headers_at_device(bdd::BddManager& mgr,
                                                    const net::Network& network,
                                                    net::DeviceId device) const {
    packet::PacketSet acc = packet::PacketSet::none(mgr);
    const packet::PacketSet local = marked_packets_.at(net::device_location(device));
    if (local.valid()) acc = acc.union_with(local);
    for (const net::InterfaceId intf : network.device(device).interfaces) {
      const packet::PacketSet at = marked_packets_.at(net::to_location(intf));
      if (at.valid()) acc = acc.union_with(at);
    }
    return acc;
  }

  /// Structural copy of this trace into another manager: every located
  /// packet set is imported into `dst` (memoized per source manager, so
  /// shared subgraphs copy once); marked rules carry over verbatim.
  /// Read-only on *this, so concurrent workers may each import the same
  /// trace into their private managers.
  [[nodiscard]] CoverageTrace imported_into(bdd::BddManager& dst) const {
    CoverageTrace out;
    out.marked_rules_ = marked_rules_;
    std::vector<std::pair<const bdd::BddManager*, std::unique_ptr<bdd::BddImporter>>>
        importers;
    for (const auto& [loc, ps] : marked_packets_.entries()) {
      const bdd::BddManager* src = ps.raw().manager();
      if (src == nullptr || src == &dst) {
        out.marked_packets_.insert(loc, ps);
        continue;
      }
      bdd::BddImporter* imp = nullptr;
      for (auto& [m, i] : importers) {
        if (m == src) {
          imp = i.get();
          break;
        }
      }
      if (imp == nullptr) {
        importers.emplace_back(src, std::make_unique<bdd::BddImporter>(dst, *src));
        imp = importers.back().second.get();
      }
      out.marked_packets_.insert(loc, packet::PacketSet(imp->import(ps.raw())));
    }
    return out;
  }

  /// Headers reported as arriving on one specific interface.
  [[nodiscard]] packet::PacketSet headers_at_interface(bdd::BddManager& mgr,
                                                       net::InterfaceId intf) const {
    const packet::PacketSet at = marked_packets_.at(net::to_location(intf));
    return at.valid() ? at : packet::PacketSet::none(mgr);
  }

 private:
  packet::LocatedPacketSet marked_packets_;
  std::unordered_set<net::RuleId> marked_rules_;
};

}  // namespace yardstick::coverage
