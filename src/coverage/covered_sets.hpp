// Covered-set computation — Algorithm 1 of the paper.
//
// For every rule r, the covered set T[r] is:
//   * M[r] when r was reported by a state-inspection test (r in R_T) —
//     inspecting a rule covers everything the rule applies to;
//   * P_T|device(r)  intersect  M[r] otherwise — the headers behavioral
//     tests reported at the rule's device, clipped to the rule's disjoint
//     match set.
//
// Covered sets are the bridge between the trace (what tests reported) and
// every coverage metric (what fraction of each component's ATUs that
// reaches).
#pragma once

#include <vector>

#include "coverage/trace.hpp"
#include "dataplane/match_sets.hpp"

namespace yardstick::coverage {

/// Per-device Algorithm-1 results restored from the incremental cache
/// (src/yardstick/cache.*). Devices with `device_hit` set have the covered
/// sets of all their rules already present in `covered` (living in the
/// index's manager); the constructor adopts them and runs Algorithm 1 only
/// for the remaining devices.
struct CoverPrefill {
  std::vector<char> device_hit;             // indexed by DeviceId
  std::vector<packet::PacketSet> covered;   // indexed by RuleId

  [[nodiscard]] bool hit(net::DeviceId id) const {
    return id.value < device_hit.size() && device_hit[id.value] != 0;
  }
};

class CoveredSets {
 public:
  /// Runs Algorithm 1 for every rule in the network.
  ///
  /// `budget` (non-owning, may be null) bounds the computation: when it
  /// trips mid-walk the remaining rules get empty covered sets, truncated()
  /// flips to true, and construction completes without throwing.
  ///
  /// `threads` > 1 shards the per-device walks across worker threads, each
  /// intersecting in its own BddManager (trace slices and match sets are
  /// structurally imported in), and merges the covered sets back into the
  /// index's manager. Merged sets are canonical there and semantically
  /// identical to a serial run, so covered-set sizes are bit-identical
  /// regardless of thread count (0 = one worker per hardware thread).
  ///
  /// `prefill` (non-owning, may be null) supplies cached covered sets for
  /// a subset of devices; Algorithm 1 runs only over the misses, and the
  /// result is bit-identical to a full run (cached sets are canonical in
  /// the index's manager).
  ///
  /// `gc_threshold` in (0, 1] arms phase-boundary mark-compact GC on the
  /// per-worker shard managers (collected between devices against the
  /// covered sets built so far; the input importer's memo follows the
  /// renumbering). Enabling GC forces the sharded path even at one thread;
  /// the primary manager is never collected. 0 disables.
  CoveredSets(const dataplane::MatchSetIndex& index, const CoverageTrace& trace,
              const ys::ResourceBudget* budget = nullptr, unsigned threads = 1,
              const CoverPrefill* prefill = nullptr, double gc_threshold = 0.0);

  /// Structural clone onto another index (itself a clone of the original
  /// index into a different manager): copies every covered set into
  /// `index.manager()`. Read-only with respect to `other`, so concurrent
  /// workers may each clone the same covered sets into private managers.
  CoveredSets(const dataplane::MatchSetIndex& index, const CoveredSets& other);

  /// True when a resource budget stopped Algorithm 1 early; covered sets
  /// for the rules never reached are empty (coverage under-reported).
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// T[r]: packets with which the suite exercised rule r.
  [[nodiscard]] const packet::PacketSet& covered(net::RuleId rule) const {
    return covered_[rule.value];
  }

  /// |T[r]| (exact).
  [[nodiscard]] bdd::Uint128 covered_size(net::RuleId rule) const {
    return covered_[rule.value].count();
  }

  /// Covered set of rule r restricted to packets arriving on `intf` —
  /// the guard restriction used by incoming-interface coverage (§4.3.2).
  /// State-inspected rules still count in full.
  [[nodiscard]] packet::PacketSet covered_on_interface(net::RuleId rule,
                                                       net::InterfaceId intf) const;

  [[nodiscard]] const dataplane::MatchSetIndex& index() const { return index_; }
  [[nodiscard]] const CoverageTrace& trace() const { return trace_; }
  [[nodiscard]] const net::Network& network() const { return index_.network(); }
  [[nodiscard]] bdd::BddManager& manager() const { return index_.manager(); }

 private:
  const dataplane::MatchSetIndex& index_;
  const CoverageTrace& trace_;
  std::vector<packet::PacketSet> covered_;  // indexed by RuleId
  bool truncated_ = false;
};

}  // namespace yardstick::coverage
