#include "coverage/path_explorer.hpp"

#include <algorithm>

#include "common/fault.hpp"
#include "obs/metrics.hpp"

namespace yardstick::coverage {

using bdd::Uint128;
using packet::PacketSet;

struct PathExplorer::DfsState {
  std::vector<net::RuleId> stack;
  /// Rules on the stack that rewrite headers (indices into `stack`);
  /// empty means guard size == |final_set|.
  int rewrite_depth = 0;
  packet::LocationId origin = packet::kNoLocation;
  const std::function<bool(const ExploredPath&)>* visit = nullptr;
  uint64_t emitted = 0;
  /// DFS node expansions, accumulated locally and flushed to the metrics
  /// registry once per explore() — per-node atomic increments would
  /// contend across sweep workers (DESIGN.md §9 batch-flush rule).
  uint64_t dfs_nodes = 0;
};

bool PathExplorer::emit(DfsState& state, const PacketSet& final_set, double ratio,
                        PathEnd end) const {
  ExploredPath path{state.stack, final_set, 0, ratio, state.origin, end};

  if (state.rewrite_depth == 0) {
    path.guard_size = final_set.count();
  } else {
    // Reverse the rewrites through pre-images to recover the guard at the
    // path origin (§5.2: only its size is needed).
    PacketSet guard = final_set;
    for (auto it = state.stack.rbegin(); it != state.stack.rend(); ++it) {
      const net::Rule& rule = transfer_.network().rule(*it);
      guard = transfer_.rewrite_preimage(rule, guard)
                  .intersect(transfer_.index().match_set(*it));
    }
    path.guard_size = guard.count();
  }

  ++state.emitted;
  const bool keep_going = (*state.visit)(path);
  if (options_.max_paths != 0 && state.emitted >= options_.max_paths) return false;
  return keep_going;
}

bool PathExplorer::dfs(DfsState& state, net::DeviceId device,
                       net::InterfaceId in_interface, const PacketSet& flowing,
                       const PacketSet& survivors, double min_ratio, int depth) const {
  ++state.dfs_nodes;
  if (fault::active()) fault::fire("path.dfs");
  // Cooperative budget gate: a tripped deadline/cancel (budget- or
  // explorer-level) terminates the in-flight path as BudgetExceeded
  // (distinguishable from DepthLimit) and unwinds the whole exploration.
  if ((options_.budget != nullptr && options_.budget->exhausted()) ||
      (options_.has_deadline &&
       ys::ResourceBudget::Clock::now() >= options_.deadline)) {
    emit(state, flowing, min_ratio, PathEnd::BudgetExceeded);
    return false;
  }
  const net::Network& network = transfer_.network();
  bdd::BddManager& mgr = transfer_.index().manager();
  if (!network.has_acl(device)) {
    return fib_stage(state, device, in_interface, flowing, survivors, min_ratio, depth);
  }

  // Ingress ACL stage: deny rules terminate paths; permit rules extend the
  // rule sequence and hand their claim to the forwarding stage.
  const std::vector<dataplane::RuleSplit> acl_splits =
      transfer_.split(device, in_interface, flowing, net::TableKind::Acl);

  if (options_.include_unmatched && !state.stack.empty()) {
    PacketSet matched = PacketSet::none(mgr);
    for (const dataplane::RuleSplit& s : acl_splits) matched = matched.union_with(s.packets);
    const PacketSet implicit_deny = flowing.minus(matched);
    if (!implicit_deny.empty()) {
      if (!emit(state, implicit_deny, min_ratio, PathEnd::Unmatched)) return false;
    }
  }

  for (const dataplane::RuleSplit& s : acl_splits) {
    const net::Rule& rule = network.rule(s.rule);
    state.stack.push_back(s.rule);
    PacketSet next_survivors;
    double next_ratio = min_ratio;
    if (covered_ != nullptr) {
      next_survivors = survivors.intersect(covered_->covered(s.rule));
      next_ratio = std::min(next_ratio,
                            bdd::ratio(next_survivors.count(), s.packets.count()));
    }
    bool keep_going = true;
    if (rule.action.type == net::ActionType::Drop) {
      keep_going = emit(state, s.packets, next_ratio, PathEnd::Dropped);
    } else {
      keep_going = fib_stage(state, device, in_interface, s.packets, next_survivors,
                             next_ratio, depth);
    }
    state.stack.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

bool PathExplorer::fib_stage(DfsState& state, net::DeviceId device,
                             net::InterfaceId in_interface, const PacketSet& flowing,
                             const PacketSet& survivors, double min_ratio,
                             int depth) const {
  const net::Network& network = transfer_.network();
  bdd::BddManager& mgr = transfer_.index().manager();

  const std::vector<dataplane::RuleSplit> splits =
      transfer_.split(device, in_interface, flowing);

  // Ruleless drops terminate the path at the previous rule (§4.3.2).
  if (options_.include_unmatched && !state.stack.empty()) {
    PacketSet matched = PacketSet::none(mgr);
    for (const dataplane::RuleSplit& s : splits) matched = matched.union_with(s.packets);
    const PacketSet unmatched = flowing.minus(matched);
    if (!unmatched.empty()) {
      if (!emit(state, unmatched, min_ratio, PathEnd::Unmatched)) return false;
    }
  }

  for (const dataplane::RuleSplit& s : splits) {
    const net::Rule& rule = network.rule(s.rule);
    const bool rewrites = !rule.action.rewrites.empty();

    state.stack.push_back(s.rule);
    if (rewrites) ++state.rewrite_depth;

    // Equation (3): survivor set clipped by T[r], companion set by M[r]
    // (the split already applied M[r] to `flowing`).
    PacketSet next_survivors;
    double next_ratio = min_ratio;
    if (covered_ != nullptr) {
      next_survivors = transfer_.rewrite(rule, survivors.intersect(covered_->covered(s.rule)));
    }

    bool keep_going = true;
    if (rule.action.type == net::ActionType::Drop) {
      const PacketSet final_set = s.packets;  // no rewrite on drop
      if (covered_ != nullptr) {
        next_ratio = std::min(
            next_ratio, bdd::ratio(survivors.intersect(covered_->covered(s.rule)).count(),
                                   final_set.count()));
      }
      keep_going = emit(state, final_set, next_ratio, PathEnd::Dropped);
    } else {
      const PacketSet transformed = transfer_.rewrite(rule, s.packets);
      if (covered_ != nullptr && !transformed.empty()) {
        next_ratio = std::min(
            next_ratio, bdd::ratio(next_survivors.count(), transformed.count()));
      }
      for (const dataplane::HopOutput& hop : transfer_.apply(rule, s.packets)) {
        if (!hop.next_interface.valid()) {
          keep_going = emit(state, hop.packets, next_ratio, PathEnd::Delivered);
        } else if (depth + 1 >= options_.max_depth) {
          keep_going = emit(state, hop.packets, next_ratio, PathEnd::DepthLimit);
        } else {
          keep_going = dfs(state, network.interface(hop.next_interface).device,
                           hop.next_interface, hop.packets, next_survivors, next_ratio,
                           depth + 1);
        }
        if (!keep_going) break;
      }
    }

    if (rewrites) --state.rewrite_depth;
    state.stack.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

uint64_t PathExplorer::explore(net::DeviceId device, net::InterfaceId in_interface,
                               const PacketSet& headers,
                               const std::function<bool(const ExploredPath&)>& visit) const {
  DfsState state;
  state.visit = &visit;
  state.origin = in_interface.valid() ? net::to_location(in_interface)
                                      : net::device_location(device);
  dfs(state, device, in_interface, headers, headers, 1.0, 0);
  if (obs::enabled()) {
    static obs::Counter& emitted =
        obs::metrics().counter("ys.paths.emitted", "paths emitted by the universe DFS");
    static obs::Counter& nodes = obs::metrics().counter(
        "ys.paths.dfs_nodes", "DFS node expansions in the path universe");
    emitted.add(state.emitted);
    nodes.add(state.dfs_nodes);
  }
  return state.emitted;
}

uint64_t PathExplorer::explore_universe(
    const std::function<bool(const ExploredPath&)>& visit) const {
  const net::Network& network = transfer_.network();
  bdd::BddManager& mgr = transfer_.index().manager();
  const PacketSet all = PacketSet::all(mgr);
  uint64_t total = 0;
  for (const net::Interface& intf : network.interfaces()) {
    const bool ingress = intf.kind == net::PortKind::HostPort ||
                         intf.kind == net::PortKind::ExternalPort;
    if (!ingress) continue;
    DfsState state;
    state.visit = &visit;
    state.origin = net::to_location(intf.id);
    if (options_.max_paths != 0 && total >= options_.max_paths) break;
    if (options_.budget != nullptr && options_.budget->exhausted()) break;
    if (options_.has_deadline && ys::ResourceBudget::Clock::now() >= options_.deadline) {
      break;
    }
    Options remaining = options_;
    if (remaining.max_paths != 0) remaining.max_paths -= total;
    // Each ingress port gets its own DFS; the per-call budget shrinks as
    // paths accumulate.
    PathExplorer scoped(transfer_, covered_, remaining);
    total += scoped.explore(intf.device, intf.id, all, visit);
  }
  return total;
}

}  // namespace yardstick::coverage
