#include "coverage/components.hpp"

namespace yardstick::coverage {

using packet::PacketSet;

ComponentFactory::ComponentFactory(const dataplane::Transfer& transfer)
    : transfer_(transfer) {
  const net::Network& network = transfer.network();
  rules_to_interface_.resize(network.interface_count());
  for (const net::Rule& rule : network.rules()) {
    for (const net::InterfaceId out : rule.action.out_interfaces) {
      rules_to_interface_[out.value].push_back(rule.id);
    }
  }
}

GuardedString ComponentFactory::rule_string(net::RuleId id) const {
  return {transfer_.index().match_set(id), {id}, packet::kNoLocation};
}

ComponentSpec ComponentFactory::rule(net::RuleId id) const {
  return {{rule_string(id)}, fraction_measure(), single_combinator()};
}

ComponentSpec ComponentFactory::device(net::DeviceId id) const {
  ComponentSpec spec;
  for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
    for (const net::RuleId rid : transfer_.network().table(id, table)) {
      spec.strings.push_back(rule_string(rid));
    }
  }
  spec.measure = fraction_measure();
  spec.combinator = weighted_mean_combinator();
  return spec;
}

ComponentSpec ComponentFactory::interface(net::InterfaceId id,
                                          InterfaceDirection direction) const {
  ComponentSpec spec;
  spec.measure = fraction_measure();
  spec.combinator = weighted_mean_combinator();
  if (direction == InterfaceDirection::Outgoing) {
    for (const net::RuleId rid : rules_to_interface_[id.value]) {
      spec.strings.push_back(rule_string(rid));
    }
  } else {
    const net::DeviceId device = transfer_.network().interface(id).device;
    for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
      for (const net::RuleId rid : transfer_.network().table(device, table)) {
        GuardedString g = rule_string(rid);
        g.at_location = net::to_location(id);  // guard limited to this ingress
        spec.strings.push_back(std::move(g));
      }
    }
  }
  return spec;
}

ComponentSpec ComponentFactory::path(std::vector<net::RuleId> rules,
                                     PacketSet guard) const {
  ComponentSpec spec;
  spec.strings.push_back({std::move(guard), std::move(rules), packet::kNoLocation});
  spec.measure = path_measure(transfer_);
  spec.combinator = single_combinator();
  return spec;
}

ComponentSpec ComponentFactory::flow(net::DeviceId device, net::InterfaceId in_interface,
                                     const PacketSet& headers, int max_depth) const {
  ComponentSpec spec;
  spec.measure = path_measure(transfer_);
  spec.combinator = weighted_mean_combinator();

  PathExplorer::Options options;
  options.max_depth = max_depth;
  const PathExplorer explorer(transfer_, nullptr, options);
  bdd::BddManager& mgr = transfer_.index().manager();
  explorer.explore(device, in_interface, headers, [&](const ExploredPath& p) {
    // Recover the guard at the flow origin. Without rewrites along the
    // path the final set *is* the guard; otherwise reverse through
    // pre-images (same procedure the explorer used for the size).
    PacketSet guard = p.final_set;
    for (auto it = p.rules.rbegin(); it != p.rules.rend(); ++it) {
      const net::Rule& rule = transfer_.network().rule(*it);
      if (!rule.action.rewrites.empty()) {
        guard = transfer_.rewrite_preimage(rule, guard);
      }
      guard = guard.intersect(transfer_.index().match_set(*it));
    }
    guard = guard.intersect(headers);
    if (!guard.empty() && !p.rules.empty()) {
      spec.strings.push_back({guard, p.rules, packet::kNoLocation});
    }
    return true;
  });
  // The manager reference is only used here to keep the empty-flow case
  // well-formed: a flow with no viable paths gets a vacuous empty string.
  if (spec.strings.empty()) {
    spec.strings.push_back({PacketSet::none(mgr), {}, packet::kNoLocation});
  }
  return spec;
}

ComponentSpec ComponentFactory::coflow(const std::vector<FlowEndpoint>& flows,
                                       int max_depth) const {
  ComponentSpec spec;
  spec.measure = path_measure(transfer_);
  spec.combinator = weighted_mean_combinator();
  for (const FlowEndpoint& endpoint : flows) {
    ComponentSpec one = flow(endpoint.device, endpoint.in_interface, endpoint.headers,
                             max_depth);
    for (GuardedString& g : one.strings) {
      if (!g.rules.empty()) spec.strings.push_back(std::move(g));
    }
  }
  if (spec.strings.empty()) {
    spec.strings.push_back(
        {packet::PacketSet::none(transfer_.index().manager()), {}, packet::kNoLocation});
  }
  return spec;
}

std::vector<ComponentSpec> ComponentFactory::all_rules(
    const std::vector<net::DeviceId>& devices) const {
  const net::Network& network = transfer_.network();
  std::vector<ComponentSpec> out;
  const auto add_device = [&](net::DeviceId id) {
    for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
      for (const net::RuleId rid : network.table(id, table)) out.push_back(rule(rid));
    }
  };
  if (devices.empty()) {
    for (const net::Device& d : network.devices()) add_device(d.id);
  } else {
    for (const net::DeviceId id : devices) add_device(id);
  }
  return out;
}

std::vector<ComponentSpec> ComponentFactory::all_devices(
    const std::vector<net::DeviceId>& devices) const {
  const net::Network& network = transfer_.network();
  std::vector<ComponentSpec> out;
  if (devices.empty()) {
    for (const net::Device& d : network.devices()) out.push_back(device(d.id));
  } else {
    for (const net::DeviceId id : devices) out.push_back(device(id));
  }
  return out;
}

std::vector<ComponentSpec> ComponentFactory::all_interfaces(
    const std::vector<net::DeviceId>& devices, InterfaceDirection direction) const {
  const net::Network& network = transfer_.network();
  std::vector<ComponentSpec> out;
  const auto add_device = [&](net::DeviceId id) {
    for (const net::InterfaceId intf : network.device(id).interfaces) {
      out.push_back(interface(intf, direction));
    }
  };
  if (devices.empty()) {
    for (const net::Device& d : network.devices()) add_device(d.id);
  } else {
    for (const net::DeviceId id : devices) add_device(id);
  }
  return out;
}

}  // namespace yardstick::coverage
