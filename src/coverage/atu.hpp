// Atomic Testable Units (§4.2).
//
// An ATU is a pair (rule, located packet) — the minimal unit of network
// state any test can exercise. The framework never materializes individual
// ATUs (a single symbolic test can cover 2^100 of them); instead, sets of
// ATUs are represented compactly:
//
//   * a test suite's ATUs live in the CoverageTrace as (P_T, R_T);
//   * per-rule covered sets T[r] (Algorithm 1) are the ATU sets grouped by
//     rule, with the packet dimension as a PacketSet.
//
// This header defines the explicit ATU type used at API boundaries and in
// tests that validate the decomposition laws (e.g. a symbolic test's
// coverage equals the union of the concrete tests enumerating it).
#pragma once

#include <string>

#include "netmodel/ids.hpp"
#include "packet/packet.hpp"

namespace yardstick::coverage {

/// One atomic testable unit: rule `rule` exercised by the concrete packet
/// `packet` located at `location`.
struct Atu {
  net::RuleId rule;
  packet::LocationId location = packet::kNoLocation;
  packet::ConcretePacket packet;

  friend bool operator==(const Atu&, const Atu&) = default;

  [[nodiscard]] std::string to_string() const {
    return "atu(rule=" + std::to_string(rule.value) + ", loc=" + std::to_string(location) +
           ", " + packet.to_string() + ")";
  }
};

}  // namespace yardstick::coverage
