#include "netmodel/network.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "common/status.hpp"

namespace yardstick::net {

DeviceId Network::add_device(std::string name, Role role, uint32_t asn) {
  const DeviceId id{static_cast<uint32_t>(devices_.size())};
  if (device_by_name_.contains(name)) {
    throw ys::InvalidInputError("duplicate device name: " + name);
  }
  device_by_name_.emplace(name, id);
  Device d;
  d.id = id;
  d.name = std::move(name);
  d.role = role;
  d.asn = asn;
  devices_.push_back(std::move(d));
  tables_.emplace_back();
  return id;
}

InterfaceId Network::add_interface(DeviceId device, std::string name, PortKind kind) {
  assert(device.value < devices_.size());
  const InterfaceId id{static_cast<uint32_t>(interfaces_.size())};
  Interface intf;
  intf.id = id;
  intf.device = device;
  intf.name = std::move(name);
  intf.kind = kind;
  interfaces_.push_back(std::move(intf));
  devices_[device.value].interfaces.push_back(id);
  return id;
}

std::vector<InterfaceId> Network::ports_of_kind(DeviceId device, PortKind kind) const {
  std::vector<InterfaceId> out;
  for (const InterfaceId intf : devices_[device.value].interfaces) {
    if (interfaces_[intf.value].kind == kind) out.push_back(intf);
  }
  return out;
}

LinkId Network::add_link(InterfaceId a, InterfaceId b,
                         std::optional<packet::Ipv4Prefix> subnet) {
  assert(a.value < interfaces_.size() && b.value < interfaces_.size());
  if (interfaces_[a.value].peer.valid() || interfaces_[b.value].peer.valid()) {
    throw ys::InvalidInputError("interface already linked");
  }
  if (subnet && subnet->length() != 31) {
    throw ys::InvalidInputError("link subnets must be /31");
  }
  const LinkId id{static_cast<uint32_t>(links_.size())};
  links_.push_back({id, a, b, subnet});
  interfaces_[a.value].peer = b;
  interfaces_[b.value].peer = a;
  interfaces_[a.value].link = id;
  interfaces_[b.value].link = id;
  if (subnet) {
    interfaces_[a.value].address = packet::Ipv4Prefix(subnet->first(), 31);
    interfaces_[b.value].address = packet::Ipv4Prefix(subnet->last(), 31);
  }
  return id;
}

RuleId Network::add_rule(DeviceId device, MatchSpec match, Action action, RouteKind kind,
                         uint32_t priority, TableKind table) {
  assert(device.value < devices_.size());
  if (table == TableKind::Acl &&
      !(action.type == ActionType::Drop || action.type == ActionType::Permit)) {
    throw ys::InvalidInputError("ACL rules must permit or deny");
  }
  if (table == TableKind::Fib && action.type == ActionType::Permit) {
    throw ys::InvalidInputError("forwarding rules cannot 'permit'");
  }
  const RuleId id{static_cast<uint32_t>(rules_.size())};
  Rule r;
  r.id = id;
  r.device = device;
  r.table = table;
  r.priority = priority;
  r.match = std::move(match);
  r.action = std::move(action);
  r.kind = kind;
  rules_.push_back(std::move(r));
  auto& tbl = tables_[device.value][static_cast<size_t>(table)];
  // Stable insert keeping ascending priority order.
  const auto pos = std::upper_bound(
      tbl.begin(), tbl.end(), priority,
      [this](uint32_t p, RuleId rid) { return p < rules_[rid.value].priority; });
  tbl.insert(pos, id);
  return id;
}

void Network::clear_rules() {
  rules_.clear();
  for (auto& per_device : tables_) {
    for (auto& tbl : per_device) tbl.clear();
  }
}

std::vector<std::pair<InterfaceId, DeviceId>> Network::neighbors(DeviceId id) const {
  std::vector<std::pair<InterfaceId, DeviceId>> out;
  for (const InterfaceId intf : devices_[id.value].interfaces) {
    const DeviceId peer = neighbor(intf);
    if (peer.valid()) out.emplace_back(intf, peer);
  }
  return out;
}

std::optional<DeviceId> Network::find_device(std::string_view name) const {
  const auto it = device_by_name_.find(std::string(name));
  if (it == device_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<InterfaceId> Network::interface_towards(DeviceId from, DeviceId to) const {
  for (const InterfaceId intf : devices_[from.value].interfaces) {
    if (neighbor(intf) == to) return intf;
  }
  return std::nullopt;
}

std::vector<DeviceId> Network::devices_with_role(Role role) const {
  std::vector<DeviceId> out;
  for (const Device& d : devices_) {
    if (d.role == role) out.push_back(d.id);
  }
  return out;
}

std::string Network::summary() const {
  std::ostringstream out;
  out << "network(devices=" << devices_.size() << ", interfaces=" << interfaces_.size()
      << ", links=" << links_.size() << ", rules=" << rules_.size() << ")";
  return out.str();
}

std::string rule_content_key(const Network& network, RuleId id) {
  const Rule& rule = network.rule(id);
  std::string key = network.device(rule.device).name;
  key += '|';
  key += to_string(rule.table);
  key += '|';
  key += std::to_string(rule.priority);
  key += '|';
  key += rule.match.to_string();
  key += '|';
  key += to_string(rule.kind);
  return key;
}

}  // namespace yardstick::net
