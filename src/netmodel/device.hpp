// Devices, interfaces and links — the topology half of the network model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netmodel/ids.hpp"
#include "packet/prefix.hpp"

namespace yardstick::net {

/// Router role in the data-center hierarchy (§7.1). Used for grouping in
/// coverage reports and for role-specific routing policy; coverage math is
/// role-agnostic.
enum class Role : uint8_t {
  ToR,          // top-of-rack, connects hosts
  Aggregation,  // pod aggregation layer
  Spine,        // intra-DC spine
  RegionalHub,  // inter-DC regional hub layer
  Wan,          // wide-area / border attachment point
  Host,         // end host (only used as traffic source/sink)
  Other,
};

[[nodiscard]] inline const char* to_string(Role r) {
  switch (r) {
    case Role::ToR: return "ToR";
    case Role::Aggregation: return "Aggregation";
    case Role::Spine: return "Spine";
    case Role::RegionalHub: return "RegionalHub";
    case Role::Wan: return "Wan";
    case Role::Host: return "Host";
    case Role::Other: return "Other";
  }
  return "?";
}

/// What an interface connects to. Packets forwarded out a port with no
/// link peer leave the modeled network ("delivered"): host ports deliver
/// to rack hosts, local ports model the device's own loopback destination,
/// external ports attach to the un-modeled Internet/backbone.
enum class PortKind : uint8_t { Fabric, HostPort, LocalPort, ExternalPort };

[[nodiscard]] inline const char* to_string(PortKind k) {
  switch (k) {
    case PortKind::Fabric: return "fabric";
    case PortKind::HostPort: return "host";
    case PortKind::LocalPort: return "local";
    case PortKind::ExternalPort: return "external";
  }
  return "?";
}

/// A device interface. Interfaces are also packet locations (§4.1): a
/// located packet at interface i of device v is the paper's pair v.i.
struct Interface {
  InterfaceId id;
  DeviceId device;
  std::string name;
  PortKind kind = PortKind::Fabric;
  /// Peer interface across the connecting link (invalid for edge ports).
  InterfaceId peer;
  /// The link this interface terminates (invalid for edge ports).
  LinkId link;
  /// Address on the point-to-point /31 link subnet, if addressed.
  std::optional<packet::Ipv4Prefix> address;  // stored as addr/31

  /// True for ToR ports that face hosts rather than other routers.
  [[nodiscard]] bool host_facing() const { return kind == PortKind::HostPort; }
};

/// A network device (router).
struct Device {
  DeviceId id;
  std::string name;
  Role role = Role::Other;
  /// Private BGP ASN (shared across devices of the same role tier, §7.1).
  uint32_t asn = 0;
  std::vector<InterfaceId> interfaces;
  /// Loopback prefixes (/32) injected into BGP via redistribution.
  std::vector<packet::Ipv4Prefix> loopbacks;
  /// Aggregated host subnets advertised by a ToR.
  std::vector<packet::Ipv4Prefix> host_prefixes;
  /// Tunnel endpoint addresses (/32) terminated here. Originated into BGP
  /// like loopbacks, but *not* installed as local FIB routes at the origin —
  /// delivery at the endpoint is the decap rule's job (src/topo/transforms).
  std::vector<packet::Ipv4Prefix> tunnel_endpoints;
};

/// An undirected link between two interfaces with its /31 subnet.
struct Link {
  LinkId id;
  InterfaceId a;
  InterfaceId b;
  std::optional<packet::Ipv4Prefix> subnet;  // /31 for p2p links
};

}  // namespace yardstick::net
