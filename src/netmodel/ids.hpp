// Strongly-typed identifiers for network model entities.
//
// All ids are dense indices into the owning Network's vectors, wrapped in
// distinct types so a RuleId cannot be passed where a DeviceId is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "packet/located_packet_set.hpp"

namespace yardstick::net {

template <class Tag>
struct StrongId {
  uint32_t value = UINT32_MAX;

  constexpr StrongId() = default;
  constexpr explicit StrongId(uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != UINT32_MAX; }

  friend constexpr auto operator<=>(const StrongId&, const StrongId&) = default;
};

using DeviceId = StrongId<struct DeviceIdTag>;
using InterfaceId = StrongId<struct InterfaceIdTag>;
using LinkId = StrongId<struct LinkIdTag>;
using RuleId = StrongId<struct RuleIdTag>;

/// Interfaces double as packet locations: the LocationId of located packet
/// sets is the interface's dense index. In addition, every device has a
/// synthetic "local" location (counting down from the top of the id space)
/// used when a test injects packets at a device without a specific ingress
/// interface (local behavioral tests, §5.1).
inline packet::LocationId to_location(InterfaceId id) { return id.value; }
inline InterfaceId from_location(packet::LocationId loc) { return InterfaceId{loc}; }

inline constexpr packet::LocationId kDeviceLocationBase = 0x80000000u;

/// The device-local injection location of a device.
inline packet::LocationId device_location(DeviceId id) {
  return UINT32_MAX - 1 - id.value;
}

/// True if the location denotes a device-local injection point rather than
/// an interface.
inline bool is_device_location(packet::LocationId loc) {
  return loc >= kDeviceLocationBase && loc != packet::kNoLocation;
}

/// Inverse of device_location. Precondition: is_device_location(loc).
inline DeviceId device_of_location(packet::LocationId loc) {
  return DeviceId{UINT32_MAX - 1 - loc};
}

}  // namespace yardstick::net

template <class Tag>
struct std::hash<yardstick::net::StrongId<Tag>> {
  size_t operator()(const yardstick::net::StrongId<Tag>& id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};
