// Network — the paper's 4-tuple N = (V, I, E, S): devices, interfaces,
// links, and forwarding state (an ordered rule table per device).
//
// The class is both the container and the builder: topology generators and
// the routing substrate populate it through the add_* methods, after which
// it is treated as an immutable snapshot by the dataplane and coverage
// layers (mirroring how data-plane verifiers operate on state snapshots,
// §4.1 "model limitations").
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netmodel/device.hpp"
#include "netmodel/ids.hpp"
#include "netmodel/rule.hpp"

namespace yardstick::net {

class Network {
 public:
  // --- Construction ---

  DeviceId add_device(std::string name, Role role, uint32_t asn = 0);

  /// Add an unconnected interface to a device.
  InterfaceId add_interface(DeviceId device, std::string name,
                            PortKind kind = PortKind::Fabric);

  /// All interfaces of a device with the given port kind.
  [[nodiscard]] std::vector<InterfaceId> ports_of_kind(DeviceId device,
                                                       PortKind kind) const;

  /// Connect two interfaces with a link, optionally assigning the /31
  /// subnet (side `a` gets the even address, side `b` the odd one).
  LinkId add_link(InterfaceId a, InterfaceId b,
                  std::optional<packet::Ipv4Prefix> subnet = std::nullopt);

  /// Append a rule to one of a device's tables (forwarding table by
  /// default). Rules are kept sorted by ascending `priority` (stable for
  /// equal priorities). Returns the global RuleId.
  RuleId add_rule(DeviceId device, MatchSpec match, Action action,
                  RouteKind kind = RouteKind::Other, uint32_t priority = 0,
                  TableKind table = TableKind::Fib);

  /// Drop all rules from every device (used when recomputing FIBs).
  void clear_rules();

  // --- Accessors ---

  [[nodiscard]] const Device& device(DeviceId id) const { return devices_[id.value]; }
  [[nodiscard]] Device& device(DeviceId id) { return devices_[id.value]; }
  [[nodiscard]] const Interface& interface(InterfaceId id) const {
    return interfaces_[id.value];
  }
  [[nodiscard]] Interface& interface(InterfaceId id) { return interfaces_[id.value]; }
  [[nodiscard]] const Link& link(LinkId id) const { return links_[id.value]; }
  [[nodiscard]] const Rule& rule(RuleId id) const { return rules_[id.value]; }
  /// Mutable rule access — for fault injection in tests and what-if
  /// analyses. Changing a rule's match invalidates table ordering; only
  /// actions should be edited in place.
  [[nodiscard]] Rule& mutable_rule(RuleId id) { return rules_[id.value]; }

  [[nodiscard]] size_t device_count() const { return devices_.size(); }
  [[nodiscard]] size_t interface_count() const { return interfaces_.size(); }
  [[nodiscard]] size_t link_count() const { return links_.size(); }
  [[nodiscard]] size_t rule_count() const { return rules_.size(); }

  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<Interface>& interfaces() const { return interfaces_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

  /// Ordered forwarding table of a device (S[v] in the paper).
  [[nodiscard]] std::span<const RuleId> table(DeviceId id) const {
    return tables_[id.value][static_cast<size_t>(TableKind::Fib)];
  }

  /// Ordered rule list of one of the device's tables.
  [[nodiscard]] std::span<const RuleId> table(DeviceId id, TableKind kind) const {
    return tables_[id.value][static_cast<size_t>(kind)];
  }

  /// True if the device has an ingress ACL stage.
  [[nodiscard]] bool has_acl(DeviceId id) const {
    return !tables_[id.value][static_cast<size_t>(TableKind::Acl)].empty();
  }

  /// Device on the far side of an interface's link (invalid if unconnected).
  [[nodiscard]] DeviceId neighbor(InterfaceId id) const {
    const InterfaceId peer = interfaces_[id.value].peer;
    return peer.valid() ? interfaces_[peer.value].device : DeviceId{};
  }

  /// All (interface, neighbor-device) pairs of a device's connected ports.
  [[nodiscard]] std::vector<std::pair<InterfaceId, DeviceId>> neighbors(DeviceId id) const;

  /// Find a device by name (linear scan; for tests and examples).
  [[nodiscard]] std::optional<DeviceId> find_device(std::string_view name) const;

  /// The interface of `from` that faces `to` (first such), if any.
  [[nodiscard]] std::optional<InterfaceId> interface_towards(DeviceId from,
                                                             DeviceId to) const;

  /// Devices of a given role.
  [[nodiscard]] std::vector<DeviceId> devices_with_role(Role role) const;

  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Device> devices_;
  std::vector<Interface> interfaces_;
  std::vector<Link> links_;
  std::vector<Rule> rules_;
  /// Per device, per TableKind, in priority order.
  std::vector<std::array<std::vector<RuleId>, kTableCount>> tables_;
  std::unordered_map<std::string, DeviceId> device_by_name_;
};

/// Content key of a rule: `device|table|priority|match|kind`. Identifies a
/// rule by what it *is* rather than by its positional RuleId, so reports
/// stay comparable across runs that renumber rules (FIB recomputation,
/// failure scenarios, suite deltas). Rules that are byte-identical under
/// this key are deliberately conflated — callers that need uniqueness
/// disambiguate with a positional suffix (see scenario::ScenarioRunner and
/// the gap report's collapsed-rule annotations).
[[nodiscard]] std::string rule_content_key(const Network& network, RuleId id);

}  // namespace yardstick::net
