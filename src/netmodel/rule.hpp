// Forwarding rules: declarative match specifications plus actions.
//
// A rule's *match field* is what is written in the table (e.g. the prefix of
// a route). Its *match set* — the packets it actually applies to once
// higher-priority rules have consumed theirs — is computed by the dataplane
// layer (§5.2 step 1) and is always a subset of the match field.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netmodel/ids.hpp"
#include "packet/fields.hpp"
#include "packet/prefix.hpp"

namespace yardstick::net {

/// Inclusive L4 port range.
struct PortRange {
  uint16_t lo = 0;
  uint16_t hi = 65535;

  friend auto operator<=>(const PortRange&, const PortRange&) = default;
};

/// Declarative match specification. Unset fields match anything.
struct MatchSpec {
  std::optional<packet::Ipv4Prefix> dst_prefix;
  std::optional<packet::Ipv4Prefix> src_prefix;
  std::optional<uint8_t> proto;
  std::optional<PortRange> src_port;
  std::optional<PortRange> dst_port;
  /// Restrict to packets arriving on these interfaces (empty = any).
  std::vector<InterfaceId> in_interfaces;

  [[nodiscard]] static MatchSpec for_dst(const packet::Ipv4Prefix& p) {
    MatchSpec m;
    m.dst_prefix = p;
    return m;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    if (dst_prefix) out += "dst=" + dst_prefix->to_string();
    if (src_prefix) out += (out.empty() ? "" : ",") + ("src=" + src_prefix->to_string());
    if (proto) out += (out.empty() ? "" : ",") + ("proto=" + std::to_string(*proto));
    if (dst_port) {
      out += (out.empty() ? "" : ",") +
             ("dport=" + std::to_string(dst_port->lo) + "-" + std::to_string(dst_port->hi));
    }
    if (src_port) {
      out += (out.empty() ? "" : ",") +
             ("sport=" + std::to_string(src_port->lo) + "-" + std::to_string(src_port->hi));
    }
    return out.empty() ? "any" : out;
  }
};

/// A single header-field rewrite applied by a rule's action.
struct Rewrite {
  packet::Field field;
  uint64_t value;

  friend bool operator==(const Rewrite&, const Rewrite&) = default;
};

enum class ActionType : uint8_t {
  Forward,  // FIB: send out the listed interfaces (ECMP / multicast)
  Drop,     // FIB null route or ACL explicit deny
  Permit,   // ACL: pass the packet on to the forwarding table
};

/// What a rule does to matched packets. Forward actions may list multiple
/// egress interfaces (ECMP / multicast per §4.1); Drop and Permit actions
/// have none.
struct Action {
  ActionType type = ActionType::Drop;
  std::vector<InterfaceId> out_interfaces;
  std::vector<Rewrite> rewrites;

  [[nodiscard]] static Action drop() { return {}; }

  [[nodiscard]] static Action permit() {
    Action a;
    a.type = ActionType::Permit;
    return a;
  }

  [[nodiscard]] static Action forward(std::vector<InterfaceId> out) {
    Action a;
    a.type = ActionType::Forward;
    a.out_interfaces = std::move(out);
    return a;
  }
};

/// Which of a device's tables a rule lives in (§4.1: devices can carry
/// multiple rule tables; we model an ingress ACL stage ahead of the FIB).
enum class TableKind : uint8_t { Acl = 0, Fib = 1 };

inline constexpr size_t kTableCount = 2;

[[nodiscard]] inline const char* to_string(TableKind t) {
  return t == TableKind::Acl ? "acl" : "fib";
}

/// Provenance of a forwarding rule — the route category that produced it.
/// This is metadata used by the case study's gap analysis (§7.2) and by
/// tests that target specific route classes; coverage math never reads it.
enum class RouteKind : uint8_t {
  Default,    // 0.0.0.0/0 learned or static
  Internal,   // host subnets and loopbacks originated inside the region
  Connected,  // /31 point-to-point link subnets
  WideArea,   // routes learned from the WAN
  DropRule,   // explicit discard (e.g. null route)
  Security,   // ACL entries (permit/deny)
  Tunnel,     // tunnel encap (VIP -> endpoint) / decap (endpoint -> inner)
  Nat,        // NAT-style source rewrite at the WAN edge
  Other,
};

[[nodiscard]] inline const char* to_string(RouteKind k) {
  switch (k) {
    case RouteKind::Default: return "default";
    case RouteKind::Internal: return "internal";
    case RouteKind::Connected: return "connected";
    case RouteKind::WideArea: return "wide-area";
    case RouteKind::DropRule: return "drop";
    case RouteKind::Security: return "security";
    case RouteKind::Tunnel: return "tunnel";
    case RouteKind::Nat: return "nat";
    case RouteKind::Other: return "other";
  }
  return "?";
}

/// One match-action rule installed on a device. Rules within one of a
/// device's tables form an ordered list (lower `priority` value wins;
/// ties broken by insertion order).
struct Rule {
  RuleId id;
  DeviceId device;
  TableKind table = TableKind::Fib;
  uint32_t priority = 0;
  MatchSpec match;
  Action action;
  RouteKind kind = RouteKind::Other;

  [[nodiscard]] std::string to_string() const {
    std::string out = "rule#" + std::to_string(id.value) + "[" + match.to_string() + " -> ";
    if (action.type == ActionType::Drop) {
      out += "drop";
    } else {
      out += "fwd(";
      for (size_t i = 0; i < action.out_interfaces.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(action.out_interfaces[i].value);
      }
      out += ")";
    }
    return out + "]";
  }
};

}  // namespace yardstick::net
