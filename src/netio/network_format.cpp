#include "netio/network_format.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/status.hpp"

namespace yardstick::netio {

namespace {

using packet::Ipv4Prefix;

// StatusError (a std::runtime_error) rather than InvalidInputError: the
// network file is external input, and callers have always caught parse
// failures as runtime errors. code() still says InvalidInput.
[[noreturn]] void fail(size_t line, const std::string& why) {
  throw ys::StatusError(ys::Error::InvalidInput, why,
                        {.source = "network file", .line = line});
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

net::Role parse_role(const std::string& s, size_t line) {
  if (s == "tor") return net::Role::ToR;
  if (s == "aggregation") return net::Role::Aggregation;
  if (s == "spine") return net::Role::Spine;
  if (s == "regionalhub") return net::Role::RegionalHub;
  if (s == "wan") return net::Role::Wan;
  if (s == "host") return net::Role::Host;
  if (s == "other") return net::Role::Other;
  fail(line, "unknown role '" + s + "'");
}

std::string role_name(net::Role r) {
  switch (r) {
    case net::Role::ToR: return "tor";
    case net::Role::Aggregation: return "aggregation";
    case net::Role::Spine: return "spine";
    case net::Role::RegionalHub: return "regionalhub";
    case net::Role::Wan: return "wan";
    case net::Role::Host: return "host";
    case net::Role::Other: return "other";
  }
  return "other";
}

net::PortKind parse_port_kind(const std::string& s, size_t line) {
  if (s == "fabric") return net::PortKind::Fabric;
  if (s == "host") return net::PortKind::HostPort;
  if (s == "local") return net::PortKind::LocalPort;
  if (s == "external") return net::PortKind::ExternalPort;
  fail(line, "unknown port kind '" + s + "'");
}

std::string port_kind_name(net::PortKind k) {
  switch (k) {
    case net::PortKind::Fabric: return "fabric";
    case net::PortKind::HostPort: return "host";
    case net::PortKind::LocalPort: return "local";
    case net::PortKind::ExternalPort: return "external";
  }
  return "fabric";
}

net::RouteKind parse_route_kind(const std::string& s, size_t line) {
  if (s == "default") return net::RouteKind::Default;
  if (s == "internal") return net::RouteKind::Internal;
  if (s == "connected") return net::RouteKind::Connected;
  if (s == "wide-area") return net::RouteKind::WideArea;
  if (s == "drop") return net::RouteKind::DropRule;
  if (s == "security") return net::RouteKind::Security;
  if (s == "other") return net::RouteKind::Other;
  fail(line, "unknown route kind '" + s + "'");
}

net::PortRange parse_port_range(const std::string& s, size_t line) {
  const size_t dash = s.find('-');
  try {
    if (dash == std::string::npos) {
      const auto v = static_cast<uint16_t>(std::stoul(s));
      return {v, v};
    }
    return {static_cast<uint16_t>(std::stoul(s.substr(0, dash))),
            static_cast<uint16_t>(std::stoul(s.substr(dash + 1)))};
  } catch (const std::exception&) {
    fail(line, "bad port range '" + s + "'");
  }
}

Ipv4Prefix parse_prefix(const std::string& s, size_t line) {
  try {
    return Ipv4Prefix::parse(s);
  } catch (const std::exception& e) {
    fail(line, e.what());
  }
}

/// Resolves "<device>:<iface>" and "<device> <iface>" references.
class Symbols {
 public:
  net::DeviceId device(const std::string& name, size_t line) const {
    const auto it = devices_.find(name);
    if (it == devices_.end()) fail(line, "unknown device '" + name + "'");
    return it->second;
  }

  net::InterfaceId interface(const std::string& dev, const std::string& iface,
                             size_t line) const {
    const auto it = interfaces_.find(dev + ":" + iface);
    if (it == interfaces_.end()) {
      fail(line, "unknown interface '" + dev + ":" + iface + "'");
    }
    return it->second;
  }

  net::InterfaceId endpoint(const std::string& ref, size_t line) const {
    const size_t colon = ref.find(':');
    if (colon == std::string::npos) fail(line, "expected device:interface, got '" + ref + "'");
    return interface(ref.substr(0, colon), ref.substr(colon + 1), line);
  }

  void add_device(const std::string& name, net::DeviceId id) { devices_[name] = id; }
  void add_interface(const std::string& dev, const std::string& iface,
                     net::InterfaceId id) {
    interfaces_[dev + ":" + iface] = id;
  }

 private:
  std::map<std::string, net::DeviceId> devices_;
  std::map<std::string, net::InterfaceId> interfaces_;
};

}  // namespace

LoadedNetwork parse_network(const std::string& text) {
  LoadedNetwork out;
  Symbols symbols;
  std::istringstream in(text);
  std::string raw;
  size_t line_no = 0;
  bool header_seen = false;
  std::map<uint32_t, uint32_t> acl_priority;  // per device counter

  while (std::getline(in, raw)) {
    ++line_no;
    const std::vector<std::string> t = tokenize(raw);
    if (t.empty()) continue;

    if (!header_seen) {
      if (t.size() != 2 || t[0] != "network" || t[1] != "v1") {
        fail(line_no, "expected header 'network v1'");
      }
      header_seen = true;
      continue;
    }

    const std::string& kw = t[0];
    if (kw == "device") {
      if (t.size() < 4 || t[2] != "role") fail(line_no, "device <name> role <role> [asn N]");
      uint32_t asn = 0;
      if (t.size() >= 6 && t[4] == "asn") asn = static_cast<uint32_t>(std::stoul(t[5]));
      const net::Role role = parse_role(t[3], line_no);
      if (asn == 0) asn = routing::role_asn(role);
      symbols.add_device(t[1], out.network.add_device(t[1], role, asn));
    } else if (kw == "interface") {
      if (t.size() < 3) fail(line_no, "interface <device> <name> [kind K]");
      net::PortKind kind = net::PortKind::Fabric;
      if (t.size() >= 5 && t[3] == "kind") kind = parse_port_kind(t[4], line_no);
      const net::DeviceId dev = symbols.device(t[1], line_no);
      symbols.add_interface(t[1], t[2], out.network.add_interface(dev, t[2], kind));
    } else if (kw == "link") {
      if (t.size() < 3) fail(line_no, "link <a:ifa> <b:ifb> [subnet CIDR]");
      std::optional<Ipv4Prefix> subnet;
      if (t.size() >= 5 && t[3] == "subnet") subnet = parse_prefix(t[4], line_no);
      try {
        out.network.add_link(symbols.endpoint(t[1], line_no),
                             symbols.endpoint(t[2], line_no), subnet);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (kw == "host-prefix" || kw == "loopback") {
      if (t.size() != 3) fail(line_no, kw + " <device> <cidr>");
      const net::DeviceId dev = symbols.device(t[1], line_no);
      auto& list = kw == "loopback" ? out.network.device(dev).loopbacks
                                    : out.network.device(dev).host_prefixes;
      list.push_back(parse_prefix(t[2], line_no));
    } else if (kw == "wide-area") {
      if (t.size() != 3) fail(line_no, "wide-area <device> <cidr>");
      out.routing.wide_area_prefixes[symbols.device(t[1], line_no)].push_back(
          parse_prefix(t[2], line_no));
    } else if (kw == "no-default") {
      if (t.size() != 2) fail(line_no, "no-default <device>");
      out.routing.no_default_devices.insert(symbols.device(t[1], line_no));
    } else if (kw == "null-default") {
      if (t.size() != 2) fail(line_no, "null-default <device>");
      out.routing.null_default_devices.insert(symbols.device(t[1], line_no));
    } else if (kw == "fib") {
      if (t.size() < 5 || t[2] != "dst") {
        fail(line_no, "fib <device> dst <cidr> (fwd <iface>...|drop) [kind K] [prio N]");
      }
      const net::DeviceId dev = symbols.device(t[1], line_no);
      const Ipv4Prefix prefix = parse_prefix(t[3], line_no);
      net::Action action;
      size_t i = 4;
      if (t[i] == "drop") {
        action = net::Action::drop();
        ++i;
      } else if (t[i] == "fwd") {
        std::vector<net::InterfaceId> outs;
        for (++i; i < t.size() && t[i] != "kind" && t[i] != "prio"; ++i) {
          outs.push_back(symbols.interface(t[1], t[i], line_no));
        }
        if (outs.empty()) fail(line_no, "fwd needs at least one interface");
        action = net::Action::forward(std::move(outs));
      } else {
        fail(line_no, "expected fwd or drop");
      }
      net::RouteKind kind = net::RouteKind::Other;
      uint32_t priority = 32u - prefix.length();
      for (; i + 1 < t.size(); i += 2) {
        if (t[i] == "kind") {
          kind = parse_route_kind(t[i + 1], line_no);
        } else if (t[i] == "prio") {
          priority = static_cast<uint32_t>(std::stoul(t[i + 1]));
        } else {
          fail(line_no, "unknown fib attribute '" + t[i] + "'");
        }
      }
      out.network.add_rule(dev, net::MatchSpec::for_dst(prefix), std::move(action), kind,
                           priority);
      out.has_forwarding_state = true;
    } else if (kw == "acl") {
      if (t.size() < 3) fail(line_no, "acl <device> (permit|deny) [fields]");
      const net::DeviceId dev = symbols.device(t[1], line_no);
      net::Action action;
      if (t[2] == "permit") {
        action = net::Action::permit();
      } else if (t[2] == "deny") {
        action = net::Action::drop();
      } else {
        fail(line_no, "expected permit or deny");
      }
      net::MatchSpec match;
      for (size_t i = 3; i + 1 < t.size(); i += 2) {
        if (t[i] == "proto") {
          match.proto = static_cast<uint8_t>(std::stoul(t[i + 1]));
        } else if (t[i] == "dport") {
          match.dst_port = parse_port_range(t[i + 1], line_no);
        } else if (t[i] == "sport") {
          match.src_port = parse_port_range(t[i + 1], line_no);
        } else if (t[i] == "dst") {
          match.dst_prefix = parse_prefix(t[i + 1], line_no);
        } else if (t[i] == "src") {
          match.src_prefix = parse_prefix(t[i + 1], line_no);
        } else {
          fail(line_no, "unknown acl field '" + t[i] + "'");
        }
      }
      out.network.add_rule(dev, std::move(match), std::move(action),
                           net::RouteKind::Security, acl_priority[dev.value]++,
                           net::TableKind::Acl);
      out.has_forwarding_state = true;
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
  }
  if (!header_seen) fail(0, "empty input");
  return out;
}

std::string format_network(const net::Network& network,
                           const routing::RoutingConfig& routing) {
  std::ostringstream out;
  out << "network v1\n";
  for (const net::Device& dev : network.devices()) {
    out << "device " << dev.name << " role " << role_name(dev.role) << " asn " << dev.asn
        << "\n";
  }
  for (const net::Interface& intf : network.interfaces()) {
    out << "interface " << network.device(intf.device).name << " " << intf.name
        << " kind " << port_kind_name(intf.kind) << "\n";
  }
  const auto endpoint = [&](net::InterfaceId id) {
    const net::Interface& intf = network.interface(id);
    return network.device(intf.device).name + ":" + intf.name;
  };
  for (const net::Link& link : network.links()) {
    out << "link " << endpoint(link.a) << " " << endpoint(link.b);
    if (link.subnet) out << " subnet " << link.subnet->to_string();
    out << "\n";
  }
  for (const net::Device& dev : network.devices()) {
    for (const auto& p : dev.host_prefixes) {
      out << "host-prefix " << dev.name << " " << p.to_string() << "\n";
    }
    for (const auto& p : dev.loopbacks) {
      out << "loopback " << dev.name << " " << p.to_string() << "\n";
    }
  }
  for (const auto& [dev, prefixes] : routing.wide_area_prefixes) {
    for (const auto& p : prefixes) {
      out << "wide-area " << network.device(dev).name << " " << p.to_string() << "\n";
    }
  }
  for (const net::DeviceId dev : routing.no_default_devices) {
    out << "no-default " << network.device(dev).name << "\n";
  }
  for (const net::DeviceId dev : routing.null_default_devices) {
    out << "null-default " << network.device(dev).name << "\n";
  }

  for (const net::Device& dev : network.devices()) {
    for (const net::RuleId rid : network.table(dev.id, net::TableKind::Acl)) {
      const net::Rule& rule = network.rule(rid);
      out << "acl " << dev.name << " "
          << (rule.action.type == net::ActionType::Permit ? "permit" : "deny");
      if (rule.match.proto) out << " proto " << static_cast<int>(*rule.match.proto);
      if (rule.match.dst_port) {
        out << " dport " << rule.match.dst_port->lo << "-" << rule.match.dst_port->hi;
      }
      if (rule.match.src_port) {
        out << " sport " << rule.match.src_port->lo << "-" << rule.match.src_port->hi;
      }
      if (rule.match.dst_prefix) out << " dst " << rule.match.dst_prefix->to_string();
      if (rule.match.src_prefix) out << " src " << rule.match.src_prefix->to_string();
      out << "\n";
    }
    for (const net::RuleId rid : network.table(dev.id)) {
      const net::Rule& rule = network.rule(rid);
      out << "fib " << dev.name << " dst " << rule.match.dst_prefix->to_string();
      if (rule.action.type == net::ActionType::Drop) {
        out << " drop";
      } else {
        out << " fwd";
        for (const net::InterfaceId iid : rule.action.out_interfaces) {
          out << " " << network.interface(iid).name;
        }
      }
      out << " kind " << to_string(rule.kind) << " prio " << rule.priority << "\n";
    }
  }
  return out.str();
}

LoadedNetwork load_network_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ys::IoError("cannot open", {.source = path});
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw ys::IoError("read failed", {.source = path});
  return parse_network(buffer.str());
}

void save_network_file(const std::string& path, const net::Network& network,
                       const routing::RoutingConfig& routing) {
  std::ofstream out(path);
  if (!out) throw ys::IoError("cannot open for writing", {.source = path});
  out << format_network(network, routing);
  out.flush();
  if (!out) throw ys::IoError("write failed", {.source = path});
}

}  // namespace yardstick::netio
