// Plain-text network interchange format.
//
// Lets users bring their own topologies and (optionally) forwarding state
// to Yardstick instead of using the built-in generators, and lets tools
// archive generated networks alongside coverage traces. Line-oriented,
// whitespace-separated, '#' comments:
//
//   network v1
//   device <name> role <tor|aggregation|spine|regionalhub|wan|host|other> [asn N]
//   interface <device> <name> [kind fabric|host|local|external]
//   link <devA>:<ifaceA> <devB>:<ifaceB> [subnet a.b.c.d/31]
//   host-prefix <device> <cidr>
//   loopback <device> <cidr>
//   wide-area <device> <cidr>          # routing config: WAN origination
//   no-default <device>                # hub without any default route
//   null-default <device>              # §2: null-routed static default
//   fib <device> dst <cidr> (fwd <iface>... | drop) [kind <routekind>] [prio N]
//   acl <device> (permit|deny) [proto N] [dport LO[-HI]] [sport LO[-HI]]
//                [dst <cidr>] [src <cidr>]
//
// `fib`/`acl` lines are optional: without them, run the BGP substrate
// (routing::FibBuilder) on the loaded topology to synthesize state.
#pragma once

#include <iosfwd>
#include <string>

#include "netmodel/network.hpp"
#include "routing/config.hpp"

namespace yardstick::netio {

struct LoadedNetwork {
  net::Network network;
  routing::RoutingConfig routing;
  /// True if the file carried explicit fib/acl lines (state included).
  bool has_forwarding_state = false;
};

/// Parse the format. Throws std::runtime_error with a line number on any
/// malformed input.
[[nodiscard]] LoadedNetwork parse_network(const std::string& text);

/// Serialize a network (and the routing-config fields the format covers)
/// including its current rule tables.
[[nodiscard]] std::string format_network(const net::Network& network,
                                         const routing::RoutingConfig& routing);

/// File convenience wrappers.
[[nodiscard]] LoadedNetwork load_network_file(const std::string& path);
void save_network_file(const std::string& path, const net::Network& network,
                       const routing::RoutingConfig& routing);

}  // namespace yardstick::netio
