#include "netio/frame.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace yardstick::netio {

namespace {

using bdd::BddManager;
using bdd::kFalse;
using bdd::kTrue;
using bdd::NodeIndex;

using Detail = ys::CorruptTraceError::Detail;

[[noreturn]] void truncated(const std::string& why) {
  throw ys::CorruptTraceError(Detail::Truncated, why, {.source = "trace delta"});
}

[[noreturn]] void corrupted(const std::string& why) {
  throw ys::CorruptTraceError(Detail::Corrupted, why, {.source = "trace delta"});
}

/// Bounds-checked cursor over an untrusted byte buffer. Underruns raise
/// Truncated — the delta was cut off — never a read past the end.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<uint8_t>(bytes_[off_++]);
  }
  uint32_t u32(const char* what) {
    need(4, what);
    const uint32_t v = get_u32(bytes_.data() + off_);
    off_ += 4;
    return v;
  }
  /// A section count must fit in the bytes that remain, or a flipped bit
  /// would drive reserve() into a memory bomb before one element is read.
  size_t count(const char* what, size_t element_bytes) {
    const uint32_t n = u32(what);
    if (static_cast<uint64_t>(n) * element_bytes > remaining()) {
      corrupted("implausible " + std::string(what) + " count " + std::to_string(n));
    }
    return n;
  }
  [[nodiscard]] size_t remaining() const { return bytes_.size() - off_; }

 private:
  void need(size_t n, const char* what) {
    if (bytes_.size() - off_ < n) {
      truncated(std::string("input ends inside ") + what);
    }
  }
  std::string_view bytes_;
  size_t off_ = 0;
};

/// Emits the BDD behind each root into a shared file-local node table,
/// children before parents. Reference maps are keyed per source manager so
/// one delta may carry sets from several managers (client-side batches
/// union caller-owned sets without importing them first).
class DeltaEmitter {
 public:
  uint32_t emit(const bdd::Bdd& root, std::vector<std::array<uint32_t, 3>>& out) {
    if (root.index() == kFalse || !root.valid()) return 0;
    if (root.index() == kTrue) return 1;
    const BddManager& mgr = *root.manager();
    auto& refs = refs_[&mgr];
    std::vector<std::pair<NodeIndex, bool>> stack{{root.index(), false}};
    while (!stack.empty()) {
      auto [n, expanded] = stack.back();
      stack.pop_back();
      if (n <= kTrue || refs.contains(n)) continue;
      const bdd::BddNode& node = mgr.node(n);
      if (!expanded) {
        stack.push_back({n, true});
        stack.push_back({node.low, false});
        stack.push_back({node.high, false});
        continue;
      }
      out.push_back({node.var, ref(refs, node.low), ref(refs, node.high)});
      refs.emplace(n, static_cast<uint32_t>(out.size() - 1) + 2);
    }
    return refs.at(root.index());
  }

 private:
  using RefMap = std::unordered_map<NodeIndex, uint32_t>;

  [[nodiscard]] static uint32_t ref(const RefMap& refs, NodeIndex n) {
    if (n == kFalse) return 0;
    if (n == kTrue) return 1;
    return refs.at(n);
  }

  std::unordered_map<const BddManager*, RefMap> refs_;
};

}  // namespace

uint64_t fnv1a_64(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t get_u32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t get_u64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "hello";
    case FrameType::HelloAck: return "hello-ack";
    case FrameType::Batch: return "batch";
    case FrameType::Ack: return "ack";
    case FrameType::Busy: return "busy";
    case FrameType::Bye: return "bye";
    case FrameType::ByeAck: return "bye-ack";
    case FrameType::Error: return "error";
  }
  return "?";
}

std::string encode_frame(FrameType type, uint64_t seq, std::string_view body) {
  std::string out;
  out.reserve(kFrameHeaderBytes + body.size());
  put_u32(out, kFrameMagic);
  put_u8(out, kFrameVersion);
  put_u8(out, static_cast<uint8_t>(type));
  put_u64(out, seq);
  put_u32(out, static_cast<uint32_t>(body.size()));
  put_u64(out, fnv1a_64(body.data(), body.size()));
  out.append(body);
  return out;
}

DecodeResult decode_frame(std::string_view buffer) {
  DecodeResult r;
  if (buffer.size() < kFrameHeaderBytes) return r;  // NeedMore
  const char* p = buffer.data();
  if (get_u32(p) != kFrameMagic) {
    r.status = DecodeStatus::Corrupt;
    r.error = "bad frame magic (stream out of sync or not a yardstickd peer)";
    return r;
  }
  const auto version = static_cast<uint8_t>(p[4]);
  if (version != kFrameVersion) {
    r.status = DecodeStatus::Corrupt;
    r.error = "unsupported frame version " + std::to_string(version);
    return r;
  }
  const auto type = static_cast<uint8_t>(p[5]);
  if (type < static_cast<uint8_t>(FrameType::Hello) ||
      type > static_cast<uint8_t>(FrameType::Error)) {
    r.status = DecodeStatus::Corrupt;
    r.error = "unknown frame type " + std::to_string(type);
    return r;
  }
  const uint32_t body_len = get_u32(p + 14);
  if (body_len > kMaxFrameBody) {
    r.status = DecodeStatus::Corrupt;
    r.error = "implausible frame body length " + std::to_string(body_len);
    return r;
  }
  if (buffer.size() < kFrameHeaderBytes + body_len) return r;  // NeedMore
  const std::string_view body = buffer.substr(kFrameHeaderBytes, body_len);
  if (fnv1a_64(body.data(), body.size()) != get_u64(p + 18)) {
    r.status = DecodeStatus::Corrupt;
    r.error = "frame body checksum mismatch";
    return r;
  }
  r.status = DecodeStatus::Ok;
  r.frame.type = static_cast<FrameType>(type);
  r.frame.seq = get_u64(p + 6);
  r.frame.body.assign(body);
  r.consumed = kFrameHeaderBytes + body_len;
  return r;
}

std::string encode_trace_delta(const coverage::CoverageTrace& trace) {
  DeltaEmitter emitter;
  std::vector<std::array<uint32_t, 3>> nodes;
  std::vector<std::pair<packet::LocationId, uint32_t>> roots;
  for (const auto& [loc, ps] : trace.marked_packets().entries()) {
    roots.emplace_back(loc, emitter.emit(ps.raw(), nodes));
  }
  // Rules sorted so a delta's bytes are a canonical function of its
  // content (the in-memory set iterates in hash order).
  std::vector<uint32_t> rules;
  rules.reserve(trace.marked_rules().size());
  for (const net::RuleId rid : trace.marked_rules()) rules.push_back(rid.value);
  std::sort(rules.begin(), rules.end());

  std::string out;
  out.reserve(16 + nodes.size() * 9 + rules.size() * 4 + roots.size() * 8);
  put_u32(out, static_cast<uint32_t>(nodes.size()));
  for (const auto& [var, low, high] : nodes) {
    put_u8(out, static_cast<uint8_t>(var));
    put_u32(out, low);
    put_u32(out, high);
  }
  put_u32(out, static_cast<uint32_t>(rules.size()));
  for (const uint32_t rid : rules) put_u32(out, rid);
  put_u32(out, static_cast<uint32_t>(roots.size()));
  for (const auto& [loc, root] : roots) {
    put_u32(out, loc);
    put_u32(out, root);
  }
  return out;
}

coverage::CoverageTrace decode_trace_delta(std::string_view bytes, BddManager& mgr) {
  Reader in(bytes);
  const size_t node_count = in.count("node", 9);
  std::vector<NodeIndex> by_ref;  // file ref -> manager node index
  by_ref.reserve(node_count + 2);
  by_ref.push_back(kFalse);
  by_ref.push_back(kTrue);
  for (size_t i = 0; i < node_count; ++i) {
    const uint8_t var = in.u8("node list");
    const uint32_t low = in.u32("node list");
    const uint32_t high = in.u32("node list");
    if (var >= mgr.num_vars()) {
      corrupted("node variable " + std::to_string(var) + " out of range");
    }
    if (low >= by_ref.size() || high >= by_ref.size()) {
      // References may only point backwards; anything else could knit
      // cycles or dangling structure into the arena.
      corrupted("forward/out-of-range node reference at node " + std::to_string(i));
    }
    const auto level = [&](NodeIndex n) {
      return n <= kTrue ? mgr.num_vars() : mgr.node(n).var;
    };
    if (var >= level(by_ref[low]) || var >= level(by_ref[high])) {
      corrupted("variable-ordering violation at node " + std::to_string(i));
    }
    by_ref.push_back(mgr.make(var, by_ref[low], by_ref[high]));
  }

  coverage::CoverageTrace trace;
  const size_t rule_count = in.count("rule", 4);
  for (size_t i = 0; i < rule_count; ++i) {
    trace.mark_rule(net::RuleId{in.u32("rule list")});
  }
  const size_t loc_count = in.count("location", 8);
  for (size_t i = 0; i < loc_count; ++i) {
    const uint32_t loc = in.u32("location list");
    const uint32_t root = in.u32("location list");
    if (root >= by_ref.size()) {
      corrupted("location root reference " + std::to_string(root) + " out of range");
    }
    trace.mark_packet(loc, packet::PacketSet(bdd::Bdd(&mgr, by_ref[root])));
  }
  if (in.remaining() != 0) corrupted("trailing garbage after locations section");
  return trace;
}

uint64_t delta_event_count(std::string_view bytes) {
  Reader in(bytes);
  const size_t node_count = in.count("node", 9);
  for (size_t i = 0; i < node_count; ++i) {
    in.u8("node list");
    in.u32("node list");
    in.u32("node list");
  }
  const size_t rule_count = in.count("rule", 4);
  for (size_t i = 0; i < rule_count; ++i) in.u32("rule list");
  const size_t loc_count = in.count("location", 8);
  return rule_count + loc_count;
}

}  // namespace yardstick::netio
