// Binary wire frames for the trace-ingestion daemon (yardstickd).
//
// The online phase's two calls, markPacket/markRule, become *events*
// batched into compact trace deltas and shipped to a long-running daemon
// (src/service) over a Unix-domain or TCP socket. The framing layer is
// engineered for hostile transport conditions: every frame is
// length-prefixed (a reader never trusts the peer for buffer sizes),
// versioned (a stale client fails loudly, not subtly) and checksummed
// with the same FNV-1a 64 trailer idiom as persist-v2 (a torn or
// bit-flipped frame is detected before one byte of it is interpreted).
//
// Frame layout (little-endian, 26-byte header):
//   u32 magic "YSF1"   u8 version   u8 type   u64 seq
//   u32 body_len       u64 fnv1a(body)        body bytes
//
// Frame types:
//   Hello/HelloAck  session handshake (body: u64 session id, u32 num_vars)
//   Batch           one trace delta (body: binary delta, see below)
//   Ack             daemon accepted + journaled the batch (body: u64 seq)
//   Busy            explicit backpressure: ingress queue full; body carries
//                   a u32 retry-after hint in ms. The client backs off and
//                   resends — safe because delta merge is a union.
//   Bye/ByeAck      graceful session close
//   Error           peer rejected the frame (body: reason text); the
//                   connection is closed and the client reconnects.
//
// Batch body — binary trace delta (the wire twin of persist-v2):
//   u32 node_count     node_count x (u8 var, u32 low, u32 high)
//   u32 rule_count     rule_count x u32 rule_id
//   u32 loc_count      loc_count  x (u32 location, u32 root_ref)
// Node references are file-local: 0/1 are the terminals, n>=2 is emitted
// node n-2. The decoder validates exactly like the persist reader —
// plausible counts before any reserve(), backwards-only references,
// strict variable ordering — because the peer is untrusted by design.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "coverage/trace.hpp"

namespace yardstick::netio {

// --- checksums and integer packing (shared with the WAL) ---------------

/// FNV-1a 64 over a byte range; same function as the persist-v2 trailer.
[[nodiscard]] uint64_t fnv1a_64(const void* data, size_t size);

void put_u8(std::string& out, uint8_t v);
void put_u32(std::string& out, uint32_t v);
void put_u64(std::string& out, uint64_t v);
[[nodiscard]] uint32_t get_u32(const char* p);
[[nodiscard]] uint64_t get_u64(const char* p);

// --- frames ------------------------------------------------------------

enum class FrameType : uint8_t {
  Hello = 1,
  HelloAck = 2,
  Batch = 3,
  Ack = 4,
  Busy = 5,
  Bye = 6,
  ByeAck = 7,
  Error = 8,
};

[[nodiscard]] const char* to_string(FrameType t);

inline constexpr uint32_t kFrameMagic = 0x31465359;  // "YSF1" little-endian
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 26;
/// Upper bound on a frame body; anything larger is treated as corruption
/// (a flipped length bit must not drive the reader into a memory bomb).
inline constexpr uint32_t kMaxFrameBody = 64u << 20;

struct Frame {
  FrameType type = FrameType::Error;
  uint64_t seq = 0;
  std::string body;
};

/// One complete frame, ready to write to a socket.
[[nodiscard]] std::string encode_frame(FrameType type, uint64_t seq,
                                       std::string_view body = {});

enum class DecodeStatus : uint8_t {
  Ok,        ///< One frame decoded; `consumed` bytes may be discarded.
  NeedMore,  ///< The buffer holds only a frame prefix (short read so far).
  Corrupt,   ///< Bad magic/version/length/checksum; close the connection.
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::NeedMore;
  Frame frame;
  size_t consumed = 0;
  std::string error;  ///< Set when status == Corrupt.
};

/// Try to decode the first frame in `buffer`. Never throws: torn input is
/// NeedMore (wait for more bytes), wrong input is Corrupt.
[[nodiscard]] DecodeResult decode_frame(std::string_view buffer);

// --- trace deltas ------------------------------------------------------

/// Encode a trace as a binary delta. Each located packet set is walked
/// through its own BddManager, so a trace whose sets span managers (e.g. a
/// client batching caller-owned sets) encodes without an import step.
[[nodiscard]] std::string encode_trace_delta(const coverage::CoverageTrace& trace);

/// Decode and validate a delta, rebuilding its BDDs inside `mgr`. Throws
/// CorruptTraceError (Truncated for input that ran out, Corrupted for
/// input whose bytes are wrong) exactly like the persist reader.
[[nodiscard]] coverage::CoverageTrace decode_trace_delta(std::string_view bytes,
                                                         bdd::BddManager& mgr);

/// Number of mark events a delta carries (rules + located packet sets),
/// without rebuilding any BDDs. Throws CorruptTraceError on malformed
/// input.
[[nodiscard]] uint64_t delta_event_count(std::string_view bytes);

}  // namespace yardstick::netio
