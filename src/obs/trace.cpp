#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>

namespace yardstick::obs {

namespace {

/// Per-thread event buffer. The owning thread appends; to_chrome_json /
/// snapshot readers take the same mutex, so a trace can be rendered while
/// stray threads still record (they just miss in-flight events). Buffers
/// are owned by the tracer and outlive their threads — the worker pool
/// creates and joins threads per phase.
struct EventBuffer {
  uint32_t tid = 0;
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
};

/// Memory bound: one phase-level trace is thousands of events at most;
/// a runaway caller hits the cap and drops instead of exhausting memory.
constexpr size_t kMaxEventsPerThread = 1 << 20;

}  // namespace

struct Tracer::Impl {
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  std::mutex registry_mu;
  std::vector<std::unique_ptr<EventBuffer>> buffers;
  std::atomic<uint32_t> next_tid{1};
  std::atomic<uint64_t> dropped{0};

  EventBuffer& buffer_for_this_thread() {
    thread_local EventBuffer* cached = nullptr;
    thread_local const Impl* cached_owner = nullptr;
    if (cached == nullptr || cached_owner != this) {
      auto owned = std::make_unique<EventBuffer>();
      owned->tid = next_tid.fetch_add(1, std::memory_order_relaxed);
      cached = owned.get();
      cached_owner = this;
      std::lock_guard<std::mutex> lock(registry_mu);
      buffers.push_back(std::move(owned));
    }
    return *cached;
  }
};

Tracer::Tracer() : impl_(new Impl()) {}
Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::global() {
  // Leaked on purpose, like the metrics registry: thread_local buffer
  // pointers and late spans must never observe a destroyed tracer.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::now_us() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - impl_->epoch)
                                   .count());
}

void Tracer::record(const TraceEvent& event) {
  if (!enabled()) return;
  EventBuffer& buf = impl_->buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent copy = event;
  copy.tid = buf.tid;
  buf.events.push_back(copy);
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mu);
  size_t total = 0;
  for (const auto& buf : impl_->buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->events.size();
  }
  return total;
}

uint64_t Tracer::dropped_count() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(impl_->registry_mu);
  for (const auto& buf : impl_->buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  impl_->dropped.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mu);
    for (const auto& buf : impl_->buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.dur_us > b.dur_us;  // parent before child at equal start
  });
  return all;
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i) out << ",";
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
        << ",\"dur\":" << e.dur_us;
    if (e.num_args > 0) {
      out << ",\"args\":{";
      for (int a = 0; a < e.num_args; ++a) {
        if (a) out << ",";
        out << "\"" << e.args[a].key << "\":" << e.args[a].value;
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace yardstick::obs
