#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace yardstick::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// JSON/Prometheus share the non-finite contract with yardstick/json.cpp:
/// a degraded value serializes as 0, never as nan/inf tokens.
void print_double(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << 0;
    return;
  }
  // Round-trippable without scientific-notation surprises for the
  // magnitudes metrics take (counts, seconds, ratios).
  std::ostringstream tmp;
  tmp.precision(15);
  tmp << v;
  out << tmp.str();
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // Ordered maps give deterministic (name-sorted) exposition for free.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  void check_unique(const std::string& name, const char* wanted) const {
    const bool taken = (wanted[0] != 'c' && counters.count(name) != 0) ||
                       (wanted[0] != 'g' && gauges.count(name) != 0) ||
                       (wanted[0] != 'h' && histograms.count(name) != 0);
    if (taken) {
      throw std::logic_error("metric '" + name + "' already registered as another type");
    }
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: worker threads and static destructors may touch
  // metrics during shutdown; a never-destroyed registry cannot dangle.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    impl_->check_unique(name, "counter");
    it = impl_->counters.emplace(name, std::unique_ptr<Counter>(new Counter(name, help)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    impl_->check_unique(name, "gauge");
    it = impl_->gauges.emplace(name, std::unique_ptr<Gauge>(new Gauge(name, help))).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const std::string& help) {
  std::sort(bounds.begin(), bounds.end());
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    impl_->check_unique(name, "histogram");
    it = impl_->histograms
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, help, std::move(bounds))))
             .first;
  } else if (it->second->bounds() != bounds) {
    throw std::logic_error("histogram '" + name + "' re-registered with different buckets");
  }
  return *it->second;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : impl_->gauges) g->value_.store(0.0, std::memory_order_relaxed);
  for (auto& [name, h] : impl_->histograms) {
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    h->sum_.store(0.0, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const auto& [name, c] : impl_->counters) {
    sep();
    out << "{\"name\":\"" << name << "\",\"type\":\"counter\",\"value\":" << c->value()
        << "}";
  }
  for (const auto& [name, g] : impl_->gauges) {
    sep();
    out << "{\"name\":\"" << name << "\",\"type\":\"gauge\",\"value\":";
    print_double(out, g->value());
    out << "}";
  }
  for (const auto& [name, h] : impl_->histograms) {
    sep();
    out << "{\"name\":\"" << name << "\",\"type\":\"histogram\",\"count\":" << h->count()
        << ",\"sum\":";
    print_double(out, h->sum());
    out << ",\"buckets\":[";
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      cumulative += h->bucket(i);
      if (i) out << ",";
      out << "{\"le\":";
      if (i < h->bounds().size()) {
        print_double(out, h->bounds()[i]);
      } else {
        out << "\"+Inf\"";
      }
      out << ",\"count\":" << cumulative << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::ostringstream out;
  const auto header = [&](const std::string& name, const std::string& help,
                          const char* type) {
    if (!help.empty()) out << "# HELP " << name << " " << help << "\n";
    out << "# TYPE " << name << " " << type << "\n";
  };
  for (const auto& [name, c] : impl_->counters) {
    const std::string pname = prometheus_name(name);
    header(pname, c->help(), "counter");
    out << pname << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : impl_->gauges) {
    const std::string pname = prometheus_name(name);
    header(pname, g->help(), "gauge");
    out << pname << " ";
    print_double(out, g->value());
    out << "\n";
  }
  for (const auto& [name, h] : impl_->histograms) {
    const std::string pname = prometheus_name(name);
    header(pname, h->help(), "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      cumulative += h->bucket(i);
      out << pname << "_bucket{le=\"";
      if (i < h->bounds().size()) {
        print_double(out, h->bounds()[i]);
      } else {
        out << "+Inf";
      }
      out << "\"} " << cumulative << "\n";
    }
    out << pname << "_sum ";
    print_double(out, h->sum());
    out << "\n";
    out << pname << "_count " << h->count() << "\n";
  }
  return out.str();
}

}  // namespace yardstick::obs
