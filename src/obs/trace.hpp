// Span-based structured tracing with RAII scopes, exported as Chrome
// trace-event JSON (load the file in about:tracing or https://ui.perfetto.dev).
//
// Span hierarchy (DESIGN.md §9): nesting is implicit — complete events on
// the same thread nest by [ts, ts+dur] containment, which is exactly how
// the trace viewers render them. The canonical hierarchy:
//
//   cli.run
//   ├─ suite.run                       (online phase: tests execute)
//   ├─ match_sets.build                (offline step 1)
//   │  ├─ parallel.worker (×N)         (sharded device builds)
//   │  └─ match_sets.merge             (deterministic import)
//   ├─ covered_sets.build              (offline step 2, Algorithm 1)
//   │  ├─ parallel.worker (×N)
//   │  └─ covered_sets.merge
//   ├─ path_coverage.sweep             (offline step 3, DFS sweep)
//   │  └─ parallel.worker (×N)         (clone + ingress drain)
//   ├─ analysis.analyze                (--analyze)
//   └─ trace.save / trace.load
//
// Cost model: a Span in disabled mode is two relaxed atomic loads and no
// allocation (tests/obs_test.cpp pins the zero-allocation property). In
// enabled mode each span costs two steady_clock reads plus one append to
// a per-thread buffer under an uncontended mutex — phase-level spans only;
// per-path/per-rule work feeds counters (obs/metrics.hpp), never spans.
//
// Name/category strings must be string literals (or otherwise outlive the
// tracer): events store the pointers, not copies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace yardstick::obs {

[[nodiscard]] bool enabled();  // shared switch, defined in metrics.cpp

/// One key/value annotation on a span ("args" in the Chrome viewer).
struct SpanArg {
  const char* key = nullptr;
  uint64_t value = 0;
};

/// A finished span: Chrome "complete" event ("ph":"X").
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint32_t tid = 0;
  uint64_t ts_us = 0;   // microseconds since tracer epoch (steady clock)
  uint64_t dur_us = 0;
  static constexpr int kMaxArgs = 4;
  SpanArg args[kMaxArgs];
  int num_args = 0;
};

class Tracer {
 public:
  /// The process-wide tracer every span records into. Never destroyed
  /// (worker threads may still hold buffers at shutdown).
  static Tracer& global();

  /// Microseconds since the tracer epoch, on the steady clock.
  [[nodiscard]] uint64_t now_us() const;

  /// Record a finished span on the calling thread's buffer. No-op when
  /// observability is disabled.
  void record(const TraceEvent& event);

  /// Events recorded so far, across all threads.
  [[nodiscard]] size_t event_count() const;
  /// Events dropped because a thread buffer hit its cap (memory bound).
  [[nodiscard]] uint64_t dropped_count() const;

  /// Drop all recorded events (buffers stay registered; for tests/bench).
  void clear();

  /// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}
  /// with events merged across threads and sorted by timestamp. Call after
  /// worker threads have joined (concurrent record() is safe but events
  /// still in flight may be missed).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Copy of all events, timestamp-sorted (test/inspection hook).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  struct Impl;
  Tracer();
  ~Tracer();
  Impl* impl_;  // raw: the global tracer intentionally leaks
  friend struct TracerAccess;
};

/// RAII scope: construction stamps the start, destruction records the
/// complete event. Disabled-mode cost: two relaxed loads, zero allocation.
class Span {
 public:
  explicit Span(const char* name, const char* category = "ys") {
    if (!enabled()) return;
    active_ = true;
    event_.name = name;
    event_.category = category;
    event_.ts_us = Tracer::global().now_us();
  }
  ~Span() {
    if (!active_) return;
    const uint64_t end = Tracer::global().now_us();
    event_.dur_us = end >= event_.ts_us ? end - event_.ts_us : 0;
    Tracer::global().record(event_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric annotation (at most TraceEvent::kMaxArgs; extra
  /// args are dropped). `key` must be a string literal.
  void arg(const char* key, uint64_t value) {
    if (!active_ || event_.num_args >= TraceEvent::kMaxArgs) return;
    event_.args[event_.num_args++] = {key, value};
  }

 private:
  TraceEvent event_;
  bool active_ = false;
};

}  // namespace yardstick::obs
