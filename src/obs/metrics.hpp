// Low-overhead engine metrics: counters, gauges and fixed-bucket
// histograms behind one process-wide registry.
//
// Design constraints (DESIGN.md §9):
//   * Hot-path updates are a relaxed atomic op guarded by one relaxed
//     enabled-flag load — no locks, no allocation, no syscalls. With
//     observability disabled (the default) every update is a predictable
//     load-and-branch, measured < 3% overhead even when enabled
//     (bench_metric_computation, BENCH_observability.json).
//   * Registration (name → handle) is the cold path: it takes a mutex and
//     may allocate. Callers on hot paths cache the returned reference —
//     handles are stable for the life of the process because the registry
//     never deallocates a metric (reset_values() zeroes, never removes).
//   * Sharded workers update the same atomics; counters are exact under
//     concurrency, histograms are exact per bucket (sum uses a CAS loop).
//
// Naming scheme: `ys.<module>.<noun>[_<unit>]`, e.g. `ys.bdd.arena_nodes`,
// `ys.paths.emitted`. Prometheus exposition maps '.' → '_'.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace yardstick::obs {

/// Process-wide observability switch shared by the metrics registry and
/// the tracer. Off by default; the CLI flips it on for --trace-out /
/// --metrics-out runs, tests and benches flip it directly.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Monotonically increasing event count. Exact under concurrent add().
class Counter {
 public:
  void add(uint64_t n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  const std::string name_;
  const std::string help_;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins sampled value (arena sizes, budget consumption, …).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  const std::string name_;
  const std::string help_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative exposition). The
/// bucket upper bounds are set at registration and never change; an
/// implicit +Inf bucket catches the overflow. observe() touches exactly
/// one bucket counter plus the sum — no locks.
class Histogram {
 public:
  void observe(double v) {
    if (!enabled()) return;
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    // CAS add keeps the sum exact for integral observations and portable
    // (atomic<double>::fetch_add is not universally available).
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  /// Total observations (all buckets including +Inf).
  [[nodiscard]] uint64_t count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) count of bucket i; index bounds().size() is +Inf.
  [[nodiscard]] uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help, std::vector<double> bounds)
      : name_(std::move(name)),
        help_(std::move(help)),
        bounds_(std::move(bounds)),
        buckets_(bounds_.size() + 1) {}
  const std::string name_;
  const std::string help_;
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<double> sum_{0.0};
};

/// Get-or-create registry. Metrics live for the whole process; handles
/// returned here never dangle and may be cached in function-local statics
/// on hot paths.
class MetricsRegistry {
 public:
  /// The registry every ys_* library reports into.
  static MetricsRegistry& global();

  /// Get-or-create. Throws std::logic_error if `name` is already
  /// registered as a different metric type (or, for histograms, with
  /// different bucket bounds).
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Zero every counter/gauge/histogram, keeping registrations (and
  /// therefore cached handles) valid. For tests and repeated bench runs.
  void reset_values();

  /// JSON exposition: {"metrics":[{name,type,value|buckets,...},...]},
  /// sorted by name. Non-finite gauge values serialize as 0 (the repo-wide
  /// JSON contract; see yardstick/json.cpp).
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format, sorted by name: '.' in metric
  /// names maps to '_'; histograms expose cumulative _bucket{le=...},
  /// _sum and _count series.
  [[nodiscard]] std::string to_prometheus() const;

 private:
  struct Impl;
  MetricsRegistry();
  ~MetricsRegistry();
  std::unique_ptr<Impl> impl_;
};

/// Shorthand for MetricsRegistry::global().
[[nodiscard]] inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace yardstick::obs
