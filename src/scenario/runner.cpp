#include "scenario/runner.hpp"

#include <algorithm>
#include <cstdio>

#include "dataplane/transfer.hpp"
#include "packet/fields.hpp"
#include "routing/fib_builder.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::scenario {

namespace {

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

std::string metric_row_json(const ys::MetricRow& m) {
  return "{\"device_fractional\":" + format_double(m.device_fractional) +
         ",\"interface_fractional\":" + format_double(m.interface_fractional) +
         ",\"rule_fractional\":" + format_double(m.rule_fractional) +
         ",\"rule_weighted\":" + format_double(m.rule_weighted) +
         ",\"truncated\":" + (m.truncated ? "true" : "false") + "}";
}

std::string string_array_json(const std::vector<std::string>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += "\"" + escape(v[i]) + "\"";
  }
  return out + "]";
}

}  // namespace

struct ScenarioRunner::Evaluation {
  struct RuleInfo {
    net::RouteKind kind = net::RouteKind::Other;
    double coverage = 0.0;
    bdd::Uint128 atus = 0;
  };
  /// Content-keyed rules; std::map for deterministic diff iteration.
  std::map<std::string, RuleInfo> rules;
  /// Test name -> passed (duplicate names AND together).
  std::map<std::string, bool> tests;
  ys::MetricRow metrics;
  size_t rule_count = 0;
  bool truncated = false;
};

ScenarioRunner::Evaluation ScenarioRunner::evaluate(const routing::RoutingConfig& config) {
  routing::FibBuilder::compute_and_build(network_, config);
  if (post_fib_) post_fib_(network_, config);

  // Fresh manager per evaluation: each run's BDD universe is independent,
  // matching what a from-scratch CLI invocation would compute.
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex match_sets(mgr, network_);
  const dataplane::Transfer transfer(match_sets);
  ys::CoverageTracker tracker;
  const std::vector<nettest::TestResult> results = suite_.run_all(transfer, tracker);
  const ys::CoverageEngine engine(mgr, network_, tracker.trace(), options_.engine);

  Evaluation ev;
  ev.metrics = engine.metrics();
  ev.rule_count = network_.rule_count();
  ev.truncated = engine.truncated();
  for (const net::Device& dev : network_.devices()) {
    for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
      for (const net::RuleId rid : network_.table(dev.id, table)) {
        const net::Rule& rule = network_.rule(rid);
        const std::string key = net::rule_content_key(network_, rid);
        // Identical rules (same device/table/priority/match/kind) get a
        // positional suffix; table iteration order makes this stable.
        std::string unique = key;
        for (int n = 2; ev.rules.contains(unique); ++n) {
          unique = key + "#" + std::to_string(n);
        }
        ev.rules.emplace(std::move(unique),
                         Evaluation::RuleInfo{rule.kind, engine.rule_coverage(rid),
                                              engine.covered_sets().covered_size(rid)});
      }
    }
  }
  for (const nettest::TestResult& r : results) {
    auto [it, inserted] = ev.tests.try_emplace(r.name, r.passed());
    if (!inserted) it->second = it->second && r.passed();
  }
  return ev;
}

ScenarioReport ScenarioRunner::run(const ScenarioSpec& spec) {
  // Resolve every name up front: a typo aborts before any FIB is touched.
  std::vector<ResolvedScenario> resolved;
  resolved.reserve(spec.scenarios.size());
  for (const Scenario& s : spec.scenarios) resolved.push_back(resolve(s, network_));

  const Evaluation base = evaluate(baseline_);

  ScenarioReport report;
  report.baseline_metrics = base.metrics;
  report.baseline_rule_count = base.rule_count;
  report.truncated = base.truncated;
  for (const auto& [name, passed] : base.tests) {
    if (!passed) report.baseline_failing_tests.push_back(name);
  }

  for (const ResolvedScenario& rs : resolved) {
    routing::RoutingConfig config = baseline_;
    config.failed_devices.insert(rs.devices.begin(), rs.devices.end());
    config.failed_links.insert(rs.links.begin(), rs.links.end());
    const Evaluation cur = evaluate(config);

    ScenarioDiff diff;
    diff.name = rs.name;
    diff.scenario_rule_count = cur.rule_count;
    diff.metrics = cur.metrics;
    diff.truncated = cur.truncated;
    report.truncated = report.truncated || cur.truncated;

    std::vector<RuleDelta> candidates;
    for (const auto& [key, info] : base.rules) {
      const auto it = cur.rules.find(key);
      const bool lost = it == cur.rules.end();
      const bool collapsed =
          !lost && info.coverage > 0.0 && it->second.coverage == 0.0;
      if (lost) {
        ++diff.rules_lost;
      } else if (collapsed) {
        ++diff.rules_collapsed;
      } else {
        continue;
      }
      diff.unreachable_atus += info.atus;
      candidates.push_back({key, info.kind, info.coverage,
                            lost ? 0.0 : it->second.coverage, info.atus});
    }
    for (const auto& [key, info] : cur.rules) {
      if (!base.rules.contains(key)) ++diff.rules_gained;
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const RuleDelta& a, const RuleDelta& b) {
                if (a.baseline_atus != b.baseline_atus) {
                  return a.baseline_atus > b.baseline_atus;
                }
                return a.key < b.key;
              });
    if (candidates.size() > options_.max_rule_deltas) {
      candidates.resize(options_.max_rule_deltas);
    }
    diff.top_deltas = std::move(candidates);

    for (const auto& [name, passed] : base.tests) {
      if (!passed) continue;
      const auto it = cur.tests.find(name);
      if (it != cur.tests.end() && !it->second) diff.dark_tests.push_back(name);
    }
    report.scenarios.push_back(std::move(diff));
  }

  // Leave the network in its baseline state for whatever runs next.
  routing::FibBuilder::compute_and_build(network_, baseline_);
  if (post_fib_) post_fib_(network_, baseline_);
  return report;
}

std::string ScenarioReport::to_text() const {
  std::string out = "coverage under failure: " + std::to_string(scenarios.size()) +
                    " scenario(s), baseline rules=" +
                    std::to_string(baseline_rule_count) + "\n";
  const auto row = [](const ys::MetricRow& m) {
    return "device " + format_double(m.device_fractional) + "  interface " +
           format_double(m.interface_fractional) + "  rule " +
           format_double(m.rule_fractional) + "  weighted " +
           format_double(m.rule_weighted) + (m.truncated ? "  [truncated]" : "");
  };
  out += "baseline: " + row(baseline_metrics) + "\n";
  if (!baseline_failing_tests.empty()) {
    out += "baseline failing tests:";
    for (const std::string& t : baseline_failing_tests) out += " " + t;
    out += "\n";
  }
  for (const ScenarioDiff& s : scenarios) {
    out += "\nscenario " + s.name + ": rules=" + std::to_string(s.scenario_rule_count) +
           " lost=" + std::to_string(s.rules_lost) +
           " gained=" + std::to_string(s.rules_gained) +
           " collapsed=" + std::to_string(s.rules_collapsed) +
           " unreachable-atus=" + bdd::to_string(s.unreachable_atus) +
           (s.truncated ? " [truncated]" : "") + "\n";
    out += "  " + row(s.metrics) + "\n";
    if (!s.dark_tests.empty()) {
      out += "  dark tests:";
      for (const std::string& t : s.dark_tests) out += " " + t;
      out += "\n";
    }
    for (const RuleDelta& d : s.top_deltas) {
      out += "  " + d.key + "  " + format_double(d.baseline_coverage) + " -> " +
             format_double(d.scenario_coverage) +
             "  atus=" + bdd::to_string(d.baseline_atus) + "\n";
    }
  }
  return out;
}

std::string report_to_json(const ScenarioReport& report) {
  std::string out = "{\"baseline\":{\"rules\":" +
                    std::to_string(report.baseline_rule_count) +
                    ",\"metrics\":" + metric_row_json(report.baseline_metrics) +
                    ",\"failing_tests\":" +
                    string_array_json(report.baseline_failing_tests) + "}";
  out += ",\"scenarios\":[";
  for (size_t i = 0; i < report.scenarios.size(); ++i) {
    const ScenarioDiff& s = report.scenarios[i];
    if (i) out += ",";
    out += "{\"name\":\"" + escape(s.name) + "\"";
    out += ",\"rules\":" + std::to_string(s.scenario_rule_count);
    out += ",\"lost\":" + std::to_string(s.rules_lost);
    out += ",\"gained\":" + std::to_string(s.rules_gained);
    out += ",\"collapsed\":" + std::to_string(s.rules_collapsed);
    out += ",\"unreachable_atus\":\"" + bdd::to_string(s.unreachable_atus) + "\"";
    out += ",\"metrics\":" + metric_row_json(s.metrics);
    out += ",\"dark_tests\":" + string_array_json(s.dark_tests);
    out += ",\"top_deltas\":[";
    for (size_t j = 0; j < s.top_deltas.size(); ++j) {
      const RuleDelta& d = s.top_deltas[j];
      if (j) out += ",";
      out += "{\"rule\":\"" + escape(d.key) + "\"";
      out += ",\"kind\":\"" + std::string(net::to_string(d.kind)) + "\"";
      out += ",\"baseline_coverage\":" + format_double(d.baseline_coverage);
      out += ",\"scenario_coverage\":" + format_double(d.scenario_coverage);
      out += ",\"baseline_atus\":\"" + bdd::to_string(d.baseline_atus) + "\"}";
    }
    out += "]";
    out += ",\"truncated\":" + std::string(s.truncated ? "true" : "false") + "}";
  }
  out += "],\"truncated\":" + std::string(report.truncated ? "true" : "false") + "}";
  return out;
}

}  // namespace yardstick::scenario
