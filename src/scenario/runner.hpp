// ScenarioRunner — coverage under failure (DESIGN.md §13).
//
// For a baseline routing configuration and a ScenarioSpec, the runner:
//   1. computes the baseline FIBs, re-applies any post-FIB state (ACLs,
//      transform rules) through the hook, runs the suite, and builds a
//      coverage engine over the trace;
//   2. per scenario, merges the failure sets into a copy of the baseline
//      RoutingConfig, recomputes the FIBs (BGP fixpoint + rebuild), re-runs
//      hook + suite + engine on the degraded network;
//   3. diffs each scenario against the baseline: rules lost from the FIBs,
//      rules whose coverage collapsed to zero, the baseline ATUs that are
//      no longer exercised ("unreachable ATUs"), and tests that went dark
//      (passed at baseline, fail under the scenario).
//
// Rules are keyed by content (device|table|priority|match|kind), not
// RuleId — FIB recomputation renumbers rules, content keys survive it.
// Every container iterated for output is ordered, and the engine itself is
// bit-identical across thread counts, so the report (text and JSON) is too.
// EngineOptions::cache_dir is honored per evaluation: consecutive scenarios
// invalidate only the devices whose FIBs or trace slices actually changed.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bdd/uint128.hpp"
#include "nettest/test.hpp"
#include "routing/config.hpp"
#include "scenario/spec.hpp"
#include "yardstick/engine.hpp"

namespace yardstick::scenario {

struct ScenarioRunnerOptions {
  ys::EngineOptions engine;
  /// Cap on per-scenario collapsed/lost rule listings in the report.
  size_t max_rule_deltas = 20;
};

/// Coverage movement of one rule between baseline and a scenario.
struct RuleDelta {
  std::string key;  // device|table|priority|match|kind
  net::RouteKind kind = net::RouteKind::Other;
  double baseline_coverage = 0.0;
  double scenario_coverage = 0.0;
  /// Baseline covered-set size (ATUs at stake for this rule).
  bdd::Uint128 baseline_atus = 0;
};

/// Baseline-vs-scenario diff for one scenario.
struct ScenarioDiff {
  std::string name;
  size_t scenario_rule_count = 0;
  /// Rules present at baseline but absent from the scenario's FIBs.
  size_t rules_lost = 0;
  /// Rules present only under the scenario (rerouted state).
  size_t rules_gained = 0;
  /// Rules present in both whose coverage fell from positive to zero.
  size_t rules_collapsed = 0;
  /// Sum of baseline covered-set sizes over lost + collapsed rules: the
  /// (rule, packet) units whose baseline test evidence no longer applies.
  bdd::Uint128 unreachable_atus = 0;
  /// Largest lost/collapsed rules by baseline ATUs (capped, deterministic).
  std::vector<RuleDelta> top_deltas;
  /// Tests that passed at baseline but fail under this scenario.
  std::vector<std::string> dark_tests;
  ys::MetricRow metrics;
  bool truncated = false;
};

struct ScenarioReport {
  ys::MetricRow baseline_metrics;
  size_t baseline_rule_count = 0;
  std::vector<std::string> baseline_failing_tests;
  std::vector<ScenarioDiff> scenarios;
  bool truncated = false;

  /// Fixed-width text rendering (no timings: bit-identical across runs).
  [[nodiscard]] std::string to_text() const;
};

/// Serialize as a JSON object (stable key order, no timings or other
/// nondeterministic fields — CI diffs this byte-for-byte).
[[nodiscard]] std::string report_to_json(const ScenarioReport& report);

class ScenarioRunner {
 public:
  /// Re-applied after every FIB (re)build, before tests run — the place to
  /// reinstall post-FIB state that FibBuilder::build wipes (ingress ACLs,
  /// transform rules). The RoutingConfig argument carries the scenario's
  /// failure sets so the hook can filter ECMP groups.
  using PostFibHook =
      std::function<void(net::Network&, const routing::RoutingConfig&)>;

  /// The runner mutates `network`'s forwarding state during the run and
  /// restores the baseline FIBs (and hook state) before returning.
  ScenarioRunner(net::Network& network, const routing::RoutingConfig& baseline,
                 const nettest::TestSuite& suite, ScenarioRunnerOptions options = {})
      : network_(network), baseline_(baseline), suite_(suite),
        options_(std::move(options)) {}

  void set_post_fib_hook(PostFibHook hook) { post_fib_ = std::move(hook); }

  /// Resolves every scenario up front (throws on unknown names before any
  /// state is touched), then runs baseline + scenarios as described above.
  [[nodiscard]] ScenarioReport run(const ScenarioSpec& spec);

 private:
  struct Evaluation;
  [[nodiscard]] Evaluation evaluate(const routing::RoutingConfig& config);

  net::Network& network_;
  const routing::RoutingConfig& baseline_;
  const nettest::TestSuite& suite_;
  ScenarioRunnerOptions options_;
  PostFibHook post_fib_;
};

}  // namespace yardstick::scenario
