#include "scenario/spec.hpp"

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>
#include <unordered_set>

#include "common/status.hpp"

namespace yardstick::scenario {

namespace {

/// Split a line into whitespace-separated tokens.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' && line[j] != '\r') ++j;
    if (j > i) out.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

ScenarioSpec ScenarioSpec::parse(std::string_view text) {
  ScenarioSpec spec;
  std::unordered_set<std::string> names;
  size_t lineno = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;

    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty() || tok[0][0] == '#') continue;
    const auto err = [&](const std::string& what) {
      throw ys::InvalidInputError("scenario spec line " + std::to_string(lineno) + ": " +
                                  what);
    };
    if (tok[0] == "scenario") {
      if (tok.size() != 2) err("expected: scenario <name>");
      if (!names.insert(tok[1]).second) err("duplicate scenario name " + tok[1]);
      spec.scenarios.push_back({.name = tok[1], .down_devices = {}, .down_links = {}});
    } else if (tok[0] == "device") {
      if (spec.scenarios.empty()) err("'device' before any 'scenario'");
      if (tok.size() != 2) err("expected: device <name>");
      spec.scenarios.back().down_devices.push_back(tok[1]);
    } else if (tok[0] == "link") {
      if (spec.scenarios.empty()) err("'link' before any 'scenario'");
      if (tok.size() != 3) err("expected: link <deviceA> <deviceB>");
      spec.scenarios.back().down_links.emplace_back(tok[1], tok[2]);
    } else {
      err("unknown directive '" + tok[0] + "'");
    }
  }
  if (spec.scenarios.empty()) {
    throw ys::InvalidInputError("scenario spec declares no scenarios");
  }
  for (const Scenario& s : spec.scenarios) {
    if (s.down_devices.empty() && s.down_links.empty()) {
      throw ys::InvalidInputError("scenario '" + s.name + "' fails nothing");
    }
  }
  return spec;
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ys::IoError("cannot open scenario spec " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw ys::IoError("cannot read scenario spec " + path);
  return parse(buf.str());
}

std::string ScenarioSpec::to_text() const {
  std::string out;
  for (const Scenario& s : scenarios) {
    out += "scenario " + s.name + "\n";
    for (const std::string& d : s.down_devices) out += "device " + d + "\n";
    for (const auto& [a, b] : s.down_links) out += "link " + a + " " + b + "\n";
  }
  return out;
}

ResolvedScenario resolve(const Scenario& s, const net::Network& network) {
  ResolvedScenario out;
  out.name = s.name;
  const auto device = [&](const std::string& name) {
    const auto id = network.find_device(name);
    if (!id) {
      throw ys::InvalidInputError("scenario '" + s.name + "': unknown device " + name);
    }
    return *id;
  };
  for (const std::string& d : s.down_devices) out.devices.insert(device(d));
  for (const auto& [a, b] : s.down_links) {
    const net::DeviceId da = device(a);
    const net::DeviceId db = device(b);
    const auto intf = network.interface_towards(da, db);
    if (!intf || !network.interface(*intf).link.valid()) {
      throw ys::InvalidInputError("scenario '" + s.name + "': no link between " + a +
                                  " and " + b);
    }
    out.links.insert(network.interface(*intf).link);
  }
  return out;
}

ScenarioSpec random_link_scenarios(const net::Network& network, int count, uint64_t seed,
                                   int links_per_scenario) {
  if (count < 1 || links_per_scenario < 1) {
    throw ys::InvalidInputError("random scenario counts must be positive");
  }
  // Candidate pool: fabric-to-fabric links, in link-id order.
  std::vector<net::LinkId> pool;
  for (const net::Link& link : network.links()) {
    const net::Interface& a = network.interface(link.a);
    const net::Interface& b = network.interface(link.b);
    if (a.kind == net::PortKind::Fabric && b.kind == net::PortKind::Fabric) {
      pool.push_back(link.id);
    }
  }
  if (pool.size() < static_cast<size_t>(links_per_scenario)) {
    throw ys::InvalidInputError("network has fewer fabric links than requested per scenario");
  }

  // mt19937_64's output sequence is fixed by the standard; combined with
  // explicit modular draws the scenario set is platform-independent.
  std::mt19937_64 gen(seed);
  ScenarioSpec spec;
  for (int i = 0; i < count; ++i) {
    Scenario s;
    s.name = "rand-" + std::to_string(i);
    // Partial Fisher-Yates over a fresh copy: distinct links per scenario.
    std::vector<net::LinkId> links = pool;
    for (int j = 0; j < links_per_scenario; ++j) {
      const size_t pick = static_cast<size_t>(j) +
                          static_cast<size_t>(gen() % (links.size() - static_cast<size_t>(j)));
      std::swap(links[static_cast<size_t>(j)], links[pick]);
      const net::Link& link = network.link(links[static_cast<size_t>(j)]);
      s.down_links.emplace_back(
          network.device(network.interface(link.a).device).name,
          network.device(network.interface(link.b).device).name);
    }
    spec.scenarios.push_back(std::move(s));
  }
  return spec;
}

}  // namespace yardstick::scenario
