// ScenarioSpec — named what-if failure scenarios for coverage-under-failure
// analysis (DESIGN.md §13).
//
// A spec is an ordered list of scenarios; each scenario is a set of failed
// devices and/or failed links, by name. The text format is line-based:
//
//   # k=8 sweep, hand-picked
//   scenario spine-loss
//   device dc0-spine-0
//   link dc0-pod0-tor-0 dc0-pod0-agg-1
//
//   scenario border-outage
//   device wan-0
//
// Names are resolved against a concrete Network only when a run starts, so
// the same spec file can drive differently-sized topologies as long as the
// device names exist.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "netmodel/network.hpp"

namespace yardstick::scenario {

struct Scenario {
  std::string name;
  std::vector<std::string> down_devices;
  /// Links identified by their two endpoint device names.
  std::vector<std::pair<std::string, std::string>> down_links;
};

struct ScenarioSpec {
  std::vector<Scenario> scenarios;

  /// Parse the text format above. Throws ys::InvalidInputError on malformed
  /// lines, duplicate scenario names, or an empty spec.
  [[nodiscard]] static ScenarioSpec parse(std::string_view text);

  /// Read and parse a spec file. Throws ys::IoError / InvalidInputError.
  [[nodiscard]] static ScenarioSpec load(const std::string& path);

  /// Serialize back to the text format (round-trips through parse()).
  [[nodiscard]] std::string to_text() const;
};

/// A scenario with its names resolved to ids on one network.
struct ResolvedScenario {
  std::string name;
  std::unordered_set<net::DeviceId> devices;
  std::unordered_set<net::LinkId> links;
};

/// Resolve names against `network`. Throws ys::InvalidInputError on unknown
/// device names or device pairs with no connecting link.
[[nodiscard]] ResolvedScenario resolve(const Scenario& s, const net::Network& network);

/// Generate `count` scenarios, each failing `links_per_scenario` distinct
/// fabric links chosen by a seeded PRNG. Fully deterministic for a given
/// (network, count, seed, links_per_scenario) — uses explicit modular
/// draws, never std::uniform_int_distribution, so the choice sequence is
/// identical across standard libraries and platforms.
[[nodiscard]] ScenarioSpec random_link_scenarios(const net::Network& network, int count,
                                                 uint64_t seed,
                                                 int links_per_scenario = 1);

}  // namespace yardstick::scenario
