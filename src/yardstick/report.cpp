#include "yardstick/report.hpp"

#include <iomanip>
#include <sstream>

namespace yardstick::ys {

namespace {
void print_row(std::ostringstream& out, const std::string& label, size_t devices,
               const MetricRow& m) {
  out << "  " << std::left << std::setw(14) << label << std::right << std::setw(8)
      << devices << std::fixed << std::setprecision(1) << std::setw(10)
      << m.device_fractional * 100.0 << "%" << std::setw(10)
      << m.interface_fractional * 100.0 << "%" << std::setw(10)
      << m.rule_fractional * 100.0 << "%" << std::setw(10) << m.rule_weighted * 100.0
      << "%\n";
}
}  // namespace

std::string CoverageReport::to_text() const {
  std::ostringstream out;
  out << "coverage report";
  if (truncated) out << " [TRUNCATED: resource budget exhausted; results are partial]";
  out << "\n";
  out << "  " << std::left << std::setw(14) << "role" << std::right << std::setw(8)
      << "devices" << std::setw(11) << "device(f)" << std::setw(11) << "iface(f)"
      << std::setw(11) << "rule(f)" << std::setw(11) << "rule(w)" << "\n";
  for (const RoleBreakdown& row : by_role) {
    print_row(out, to_string(row.role), row.device_count, row.metrics);
  }
  size_t total_devices = 0;
  for (const RoleBreakdown& row : by_role) total_devices += row.device_count;
  print_row(out, "ALL", total_devices, overall);

  if (!gaps.empty()) {
    out << "  untested rules by category:\n";
    for (const RuleGap& gap : gaps) {
      out << "    " << std::left << std::setw(12) << to_string(gap.kind) << std::right
          << gap.untested << " / " << gap.total << " untested\n";
    }
  }
  out << "  completely untested devices: " << untested_device_count << "\n";
  out << "  completely untested interfaces: " << untested_interface_count << "\n";
  out << "  offline phase: match-sets " << std::fixed << std::setprecision(3)
      << timings.match_sets_seconds << "s, covered-sets " << timings.covered_sets_seconds
      << "s (total " << timings.offline_seconds() << "s)\n";
  return out.str();
}

}  // namespace yardstick::ys
