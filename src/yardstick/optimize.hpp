// Suite optimization — acting on the coverage metrics (§7.2).
//
// SuiteAnalyzer reports which tests are redundant; this module closes the
// loop and *does* something with that knowledge:
//
//   * minimize_suite — smallest test subset preserving full-suite
//     fractional rule coverage (exact greedy set cover over the suite's
//     coverage matrix), with a slack knob for "95% of the coverage in a
//     fraction of the tests".
//   * prioritize_suite — cost-aware ordering: run the suite in
//     marginal-coverage-per-second order and emit the cumulative
//     coverage/cost curve, so a time-boxed run buys the most coverage.
//   * build_gap_report — an exhaustive, operator-actionable inventory of
//     every uncovered rule: grouped by device, annotated with the §13
//     content key (byte-identical shadowed twins collapse into one entry),
//     and carrying a concrete witness packet sampled from the rule's
//     exercisable space — or a state-only marker when no packet can reach
//     the rule and only state inspection will cover it.
//
// Determinism contracts (DESIGN.md §14): minimization and the gap report
// are bit-identical at any thread count — both derive from canonical BDDs
// whose construction obeys the §8 merge contract. Prioritization depends
// on measured wall-clock seconds and is deterministic only given the
// matrix (i.e. its *tie-breaking* is deterministic, its input times are
// not).
#pragma once

#include <string>
#include <vector>

#include "yardstick/analysis.hpp"

namespace yardstick::ys {

/// One test retained by minimize_suite, in greedy selection order.
struct SelectedTest {
  size_t index = 0;  ///< position in the original suite
  std::string name;
  size_t added_rules = 0;  ///< non-vacuous rules newly covered at this step
  double cumulative_coverage = 0.0;
};

struct MinimizeResult {
  /// Retained tests in selection order (highest gain first; ties broken
  /// by test name, then suite position).
  std::vector<SelectedTest> selected;
  size_t suite_size = 0;
  /// The slack knob: minimum fraction of the *full suite's* coverage the
  /// subset must preserve. 1.0 (default) demands exact preservation —
  /// the subset's covered-rule set then equals the full suite's, so a
  /// recomputed coverage report is bit-identical, not just close.
  double min_coverage = 1.0;
  double full_coverage = 0.0;      ///< fractional rule coverage, whole suite
  double achieved_coverage = 0.0;  ///< fractional rule coverage, subset
  /// Optionally filled by callers that re-run the subset through a fresh
  /// CoverageEngine as an end-to-end cross-check (CLI, bench); < 0 when
  /// not recomputed.
  double recomputed_full = -1.0;
  double recomputed_subset = -1.0;
  bool truncated = false;

  [[nodiscard]] bool contains(size_t index) const;
  /// Names of the dropped tests, in suite order.
  [[nodiscard]] std::vector<std::string> dropped(
      const SuiteCoverageMatrix& m) const;
  [[nodiscard]] std::string to_text(const SuiteCoverageMatrix& m) const;
};

/// Greedy set cover over the matrix: repeatedly take the test covering the
/// most not-yet-covered non-vacuous rules (ties: lexicographically
/// smallest name, then lowest index) until the subset's coverage reaches
/// `min_coverage` × the full suite's. Greedy selection *order* does not
/// depend on the target, so a looser knob always yields a prefix of a
/// stricter knob's selection (subset sizes are monotone in min_coverage).
[[nodiscard]] MinimizeResult minimize_suite(const SuiteCoverageMatrix& m,
                                            double min_coverage = 1.0);

/// One scheduled test in a prioritized suite.
struct PrioritizedTest {
  size_t index = 0;
  std::string name;
  double marginal = 0.0;  ///< coverage gained when this test runs
  double seconds = 0.0;   ///< isolated run cost
  double cumulative_coverage = 0.0;
  double cumulative_seconds = 0.0;
};

struct PrioritizeResult {
  /// Every test of the suite, best marginal-coverage-per-second first —
  /// the cumulative fields trace the coverage/cost curve.
  std::vector<PrioritizedTest> order;
  double full_coverage = 0.0;
  bool truncated = false;

  [[nodiscard]] std::string to_text() const;
};

/// Cost-aware greedy: at each step schedule the test maximizing newly
/// covered rules per second (compared exactly via cross-multiplication, so
/// zero-cost tests sort first and an all-zero-cost suite degrades to pure
/// coverage greedy). Ties: more rules, then name, then index.
[[nodiscard]] PrioritizeResult prioritize_suite(const SuiteCoverageMatrix& m);

/// One uncovered rule, with a concrete way to cover it.
struct GapWitness {
  net::RuleId rule;
  net::RouteKind kind = net::RouteKind::Other;
  net::TableKind table = net::TableKind::Fib;
  /// §13 content key (device|table|priority|match|kind).
  std::string content_key;
  /// How many rules of the device share this content key — byte-identical
  /// twins are shadowed (vacuous), so this witness stands for all of them.
  size_t collapsed = 1;
  /// True when the rule's exercisable space is empty (fully shadowed by
  /// the ACL stage): no injected packet can reach it, only a
  /// state-inspection test covers it. `witness` is then meaningless.
  bool state_only = false;
  packet::ConcretePacket witness;
};

struct DeviceGaps {
  net::DeviceId device;
  std::string name;
  size_t rule_count = 0;  ///< rules of this device across both tables
  std::vector<GapWitness> gaps;
};

struct GapReport {
  /// Devices with at least one gap, in network order.
  std::vector<DeviceGaps> devices;
  size_t uncovered_rules = 0;
  size_t packet_witnesses = 0;
  size_t state_only = 0;
  bool truncated = false;

  [[nodiscard]] std::string to_text() const;
};

/// Exhaustive generalization of suggest_tests: every uncovered rule
/// (optionally device-filtered) gets an entry — a sampled witness packet
/// from its exercisable space (disjoint match set, ACL-clipped for FIB
/// rules) or a state-only marker. Witnesses are sampled from canonical
/// BDDs in the engine's primary manager, so the report is bit-identical
/// at any engine thread count.
[[nodiscard]] GapReport build_gap_report(const CoverageEngine& engine,
                                         const DeviceFilter& filter = nullptr);

/// JSON for the `optimize` subcommand: one object with a section per
/// non-null result. Timing fields carry real seconds; CI diffs normalize
/// them away (prioritization order itself is timing-dependent and is kept
/// out of golden comparisons).
[[nodiscard]] std::string optimize_to_json(const SuiteCoverageMatrix& m,
                                           const MinimizeResult* minimize,
                                           const PrioritizeResult* prioritize,
                                           const GapReport* gaps);

}  // namespace yardstick::ys
