// Test-suite analysis on top of coverage.
//
// The paper's closing §7.2 point: Yardstick lets engineers focus on "the
// creation of new tests that provably improve coverage — rather than on
// development of redundant tests that do little to find additional
// errors". This module operationalizes that:
//
//   * SuiteCoverageMatrix — the shared substrate: which rules each test
//     exercises when run in isolation, and what each run costs. Fractional
//     rule coverage of *any* subset of the suite is a pure function of this
//     matrix (see below), so the analyzer and the suite optimizer
//     (optimize.hpp) agree with each other and with the engine's reported
//     metric bit for bit.
//   * SuiteAnalyzer — per-test coverage contributions: what each test
//     covers alone, what it adds on top of the rest of the suite
//     (marginal value), which tests are redundant, and a greedy
//     maximum-marginal ordering (the classic set-cover heuristic) that
//     tells engineers which tests to run first under a time budget.
//   * suggest_tests — coverage-guided test synthesis: one concrete sample
//     packet per untested rule, ready to be turned into a probe.
#pragma once

#include <string>
#include <vector>

#include "nettest/test.hpp"
#include "yardstick/engine.hpp"

namespace yardstick::ys {

/// Per-test Algorithm-1 outcomes for one suite, reduced to the fractional
/// rule-coverage domain. The reduction is exact: Algorithm 1 is linear in
/// the trace (T_{A∪B}[r] = T_A[r] ∪ T_B[r] — intersection distributes over
/// the union of reported header sets, and a state-inspected rule
/// contributes M[r], which absorbs unions), and the fractional aggregator
/// only asks whether each rule's covered set is non-empty. So "which rules
/// does subset S cover" is the OR of the per-test rows, and coverage of S
/// is a pure function of that count — no further BDD work per subset.
struct SuiteCoverageMatrix {
  std::vector<std::string> names;  ///< test i's name
  /// Wall-clock (steady) seconds of test i's isolated run() only — trace
  /// bookkeeping and covered-set construction are analysis overhead, not
  /// part of the cost a prioritized suite would actually pay.
  std::vector<double> seconds;
  /// covers[i][r] != 0 iff test i's isolated covered set T_i[r] is
  /// non-empty (indexed by test, then RuleId).
  std::vector<std::vector<char>> covers;
  /// vacuous[r] != 0 iff rule r's disjoint match set is empty (shadowed or
  /// unreachable); the fraction measure counts such rules as covered no
  /// matter what the suite does.
  std::vector<char> vacuous;
  size_t rule_count = 0;     ///< total rules (both tables, every device)
  size_t vacuous_count = 0;  ///< rules with vacuous[r] set
  /// True when a resource budget degraded any underlying computation; all
  /// covers[] rows are then lower bounds (missing rules read as uncovered).
  bool truncated = false;

  [[nodiscard]] size_t test_count() const { return names.size(); }

  /// Fractional rule coverage of a subset covering `covered_rules`
  /// non-vacuous rules — the same fold the fractional aggregator performs,
  /// so the double is bit-identical to the engine's.
  [[nodiscard]] double coverage_of(size_t covered_rules) const {
    if (rule_count == 0) return 1.0;
    return static_cast<double>(vacuous_count + covered_rules) /
           static_cast<double>(rule_count);
  }

  /// Number of non-vacuous rules covered by test i alone.
  [[nodiscard]] size_t covered_by(size_t i) const;
};

/// Runs every test of `suite` in isolation and reduces each run's covered
/// sets to the boolean rows above. Cost: n test runs + n covered-set
/// builds against `transfer.index()` — not O(n^2): every subset evaluation
/// downstream is pure integer work on the matrix.
///
/// With `threads` > 1 the isolated runs themselves fan out across a
/// per-worker BddManager pool (the §8 sharding idiom, lifted from rules to
/// whole tests): each worker owns a private manager, match-set index and
/// transfer, and tests are pulled off a shared queue. The matrix rows are
/// set-emptiness facts about canonically-constructed BDDs, which no
/// manager renumbering can change — so the matrix, and everything derived
/// from it, is bit-identical at any thread count (`seconds` carries real
/// wall-clock and is exempt, which is why prioritization is excluded from
/// golden comparisons). Contract on the suite: at `threads` > 1 a test
/// must derive all symbolic state from the transfer it is handed (every
/// test in src/nettest does); a test closing over PacketSets bound to the
/// caller's manager requires `threads` == 1. Worker index builds charge
/// `budget`, so a budgeted run trips earlier at higher thread counts.
/// This is deliberately outside the incremental cache (DESIGN.md §11):
/// every per-test trace has a distinct content key, so caching would churn
/// the artifact without ever producing a warm hit.
///
/// `budget` (non-owning, may be null) bounds the work; a budget tripping
/// mid-build surfaces as `truncated` with the rows built so far.
[[nodiscard]] SuiteCoverageMatrix build_suite_matrix(
    const dataplane::Transfer& transfer, const nettest::TestSuite& suite,
    const ResourceBudget* budget = nullptr, unsigned threads = 1);

struct TestContribution {
  std::string name;
  /// Fractional rule coverage of this test run by itself.
  double solo = 0.0;
  /// Coverage the full suite loses if this test is removed.
  double marginal = 0.0;
  /// True when removing the test changes nothing (within epsilon).
  bool redundant = false;
  /// Wall-clock (steady) seconds spent running this test in isolation —
  /// the cost side of the cost/coverage trade-off the greedy order
  /// optimizes the value side of.
  double seconds = 0.0;
};

struct SuiteAnalysis {
  std::vector<TestContribution> tests;
  /// Test indices in greedy maximum-marginal order: running the suite in
  /// this order front-loads coverage.
  std::vector<size_t> greedy_order;
  /// Cumulative fractional rule coverage after each greedy step.
  std::vector<double> greedy_cumulative;
  /// Fractional rule coverage of the whole suite.
  double full = 0.0;
  /// Wall-clock (steady) seconds the whole analysis took, including the
  /// per-test matrix build and the leave-one-out and greedy passes.
  double analyze_seconds = 0.0;
  /// True when a resource budget degraded any underlying coverage
  /// computation: every number above is then a lower bound, and marginals
  /// (clamped at 0) may under-state a test's real contribution.
  bool truncated = false;
};

class SuiteAnalyzer {
 public:
  /// `budget` (non-owning, may be null; must outlive the analyzer) bounds
  /// every per-test coverage computation; a tripped budget surfaces as
  /// SuiteAnalysis::truncated instead of an exception. `threads` > 1
  /// shards each per-test covered-set build across that many workers
  /// (0 = one per hardware thread) with bit-identical results.
  SuiteAnalyzer(bdd::BddManager& mgr, const net::Network& network,
                const ResourceBudget* budget = nullptr, unsigned threads = 1)
      : mgr_(mgr), network_(network), budget_(budget), threads_(threads) {
    if (budget != nullptr) mgr.set_budget(budget);
  }

  /// Builds the suite's coverage matrix (one isolated run + covered-set
  /// build per test) and computes contributions against fractional rule
  /// coverage. The leave-one-out marginals and the greedy ordering are
  /// integer folds over the matrix, so the analysis is bit-identical at
  /// any thread count.
  [[nodiscard]] SuiteAnalysis analyze(const dataplane::Transfer& transfer,
                                      const nettest::TestSuite& suite,
                                      double epsilon = 1e-12) const;

 private:
  bdd::BddManager& mgr_;
  const net::Network& network_;
  const ResourceBudget* budget_ = nullptr;
  unsigned threads_ = 1;
};

/// A synthesized probe for an untested rule.
struct TestSuggestion {
  net::RuleId rule;
  net::DeviceId device;
  packet::ConcretePacket sample;  // one packet that exercises the rule

  [[nodiscard]] std::string to_string(const net::Network& network) const;
};

/// Coverage-guided suggestions: for up to `max_suggestions` untested
/// rules (optionally filtered by device), sample a concrete packet from
/// the rule's exercisable space — its disjoint match set clipped by the
/// device's ACL-permitted space. Rules whose exercisable space is empty
/// (reachable only via state inspection) are skipped. The exhaustive,
/// device-grouped generalization of this lives in optimize.hpp
/// (build_gap_report).
///
/// Reads the engine's already-built match sets, so it composes with the
/// full option set the engine was constructed with: under `--cache-dir`
/// the sets may be cache-prefilled, and that is invisible here — the
/// §11 bit-identity contract makes a prefilled set node-for-node equal
/// to a recomputed one, so the sampled probes are identical either way.
[[nodiscard]] std::vector<TestSuggestion> suggest_tests(
    const CoverageEngine& engine, size_t max_suggestions = 16,
    const DeviceFilter& filter = nullptr);

}  // namespace yardstick::ys
