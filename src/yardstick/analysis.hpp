// Test-suite analysis on top of coverage.
//
// The paper's closing §7.2 point: Yardstick lets engineers focus on "the
// creation of new tests that provably improve coverage — rather than on
// development of redundant tests that do little to find additional
// errors". This module operationalizes that:
//
//   * SuiteAnalyzer — per-test coverage contributions: what each test
//     covers alone, what it adds on top of the rest of the suite
//     (marginal value), which tests are redundant, and a greedy
//     maximum-marginal ordering (the classic set-cover heuristic) that
//     tells engineers which tests to run first under a time budget.
//   * suggest_tests — coverage-guided test synthesis: one concrete sample
//     packet per untested rule, ready to be turned into a probe.
#pragma once

#include <string>
#include <vector>

#include "nettest/test.hpp"
#include "yardstick/engine.hpp"

namespace yardstick::ys {

struct TestContribution {
  std::string name;
  /// Fractional rule coverage of this test run by itself.
  double solo = 0.0;
  /// Coverage the full suite loses if this test is removed.
  double marginal = 0.0;
  /// True when removing the test changes nothing (within epsilon).
  bool redundant = false;
  /// Wall-clock (steady) seconds spent running this test in isolation —
  /// the cost side of the cost/coverage trade-off the greedy order
  /// optimizes the value side of.
  double seconds = 0.0;
};

struct SuiteAnalysis {
  std::vector<TestContribution> tests;
  /// Test indices in greedy maximum-marginal order: running the suite in
  /// this order front-loads coverage.
  std::vector<size_t> greedy_order;
  /// Cumulative fractional rule coverage after each greedy step.
  std::vector<double> greedy_cumulative;
  /// Fractional rule coverage of the whole suite.
  double full = 0.0;
  /// Wall-clock (steady) seconds the whole analysis took, including the
  /// O(n^2) leave-one-out and greedy passes.
  double analyze_seconds = 0.0;
  /// True when a resource budget degraded any underlying coverage
  /// computation: every number above is then a lower bound, and marginals
  /// (clamped at 0) may under-state a test's real contribution.
  bool truncated = false;
};

class SuiteAnalyzer {
 public:
  /// `budget` (non-owning, may be null; must outlive the analyzer) bounds
  /// every per-test coverage computation; a tripped budget surfaces as
  /// SuiteAnalysis::truncated instead of an exception.
  SuiteAnalyzer(bdd::BddManager& mgr, const net::Network& network,
                const ResourceBudget* budget = nullptr)
      : mgr_(mgr), network_(network), budget_(budget) {
    if (budget != nullptr) mgr.set_budget(budget);
  }

  /// Runs every test of `suite` in isolation (each gets its own trace)
  /// and computes contributions against fractional rule coverage.
  /// Cost: O(n) test runs + O(n^2) covered-set computations.
  ///
  /// Each evaluation builds fresh match/covered sets directly — serial,
  /// and deliberately outside the incremental cache (DESIGN.md §11):
  /// every leave-one-out trace has a distinct content key, so caching
  /// them would churn the artifact without ever producing a warm hit.
  /// `EngineOptions` (threads, cache_dir) therefore does not apply here;
  /// only the constructor's ResourceBudget bounds the work.
  [[nodiscard]] SuiteAnalysis analyze(const dataplane::Transfer& transfer,
                                      const nettest::TestSuite& suite,
                                      double epsilon = 1e-12) const;

 private:
  [[nodiscard]] double rule_coverage_of(const coverage::CoverageTrace& trace,
                                        bool* truncated = nullptr) const;

  bdd::BddManager& mgr_;
  const net::Network& network_;
  const ResourceBudget* budget_ = nullptr;
};

/// A synthesized probe for an untested rule.
struct TestSuggestion {
  net::RuleId rule;
  net::DeviceId device;
  packet::ConcretePacket sample;  // one packet that exercises the rule

  [[nodiscard]] std::string to_string(const net::Network& network) const;
};

/// Coverage-guided suggestions: for up to `max_suggestions` untested
/// rules (optionally filtered by device), sample a concrete packet from
/// the rule's exercisable space — its disjoint match set clipped by the
/// device's ACL-permitted space. Rules whose exercisable space is empty
/// (reachable only via state inspection) are skipped.
///
/// Reads the engine's already-built match sets, so it composes with the
/// full option set the engine was constructed with: under `--cache-dir`
/// the sets may be cache-prefilled, and that is invisible here — the
/// §11 bit-identity contract makes a prefilled set node-for-node equal
/// to a recomputed one, so the sampled probes are identical either way.
[[nodiscard]] std::vector<TestSuggestion> suggest_tests(
    const CoverageEngine& engine, size_t max_suggestions = 16,
    const DeviceFilter& filter = nullptr);

}  // namespace yardstick::ys
