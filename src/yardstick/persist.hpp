// Coverage-trace persistence.
//
// Yardstick's two-phase split (§5) means the trace outlives the test run:
// "the network engineer can at any time ask the system to compute new
// metrics" against it. This module serializes the compact trace
// (P_T, R_T) — including the BDDs behind every located packet set — to a
// portable text format so phase 2 can run in a different process, later,
// or on archived snapshots.
//
// Because the artifact is archived and reloaded, the reader trusts
// nothing: every node reference, variable index and section count is
// validated, and v2 files carry an FNV-1a checksum trailer. Validation
// failures raise CorruptTraceError, whose Detail distinguishes an input
// that ran out (partial write, interrupted transfer) from one whose bytes
// are wrong (bit rot, tampering). save_trace() writes atomically (temp
// file + rename) so a crash mid-write never leaves a partial file at the
// destination path.
//
// Format v2 (line-oriented, self-describing):
//   yardstick-trace v2
//   nodes <k>            # shared BDD node list, children before parents
//   <var> <low> <high>   # refs: 0/1 = terminals, n>=2 = line (n-2)
//   rules <n>
//   <rule-id> ...
//   locations <m>
//   <location-id> <root-ref> ...
//   checksum <16-hex>    # FNV-1a 64 over every preceding byte
// v1 files (no checksum trailer) are still read for compatibility with
// traces archived before the trailer existed.
//
// The low-level pieces of the format — the shared-node-section
// emitter/reader, the checksum trailer, and the fsync-hardened atomic
// writer — are exposed below so that sibling artifacts (the incremental
// result cache, src/yardstick/cache.*) persist through exactly the same
// validated, crash-safe path instead of growing a second one.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "common/status.hpp"
#include "coverage/trace.hpp"

namespace yardstick::ys {

/// Serialize a trace (v2, checksummed). `mgr` must be the manager that
/// owns the trace's packet sets.
[[nodiscard]] std::string serialize_trace(const coverage::CoverageTrace& trace,
                                          bdd::BddManager& mgr);

/// Rebuild a trace inside `mgr` (any manager with the same variable
/// count). Reads v1 and v2. Throws CorruptTraceError (a StatusError, code
/// Error::CorruptTrace) on malformed input.
[[nodiscard]] coverage::CoverageTrace deserialize_trace(const std::string& text,
                                                        bdd::BddManager& mgr);

/// Atomically persist a trace: the content is staged in a uniquely-named
/// sibling temp file and renamed over `path` only once fully flushed, so
/// `path` either keeps its previous content or holds the complete new
/// trace — never a torn write. Throws IoError on failure (the temp file
/// is cleaned up).
void save_trace(const std::string& path, const coverage::CoverageTrace& trace,
                bdd::BddManager& mgr);

/// Load and validate a persisted trace. Throws IoError if the file cannot
/// be read and CorruptTraceError if its content fails validation.
[[nodiscard]] coverage::CoverageTrace load_trace(const std::string& path,
                                                 bdd::BddManager& mgr);

// --- Shared persistence primitives --------------------------------------

/// FNV-1a 64 over a byte range: the integrity trailer of every persisted
/// artifact, and the primitive behind the incremental layer's content
/// hashes (src/yardstick/delta.*).
[[nodiscard]] uint64_t fnv1a64(const char* data, size_t size);

/// 16-digit lowercase hex rendering of a 64-bit hash.
[[nodiscard]] std::string hash_hex(uint64_t v);

/// Append the "checksum <16-hex>\n" trailer over everything in `body`.
[[nodiscard]] std::string with_checksum(std::string body);

/// Validate and strip a checksum trailer: returns the covered body
/// (including the newline before "checksum"). Throws CorruptTraceError
/// with `source` as the artifact name on a missing/malformed/mismatched
/// trailer.
[[nodiscard]] std::string checked_body(const std::string& text, const char* source);

/// Assigns file-local node references while walking BDDs out of a
/// manager: 0/1 for the terminals, n >= 2 for the (n-2)-th emitted node
/// line. Children are always emitted before parents, so readers can
/// rebuild bottom-up with backward references only.
class NodeEmitter {
 public:
  explicit NodeEmitter(bdd::BddManager& mgr) : mgr_(mgr) {}

  /// Emit (if new) every node reachable from `root` into `out` and return
  /// the file-local reference of `root`.
  uint32_t emit(bdd::NodeIndex root, std::vector<std::array<uint32_t, 3>>& out);

 private:
  [[nodiscard]] uint32_t ref(bdd::NodeIndex n) const;

  bdd::BddManager& mgr_;
  // Dense memo indexed by arena slot (node indices are dense): 0 = not
  // yet emitted, else the file ref. Grown lazily to the arena size on
  // first emit; a flat vector beats a hash map by ~10x on big walks.
  std::vector<uint32_t> refs_;
};

/// Whitespace-separated reader for the line-oriented artifact grammar.
/// Every parse failure throws CorruptTraceError naming `source` (e.g.
/// "yardstick trace", "yardstick cache") and distinguishing an input that
/// ran out from one whose bytes are wrong.
class FormatReader {
 public:
  /// Scans `body` in place (no copy; the caller keeps it alive). A plain
  /// pointer scanner instead of an istream: artifact loads are on the
  /// incremental warm path, where iostream token extraction is ~20x too
  /// slow for multi-megabyte node sections.
  FormatReader(std::string_view body, const char* source)
      : body_(body), source_(source) {}

  [[noreturn]] void fail_truncated(const std::string& why) const;
  [[noreturn]] void fail_corrupted(const std::string& why) const;

  /// One unsigned token; distinguishes the input running out
  /// (truncation) from a token that is not a number (corruption).
  uint64_t u64(const char* what);
  uint32_t u32(const char* what);

  /// One whitespace-delimited token (empty = input ran out).
  std::string_view token();

  /// Section counts must be plausible against the input size, or a
  /// flipped bit in a count field would drive reserve() into a memory
  /// bomb before a single element is read.
  size_t count(const char* what);

  void keyword(const char* kw);

  /// Read a "nodes <k>" section, validating structure (backward refs
  /// only, strict variable ordering) and materializing every node into
  /// `mgr`. Returns the file-ref -> manager-node mapping (entries 0/1 are
  /// the terminals).
  std::vector<bdd::NodeIndex> node_section(bdd::BddManager& mgr);

  /// Throws (corruption) if any token remains.
  void expect_end(const char* what);

 private:
  void skip_ws();

  std::string_view body_;
  size_t pos_ = 0;
  const char* source_;
};

/// Emit a "nodes <k>" section in the shared shape, appended to `out`.
void write_node_section(std::string& out,
                        const std::vector<std::array<uint32_t, 3>>& nodes);

/// Append the decimal rendering of `v` (manual formatting: the emit hot
/// path for node sections, where ostream insertion dominates save time).
void append_uint(std::string& out, uint64_t v);

/// Read a whole file into memory. Throws IoError on open/read failure.
[[nodiscard]] std::string read_text_file(const std::string& path);

/// Atomically (and durably) replace `path` with `content`: write + fsync
/// a uniquely-named sibling temp file (O_EXCL with a pid + sequence
/// suffix, so concurrent savers — a daemon snapshot racing an
/// ingest-replay, two engines sharing a cache dir — never clobber each
/// other's staging file), rename it over `path`, then fsync the parent
/// directory. `path` either keeps its old content or holds the complete
/// new bytes, also across power loss. Throws IoError on failure; the temp
/// file is removed on every failure path.
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace yardstick::ys
