// Coverage-trace persistence.
//
// Yardstick's two-phase split (§5) means the trace outlives the test run:
// "the network engineer can at any time ask the system to compute new
// metrics" against it. This module serializes the compact trace
// (P_T, R_T) — including the BDDs behind every located packet set — to a
// portable text format so phase 2 can run in a different process, later,
// or on archived snapshots.
//
// Format (line-oriented, self-describing):
//   yardstick-trace v1
//   nodes <k>            # shared BDD node list, children before parents
//   <var> <low> <high>   # refs: 0/1 = terminals, n>=2 = line (n-2)
//   rules <n>
//   <rule-id> ...
//   locations <m>
//   <location-id> <root-ref> ...
#pragma once

#include <string>

#include "coverage/trace.hpp"

namespace yardstick::ys {

/// Serialize a trace. `mgr` must be the manager that owns the trace's
/// packet sets.
[[nodiscard]] std::string serialize_trace(const coverage::CoverageTrace& trace,
                                          bdd::BddManager& mgr);

/// Rebuild a trace inside `mgr` (any manager with the same variable
/// count). Throws std::runtime_error on malformed input.
[[nodiscard]] coverage::CoverageTrace deserialize_trace(const std::string& text,
                                                        bdd::BddManager& mgr);

/// Convenience file wrappers.
void save_trace(const std::string& path, const coverage::CoverageTrace& trace,
                bdd::BddManager& mgr);
[[nodiscard]] coverage::CoverageTrace load_trace(const std::string& path,
                                                 bdd::BddManager& mgr);

}  // namespace yardstick::ys
