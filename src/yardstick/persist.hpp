// Coverage-trace persistence.
//
// Yardstick's two-phase split (§5) means the trace outlives the test run:
// "the network engineer can at any time ask the system to compute new
// metrics" against it. This module serializes the compact trace
// (P_T, R_T) — including the BDDs behind every located packet set — to a
// portable text format so phase 2 can run in a different process, later,
// or on archived snapshots.
//
// Because the artifact is archived and reloaded, the reader trusts
// nothing: every node reference, variable index and section count is
// validated, and v2 files carry an FNV-1a checksum trailer. Validation
// failures raise CorruptTraceError, whose Detail distinguishes an input
// that ran out (partial write, interrupted transfer) from one whose bytes
// are wrong (bit rot, tampering). save_trace() writes atomically (temp
// file + rename) so a crash mid-write never leaves a partial file at the
// destination path.
//
// Format v2 (line-oriented, self-describing):
//   yardstick-trace v2
//   nodes <k>            # shared BDD node list, children before parents
//   <var> <low> <high>   # refs: 0/1 = terminals, n>=2 = line (n-2)
//   rules <n>
//   <rule-id> ...
//   locations <m>
//   <location-id> <root-ref> ...
//   checksum <16-hex>    # FNV-1a 64 over every preceding byte
// v1 files (no checksum trailer) are still read for compatibility with
// traces archived before the trailer existed.
#pragma once

#include <string>

#include "common/status.hpp"
#include "coverage/trace.hpp"

namespace yardstick::ys {

/// Serialize a trace (v2, checksummed). `mgr` must be the manager that
/// owns the trace's packet sets.
[[nodiscard]] std::string serialize_trace(const coverage::CoverageTrace& trace,
                                          bdd::BddManager& mgr);

/// Rebuild a trace inside `mgr` (any manager with the same variable
/// count). Reads v1 and v2. Throws CorruptTraceError (a StatusError, code
/// Error::CorruptTrace) on malformed input.
[[nodiscard]] coverage::CoverageTrace deserialize_trace(const std::string& text,
                                                        bdd::BddManager& mgr);

/// Atomically persist a trace: the content is written to `path + ".tmp"`
/// and renamed over `path` only once fully flushed, so `path` either keeps
/// its previous content or holds the complete new trace — never a torn
/// write. Throws IoError on failure (the temp file is cleaned up).
void save_trace(const std::string& path, const coverage::CoverageTrace& trace,
                bdd::BddManager& mgr);

/// Load and validate a persisted trace. Throws IoError if the file cannot
/// be read and CorruptTraceError if its content fails validation.
[[nodiscard]] coverage::CoverageTrace load_trace(const std::string& path,
                                                 bdd::BddManager& mgr);

}  // namespace yardstick::ys
