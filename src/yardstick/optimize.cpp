#include "yardstick/optimize.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/trace.hpp"

namespace yardstick::ys {

namespace {

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

/// Non-vacuous rules covered by the whole suite (the set-cover universe).
size_t union_covered(const SuiteCoverageMatrix& m) {
  std::vector<char> seen(m.rule_count, 0);
  size_t covered = 0;
  for (size_t i = 0; i < m.test_count(); ++i) {
    for (size_t r = 0; r < m.rule_count; ++r) {
      if (m.covers[i][r] != 0 && seen[r] == 0) {
        seen[r] = 1;
        ++covered;
      }
    }
  }
  return covered;
}

size_t count_new(const SuiteCoverageMatrix& m, size_t test,
                 const std::vector<char>& running) {
  size_t added = 0;
  for (size_t r = 0; r < m.rule_count; ++r) {
    added += (m.covers[test][r] != 0 && running[r] == 0);
  }
  return added;
}

size_t absorb(const SuiteCoverageMatrix& m, size_t test, std::vector<char>& running) {
  size_t added = 0;
  for (size_t r = 0; r < m.rule_count; ++r) {
    if (m.covers[test][r] != 0 && running[r] == 0) {
      running[r] = 1;
      ++added;
    }
  }
  return added;
}

std::string packet_json(const packet::ConcretePacket& p) {
  return "{\"dst_ip\":\"" + packet::ipv4_to_string(p.dst_ip) + "\",\"src_ip\":\"" +
         packet::ipv4_to_string(p.src_ip) + "\",\"proto\":" + std::to_string(p.proto) +
         ",\"src_port\":" + std::to_string(p.src_port) +
         ",\"dst_port\":" + std::to_string(p.dst_port) + "}";
}

}  // namespace

bool MinimizeResult::contains(size_t index) const {
  return std::any_of(selected.begin(), selected.end(),
                     [index](const SelectedTest& s) { return s.index == index; });
}

std::vector<std::string> MinimizeResult::dropped(const SuiteCoverageMatrix& m) const {
  std::vector<std::string> out;
  for (size_t i = 0; i < m.test_count(); ++i) {
    if (!contains(i)) out.push_back(m.names[i]);
  }
  return out;
}

MinimizeResult minimize_suite(const SuiteCoverageMatrix& m, double min_coverage) {
  obs::Span span("optimize.minimize", "optimize");
  const size_t n = m.test_count();
  span.arg("tests", n);

  MinimizeResult out;
  out.suite_size = n;
  out.min_coverage = min_coverage;
  out.truncated = m.truncated;
  const size_t full_covered = union_covered(m);
  out.full_coverage = m.coverage_of(full_covered);
  // Relative slack: the subset must reach min_coverage × full. At the
  // default 1.0 the target is the full value itself, and since coverage is
  // strictly monotone in the covered-rule count, "achieved >= target" is
  // then exactly "the subset covers every rule the suite covers" — which
  // is what makes a recomputed report bit-identical, not merely close.
  const double target =
      min_coverage >= 1.0 ? out.full_coverage : min_coverage * out.full_coverage;

  std::vector<char> running(m.rule_count, 0);
  std::vector<char> chosen(n, 0);
  size_t covered = 0;
  out.achieved_coverage = m.coverage_of(0);
  while (out.achieved_coverage < target) {
    size_t best = n;
    size_t best_added = 0;
    for (size_t i = 0; i < n; ++i) {
      if (chosen[i] != 0) continue;
      const size_t added = count_new(m, i, running);
      if (added == 0) continue;
      // Ties break by name, then by suite position (ascending scan keeps
      // the earlier index on equal names).
      if (best == n || added > best_added ||
          (added == best_added && m.names[i] < m.names[best])) {
        best = i;
        best_added = added;
      }
    }
    if (best == n) break;  // no remaining test adds coverage
    chosen[best] = 1;
    covered += absorb(m, best, running);
    out.achieved_coverage = m.coverage_of(covered);
    out.selected.push_back({best, m.names[best], best_added, out.achieved_coverage});
  }
  return out;
}

std::string MinimizeResult::to_text(const SuiteCoverageMatrix& m) const {
  std::string out = "suite minimization: keep " + std::to_string(selected.size()) + "/" +
                    std::to_string(suite_size) + " tests, coverage " +
                    format_double(achieved_coverage) + " of " +
                    format_double(full_coverage) + " (min-coverage " +
                    format_double(min_coverage) + ")" +
                    (truncated ? " [truncated]" : "") + "\n";
  for (const SelectedTest& s : selected) {
    out += "  keep " + s.name + "  +" + std::to_string(s.added_rules) +
           " rule(s)  cumulative " + format_double(s.cumulative_coverage) + "\n";
  }
  const std::vector<std::string> drop = dropped(m);
  if (!drop.empty()) {
    out += "  drop:";
    for (const std::string& name : drop) out += " " + name;
    out += "\n";
  }
  if (recomputed_full >= 0.0) {
    out += "  recomputed through the engine: full " + format_double(recomputed_full) +
           "  subset " + format_double(recomputed_subset) +
           (recomputed_subset == recomputed_full ? "  (exact)" : "") + "\n";
  }
  return out;
}

PrioritizeResult prioritize_suite(const SuiteCoverageMatrix& m) {
  obs::Span span("optimize.prioritize", "optimize");
  const size_t n = m.test_count();
  span.arg("tests", n);

  PrioritizeResult out;
  out.truncated = m.truncated;
  out.full_coverage = m.coverage_of(union_covered(m));

  std::vector<char> running(m.rule_count, 0);
  std::vector<char> chosen(n, 0);
  size_t covered = 0;
  double cum_cov = m.coverage_of(0);
  double cum_sec = 0.0;
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    size_t best_added = 0;
    for (size_t i = 0; i < n; ++i) {
      if (chosen[i] != 0) continue;
      const size_t added = count_new(m, i, running);
      if (best == n) {
        best = i;
        best_added = added;
        continue;
      }
      // added/seconds compared via cross-multiplication: exact for the
      // zero-cost cases a division would turn into inf/NaN.
      const double lhs = static_cast<double>(added) * m.seconds[best];
      const double rhs = static_cast<double>(best_added) * m.seconds[i];
      bool better = lhs > rhs;
      if (lhs == rhs) {
        better = added > best_added ||
                 (added == best_added && m.names[i] < m.names[best]);
      }
      if (better) {
        best = i;
        best_added = added;
      }
    }
    chosen[best] = 1;
    covered += absorb(m, best, running);
    const double next_cov = m.coverage_of(covered);
    cum_sec += m.seconds[best];
    out.order.push_back(
        {best, m.names[best], next_cov - cum_cov, m.seconds[best], next_cov, cum_sec});
    cum_cov = next_cov;
  }
  return out;
}

std::string PrioritizeResult::to_text() const {
  std::string out = "cost-aware priority order (full coverage " +
                    format_double(full_coverage) + ")" +
                    (truncated ? " [truncated]" : "") + ":\n";
  size_t rank = 1;
  for (const PrioritizedTest& t : order) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %2zu. %-24s marginal %s  %.3fs  cumulative %s @ %.3fs\n", rank++,
                  t.name.c_str(), format_double(t.marginal).c_str(), t.seconds,
                  format_double(t.cumulative_coverage).c_str(), t.cumulative_seconds);
    out += line;
  }
  return out;
}

GapReport build_gap_report(const CoverageEngine& engine, const DeviceFilter& filter) {
  obs::Span span("optimize.gap_report", "optimize");
  GapReport out;
  out.truncated = engine.truncated();
  const net::Network& network = engine.network();
  const std::vector<net::RuleId> untested = engine.untested_rules(filter);
  out.uncovered_rules = untested.size();

  DeviceGaps* current = nullptr;
  // Content-key multiplicity within the current device: a gap whose key
  // appears k times stands for k byte-identical rules (the shadowed twins
  // are vacuous and never surface as separate gaps).
  std::map<std::string, size_t> key_count;
  for (const net::RuleId rid : untested) {
    const net::Rule& rule = network.rule(rid);
    if (current == nullptr || current->device != rule.device) {
      // untested_rules is grouped by device in network order already.
      out.devices.push_back({rule.device, network.device(rule.device).name, 0, {}});
      current = &out.devices.back();
      current->rule_count =
          network.table(rule.device, net::TableKind::Acl).size() +
          network.table(rule.device, net::TableKind::Fib).size();
      key_count.clear();
      for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
        for (const net::RuleId r : network.table(rule.device, table)) {
          ++key_count[net::rule_content_key(network, r)];
        }
      }
    }
    GapWitness w;
    w.rule = rid;
    w.kind = rule.kind;
    w.table = rule.table;
    w.content_key = net::rule_content_key(network, rid);
    const auto it = key_count.find(w.content_key);
    w.collapsed = it == key_count.end() ? 1 : it->second;
    // The space behavioral tests can actually reach: the disjoint match
    // set, clipped by the ACL stage for FIB rules (same exercisable space
    // as suggest_tests, but exhaustive instead of capped).
    packet::PacketSet space = engine.match_sets().match_set(rid);
    if (rule.table == net::TableKind::Fib && network.has_acl(rule.device)) {
      space = space.intersect(engine.match_sets().acl_permitted_space(rule.device));
    }
    if (space.empty()) {
      w.state_only = true;
      ++out.state_only;
    } else {
      w.witness = space.sample();
      ++out.packet_witnesses;
    }
    current->gaps.push_back(std::move(w));
  }
  return out;
}

std::string GapReport::to_text() const {
  std::string out = "coverage gaps: " + std::to_string(uncovered_rules) +
                    " uncovered rule(s) across " + std::to_string(devices.size()) +
                    " device(s); " + std::to_string(packet_witnesses) +
                    " packet witness(es), " + std::to_string(state_only) +
                    " state-only" + (truncated ? " [truncated]" : "") + "\n";
  for (const DeviceGaps& d : devices) {
    out += "device " + d.name + " (" + std::to_string(d.gaps.size()) + "/" +
           std::to_string(d.rule_count) + " rules uncovered):\n";
    for (const GapWitness& g : d.gaps) {
      out += "  " + g.content_key;
      if (g.collapsed > 1) out += "  [x" + std::to_string(g.collapsed) + " identical]";
      if (g.state_only) {
        out += "  STATE-ONLY (no packet can reach it; add a state-inspection test)";
      } else {
        out += "  witness " + g.witness.to_string();
      }
      out += "\n";
    }
  }
  return out;
}

std::string optimize_to_json(const SuiteCoverageMatrix& m,
                             const MinimizeResult* minimize,
                             const PrioritizeResult* prioritize,
                             const GapReport* gaps) {
  std::string out = "{\"suite_size\":" + std::to_string(m.test_count());
  out += ",\"tests\":[";
  for (size_t i = 0; i < m.test_count(); ++i) {
    if (i) out += ",";
    out += "{\"name\":\"" + escape(m.names[i]) +
           "\",\"seconds\":" + format_double(m.seconds[i]) + "}";
  }
  out += "]";
  if (minimize != nullptr) {
    out += ",\"minimize\":{\"min_coverage\":" + format_double(minimize->min_coverage);
    out += ",\"full_coverage\":" + format_double(minimize->full_coverage);
    out += ",\"achieved_coverage\":" + format_double(minimize->achieved_coverage);
    out += ",\"selected\":[";
    for (size_t i = 0; i < minimize->selected.size(); ++i) {
      const SelectedTest& s = minimize->selected[i];
      if (i) out += ",";
      out += "{\"index\":" + std::to_string(s.index) + ",\"name\":\"" +
             escape(s.name) + "\",\"added_rules\":" + std::to_string(s.added_rules) +
             ",\"cumulative_coverage\":" + format_double(s.cumulative_coverage) + "}";
    }
    out += "],\"dropped\":[";
    const std::vector<std::string> drop = minimize->dropped(m);
    for (size_t i = 0; i < drop.size(); ++i) {
      if (i) out += ",";
      out += "\"" + escape(drop[i]) + "\"";
    }
    out += "]";
    if (minimize->recomputed_full >= 0.0) {
      out += ",\"recomputed\":{\"full\":" + format_double(minimize->recomputed_full) +
             ",\"subset\":" + format_double(minimize->recomputed_subset) +
             ",\"exact\":" +
             (minimize->recomputed_subset == minimize->recomputed_full ? "true"
                                                                       : "false") +
             "}";
    }
    out += ",\"truncated\":" + std::string(minimize->truncated ? "true" : "false") + "}";
  }
  if (prioritize != nullptr) {
    out += ",\"prioritize\":{\"full_coverage\":" +
           format_double(prioritize->full_coverage);
    out += ",\"order\":[";
    for (size_t i = 0; i < prioritize->order.size(); ++i) {
      const PrioritizedTest& t = prioritize->order[i];
      if (i) out += ",";
      out += "{\"index\":" + std::to_string(t.index) + ",\"name\":\"" +
             escape(t.name) + "\",\"marginal\":" + format_double(t.marginal) +
             ",\"seconds\":" + format_double(t.seconds) +
             ",\"cumulative_coverage\":" + format_double(t.cumulative_coverage) +
             ",\"cumulative_seconds\":" + format_double(t.cumulative_seconds) + "}";
    }
    out += "],\"truncated\":" +
           std::string(prioritize->truncated ? "true" : "false") + "}";
  }
  if (gaps != nullptr) {
    out += ",\"gap_report\":{\"uncovered_rules\":" +
           std::to_string(gaps->uncovered_rules);
    out += ",\"packet_witnesses\":" + std::to_string(gaps->packet_witnesses);
    out += ",\"state_only\":" + std::to_string(gaps->state_only);
    out += ",\"devices\":[";
    for (size_t i = 0; i < gaps->devices.size(); ++i) {
      const DeviceGaps& d = gaps->devices[i];
      if (i) out += ",";
      out += "{\"device\":\"" + escape(d.name) +
             "\",\"rules\":" + std::to_string(d.rule_count) + ",\"gaps\":[";
      for (size_t j = 0; j < d.gaps.size(); ++j) {
        const GapWitness& g = d.gaps[j];
        if (j) out += ",";
        out += "{\"rule\":\"" + escape(g.content_key) + "\",\"kind\":\"" +
               std::string(net::to_string(g.kind)) + "\",\"collapsed\":" +
               std::to_string(g.collapsed) + ",\"state_only\":" +
               (g.state_only ? "true" : "false");
        if (!g.state_only) out += ",\"witness\":" + packet_json(g.witness);
        out += "}";
      }
      out += "]}";
    }
    out += "],\"truncated\":" + std::string(gaps->truncated ? "true" : "false") + "}";
  }
  out += "}";
  return out;
}

}  // namespace yardstick::ys
