#include "yardstick/json.hpp"

#include <cmath>
#include <sstream>

namespace yardstick::ys {

namespace {

/// JSON has no NaN/Infinity literals; a metric that degraded to a
/// non-finite value (e.g. under a tripped budget) serializes as 0 so the
/// document stays parseable — the truncated flag tells readers the row is
/// partial.
void finite(std::ostringstream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << 0;
  }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void metric_row(std::ostringstream& out, const MetricRow& m) {
  out << "{\"device_fractional\":";
  finite(out, m.device_fractional);
  out << ",\"interface_fractional\":";
  finite(out, m.interface_fractional);
  out << ",\"rule_fractional\":";
  finite(out, m.rule_fractional);
  out << ",\"rule_weighted\":";
  finite(out, m.rule_weighted);
  out << "}";
}

}  // namespace

std::string report_to_json(const CoverageReport& report) {
  std::ostringstream out;
  out << "{\"overall\":";
  metric_row(out, report.overall);
  out << ",\"by_role\":[";
  for (size_t i = 0; i < report.by_role.size(); ++i) {
    const RoleBreakdown& row = report.by_role[i];
    if (i) out << ",";
    out << "{\"role\":\"" << to_string(row.role) << "\",\"devices\":" << row.device_count
        << ",\"interfaces\":" << row.interface_count << ",\"rules\":" << row.rule_count
        << ",\"metrics\":";
    metric_row(out, row.metrics);
    out << "}";
  }
  out << "],\"gaps\":[";
  for (size_t i = 0; i < report.gaps.size(); ++i) {
    if (i) out << ",";
    out << "{\"kind\":\"" << to_string(report.gaps[i].kind)
        << "\",\"untested\":" << report.gaps[i].untested
        << ",\"total\":" << report.gaps[i].total << "}";
  }
  out << "],\"untested_devices\":" << report.untested_device_count
      << ",\"untested_interfaces\":" << report.untested_interface_count
      << ",\"timings\":{\"match_sets_seconds\":";
  finite(out, report.timings.match_sets_seconds);
  out << ",\"covered_sets_seconds\":";
  finite(out, report.timings.covered_sets_seconds);
  out << ",\"offline_seconds\":";
  finite(out, report.timings.offline_seconds());
  out << "},\"truncated\":" << (report.truncated ? "true" : "false") << "}";
  return out.str();
}

std::string results_to_json(const std::vector<nettest::TestResult>& results) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < results.size(); ++i) {
    const nettest::TestResult& r = results[i];
    if (i) out << ",";
    out << "{\"name\":\"" << escape(r.name) << "\",\"category\":\""
        << to_string(r.category) << "\",\"checks\":" << r.checks
        << ",\"failures\":" << r.failures << ",\"passed\":" << (r.passed() ? "true" : "false")
        << ",\"messages\":[";
    for (size_t j = 0; j < r.failure_messages.size(); ++j) {
      if (j) out << ",";
      out << "\"" << escape(r.failure_messages[j]) << "\"";
    }
    out << "]}";
  }
  out << "]";
  return out.str();
}

}  // namespace yardstick::ys
