// Incremental result cache (DESIGN.md §11).
//
// Persists the offline phase's per-device results — match fields, disjoint
// match sets, matched/ACL spaces, covered sets — keyed by the content
// hashes of src/yardstick/delta.*, in a single checksummed artifact
// written through the same fsync-hardened atomic path as trace snapshots.
// On the next run, devices whose keys match load their sets straight into
// the engine's manager (canonical, so bit-identical to recomputation) and
// only the invalidation frontier is rebuilt.
//
// Records are keyed by hash, not by device: devices with identical tables
// (every ToR of a homogeneous pod) share one record, so the artifact is a
// content-addressed store, deduplicated for free.
//
// Format v1 (line-oriented, same grammar family as the trace format):
//   yardstick-cache v1
//   options <16-hex>       # engine-options fingerprint; mismatch = rebuild
//   vars <n>               # BDD variable universe; mismatch = rebuild
//   nodes <k>              # shared node section (persist.hpp shape)
//   <var> <low> <high>
//   match-records <n>
//   <16-hex fib_hash> <rule_count> <matched_space_ref> <acl_permitted_ref>
//   <field_ref> <set_ref>  # rule_count lines, table order (Acl then Fib)
//   cover-records <m>
//   <16-hex cov_hash> <rule_count>
//   <covered_ref>          # rule_count lines
//   checksum <16-hex>
//
// Fallback is never an error: a missing, corrupt, truncated or
// version/options-mismatched cache yields an empty prefill and the engine
// rebuilds from scratch, exactly as if the flag were off.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "coverage/covered_sets.hpp"
#include "dataplane/match_sets.hpp"
#include "yardstick/delta.hpp"

namespace yardstick::ys {

/// What the incremental layer did this run — surfaced via
/// CoverageEngine::cache_stats(), obs counters and the CLI's stderr line.
struct CacheStats {
  bool loaded = false;            // a valid cache file was read
  std::string fallback_reason;    // why loading yielded nothing (empty = n/a)
  size_t devices = 0;
  size_t match_hits = 0;          // devices whose step-1 record was reused
  size_t cover_hits = 0;          // devices whose Algorithm-1 record was reused
  size_t invalidated = 0;         // frontier size: devices recomputed despite a cache
  bool saved = false;             // a fresh cache file was committed
  std::string save_error;         // why saving was skipped/failed (empty = n/a)

  [[nodiscard]] size_t match_misses() const { return devices - match_hits; }
  [[nodiscard]] size_t cover_misses() const { return devices - cover_hits; }
};

/// Fingerprint of every engine option that affects what a run computes.
/// Thread count is included deliberately: results are bit-identical across
/// thread counts, but the issue's contract is that an options change forces
/// a full rebuild, keeping cache reuse trivially auditable.
[[nodiscard]] uint64_t options_fingerprint(unsigned threads, size_t max_bdd_nodes,
                                           bool has_deadline);

/// One engine construction's incremental context: loads the cache (if
/// any), exposes the prefills for MatchSetIndex/CoveredSets, and saves the
/// refreshed cache afterwards. Construction and save() never throw — every
/// failure degrades to a full rebuild (or an unsaved cache) recorded in
/// stats().
class IncrementalSession {
 public:
  /// Computes this snapshot's device keys and attempts to load
  /// `<cache_dir>/coverage.cache` into `mgr`. `mgr`, `network` and `trace`
  /// must outlive the session.
  IncrementalSession(bdd::BddManager& mgr, const net::Network& network,
                     const coverage::CoverageTrace& trace, std::string cache_dir,
                     uint64_t options_hash);

  /// Null when no device hit (full rebuild).
  [[nodiscard]] const dataplane::MatchPrefill* match_prefill() const {
    return match_prefill_.get();
  }
  [[nodiscard]] const coverage::CoverPrefill* cover_prefill() const {
    return cover_prefill_.get();
  }

  /// Persist the refreshed cache for the next run. Skipped (with the
  /// reason in stats) when the run was truncated — partial sets must never
  /// masquerade as reusable results — or when every device hit (the file
  /// on disk is already current). Never throws.
  void save(const dataplane::MatchSetIndex& index, const coverage::CoveredSets& covered);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<DeviceKeys>& keys() const { return keys_; }

 private:
  void load();

  bdd::BddManager& mgr_;
  const net::Network& network_;
  std::string path_;
  uint64_t options_hash_;
  std::vector<DeviceKeys> keys_;
  std::unique_ptr<dataplane::MatchPrefill> match_prefill_;
  std::unique_ptr<coverage::CoverPrefill> cover_prefill_;
  CacheStats stats_;
};

}  // namespace yardstick::ys
