// Cross-snapshot monitoring.
//
// Two production concerns from the paper:
//   * §5.2: path-based metrics use the forwarding-state-implied path
//     universe as their denominator, and state bugs can silently change
//     that universe — "we can guard against this risk by flagging to the
//     user when the size of the path universe changes dramatically
//     relative to prior state snapshots."
//   * §8.2: engineers run local metrics frequently "to more quickly catch
//     regressions in testing" — a coverage drop between snapshots is the
//     signal that a change removed effective testing.
//
// SnapshotMonitor implements both: feed it per-snapshot statistics and it
// flags dramatic universe changes and coverage regressions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "yardstick/report.hpp"

namespace yardstick::ys {

/// Per-snapshot summary retained by the monitor.
struct SnapshotStats {
  std::string label;
  uint64_t path_universe_size = 0;
  size_t rule_count = 0;
  size_t interface_count = 0;
  MetricRow coverage;
};

/// One flagged anomaly between consecutive snapshots.
struct SnapshotAlert {
  enum class Kind : uint8_t {
    PathUniverseShift,    // universe grew/shrank beyond the threshold
    CoverageRegression,   // a headline metric dropped beyond tolerance
    RuleCountShift,       // forwarding state changed size dramatically
  };
  Kind kind;
  std::string message;
};

[[nodiscard]] inline const char* to_string(SnapshotAlert::Kind k) {
  switch (k) {
    case SnapshotAlert::Kind::PathUniverseShift: return "path-universe-shift";
    case SnapshotAlert::Kind::CoverageRegression: return "coverage-regression";
    case SnapshotAlert::Kind::RuleCountShift: return "rule-count-shift";
  }
  return "?";
}

struct SnapshotMonitorOptions {
  /// Relative change in path-universe size considered dramatic ("absent
  /// major operational changes, this universe is not expected to change
  /// significantly from day-to-day", §5.2).
  double universe_shift_threshold = 0.2;
  /// Relative change in rule count considered dramatic.
  double rule_shift_threshold = 0.2;
  /// Absolute drop in a coverage headline considered a regression.
  double coverage_drop_tolerance = 0.01;
};

class SnapshotMonitor {
 public:
  using Options = SnapshotMonitorOptions;

  explicit SnapshotMonitor(Options options = {}) : options_(options) {}

  /// Record a snapshot and return alerts relative to the previous one.
  std::vector<SnapshotAlert> record(SnapshotStats stats);

  [[nodiscard]] const std::vector<SnapshotStats>& history() const { return history_; }

 private:
  [[nodiscard]] static double relative_change(double before, double after) {
    if (before == 0.0) return after == 0.0 ? 0.0 : 1.0;
    return (after - before) / before;
  }

  Options options_;
  std::vector<SnapshotStats> history_;
};

/// Compare two coverage reports metric by metric (overall and per-role);
/// returns human-readable regression descriptions (empty = no regression).
[[nodiscard]] std::vector<std::string> coverage_regressions(
    const CoverageReport& before, const CoverageReport& after, double tolerance = 0.01);

}  // namespace yardstick::ys
