// CoverageTracker — Yardstick's online phase (§5, Figure 4).
//
// Testing tools report coverage through exactly two calls while tests run:
//
//     tracker.mark_packet(P);   // behavioral tests: located packets used
//     tracker.mark_rule(r);     // state-inspection tests: rule inspected
//
// The tracker folds reports into the compact coverage trace on the fly
// (union per location; a set of rule ids), so tracking cost stays off the
// critical testing path and is independent of how many API calls the tool
// makes. An append-only log mode exists for the design-choice ablation
// measured in bench_tracking_overhead.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "coverage/trace.hpp"

namespace yardstick::ys {

class CoverageTracker {
 public:
  enum class Mode : uint8_t {
    /// Maintain the (P_T, R_T) union incrementally (the paper's design).
    Dedup,
    /// Append raw reports; the union is folded when the trace is read
    /// (ablation baseline: memory grows with the number of API calls).
    Log,
  };

  explicit CoverageTracker(Mode mode = Mode::Dedup) : mode_(mode) {}

  /// Turn reporting on/off without touching the instrumented tool; a
  /// disabled tracker makes both API calls no-ops (used to measure the
  /// bare test time in Figure 8).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void mark_packet(const packet::LocatedPacketSet& packets) {
    if (!enabled_) return;
    ++packet_calls_;
    if (mode_ == Mode::Dedup) {
      trace_.mark_packet(packets);
    } else {
      for (const auto& [loc, ps] : packets.entries()) log_.emplace_back(loc, ps);
    }
  }

  void mark_packet(packet::LocationId location, const packet::PacketSet& packets) {
    if (!enabled_) return;
    ++packet_calls_;
    if (mode_ == Mode::Dedup) {
      trace_.mark_packet(location, packets);
    } else {
      log_.emplace_back(location, packets);
    }
  }

  void mark_rule(net::RuleId rule) {
    if (!enabled_) return;
    ++rule_calls_;
    trace_.mark_rule(rule);
  }

  /// The coverage trace accumulated so far. In Log mode this folds the
  /// pending log into the trace first.
  [[nodiscard]] const coverage::CoverageTrace& trace() {
    for (const auto& [loc, ps] : log_) trace_.mark_packet(loc, ps);
    log_.clear();
    return trace_;
  }

  void reset() {
    trace_.clear();
    log_.clear();
    packet_calls_ = 0;
    rule_calls_ = 0;
  }

  [[nodiscard]] uint64_t packet_calls() const { return packet_calls_; }
  [[nodiscard]] uint64_t rule_calls() const { return rule_calls_; }
  [[nodiscard]] size_t log_entries() const { return log_.size(); }

 private:
  Mode mode_;
  bool enabled_ = true;
  coverage::CoverageTrace trace_;
  std::vector<std::pair<packet::LocationId, packet::PacketSet>> log_;
  uint64_t packet_calls_ = 0;
  uint64_t rule_calls_ = 0;
};

}  // namespace yardstick::ys
