#include "yardstick/persist.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "common/fault.hpp"

namespace yardstick::ys {

namespace {

using bdd::Bdd;
using bdd::BddManager;
using bdd::kFalse;
using bdd::kTrue;
using bdd::NodeIndex;

using Detail = CorruptTraceError::Detail;

constexpr const char* kHeaderV1 = "yardstick-trace v1";
constexpr const char* kHeaderV2 = "yardstick-trace v2";

/// FNV-1a 64 over a byte range; the v2 integrity trailer.
uint64_t fnv1a(const char* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string to_hex(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Assigns file-local references: 0/1 for terminals, >=2 for emitted nodes
/// (reference n maps to the (n-2)-th emitted node line).
class NodeEmitter {
 public:
  explicit NodeEmitter(BddManager& mgr) : mgr_(mgr) {}

  uint32_t emit(NodeIndex root, std::vector<std::array<uint32_t, 3>>& out) {
    if (root == kFalse) return 0;
    if (root == kTrue) return 1;
    const auto it = refs_.find(root);
    if (it != refs_.end()) return it->second;
    // Iterative post-order so children are always emitted first.
    std::vector<std::pair<NodeIndex, bool>> stack{{root, false}};
    while (!stack.empty()) {
      auto [n, expanded] = stack.back();
      stack.pop_back();
      if (n <= kTrue || refs_.contains(n)) continue;
      const bdd::BddNode& node = mgr_.node(n);
      if (!expanded) {
        stack.push_back({n, true});
        stack.push_back({node.low, false});
        stack.push_back({node.high, false});
        continue;
      }
      out.push_back({node.var, ref(node.low), ref(node.high)});
      refs_.emplace(n, static_cast<uint32_t>(out.size() - 1) + 2);
    }
    return refs_.at(root);
  }

 private:
  [[nodiscard]] uint32_t ref(NodeIndex n) const {
    if (n == kFalse) return 0;
    if (n == kTrue) return 1;
    return refs_.at(n);
  }

  BddManager& mgr_;
  std::unordered_map<NodeIndex, uint32_t> refs_;
};

[[noreturn]] void truncated(const std::string& why) {
  throw CorruptTraceError(Detail::Truncated, why, {.source = "yardstick trace"});
}

[[noreturn]] void corrupted(const std::string& why) {
  throw CorruptTraceError(Detail::Corrupted, why, {.source = "yardstick trace"});
}

/// Reads one unsigned token; distinguishes the stream running out
/// (truncation) from a token that is not a number (corruption).
uint64_t read_u64(std::istream& in, const char* what) {
  uint64_t value = 0;
  if (!(in >> value)) {
    if (in.eof()) truncated(std::string("input ends inside ") + what);
    corrupted(std::string("non-numeric value in ") + what);
  }
  return value;
}

uint32_t read_u32(std::istream& in, const char* what) {
  const uint64_t v = read_u64(in, what);
  if (v > UINT32_MAX) corrupted(std::string("value out of 32-bit range in ") + what);
  return static_cast<uint32_t>(v);
}

/// Section counts must be plausible against the input size, or a flipped
/// bit in a count field would drive reserve() into a memory bomb before a
/// single element is read. Two bytes per element ("0 " etc.) is the
/// tightest possible encoding.
size_t read_count(std::istream& in, const char* what, size_t input_size) {
  const uint64_t count = read_u64(in, what);
  if (count > input_size / 2 + 1) {
    corrupted(std::string("implausible ") + what + " count " + std::to_string(count));
  }
  return static_cast<size_t>(count);
}

void expect_keyword(std::istream& in, const char* keyword) {
  std::string word;
  if (!(in >> word)) truncated(std::string("missing '") + keyword + "' section");
  if (word != keyword) {
    corrupted("expected '" + std::string(keyword) + "' section, found '" + word + "'");
  }
}

std::string body_for_version(const std::string& text, bool v2) {
  if (!v2) return text;
  // v2 integrity trailer: "checksum <16-hex>" over every preceding byte.
  const size_t pos = text.rfind("\nchecksum ");
  if (pos == std::string::npos) {
    truncated("missing checksum trailer (file cut off before the end)");
  }
  const size_t covered = pos + 1;  // includes the newline before "checksum"
  std::istringstream trailer(text.substr(covered));
  std::string keyword, hex;
  trailer >> keyword >> hex;
  if (hex.size() != 16 || hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    corrupted("malformed checksum trailer '" + hex + "'");
  }
  std::string rest;
  if (trailer >> rest) corrupted("trailing garbage after checksum trailer");
  if (to_hex(fnv1a(text.data(), covered)) != hex) {
    corrupted("checksum mismatch (content was altered after writing)");
  }
  return text.substr(0, covered);
}

}  // namespace

std::string serialize_trace(const coverage::CoverageTrace& trace, BddManager& mgr) {
  NodeEmitter emitter(mgr);
  std::vector<std::array<uint32_t, 3>> nodes;
  std::vector<std::pair<packet::LocationId, uint32_t>> roots;
  for (const auto& [loc, ps] : trace.marked_packets().entries()) {
    roots.emplace_back(loc, emitter.emit(ps.raw().index(), nodes));
  }

  std::ostringstream out;
  out << kHeaderV2 << "\n";
  out << "nodes " << nodes.size() << "\n";
  for (const auto& [var, low, high] : nodes) {
    out << var << " " << low << " " << high << "\n";
  }
  // Rules are kept in an unordered_set; emit them sorted so the same
  // trace always serializes to the same bytes. Canonical output is what
  // lets crash-recovery checks compare snapshot files directly.
  std::vector<uint32_t> rules;
  rules.reserve(trace.marked_rules().size());
  for (const net::RuleId rid : trace.marked_rules()) rules.push_back(rid.value);
  std::sort(rules.begin(), rules.end());
  out << "rules " << rules.size() << "\n";
  for (const uint32_t rid : rules) out << rid << "\n";
  out << "locations " << roots.size() << "\n";
  for (const auto& [loc, root] : roots) out << loc << " " << root << "\n";

  std::string body = out.str();
  body += "checksum " + to_hex(fnv1a(body.data(), body.size())) + "\n";
  return body;
}

coverage::CoverageTrace deserialize_trace(const std::string& text, BddManager& mgr) {
  std::istringstream header_in(text);
  std::string header;
  if (!std::getline(header_in, header)) truncated("empty input");
  const bool v2 = header == kHeaderV2;
  if (!v2 && header != kHeaderV1) corrupted("unrecognized header '" + header + "'");

  const std::string body = body_for_version(text, v2);
  std::istringstream in(body);
  std::getline(in, header);  // skip the (validated) header line

  expect_keyword(in, "nodes");
  const size_t node_count = read_count(in, "node", body.size());
  std::vector<NodeIndex> by_ref;  // file ref -> manager node index
  by_ref.reserve(node_count + 2);
  by_ref.push_back(kFalse);
  by_ref.push_back(kTrue);
  for (size_t i = 0; i < node_count; ++i) {
    const uint32_t var = read_u32(in, "node list");
    const uint32_t low = read_u32(in, "node list");
    const uint32_t high = read_u32(in, "node list");
    if (var >= mgr.num_vars()) {
      corrupted("node variable " + std::to_string(var) + " out of range");
    }
    if (low >= by_ref.size() || high >= by_ref.size()) {
      // References may only point backwards; anything else could knit
      // cycles or dangling structure into the arena.
      corrupted("forward/out-of-range node reference at node " + std::to_string(i));
    }
    // A well-formed ROBDD is strictly ordered: children sit at deeper
    // levels than their parent. Violations would produce non-canonical
    // diagrams whose model counts are silently wrong — reject them.
    const auto level = [&](NodeIndex n) {
      return n <= kTrue ? mgr.num_vars() : mgr.node(n).var;
    };
    if (var >= level(by_ref[low]) || var >= level(by_ref[high])) {
      corrupted("variable-ordering violation at node " + std::to_string(i));
    }
    by_ref.push_back(mgr.make(var, by_ref[low], by_ref[high]));
  }

  coverage::CoverageTrace trace;
  expect_keyword(in, "rules");
  const size_t rule_count = read_count(in, "rule", body.size());
  for (size_t i = 0; i < rule_count; ++i) {
    trace.mark_rule(net::RuleId{read_u32(in, "rule list")});
  }

  expect_keyword(in, "locations");
  const size_t location_count = read_count(in, "location", body.size());
  for (size_t i = 0; i < location_count; ++i) {
    const auto loc = static_cast<packet::LocationId>(read_u64(in, "location list"));
    const uint32_t root = read_u32(in, "location list");
    if (root >= by_ref.size()) {
      corrupted("location root reference " + std::to_string(root) + " out of range");
    }
    trace.mark_packet(loc, packet::PacketSet(Bdd(&mgr, by_ref[root])));
  }

  if (v2) {
    std::string extra;
    if (in >> extra) corrupted("trailing garbage after locations section");
  }
  return trace;
}

namespace {

/// write(2) the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Directory containing `path` ("." for a bare filename) — the directory
/// whose entry the rename mutates, and therefore the one to fsync.
std::string parent_dir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void save_trace(const std::string& path, const coverage::CoverageTrace& trace,
                BddManager& mgr) {
  // Serialize before touching the filesystem: an exhausted budget or a
  // bad trace must not cost us the temp file dance.
  const std::string content = serialize_trace(trace, mgr);

  // Crash-safe commit: write + fsync a sibling temp file, rename it over
  // the destination, then fsync the parent directory. rename(2) is atomic
  // within a filesystem, so `path` either keeps its old content or holds
  // the complete new trace; the two fsyncs make that also hold across
  // power loss — without them the rename can hit disk before the data
  // (leaving a committed-but-empty file), or evaporate entirely.
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw IoError("cannot open for writing", {.source = tmp});
  try {
    const bool wrote = write_all(fd, content.data(), content.size());
    if (fault::active()) fault::fire("persist.save.write");
    if (!wrote) throw IoError("write failed", {.source = tmp});
    if (fault::active()) fault::fire("persist.save.fsync");
    if (::fsync(fd) != 0) throw IoError("fsync failed", {.source = tmp});
    if (::close(fd) != 0) {
      fd = -1;  // closed even on error; do not close twice
      throw IoError("close failed", {.source = tmp});
    }
    fd = -1;
    if (fault::active()) fault::fire("persist.save.commit");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("cannot rename temp file into place", {.source = path});
    }
  } catch (...) {
    if (fd >= 0) ::close(fd);
    std::remove(tmp.c_str());
    throw;
  }
  // Past the rename: the destination is committed, so a durability
  // failure below must not delete anything — report it and let the
  // caller decide (the daemon treats it like any other failed save).
  const std::string dir = parent_dir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) throw IoError("cannot open parent directory for fsync", {.source = dir});
  bool dir_ok = true;
  try {
    if (fault::active()) fault::fire("persist.save.dirsync");
    dir_ok = ::fsync(dfd) == 0;
  } catch (...) {
    ::close(dfd);
    throw;
  }
  ::close(dfd);
  if (!dir_ok) throw IoError("directory fsync failed", {.source = dir});
}

coverage::CoverageTrace load_trace(const std::string& path, BddManager& mgr) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open", {.source = path});
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw IoError("read failed", {.source = path});
  try {
    return deserialize_trace(buffer.str(), mgr);
  } catch (const CorruptTraceError& e) {
    // Re-raise with the file path as the input source.
    throw CorruptTraceError(e.detail(), e.bare_message(), {.source = path});
  }
}

}  // namespace yardstick::ys
