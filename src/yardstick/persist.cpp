#include "yardstick/persist.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <utility>

#include "common/fault.hpp"

namespace yardstick::ys {

namespace {

using bdd::Bdd;
using bdd::BddManager;
using bdd::kFalse;
using bdd::kTrue;
using bdd::NodeIndex;

using Detail = CorruptTraceError::Detail;

constexpr const char* kHeaderV1 = "yardstick-trace v1";
constexpr const char* kHeaderV2 = "yardstick-trace v2";
constexpr const char* kTraceSource = "yardstick trace";

}  // namespace

uint64_t fnv1a64(const char* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hash_hex(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string with_checksum(std::string body) {
  body += "checksum " + hash_hex(fnv1a64(body.data(), body.size())) + "\n";
  return body;
}

std::string checked_body(const std::string& text, const char* source) {
  // Integrity trailer: "checksum <16-hex>" over every preceding byte.
  const size_t pos = text.rfind("\nchecksum ");
  if (pos == std::string::npos) {
    throw CorruptTraceError(Detail::Truncated,
                            "missing checksum trailer (file cut off before the end)",
                            {.source = source});
  }
  const size_t covered = pos + 1;  // includes the newline before "checksum"
  std::istringstream trailer(text.substr(covered));
  std::string keyword, hex;
  trailer >> keyword >> hex;
  if (hex.size() != 16 || hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw CorruptTraceError(Detail::Corrupted, "malformed checksum trailer '" + hex + "'",
                            {.source = source});
  }
  std::string rest;
  if (trailer >> rest) {
    throw CorruptTraceError(Detail::Corrupted, "trailing garbage after checksum trailer",
                            {.source = source});
  }
  if (hash_hex(fnv1a64(text.data(), covered)) != hex) {
    throw CorruptTraceError(Detail::Corrupted,
                            "checksum mismatch (content was altered after writing)",
                            {.source = source});
  }
  return text.substr(0, covered);
}

uint32_t NodeEmitter::emit(NodeIndex root, std::vector<std::array<uint32_t, 3>>& out) {
  if (root == kFalse) return 0;
  if (root == kTrue) return 1;
  // Emitted refs start at 2, so 0 doubles as the "not yet emitted" mark.
  if (refs_.size() < mgr_.arena_size()) refs_.resize(mgr_.arena_size(), 0);
  if (refs_[root] != 0) return refs_[root];
  // Iterative post-order so children are always emitted first.
  std::vector<std::pair<NodeIndex, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (n <= kTrue || refs_[n] != 0) continue;
    const bdd::BddNode& node = mgr_.node(n);
    if (!expanded) {
      stack.push_back({n, true});
      stack.push_back({node.low, false});
      stack.push_back({node.high, false});
      continue;
    }
    out.push_back({node.var, ref(node.low), ref(node.high)});
    refs_[n] = static_cast<uint32_t>(out.size() - 1) + 2;
  }
  return refs_[root];
}

uint32_t NodeEmitter::ref(NodeIndex n) const {
  if (n == kFalse) return 0;
  if (n == kTrue) return 1;
  return refs_[n];
}

void FormatReader::fail_truncated(const std::string& why) const {
  throw CorruptTraceError(Detail::Truncated, why, {.source = source_});
}

void FormatReader::fail_corrupted(const std::string& why) const {
  throw CorruptTraceError(Detail::Corrupted, why, {.source = source_});
}

void FormatReader::skip_ws() {
  while (pos_ < body_.size()) {
    const char c = body_[pos_];
    if (c != ' ' && c != '\n' && c != '\t' && c != '\r') break;
    ++pos_;
  }
}

std::string_view FormatReader::token() {
  skip_ws();
  const size_t start = pos_;
  while (pos_ < body_.size()) {
    const char c = body_[pos_];
    if (c == ' ' || c == '\n' || c == '\t' || c == '\r') break;
    ++pos_;
  }
  return body_.substr(start, pos_ - start);
}

uint64_t FormatReader::u64(const char* what) {
  const std::string_view tok = token();
  if (tok.empty()) fail_truncated(std::string("input ends inside ") + what);
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    fail_corrupted(std::string("non-numeric value in ") + what);
  }
  return value;
}

uint32_t FormatReader::u32(const char* what) {
  const uint64_t v = u64(what);
  if (v > UINT32_MAX) fail_corrupted(std::string("value out of 32-bit range in ") + what);
  return static_cast<uint32_t>(v);
}

size_t FormatReader::count(const char* what) {
  // Two bytes per element ("0 " etc.) is the tightest possible encoding.
  const uint64_t n = u64(what);
  if (n > body_.size() / 2 + 1) {
    fail_corrupted(std::string("implausible ") + what + " count " + std::to_string(n));
  }
  return static_cast<size_t>(n);
}

void FormatReader::keyword(const char* kw) {
  const std::string_view word = token();
  if (word.empty()) fail_truncated(std::string("missing '") + kw + "' section");
  if (word != kw) {
    fail_corrupted("expected '" + std::string(kw) + "' section, found '" +
                   std::string(word) + "'");
  }
}

void FormatReader::expect_end(const char* what) {
  if (!token().empty()) {
    fail_corrupted(std::string("trailing garbage after ") + what);
  }
}

std::vector<NodeIndex> FormatReader::node_section(BddManager& mgr) {
  keyword("nodes");
  const size_t node_count = count("node");
  // The header announces the section size: pre-grow the arena and unique
  // table once instead of rehash-doubling through a bulk rebuild.
  mgr.reserve_nodes(node_count);
  std::vector<NodeIndex> by_ref;  // file ref -> manager node index
  by_ref.reserve(node_count + 2);
  by_ref.push_back(kFalse);
  by_ref.push_back(kTrue);
  for (size_t i = 0; i < node_count; ++i) {
    const uint32_t var = u32("node list");
    const uint32_t low = u32("node list");
    const uint32_t high = u32("node list");
    if (var >= mgr.num_vars()) {
      fail_corrupted("node variable " + std::to_string(var) + " out of range");
    }
    if (low >= by_ref.size() || high >= by_ref.size()) {
      // References may only point backwards; anything else could knit
      // cycles or dangling structure into the arena.
      fail_corrupted("forward/out-of-range node reference at node " + std::to_string(i));
    }
    // A well-formed ROBDD is strictly ordered: children sit at deeper
    // levels than their parent. Violations would produce non-canonical
    // diagrams whose model counts are silently wrong — reject them.
    const auto level = [&](NodeIndex n) {
      return n <= kTrue ? mgr.num_vars() : mgr.node(n).var;
    };
    if (var >= level(by_ref[low]) || var >= level(by_ref[high])) {
      fail_corrupted("variable-ordering violation at node " + std::to_string(i));
    }
    by_ref.push_back(mgr.make(var, by_ref[low], by_ref[high]));
  }
  return by_ref;
}

void append_uint(std::string& out, uint64_t v) {
  char buf[20];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<size_t>(ptr - buf));
}

void write_node_section(std::string& out,
                        const std::vector<std::array<uint32_t, 3>>& nodes) {
  // ~4 digits per field at realistic arena sizes; reserving once keeps the
  // append loop allocation-free on multi-megabyte sections.
  out.reserve(out.size() + 16 + nodes.size() * 18);
  out += "nodes ";
  append_uint(out, nodes.size());
  out += '\n';
  for (const auto& [var, low, high] : nodes) {
    append_uint(out, var);
    out += ' ';
    append_uint(out, low);
    out += ' ';
    append_uint(out, high);
    out += '\n';
  }
}

std::string serialize_trace(const coverage::CoverageTrace& trace, BddManager& mgr) {
  NodeEmitter emitter(mgr);
  std::vector<std::array<uint32_t, 3>> nodes;
  std::vector<std::pair<packet::LocationId, uint32_t>> roots;
  for (const auto& [loc, ps] : trace.marked_packets().entries()) {
    roots.emplace_back(loc, emitter.emit(ps.raw().index(), nodes));
  }

  std::string out;
  out += kHeaderV2;
  out += '\n';
  write_node_section(out, nodes);
  // Rules are kept in an unordered_set; emit them sorted so the same
  // trace always serializes to the same bytes. Canonical output is what
  // lets crash-recovery checks compare snapshot files directly.
  std::vector<uint32_t> rules;
  rules.reserve(trace.marked_rules().size());
  for (const net::RuleId rid : trace.marked_rules()) rules.push_back(rid.value);
  std::sort(rules.begin(), rules.end());
  out += "rules ";
  append_uint(out, rules.size());
  out += '\n';
  for (const uint32_t rid : rules) {
    append_uint(out, rid);
    out += '\n';
  }
  out += "locations ";
  append_uint(out, roots.size());
  out += '\n';
  for (const auto& [loc, root] : roots) {
    append_uint(out, static_cast<uint64_t>(loc));
    out += ' ';
    append_uint(out, root);
    out += '\n';
  }

  return with_checksum(std::move(out));
}

coverage::CoverageTrace deserialize_trace(const std::string& text, BddManager& mgr) {
  if (text.empty()) {
    throw CorruptTraceError(Detail::Truncated, "empty input", {.source = kTraceSource});
  }
  const size_t header_end = text.find('\n');
  const std::string header =
      text.substr(0, header_end == std::string::npos ? text.size() : header_end);
  const bool v2 = header == kHeaderV2;
  if (!v2 && header != kHeaderV1) {
    throw CorruptTraceError(Detail::Corrupted, "unrecognized header '" + header + "'",
                            {.source = kTraceSource});
  }

  const std::string body = v2 ? checked_body(text, kTraceSource) : text;
  // Scan past the (validated) header line.
  std::string_view rest(body);
  rest = header_end == std::string::npos ? std::string_view{}
                                         : rest.substr(header_end + 1);
  FormatReader reader(rest, kTraceSource);

  const std::vector<NodeIndex> by_ref = reader.node_section(mgr);

  coverage::CoverageTrace trace;
  reader.keyword("rules");
  const size_t rule_count = reader.count("rule");
  for (size_t i = 0; i < rule_count; ++i) {
    trace.mark_rule(net::RuleId{reader.u32("rule list")});
  }

  reader.keyword("locations");
  const size_t location_count = reader.count("location");
  for (size_t i = 0; i < location_count; ++i) {
    const auto loc = static_cast<packet::LocationId>(reader.u64("location list"));
    const uint32_t root = reader.u32("location list");
    if (root >= by_ref.size()) {
      reader.fail_corrupted("location root reference " + std::to_string(root) +
                            " out of range");
    }
    trace.mark_packet(loc, packet::PacketSet(Bdd(&mgr, by_ref[root])));
  }

  if (v2) reader.expect_end("locations section");
  return trace;
}

namespace {

/// write(2) the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Directory containing `path` ("." for a bare filename) — the directory
/// whose entry the rename mutates, and therefore the one to fsync.
std::string parent_dir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Open a staging file that no concurrent saver can be holding: the name
/// carries the pid plus a process-wide sequence number, and O_EXCL makes
/// even a recycled-pid collision (stale file from a crashed process) pick
/// the next suffix instead of truncating someone's in-flight write.
int open_exclusive_temp(const std::string& path, std::string& tmp_out) {
  static std::atomic<uint64_t> sequence{0};
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed);
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(seq);
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd >= 0) {
      tmp_out = std::move(tmp);
      return fd;
    }
    if (errno != EEXIST) {
      throw IoError("cannot open for writing", {.source = tmp});
    }
  }
  throw IoError("cannot create unique temp file (64 collisions)", {.source = path});
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  // Crash-safe commit: write + fsync a sibling temp file, rename it over
  // the destination, then fsync the parent directory. rename(2) is atomic
  // within a filesystem, so `path` either keeps its old content or holds
  // the complete new bytes; the two fsyncs make that also hold across
  // power loss — without them the rename can hit disk before the data
  // (leaving a committed-but-empty file), or evaporate entirely.
  std::string tmp;
  int fd = open_exclusive_temp(path, tmp);
  try {
    const bool wrote = write_all(fd, content.data(), content.size());
    if (fault::active()) fault::fire("persist.save.write");
    if (!wrote) throw IoError("write failed", {.source = tmp});
    if (fault::active()) fault::fire("persist.save.fsync");
    if (::fsync(fd) != 0) throw IoError("fsync failed", {.source = tmp});
    if (::close(fd) != 0) {
      fd = -1;  // closed even on error; do not close twice
      throw IoError("close failed", {.source = tmp});
    }
    fd = -1;
    if (fault::active()) fault::fire("persist.save.commit");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("cannot rename temp file into place", {.source = path});
    }
  } catch (...) {
    if (fd >= 0) ::close(fd);
    std::remove(tmp.c_str());
    throw;
  }
  // Past the rename: the destination is committed, so a durability
  // failure below must not delete anything — report it and let the
  // caller decide (the daemon treats it like any other failed save).
  const std::string dir = parent_dir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) throw IoError("cannot open parent directory for fsync", {.source = dir});
  bool dir_ok = true;
  try {
    if (fault::active()) fault::fire("persist.save.dirsync");
    dir_ok = ::fsync(dfd) == 0;
  } catch (...) {
    ::close(dfd);
    throw;
  }
  ::close(dfd);
  if (!dir_ok) throw IoError("directory fsync failed", {.source = dir});
}

void save_trace(const std::string& path, const coverage::CoverageTrace& trace,
                BddManager& mgr) {
  // Serialize before touching the filesystem: an exhausted budget or a
  // bad trace must not cost us the temp file dance.
  atomic_write_file(path, serialize_trace(trace, mgr));
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open", {.source = path});
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw IoError("read failed", {.source = path});
  return buffer.str();
}

coverage::CoverageTrace load_trace(const std::string& path, BddManager& mgr) {
  const std::string text = read_text_file(path);
  try {
    return deserialize_trace(text, mgr);
  } catch (const CorruptTraceError& e) {
    // Re-raise with the file path as the input source.
    throw CorruptTraceError(e.detail(), e.bare_message(), {.source = path});
  }
}

}  // namespace yardstick::ys
