#include "yardstick/persist.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace yardstick::ys {

namespace {

using bdd::Bdd;
using bdd::BddManager;
using bdd::kFalse;
using bdd::kTrue;
using bdd::NodeIndex;

/// Assigns file-local references: 0/1 for terminals, >=2 for emitted nodes
/// (reference n maps to the (n-2)-th emitted node line).
class NodeEmitter {
 public:
  explicit NodeEmitter(BddManager& mgr) : mgr_(mgr) {}

  uint32_t emit(NodeIndex root, std::vector<std::array<uint32_t, 3>>& out) {
    if (root == kFalse) return 0;
    if (root == kTrue) return 1;
    const auto it = refs_.find(root);
    if (it != refs_.end()) return it->second;
    // Iterative post-order so children are always emitted first.
    std::vector<std::pair<NodeIndex, bool>> stack{{root, false}};
    while (!stack.empty()) {
      auto [n, expanded] = stack.back();
      stack.pop_back();
      if (n <= kTrue || refs_.contains(n)) continue;
      const bdd::BddNode& node = mgr_.node(n);
      if (!expanded) {
        stack.push_back({n, true});
        stack.push_back({node.low, false});
        stack.push_back({node.high, false});
        continue;
      }
      out.push_back({node.var, ref(node.low), ref(node.high)});
      refs_.emplace(n, static_cast<uint32_t>(out.size() - 1) + 2);
    }
    return refs_.at(root);
  }

 private:
  [[nodiscard]] uint32_t ref(NodeIndex n) const {
    if (n == kFalse) return 0;
    if (n == kTrue) return 1;
    return refs_.at(n);
  }

  BddManager& mgr_;
  std::unordered_map<NodeIndex, uint32_t> refs_;
};

[[noreturn]] void malformed(const std::string& why) {
  throw std::runtime_error("malformed yardstick trace: " + why);
}

}  // namespace

std::string serialize_trace(const coverage::CoverageTrace& trace, BddManager& mgr) {
  NodeEmitter emitter(mgr);
  std::vector<std::array<uint32_t, 3>> nodes;
  std::vector<std::pair<packet::LocationId, uint32_t>> roots;
  for (const auto& [loc, ps] : trace.marked_packets().entries()) {
    roots.emplace_back(loc, emitter.emit(ps.raw().index(), nodes));
  }

  std::ostringstream out;
  out << "yardstick-trace v1\n";
  out << "nodes " << nodes.size() << "\n";
  for (const auto& [var, low, high] : nodes) {
    out << var << " " << low << " " << high << "\n";
  }
  out << "rules " << trace.marked_rules().size() << "\n";
  for (const net::RuleId rid : trace.marked_rules()) out << rid.value << "\n";
  out << "locations " << roots.size() << "\n";
  for (const auto& [loc, root] : roots) out << loc << " " << root << "\n";
  return out.str();
}

coverage::CoverageTrace deserialize_trace(const std::string& text, BddManager& mgr) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "yardstick-trace v1") {
    malformed("bad header");
  }
  std::string keyword;
  size_t count = 0;

  if (!(in >> keyword >> count) || keyword != "nodes") malformed("missing nodes section");
  std::vector<NodeIndex> by_ref;  // file ref -> manager node index
  by_ref.reserve(count + 2);
  by_ref.push_back(kFalse);
  by_ref.push_back(kTrue);
  for (size_t i = 0; i < count; ++i) {
    uint32_t var = 0, low = 0, high = 0;
    if (!(in >> var >> low >> high)) malformed("truncated node list");
    if (var >= mgr.num_vars()) malformed("variable out of range");
    if (low >= by_ref.size() || high >= by_ref.size()) {
      malformed("forward node reference");
    }
    by_ref.push_back(mgr.make(var, by_ref[low], by_ref[high]));
  }

  coverage::CoverageTrace trace;
  if (!(in >> keyword >> count) || keyword != "rules") malformed("missing rules section");
  for (size_t i = 0; i < count; ++i) {
    uint32_t rid = 0;
    if (!(in >> rid)) malformed("truncated rule list");
    trace.mark_rule(net::RuleId{rid});
  }

  if (!(in >> keyword >> count) || keyword != "locations") {
    malformed("missing locations section");
  }
  for (size_t i = 0; i < count; ++i) {
    packet::LocationId loc = 0;
    uint32_t root = 0;
    if (!(in >> loc >> root)) malformed("truncated location list");
    if (root >= by_ref.size()) malformed("bad root reference");
    trace.mark_packet(loc, packet::PacketSet(Bdd(&mgr, by_ref[root])));
  }
  return trace;
}

void save_trace(const std::string& path, const coverage::CoverageTrace& trace,
                BddManager& mgr) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << serialize_trace(trace, mgr);
}

coverage::CoverageTrace load_trace(const std::string& path, BddManager& mgr) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize_trace(buffer.str(), mgr);
}

}  // namespace yardstick::ys
