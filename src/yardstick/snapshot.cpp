#include "yardstick/snapshot.hpp"

#include <cmath>
#include <sstream>

namespace yardstick::ys {

namespace {

std::string percent(double v) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed << v * 100.0 << "%";
  return out.str();
}

void check_metric(std::vector<std::string>& out, const std::string& scope,
                  const char* metric, double before, double after, double tolerance) {
  if (before - after > tolerance) {
    out.push_back(scope + " " + metric + " dropped from " + percent(before) + " to " +
                  percent(after));
  }
}

void check_row(std::vector<std::string>& out, const std::string& scope,
               const MetricRow& before, const MetricRow& after, double tolerance) {
  check_metric(out, scope, "device coverage", before.device_fractional,
               after.device_fractional, tolerance);
  check_metric(out, scope, "interface coverage", before.interface_fractional,
               after.interface_fractional, tolerance);
  check_metric(out, scope, "rule coverage", before.rule_fractional, after.rule_fractional,
               tolerance);
  check_metric(out, scope, "weighted rule coverage", before.rule_weighted,
               after.rule_weighted, tolerance);
}

}  // namespace

std::vector<SnapshotAlert> SnapshotMonitor::record(SnapshotStats stats) {
  std::vector<SnapshotAlert> alerts;
  if (!history_.empty()) {
    const SnapshotStats& prev = history_.back();

    const double universe_shift = relative_change(
        static_cast<double>(prev.path_universe_size),
        static_cast<double>(stats.path_universe_size));
    if (std::abs(universe_shift) > options_.universe_shift_threshold) {
      std::ostringstream msg;
      msg << "path universe changed " << percent(universe_shift) << " (" << prev.label
          << ": " << prev.path_universe_size << " -> " << stats.label << ": "
          << stats.path_universe_size
          << "); path metrics are not comparable until this is understood";
      alerts.push_back({SnapshotAlert::Kind::PathUniverseShift, msg.str()});
    }

    const double rule_shift = relative_change(static_cast<double>(prev.rule_count),
                                              static_cast<double>(stats.rule_count));
    if (std::abs(rule_shift) > options_.rule_shift_threshold) {
      std::ostringstream msg;
      msg << "forwarding state size changed " << percent(rule_shift) << " ("
          << prev.rule_count << " -> " << stats.rule_count << " rules)";
      alerts.push_back({SnapshotAlert::Kind::RuleCountShift, msg.str()});
    }

    std::vector<std::string> regressions;
    check_row(regressions, "overall", prev.coverage, stats.coverage,
              options_.coverage_drop_tolerance);
    for (const std::string& r : regressions) {
      alerts.push_back({SnapshotAlert::Kind::CoverageRegression, r});
    }
  }
  history_.push_back(std::move(stats));
  return alerts;
}

std::vector<std::string> coverage_regressions(const CoverageReport& before,
                                              const CoverageReport& after,
                                              double tolerance) {
  std::vector<std::string> out;
  check_row(out, "overall", before.overall, after.overall, tolerance);
  for (const RoleBreakdown& b : before.by_role) {
    for (const RoleBreakdown& a : after.by_role) {
      if (a.role == b.role) {
        check_row(out, to_string(b.role), b.metrics, a.metrics, tolerance);
      }
    }
  }
  return out;
}

}  // namespace yardstick::ys
