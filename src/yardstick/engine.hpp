// CoverageEngine — Yardstick's post-processing phase (§5.2).
//
// Given a network snapshot and the coverage trace collected online, the
// engine runs the three steps of §5.2:
//   1. compute disjoint rule match sets (MatchSetIndex),
//   2. compute covered sets T[r] (Algorithm 1),
//   3. compute the requested component and collection metrics via the
//      (G, µ, κ, α) framework.
//
// Metric computation is deliberately off the testing path: the engine can
// be constructed at any time after tests finish, and users can keep asking
// it new questions (different components, filters, aggregations) against
// the same trace.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "coverage/components.hpp"
#include "coverage/covered_sets.hpp"
#include "coverage/path_explorer.hpp"
#include "coverage/trace.hpp"
#include "dataplane/transfer.hpp"
#include "yardstick/cache.hpp"
#include "yardstick/report.hpp"

namespace yardstick::ys {

/// Restricts a metric to a subset of devices (§6: users can zoom in on,
/// say, only leaf routers). Null filter = every device.
using DeviceFilter = std::function<bool(const net::Device&)>;

/// Result of a path-universe sweep (Figure 9's most expensive metric).
struct PathCoverageResult {
  uint64_t total_paths = 0;
  uint64_t covered_paths = 0;  // paths with non-zero Equation-(3) coverage
  double fractional = 0.0;     // covered_paths / total_paths
  double mean = 0.0;           // unweighted mean of per-path coverage
  bool truncated = false;      // hit the max_paths / deadline / budget limit
  double seconds = 0.0;        // wall-clock (steady) cost of this sweep
};

/// Construction-time knobs for the engine's offline phase.
struct EngineOptions {
  /// Non-owning; may be null; must outlive the engine. See the engine
  /// constructor docs for degradation semantics.
  const ResourceBudget* budget = nullptr;
  /// Worker threads for the offline phase (match sets, covered sets and
  /// path-universe sweeps): 1 = serial, 0 = one per hardware thread.
  /// Unbounded results are bit-identical across thread counts — workers
  /// build in private BDD managers, results merge canonically into the
  /// engine's manager, and floating-point folds run in a fixed order.
  unsigned threads = 1;
  /// Directory for the incremental result cache (DESIGN.md §11). Empty =
  /// no cross-run caching. When set, construction loads cached per-device
  /// results whose content keys still match, recomputes only the
  /// invalidation frontier, and re-persists the cache afterwards — with
  /// output bit-identical to a from-scratch run. A missing/corrupt/
  /// mismatched cache silently degrades to a full rebuild.
  std::string cache_dir;
  /// Dead-fraction trigger in (0, 1] for phase-boundary mark-compact GC on
  /// the per-worker shard managers of steps 1-2 (0 = off). Enabling GC
  /// forces the sharded build path even at threads == 1; output stays
  /// bit-identical either way (GC only renumbers shard-private nodes; the
  /// merge canonicalizes). Deliberately NOT part of the incremental
  /// cache's options fingerprint for the same reason.
  double gc_threshold = 0.0;
};

class CoverageEngine {
 public:
  /// Runs steps 1 and 2 (match sets + covered sets) immediately; metric
  /// queries afterwards are step 3.
  ///
  /// `budget` (non-owning, may be null; must outlive the engine) bounds
  /// both construction and later queries. A tripped budget never escapes
  /// as an exception from the engine: construction completes with partial
  /// match/covered sets and truncated() == true, and metric queries return
  /// the values computed so far with their `truncated` flag set.
  CoverageEngine(bdd::BddManager& mgr, const net::Network& network,
                 const coverage::CoverageTrace& trace,
                 const ResourceBudget* budget = nullptr);

  /// Same, with the full option set (budget + worker threads).
  CoverageEngine(bdd::BddManager& mgr, const net::Network& network,
                 const coverage::CoverageTrace& trace, const EngineOptions& options);

  /// True when a resource budget degraded steps 1-2; all metrics are
  /// lower bounds in that case.
  [[nodiscard]] bool truncated() const {
    return index_.truncated() || covered_.truncated();
  }

  // --- Single-component metrics ---
  [[nodiscard]] double rule_coverage(net::RuleId id) const;
  [[nodiscard]] double device_coverage(net::DeviceId id) const;
  [[nodiscard]] double interface_coverage(
      net::InterfaceId id,
      coverage::InterfaceDirection direction = coverage::InterfaceDirection::Outgoing) const;
  [[nodiscard]] double flow_coverage(net::DeviceId device, net::InterfaceId in_interface,
                                     const packet::PacketSet& headers) const;

  // --- Collection metrics (Equation 2) ---
  [[nodiscard]] double rules_coverage(const coverage::Aggregator& aggregate,
                                      const DeviceFilter& filter = nullptr) const;
  [[nodiscard]] double devices_coverage(const coverage::Aggregator& aggregate,
                                        const DeviceFilter& filter = nullptr) const;
  [[nodiscard]] double interfaces_coverage(
      const coverage::Aggregator& aggregate, const DeviceFilter& filter = nullptr,
      coverage::InterfaceDirection direction = coverage::InterfaceDirection::Outgoing) const;

  /// Full path-universe sweep; expensive (§8.2). `options.max_paths`
  /// bounds the work; `deadline_seconds` stops the sweep after a wall-time
  /// budget (0 = none), reporting the result truncated.
  [[nodiscard]] PathCoverageResult path_coverage(coverage::PathExplorerOptions options = {},
                                                 double deadline_seconds = 0.0) const;

  // --- Reports ---

  /// The four headline metrics for an arbitrary device subset — the §3.1
  /// "what do our tests say about a particular pod?" query. Null filter =
  /// the whole network.
  [[nodiscard]] MetricRow metrics(const DeviceFilter& filter = nullptr) const;

  /// The standard report: overall + per-role breakdown + gap analysis.
  [[nodiscard]] CoverageReport report() const;

  /// Rules with zero coverage, optionally filtered (gap drill-down §7.2).
  [[nodiscard]] std::vector<net::RuleId> untested_rules(
      const DeviceFilter& filter = nullptr) const;

  /// Interfaces with zero outgoing coverage.
  [[nodiscard]] std::vector<net::InterfaceId> untested_interfaces(
      const DeviceFilter& filter = nullptr) const;

  // --- Internals exposed for tests, benches and advanced queries ---
  [[nodiscard]] const dataplane::MatchSetIndex& match_sets() const { return index_; }
  [[nodiscard]] const dataplane::Transfer& transfer() const { return transfer_; }
  [[nodiscard]] const coverage::CoveredSets& covered_sets() const { return covered_; }
  [[nodiscard]] const coverage::ComponentFactory& components() const { return factory_; }
  [[nodiscard]] const net::Network& network() const { return network_; }
  [[nodiscard]] unsigned threads() const { return threads_; }
  /// Wall-clock cost of steps 1 and 2, measured at construction (always,
  /// independent of the observability switch).
  [[nodiscard]] const PhaseTimings& timings() const { return timings_; }
  /// Incremental-cache statistics for this construction; null when
  /// EngineOptions::cache_dir was empty.
  [[nodiscard]] const CacheStats* cache_stats() const {
    return incremental_ ? &incremental_->stats() : nullptr;
  }

 private:
  [[nodiscard]] std::vector<net::DeviceId> filtered_devices(const DeviceFilter& filter) const;
  /// Runs `fn()` under the engine's budget; a tripped budget sets
  /// `*degraded` and leaves the fallback value in place of the result.
  template <typename Fn>
  [[nodiscard]] double degradable(bool* degraded, Fn&& fn) const;

  /// Init-list helpers: build step 1 / step 2 while timing them into
  /// `timings` (guaranteed copy elision constructs the member in place;
  /// the timing guard's destructor fires after construction completes).
  [[nodiscard]] static dataplane::MatchSetIndex timed_match_sets(
      bdd::BddManager& mgr, const net::Network& network, const EngineOptions& options,
      PhaseTimings& timings, const IncrementalSession* incremental);
  [[nodiscard]] static coverage::CoveredSets timed_covered_sets(
      const dataplane::MatchSetIndex& index, const coverage::CoverageTrace& trace,
      const EngineOptions& options, PhaseTimings& timings,
      const IncrementalSession* incremental);
  /// Null when options.cache_dir is empty; never throws (cache failures
  /// degrade to a full rebuild, recorded in the session's stats).
  [[nodiscard]] static std::unique_ptr<IncrementalSession> make_incremental(
      bdd::BddManager& mgr, const net::Network& network,
      const coverage::CoverageTrace& trace, const EngineOptions& options);

  const net::Network& network_;
  const ResourceBudget* budget_;
  unsigned threads_;
  PhaseTimings timings_;  // declared before index_/covered_: written during their init
  // Declared before index_: its prefills feed index_'s and covered_'s
  // construction in the init list below.
  std::unique_ptr<IncrementalSession> incremental_;
  dataplane::MatchSetIndex index_;
  dataplane::Transfer transfer_;
  coverage::CoveredSets covered_;
  coverage::ComponentFactory factory_;
};

/// Convenience device filter: keep only devices of one role.
[[nodiscard]] inline DeviceFilter role_filter(net::Role role) {
  return [role](const net::Device& d) { return d.role == role; };
}

}  // namespace yardstick::ys
