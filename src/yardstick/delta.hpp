// Content hashing for incremental recomputation (ROADMAP item 2).
//
// The offline phase is a pure function of the network snapshot and the
// trace, and it factors per device: a rule's match set M[r] depends only on
// its own device's ordered tables, and a covered set T[r] additionally on
// the trace slice observed at that device. Key each device's results by a
// content hash of exactly those inputs and a cached result is reusable iff
// the hash matches — no diffing protocol, no edit log, no reliance on
// rule ids (which shift globally whenever any earlier device's table
// changes).
//
// Two keys per device:
//   * fib_hash — the device's tables verbatim (kind, priority, match spec,
//     action, in table order). Keys the match-set record.
//   * cov_hash — fib_hash plus the device's trace slice (the located
//     packet sets Algorithm 1 unions for the device, hashed by canonical
//     BDD structure) plus the per-position state-inspection bits. Keys the
//     covered-set record.
//
// Because ROBDDs are canonical, equal hashes of equal inputs lead to
// cached sets that are *the same Boolean functions* the engine would have
// rebuilt — which is what makes incremental output bit-identical to a
// from-scratch run (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "coverage/trace.hpp"
#include "netmodel/network.hpp"

namespace yardstick::ys {

/// Streaming FNV-1a 64 accumulator with fixed-width, length-prefixed
/// encodings, so adjacent fields can never alias each other's bytes.
class ContentHasher {
 public:
  void bytes(const void* data, size_t size);
  void u64(uint64_t v);
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  /// A tagged optional: presence byte, then the value only if present.
  template <typename T, typename Fn>
  void maybe(const T& opt, const Fn& fn) {
    u64(opt ? 1 : 0);
    if (opt) fn(*opt);
  }

  [[nodiscard]] uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// The two content keys of one device's offline-phase results.
struct DeviceKeys {
  uint64_t fib_hash = 0;
  uint64_t cov_hash = 0;

  friend bool operator==(const DeviceKeys&, const DeviceKeys&) = default;
};

/// Hash a device's tables (Acl then Fib, each in priority order): every
/// input build_device_tables reads, nothing it doesn't (RouteKind and rule
/// ids are metadata and excluded — renumbering must not invalidate).
[[nodiscard]] uint64_t hash_device_tables(const net::Network& network, net::DeviceId dev);

/// Hash a packet set by canonical BDD structure. Equal functions hash
/// equal in any manager (structure is manager-independent); the walk is
/// read-only and charges nothing against a resource budget.
void hash_packet_set(ContentHasher& hasher, const packet::PacketSet& ps);

/// fib_hash + cov_hash for every device (indexed by DeviceId), against
/// this network snapshot and trace.
[[nodiscard]] std::vector<DeviceKeys> compute_device_keys(
    const net::Network& network, const coverage::CoverageTrace& trace);

/// Devices whose offline-phase results are stale between two snapshots:
/// cov_hash changed, or the device exists on only one side. This is the
/// *invalidation frontier* — with per-device factoring there are no
/// cross-device dependencies, so recomputation never propagates past it.
[[nodiscard]] std::vector<net::DeviceId> invalidation_frontier(
    const std::vector<DeviceKeys>& before, const std::vector<DeviceKeys>& after);

}  // namespace yardstick::ys
