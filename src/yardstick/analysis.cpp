#include "yardstick/analysis.hpp"

#include <algorithm>
#include <chrono>

#include "coverage/components.hpp"
#include "coverage/covered_sets.hpp"
#include "dataplane/match_sets.hpp"
#include "obs/trace.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::ys {

double SuiteAnalyzer::rule_coverage_of(const coverage::CoverageTrace& trace,
                                       bool* truncated) const {
  // A fresh index per evaluation keeps the analyzer self-contained; the
  // BDD manager's caches make repeated construction cheap.
  const dataplane::MatchSetIndex index(mgr_, network_, budget_);
  const dataplane::Transfer transfer(index);
  const coverage::CoveredSets covered(index, trace, budget_);
  if (truncated != nullptr && (index.truncated() || covered.truncated())) {
    *truncated = true;
  }
  const coverage::ComponentFactory factory(transfer);
  return coverage::collection_coverage(covered, factory.all_rules(),
                                       coverage::fractional_aggregator());
}

SuiteAnalysis SuiteAnalyzer::analyze(const dataplane::Transfer& transfer,
                                     const nettest::TestSuite& suite,
                                     double epsilon) const {
  const size_t n = suite.size();
  obs::Span span("analysis.analyze", "analysis");
  span.arg("tests", n);
  const auto analyze_start = ResourceBudget::Clock::now();
  SuiteAnalysis analysis;
  analysis.tests.resize(n);

  try {
    // Run each test in isolation.
    std::vector<coverage::CoverageTrace> traces(n);
    for (size_t i = 0; i < n; ++i) {
      const auto test_start = ResourceBudget::Clock::now();
      CoverageTracker tracker;
      (void)suite.test(i).run(transfer, tracker);
      traces[i] = tracker.trace();
      analysis.tests[i].name = suite.test(i).name();
      analysis.tests[i].seconds = std::chrono::duration<double>(
                                      ResourceBudget::Clock::now() - test_start)
                                      .count();
      analysis.tests[i].solo = rule_coverage_of(traces[i], &analysis.truncated);
    }

    // Full-suite coverage and leave-one-out marginals.
    const auto merged = [&](const std::vector<bool>& include) {
      coverage::CoverageTrace acc;
      for (size_t i = 0; i < n; ++i) {
        if (include[i]) acc.merge(traces[i]);
      }
      return acc;
    };
    std::vector<bool> all(n, true);
    analysis.full = rule_coverage_of(merged(all), &analysis.truncated);
    for (size_t i = 0; i < n; ++i) {
      std::vector<bool> without = all;
      without[i] = false;
      const double rest = rule_coverage_of(merged(without), &analysis.truncated);
      // Clamp at 0: under a tripped budget the leave-one-out run can cover
      // *more* than the degraded full-suite run, and a negative "value of
      // this test" is meaningless.
      analysis.tests[i].marginal = std::max(0.0, analysis.full - rest);
      analysis.tests[i].redundant = analysis.tests[i].marginal <= epsilon;
    }

    // Greedy maximum-marginal ordering.
    std::vector<bool> selected(n, false);
    coverage::CoverageTrace running;
    double current = rule_coverage_of(running, &analysis.truncated);
    for (size_t step = 0; step < n; ++step) {
      double best_gain = -1.0;
      size_t best = 0;
      for (size_t i = 0; i < n; ++i) {
        if (selected[i]) continue;
        coverage::CoverageTrace candidate = running;
        candidate.merge(traces[i]);
        const double gain = rule_coverage_of(candidate, &analysis.truncated) - current;
        if (gain > best_gain) {
          best_gain = gain;
          best = i;
        }
      }
      selected[best] = true;
      running.merge(traces[best]);
      current += best_gain;
      analysis.greedy_order.push_back(best);
      analysis.greedy_cumulative.push_back(current);
    }
  } catch (const StatusError& e) {
    // A budget tripping outside the degradable coverage computations (e.g.
    // while running a test) leaves the contributions computed so far.
    if (!is_resource_exhaustion(e.code())) throw;
    analysis.truncated = true;
  }
  analysis.analyze_seconds =
      std::chrono::duration<double>(ResourceBudget::Clock::now() - analyze_start).count();
  return analysis;
}

std::string TestSuggestion::to_string(const net::Network& network) const {
  return "inject at " + network.device(device).name + ": " + sample.to_string() +
         " (exercises " + network.rule(rule).to_string() + ")";
}

std::vector<TestSuggestion> suggest_tests(const CoverageEngine& engine,
                                          size_t max_suggestions,
                                          const DeviceFilter& filter) {
  std::vector<TestSuggestion> out;
  const net::Network& network = engine.network();
  for (const net::RuleId rid : engine.untested_rules(filter)) {
    if (out.size() >= max_suggestions) break;
    const net::Rule& rule = network.rule(rid);
    // Sample from the space behavioral tests can actually reach: the
    // disjoint match set, clipped by the ACL stage for FIB rules.
    packet::PacketSet space = engine.match_sets().match_set(rid);
    if (rule.table == net::TableKind::Fib && network.has_acl(rule.device)) {
      space = space.intersect(engine.match_sets().acl_permitted_space(rule.device));
    }
    if (space.empty()) continue;  // only state inspection can cover it
    out.push_back({rid, rule.device, space.sample()});
  }
  return out;
}

}  // namespace yardstick::ys
