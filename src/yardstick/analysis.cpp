#include "yardstick/analysis.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "coverage/covered_sets.hpp"
#include "dataplane/match_sets.hpp"
#include "obs/trace.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::ys {

namespace {

/// One isolated test evaluation against `index`: timed run, covered-set
/// build, reduction to a boolean row. Shared by the serial and the
/// per-worker parallel paths — the row only records set emptiness, so it
/// is identical whichever manager `index` lives in. Returns true when the
/// covered-set build was budget-truncated (the caller owns m.truncated;
/// workers write only their own i-th slots of seconds/covers).
[[nodiscard]] bool evaluate_test(const dataplane::MatchSetIndex& index,
                                 const dataplane::Transfer& transfer,
                                 const nettest::NetworkTest& test,
                                 const ResourceBudget* budget, unsigned build_threads,
                                 SuiteCoverageMatrix& m, size_t i) {
  CoverageTracker tracker;
  // Time the isolated run only: trace bookkeeping and the covered-set
  // build below are analysis overhead, not test cost.
  const auto test_start = ResourceBudget::Clock::now();
  (void)test.run(transfer, tracker);
  m.seconds[i] =
      std::chrono::duration<double>(ResourceBudget::Clock::now() - test_start).count();
  const coverage::CoveredSets covered(index, tracker.trace(), budget, build_threads);
  std::vector<char> row(m.rule_count, 0);
  for (size_t r = 0; r < m.rule_count; ++r) {
    if (m.vacuous[r]) continue;
    // Covered sets are subsets of the disjoint match sets, so
    // non-emptiness is exactly the fraction measure's |T ∩ M| > 0.
    if (!covered.covered(net::RuleId{static_cast<uint32_t>(r)}).empty()) {
      row[r] = 1;
    }
  }
  m.covers[i] = std::move(row);
  return covered.truncated();
}

}  // namespace

size_t SuiteCoverageMatrix::covered_by(size_t i) const {
  const std::vector<char>& row = covers[i];
  size_t count = 0;
  for (const char c : row) count += (c != 0);
  return count;
}

SuiteCoverageMatrix build_suite_matrix(const dataplane::Transfer& transfer,
                                       const nettest::TestSuite& suite,
                                       const ResourceBudget* budget,
                                       unsigned threads) {
  const size_t n = suite.size();
  obs::Span span("analysis.suite_matrix", "analysis");
  span.arg("tests", n);
  span.arg("threads", threads);

  const dataplane::MatchSetIndex& index = transfer.index();
  const net::Network& network = index.network();

  SuiteCoverageMatrix m;
  m.rule_count = network.rule_count();
  m.truncated = index.truncated();
  m.names.resize(n);
  m.seconds.resize(n, 0.0);
  m.covers.resize(n);
  m.vacuous.assign(m.rule_count, 0);
  for (size_t r = 0; r < m.rule_count; ++r) {
    if (index.match_set(net::RuleId{static_cast<uint32_t>(r)}).empty()) {
      m.vacuous[r] = 1;
      ++m.vacuous_count;
    }
  }

  for (size_t i = 0; i < n; ++i) m.names[i] = suite.test(i).name();

  const unsigned resolved =
      threads == 0 ? std::max(1u, std::thread::hardware_concurrency()) : threads;
  const size_t workers = std::min<size_t>(resolved, n);
  if (workers <= 1) {
    try {
      for (size_t i = 0; i < n; ++i) {
        if (evaluate_test(index, transfer, suite.test(i), budget, threads, m, i)) {
          m.truncated = true;
        }
      }
    } catch (const StatusError& e) {
      // A budget tripping outside the degradable covered-set builds (e.g.
      // while running a test) leaves the rows computed so far; never-built
      // rows stay all-zero (coverage under-reported, flagged truncated).
      if (!is_resource_exhaustion(e.code())) throw;
      m.truncated = true;
    }
  } else {
    // Whole-test sharding: each worker owns a private manager, match-set
    // index and transfer, and pulls tests off a shared counter. Rows are
    // emptiness facts about canonical sets, so they do not depend on which
    // worker (or manager) computed them — the serial and parallel paths
    // agree bit for bit.
    std::atomic<size_t> next{0};
    std::atomic<bool> truncated{false};
    std::mutex error_mu;
    std::exception_ptr first_error;
    auto work = [&] {
      try {
        bdd::BddManager worker_mgr(packet::kNumHeaderBits);
        const dataplane::MatchSetIndex worker_index(worker_mgr, network, budget);
        const dataplane::Transfer worker_transfer(worker_index);
        if (worker_index.truncated()) truncated.store(true, std::memory_order_relaxed);
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          try {
            if (evaluate_test(worker_index, worker_transfer, suite.test(i), budget, 1,
                              m, i)) {
              truncated.store(true, std::memory_order_relaxed);
            }
          } catch (const StatusError& e) {
            if (!is_resource_exhaustion(e.code())) throw;
            truncated.store(true, std::memory_order_relaxed);
          }
        }
      } catch (const StatusError& e) {
        if (is_resource_exhaustion(e.code())) {
          truncated.store(true, std::memory_order_relaxed);
        } else {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      } catch (...) {
        // First non-budget failure wins; remaining tests of this worker
        // are abandoned (their rows backfill to zero below).
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
    if (truncated.load(std::memory_order_relaxed)) m.truncated = true;
  }
  for (std::vector<char>& row : m.covers) {
    if (row.empty()) row.assign(m.rule_count, 0);
  }
  return m;
}

SuiteAnalysis SuiteAnalyzer::analyze(const dataplane::Transfer& transfer,
                                     const nettest::TestSuite& suite,
                                     double epsilon) const {
  const size_t n = suite.size();
  obs::Span span("analysis.analyze", "analysis");
  span.arg("tests", n);
  span.arg("threads", threads_);
  const auto analyze_start = ResourceBudget::Clock::now();
  SuiteAnalysis analysis;

  const SuiteCoverageMatrix m = build_suite_matrix(transfer, suite, budget_, threads_);
  analysis.truncated = m.truncated;
  analysis.tests.resize(n);

  // Per-rule cover multiplicity across the whole suite: leave-one-out
  // coverage for test i drops rule r exactly when cover_count[r] == 1 and
  // covers[i][r] is set.
  std::vector<uint32_t> cover_count(m.rule_count, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t r = 0; r < m.rule_count; ++r) cover_count[r] += (m.covers[i][r] != 0);
  }
  size_t full_covered = 0;
  for (size_t r = 0; r < m.rule_count; ++r) full_covered += (cover_count[r] > 0);
  analysis.full = m.coverage_of(full_covered);

  for (size_t i = 0; i < n; ++i) {
    analysis.tests[i].name = m.names[i];
    analysis.tests[i].seconds = m.seconds[i];
    analysis.tests[i].solo = m.coverage_of(m.covered_by(i));
    size_t sole = 0;  // rules only test i covers
    for (size_t r = 0; r < m.rule_count; ++r) {
      sole += (m.covers[i][r] != 0 && cover_count[r] == 1);
    }
    const double rest = m.coverage_of(full_covered - sole);
    // Clamp at 0: under a tripped budget the leave-one-out run can cover
    // *more* than the degraded full-suite run, and a negative "value of
    // this test" is meaningless.
    analysis.tests[i].marginal = std::max(0.0, analysis.full - rest);
    analysis.tests[i].redundant = analysis.tests[i].marginal <= epsilon;
  }

  // Greedy maximum-marginal ordering (first index wins ties, matching the
  // pre-matrix implementation; the optimizer's by-name tie-break lives in
  // optimize.cpp).
  std::vector<bool> selected(n, false);
  std::vector<char> running(m.rule_count, 0);
  size_t running_covered = 0;
  double current = m.coverage_of(0);
  for (size_t step = 0; step < n; ++step) {
    double best_gain = -1.0;
    size_t best = 0;
    for (size_t i = 0; i < n; ++i) {
      if (selected[i]) continue;
      size_t added = 0;
      for (size_t r = 0; r < m.rule_count; ++r) {
        added += (m.covers[i][r] != 0 && running[r] == 0);
      }
      const double gain = m.coverage_of(running_covered + added) - current;
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    selected[best] = true;
    for (size_t r = 0; r < m.rule_count; ++r) {
      if (m.covers[best][r] != 0 && running[r] == 0) {
        running[r] = 1;
        ++running_covered;
      }
    }
    current += best_gain;
    analysis.greedy_order.push_back(best);
    analysis.greedy_cumulative.push_back(current);
  }

  analysis.analyze_seconds =
      std::chrono::duration<double>(ResourceBudget::Clock::now() - analyze_start).count();
  return analysis;
}

std::string TestSuggestion::to_string(const net::Network& network) const {
  return "inject at " + network.device(device).name + ": " + sample.to_string() +
         " (exercises " + network.rule(rule).to_string() + ")";
}

std::vector<TestSuggestion> suggest_tests(const CoverageEngine& engine,
                                          size_t max_suggestions,
                                          const DeviceFilter& filter) {
  std::vector<TestSuggestion> out;
  const net::Network& network = engine.network();
  for (const net::RuleId rid : engine.untested_rules(filter)) {
    if (out.size() >= max_suggestions) break;
    const net::Rule& rule = network.rule(rid);
    // Sample from the space behavioral tests can actually reach: the
    // disjoint match set, clipped by the ACL stage for FIB rules.
    packet::PacketSet space = engine.match_sets().match_set(rid);
    if (rule.table == net::TableKind::Fib && network.has_acl(rule.device)) {
      space = space.intersect(engine.match_sets().acl_permitted_space(rule.device));
    }
    if (space.empty()) continue;  // only state inspection can cover it
    out.push_back({rid, rule.device, space.sample()});
  }
  return out;
}

}  // namespace yardstick::ys
