// Coverage report model: the numbers Yardstick surfaces to engineers —
// per-role breakdowns (the Figure 6 view), overall aggregates (the
// Figure 7 view), and the untested-rule gap analysis of §7.2.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netmodel/network.hpp"

namespace yardstick::ys {

/// Wall-clock (steady) seconds the engine spent in each offline-phase
/// step. Always measured — two clock reads per phase — independent of the
/// observability switch, so reports carry timings even in default runs.
struct PhaseTimings {
  double match_sets_seconds = 0.0;    ///< §5.2 step 1
  double covered_sets_seconds = 0.0;  ///< §5.2 step 2 (Algorithm 1)

  [[nodiscard]] double offline_seconds() const {
    return match_sets_seconds + covered_sets_seconds;
  }
};

/// The four headline metrics the case study plots per router role.
struct MetricRow {
  double device_fractional = 0.0;
  double interface_fractional = 0.0;
  double rule_fractional = 0.0;
  double rule_weighted = 0.0;
  /// True when a resource budget degraded the computation; the numbers
  /// above are then lower bounds, not exact values.
  bool truncated = false;
};

struct RoleBreakdown {
  net::Role role = net::Role::Other;
  size_t device_count = 0;
  size_t interface_count = 0;
  size_t rule_count = 0;
  MetricRow metrics;
};

/// Untested rules grouped by provenance (§7.2's gap categories).
struct RuleGap {
  net::RouteKind kind = net::RouteKind::Other;
  size_t untested = 0;
  size_t total = 0;
};

struct CoverageReport {
  MetricRow overall;
  std::vector<RoleBreakdown> by_role;
  std::vector<RuleGap> gaps;
  size_t untested_device_count = 0;
  size_t untested_interface_count = 0;
  /// Offline-phase timing summary (filled in by CoverageEngine::report).
  PhaseTimings timings;
  /// True when any part of the report was computed under a tripped
  /// resource budget: every number is a lower bound.
  bool truncated = false;

  /// Render the report as a fixed-width text table (the CLI view).
  [[nodiscard]] std::string to_text() const;
};

}  // namespace yardstick::ys
