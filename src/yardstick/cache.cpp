#include "yardstick/cache.hpp"

#include <sys/stat.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/trace.hpp"
#include "yardstick/persist.hpp"

namespace yardstick::ys {

using packet::PacketSet;

namespace {

constexpr const char* kHeader = "yardstick-cache v1";
constexpr const char* kSource = "yardstick cache";

/// mkdir -p: create every missing component, tolerate the existing ones.
void mkdir_p(const std::string& dir) {
  if (dir.empty() || dir == "." || dir == "/") return;
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    const size_t slash = dir.find('/', pos);
    partial = slash == std::string::npos ? dir : dir.substr(0, slash);
    if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      throw IoError("cannot create cache directory", {.source = partial});
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
}

/// One "<16-hex>" hash token.
uint64_t read_hash(FormatReader& reader, const char* what) {
  const std::string_view tok = reader.token();
  if (tok.empty()) {
    reader.fail_truncated(std::string("input ends inside ") + what);
  }
  if (tok.size() != 16 || tok.find_first_not_of("0123456789abcdef") != std::string_view::npos) {
    reader.fail_corrupted(std::string("malformed hash '") + std::string(tok) + "' in " +
                          what);
  }
  return std::strtoull(std::string(tok).c_str(), nullptr, 16);
}

struct MatchRecord {
  uint32_t matched_space = 0;
  uint32_t acl_permitted = 0;
  std::vector<std::pair<uint32_t, uint32_t>> rules;  // (field_ref, set_ref) per position
};

size_t device_rule_count(const net::Network& network, net::DeviceId dev) {
  return network.table(dev, net::TableKind::Acl).size() +
         network.table(dev, net::TableKind::Fib).size();
}

}  // namespace

uint64_t options_fingerprint(unsigned threads, size_t max_bdd_nodes, bool has_deadline) {
  ContentHasher h;
  h.u64(1);  // fingerprint schema version
  h.u64(threads);
  h.u64(max_bdd_nodes);
  h.u64(has_deadline ? 1 : 0);
  return h.value();
}

IncrementalSession::IncrementalSession(bdd::BddManager& mgr, const net::Network& network,
                                       const coverage::CoverageTrace& trace,
                                       std::string cache_dir, uint64_t options_hash)
    : mgr_(mgr),
      network_(network),
      path_(std::move(cache_dir) + "/coverage.cache"),
      options_hash_(options_hash) {
  obs::Span span("cache.load", "offline");
  {
    obs::Span keys_span("cache.load.keys", "offline");
    keys_ = compute_device_keys(network, trace);
  }
  stats_.devices = network.device_count();
  load();
  span.arg("match_hits", stats_.match_hits);
  span.arg("cover_hits", stats_.cover_hits);
}

void IncrementalSession::load() {
  try {
    std::string text;
    try {
      text = read_text_file(path_);
    } catch (const IoError&) {
      stats_.fallback_reason = "no cache file";
      return;
    }
    const size_t header_end = text.find('\n');
    if (header_end == std::string::npos || text.substr(0, header_end) != kHeader) {
      stats_.fallback_reason = "unrecognized cache header (format version mismatch)";
      return;
    }
    obs::Span parse_span("cache.load.parse", "offline");
    const std::string body = checked_body(text, kSource);
    // Scan past the validated header line.
    FormatReader reader(std::string_view(body).substr(header_end + 1), kSource);

    reader.keyword("options");
    if (read_hash(reader, "options fingerprint") != options_hash_) {
      stats_.fallback_reason = "engine options changed";
      return;
    }
    reader.keyword("vars");
    if (reader.u32("variable count") != mgr_.num_vars()) {
      stats_.fallback_reason = "BDD variable universe changed";
      return;
    }

    // Everything below materializes nodes into the engine's manager; a
    // parse failure past this point leaves orphan (unreferenced) nodes in
    // the arena, which is safe — this engine has no GC and the rebuild
    // proceeds as if the cache were absent.
    std::vector<bdd::NodeIndex> by_ref;
    {
      obs::Span nodes_span("cache.load.nodes", "offline");
      by_ref = reader.node_section(mgr_);
    }
    const auto checked_ref = [&](uint32_t ref, const char* what) {
      if (ref >= by_ref.size()) {
        reader.fail_corrupted(std::string("node reference out of range in ") + what);
      }
      return by_ref[ref];
    };

    reader.keyword("match-records");
    std::unordered_map<uint64_t, MatchRecord> match_records;
    const size_t match_count = reader.count("match-record");
    for (size_t i = 0; i < match_count; ++i) {
      const uint64_t hash = read_hash(reader, "match-record key");
      MatchRecord rec;
      const size_t rules = reader.count("match-record rule");
      rec.matched_space = reader.u32("match-record space");
      rec.acl_permitted = reader.u32("match-record space");
      rec.rules.reserve(rules);
      for (size_t r = 0; r < rules; ++r) {
        const uint32_t field = reader.u32("match-record refs");
        const uint32_t set = reader.u32("match-record refs");
        rec.rules.emplace_back(field, set);
      }
      match_records.emplace(hash, std::move(rec));
    }

    reader.keyword("cover-records");
    std::unordered_map<uint64_t, std::vector<uint32_t>> cover_records;
    const size_t cover_count = reader.count("cover-record");
    for (size_t i = 0; i < cover_count; ++i) {
      const uint64_t hash = read_hash(reader, "cover-record key");
      const size_t rules = reader.count("cover-record rule");
      std::vector<uint32_t> refs(rules);
      for (size_t r = 0; r < rules; ++r) refs[r] = reader.u32("cover-record refs");
      cover_records.emplace(hash, std::move(refs));
    }
    reader.expect_end("cover-records");

    // Key lookup: a device reuses a record iff its content hash matches
    // AND the positional shape agrees (a hash collision across different
    // rule counts would otherwise misassign sets).
    const size_t num_rules = network_.rule_count();
    auto match_prefill = std::make_unique<dataplane::MatchPrefill>();
    match_prefill->device_hit.assign(network_.device_count(), 0);
    match_prefill->match_fields.resize(num_rules);
    match_prefill->match_sets.resize(num_rules);
    match_prefill->matched_space.resize(network_.device_count());
    match_prefill->acl_permitted.resize(network_.device_count());
    auto cover_prefill = std::make_unique<coverage::CoverPrefill>();
    cover_prefill->device_hit.assign(network_.device_count(), 0);
    cover_prefill->covered.resize(num_rules);

    for (const net::Device& dev : network_.devices()) {
      const size_t rules = device_rule_count(network_, dev.id);
      const auto mit = match_records.find(keys_[dev.id.value].fib_hash);
      if (mit != match_records.end() && mit->second.rules.size() == rules) {
        const MatchRecord& rec = mit->second;
        size_t pos = 0;
        for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
          for (const net::RuleId rid : network_.table(dev.id, table)) {
            const auto& [field, set] = rec.rules[pos++];
            match_prefill->match_fields[rid.value] =
                PacketSet(bdd::Bdd(&mgr_, checked_ref(field, "match-record")));
            match_prefill->match_sets[rid.value] =
                PacketSet(bdd::Bdd(&mgr_, checked_ref(set, "match-record")));
          }
        }
        match_prefill->matched_space[dev.id.value] =
            PacketSet(bdd::Bdd(&mgr_, checked_ref(rec.matched_space, "match-record")));
        match_prefill->acl_permitted[dev.id.value] =
            PacketSet(bdd::Bdd(&mgr_, checked_ref(rec.acl_permitted, "match-record")));
        match_prefill->device_hit[dev.id.value] = 1;
        ++stats_.match_hits;
      }
      const auto cit = cover_records.find(keys_[dev.id.value].cov_hash);
      if (cit != cover_records.end() && cit->second.size() == rules) {
        size_t pos = 0;
        for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
          for (const net::RuleId rid : network_.table(dev.id, table)) {
            cover_prefill->covered[rid.value] =
                PacketSet(bdd::Bdd(&mgr_, checked_ref(cit->second[pos++], "cover-record")));
          }
        }
        cover_prefill->device_hit[dev.id.value] = 1;
        ++stats_.cover_hits;
      }
    }

    stats_.loaded = true;
    stats_.invalidated = stats_.cover_misses();
    if (stats_.match_hits > 0) match_prefill_ = std::move(match_prefill);
    if (stats_.cover_hits > 0) cover_prefill_ = std::move(cover_prefill);
  } catch (const StatusError& e) {
    // Corrupt/truncated cache, I/O failure, or a resource budget tripping
    // while materializing nodes: all degrade to a full rebuild.
    match_prefill_.reset();
    cover_prefill_.reset();
    stats_ = CacheStats{};
    stats_.devices = network_.device_count();
    stats_.fallback_reason = e.what();
  }
}

void IncrementalSession::save(const dataplane::MatchSetIndex& index,
                              const coverage::CoveredSets& covered) {
  if (index.truncated() || covered.truncated()) {
    // A truncated run holds partial sets; caching them would poison every
    // future incremental run with silent under-reporting.
    stats_.save_error = "run truncated by resource budget; cache not written";
    return;
  }
  if (stats_.loaded && stats_.match_hits == stats_.devices &&
      stats_.cover_hits == stats_.devices) {
    return;  // every device hit: the file on disk is already current
  }
  obs::Span span("cache.save", "offline");
  try {
    NodeEmitter emitter(mgr_);
    std::vector<std::array<uint32_t, 3>> nodes;
    const auto ref_of = [&](const PacketSet& ps) {
      return ps.valid() ? emitter.emit(ps.raw().index(), nodes) : 0u;
    };

    obs::Span emit_span("cache.save.emit", "offline");
    // Content-addressed record streams, deduplicated by key: devices with
    // identical inputs (every ToR of a homogeneous pod) share one record.
    std::string match_out, cover_out;
    size_t match_count = 0, cover_count = 0;
    std::unordered_set<uint64_t> match_seen, cover_seen;
    for (const net::Device& dev : network_.devices()) {
      const DeviceKeys& keys = keys_[dev.id.value];
      if (match_seen.insert(keys.fib_hash).second) {
        match_out += hash_hex(keys.fib_hash);
        match_out += ' ';
        append_uint(match_out, device_rule_count(network_, dev.id));
        match_out += ' ';
        append_uint(match_out, ref_of(index.matched_space(dev.id)));
        match_out += ' ';
        append_uint(match_out, ref_of(index.acl_permitted_space(dev.id)));
        match_out += '\n';
        for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
          for (const net::RuleId rid : network_.table(dev.id, table)) {
            append_uint(match_out, ref_of(index.match_field(rid)));
            match_out += ' ';
            append_uint(match_out, ref_of(index.match_set(rid)));
            match_out += '\n';
          }
        }
        ++match_count;
      }
      if (cover_seen.insert(keys.cov_hash).second) {
        cover_out += hash_hex(keys.cov_hash);
        cover_out += ' ';
        append_uint(cover_out, device_rule_count(network_, dev.id));
        cover_out += '\n';
        for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
          for (const net::RuleId rid : network_.table(dev.id, table)) {
            append_uint(cover_out, ref_of(covered.covered(rid)));
            cover_out += '\n';
          }
        }
        ++cover_count;
      }
    }

    std::string out;
    out += kHeader;
    out += '\n';
    out += "options ";
    out += hash_hex(options_hash_);
    out += '\n';
    out += "vars ";
    append_uint(out, mgr_.num_vars());
    out += '\n';
    write_node_section(out, nodes);
    out += "match-records ";
    append_uint(out, match_count);
    out += '\n';
    out += match_out;
    out += "cover-records ";
    append_uint(out, cover_count);
    out += '\n';
    out += cover_out;

    const size_t slash = path_.find_last_of('/');
    if (slash != std::string::npos) mkdir_p(path_.substr(0, slash));
    {
      obs::Span write_span("cache.save.write", "offline");
      atomic_write_file(path_, with_checksum(std::move(out)));
    }
    stats_.saved = true;
  } catch (const std::exception& e) {
    // The engine's results are valid regardless; a failed save only costs
    // the next run its warm start.
    stats_.save_error = e.what();
  }
}

}  // namespace yardstick::ys
