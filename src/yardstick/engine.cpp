#include "yardstick/engine.hpp"

#include <chrono>

namespace yardstick::ys {

using coverage::ComponentSpec;

namespace {

/// Attaches the budget to the manager before any member computation runs
/// (init-list ordering), so the node cap is enforced from the very first
/// match-set BDD operation.
const ResourceBudget* attach_budget(bdd::BddManager& mgr, const ResourceBudget* budget) {
  if (budget != nullptr) mgr.set_budget(budget);
  return budget;
}

}  // namespace

CoverageEngine::CoverageEngine(bdd::BddManager& mgr, const net::Network& network,
                               const coverage::CoverageTrace& trace,
                               const ResourceBudget* budget)
    : network_(network),
      budget_(attach_budget(mgr, budget)),
      index_(mgr, network, budget),
      transfer_(index_),
      covered_(index_, trace, budget),
      factory_(transfer_) {}

template <typename Fn>
double CoverageEngine::degradable(bool* degraded, Fn&& fn) const {
  try {
    return fn();
  } catch (const StatusError& e) {
    if (!is_resource_exhaustion(e.code())) throw;
    if (degraded != nullptr) *degraded = true;
    return 0.0;
  }
}

double CoverageEngine::rule_coverage(net::RuleId id) const {
  return coverage::component_coverage(covered_, factory_.rule(id));
}

double CoverageEngine::device_coverage(net::DeviceId id) const {
  return coverage::component_coverage(covered_, factory_.device(id));
}

double CoverageEngine::interface_coverage(net::InterfaceId id,
                                          coverage::InterfaceDirection direction) const {
  return coverage::component_coverage(covered_, factory_.interface(id, direction));
}

double CoverageEngine::flow_coverage(net::DeviceId device, net::InterfaceId in_interface,
                                     const packet::PacketSet& headers) const {
  return coverage::component_coverage(covered_,
                                      factory_.flow(device, in_interface, headers));
}

std::vector<net::DeviceId> CoverageEngine::filtered_devices(
    const DeviceFilter& filter) const {
  std::vector<net::DeviceId> out;
  for (const net::Device& d : network_.devices()) {
    if (!filter || filter(d)) out.push_back(d.id);
  }
  return out;
}

double CoverageEngine::rules_coverage(const coverage::Aggregator& aggregate,
                                      const DeviceFilter& filter) const {
  return coverage::collection_coverage(covered_, factory_.all_rules(filtered_devices(filter)),
                                       aggregate);
}

double CoverageEngine::devices_coverage(const coverage::Aggregator& aggregate,
                                        const DeviceFilter& filter) const {
  return coverage::collection_coverage(
      covered_, factory_.all_devices(filtered_devices(filter)), aggregate);
}

double CoverageEngine::interfaces_coverage(const coverage::Aggregator& aggregate,
                                           const DeviceFilter& filter,
                                           coverage::InterfaceDirection direction) const {
  return coverage::collection_coverage(
      covered_, factory_.all_interfaces(filtered_devices(filter), direction), aggregate);
}

PathCoverageResult CoverageEngine::path_coverage(coverage::PathExplorerOptions options,
                                                 double deadline_seconds) const {
  PathCoverageResult result;
  result.truncated = truncated();  // steps 1-2 already degraded: Eq. 3 inputs partial
  if (options.budget == nullptr) options.budget = budget_;
  const coverage::PathExplorer explorer(transfer_, &covered_, options);
  const auto start = std::chrono::steady_clock::now();
  try {
    explorer.explore_universe([&](const coverage::ExploredPath& path) {
      ++result.total_paths;
      if (path.covered_ratio > 0.0) ++result.covered_paths;
      result.mean += path.covered_ratio;
      // The explorer marks paths it had to cut short when the cooperative
      // budget tripped mid-DFS.
      if (path.end == coverage::PathEnd::BudgetExceeded) result.truncated = true;
      if (deadline_seconds > 0.0 && (result.total_paths & 0x3ff) == 0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (elapsed.count() > deadline_seconds) {
          result.truncated = true;
          return false;
        }
      }
      return true;
    });
  } catch (const StatusError& e) {
    // The BDD node cap throws from inside set operations; everything
    // emitted so far is a valid partial sweep.
    if (!is_resource_exhaustion(e.code())) throw;
    result.truncated = true;
  }
  if (options.max_paths != 0 && result.total_paths >= options.max_paths) {
    result.truncated = true;
  }
  // A budget that tripped between paths (or before the first ingress) makes
  // the explorer stop silently; the sweep is still partial.
  if (options.budget != nullptr && options.budget->exhausted()) result.truncated = true;
  if (result.total_paths > 0) {
    result.fractional = static_cast<double>(result.covered_paths) /
                        static_cast<double>(result.total_paths);
    result.mean /= static_cast<double>(result.total_paths);
  }
  return result;
}

std::vector<net::RuleId> CoverageEngine::untested_rules(const DeviceFilter& filter) const {
  std::vector<net::RuleId> out;
  for (const net::Device& dev : network_.devices()) {
    if (filter && !filter(dev)) continue;
    for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
      for (const net::RuleId rid : network_.table(dev.id, table)) {
        if (index_.match_set(rid).empty()) continue;  // shadowed: vacuous
        if (covered_.covered(rid).empty()) out.push_back(rid);
      }
    }
  }
  return out;
}

std::vector<net::InterfaceId> CoverageEngine::untested_interfaces(
    const DeviceFilter& filter) const {
  std::vector<net::InterfaceId> out;
  for (const net::Device& dev : network_.devices()) {
    if (filter && !filter(dev)) continue;
    for (const net::InterfaceId intf : dev.interfaces) {
      if (interface_coverage(intf) == 0.0) out.push_back(intf);
    }
  }
  return out;
}

MetricRow CoverageEngine::metrics(const DeviceFilter& filter) const {
  // Each of the four numbers degrades independently: a budget tripping
  // mid-aggregation leaves that metric at its partial/zero value and flags
  // the row instead of propagating an exception to the caller.
  MetricRow row;
  bool degraded = truncated();
  row.device_fractional = degradable(
      &degraded, [&] { return devices_coverage(coverage::fractional_aggregator(), filter); });
  row.interface_fractional = degradable(&degraded, [&] {
    return interfaces_coverage(coverage::fractional_aggregator(), filter);
  });
  row.rule_fractional = degradable(
      &degraded, [&] { return rules_coverage(coverage::fractional_aggregator(), filter); });
  row.rule_weighted = degradable(&degraded, [&] {
    return rules_coverage(coverage::weighted_average_aggregator(), filter);
  });
  row.truncated = degraded;
  return row;
}

CoverageReport CoverageEngine::report() const {
  CoverageReport report;
  report.truncated = truncated();
  const auto metrics_for = [&](const DeviceFilter& filter) { return metrics(filter); };

  report.overall = metrics_for(nullptr);
  report.truncated = report.truncated || report.overall.truncated;
  try {

    // Per-role breakdown in hierarchy order, only for roles that exist.
    for (const net::Role role :
         {net::Role::ToR, net::Role::Aggregation, net::Role::Spine,
          net::Role::RegionalHub, net::Role::Wan, net::Role::Other}) {
      const std::vector<net::DeviceId> members = network_.devices_with_role(role);
      if (members.empty()) continue;
      RoleBreakdown row;
      row.role = role;
      row.device_count = members.size();
      for (const net::DeviceId id : members) {
        row.interface_count += network_.device(id).interfaces.size();
        row.rule_count += network_.table(id, net::TableKind::Acl).size() +
                          network_.table(id, net::TableKind::Fib).size();
      }
      row.metrics = metrics_for(role_filter(role));
      report.truncated = report.truncated || row.metrics.truncated;
      report.by_role.push_back(row);
    }

    // Gap analysis: untested rules grouped by provenance (§7.2).
    std::map<net::RouteKind, RuleGap> gaps;
    for (const net::Rule& rule : network_.rules()) {
      if (index_.match_set(rule.id).empty()) continue;
      RuleGap& gap = gaps[rule.kind];
      gap.kind = rule.kind;
      ++gap.total;
      if (covered_.covered(rule.id).empty()) ++gap.untested;
    }
    for (const auto& [kind, gap] : gaps) report.gaps.push_back(gap);

    for (const net::Device& dev : network_.devices()) {
      if (device_coverage(dev.id) == 0.0) ++report.untested_device_count;
    }
    report.untested_interface_count = untested_interfaces().size();
  } catch (const StatusError& e) {
    // A budget tripping mid-report leaves the rows computed so far in
    // place; the flag tells readers the report is partial.
    if (!is_resource_exhaustion(e.code())) throw;
    report.truncated = true;
  }
  return report;
}

}  // namespace yardstick::ys
