#include "yardstick/engine.hpp"

#include <chrono>

namespace yardstick::ys {

using coverage::ComponentSpec;

CoverageEngine::CoverageEngine(bdd::BddManager& mgr, const net::Network& network,
                               const coverage::CoverageTrace& trace)
    : network_(network),
      index_(mgr, network),
      transfer_(index_),
      covered_(index_, trace),
      factory_(transfer_) {}

double CoverageEngine::rule_coverage(net::RuleId id) const {
  return coverage::component_coverage(covered_, factory_.rule(id));
}

double CoverageEngine::device_coverage(net::DeviceId id) const {
  return coverage::component_coverage(covered_, factory_.device(id));
}

double CoverageEngine::interface_coverage(net::InterfaceId id,
                                          coverage::InterfaceDirection direction) const {
  return coverage::component_coverage(covered_, factory_.interface(id, direction));
}

double CoverageEngine::flow_coverage(net::DeviceId device, net::InterfaceId in_interface,
                                     const packet::PacketSet& headers) const {
  return coverage::component_coverage(covered_,
                                      factory_.flow(device, in_interface, headers));
}

std::vector<net::DeviceId> CoverageEngine::filtered_devices(
    const DeviceFilter& filter) const {
  std::vector<net::DeviceId> out;
  for (const net::Device& d : network_.devices()) {
    if (!filter || filter(d)) out.push_back(d.id);
  }
  return out;
}

double CoverageEngine::rules_coverage(const coverage::Aggregator& aggregate,
                                      const DeviceFilter& filter) const {
  return coverage::collection_coverage(covered_, factory_.all_rules(filtered_devices(filter)),
                                       aggregate);
}

double CoverageEngine::devices_coverage(const coverage::Aggregator& aggregate,
                                        const DeviceFilter& filter) const {
  return coverage::collection_coverage(
      covered_, factory_.all_devices(filtered_devices(filter)), aggregate);
}

double CoverageEngine::interfaces_coverage(const coverage::Aggregator& aggregate,
                                           const DeviceFilter& filter,
                                           coverage::InterfaceDirection direction) const {
  return coverage::collection_coverage(
      covered_, factory_.all_interfaces(filtered_devices(filter), direction), aggregate);
}

PathCoverageResult CoverageEngine::path_coverage(coverage::PathExplorerOptions options,
                                                 double deadline_seconds) const {
  PathCoverageResult result;
  const coverage::PathExplorer explorer(transfer_, &covered_, options);
  const auto start = std::chrono::steady_clock::now();
  const uint64_t emitted =
      explorer.explore_universe([&](const coverage::ExploredPath& path) {
        ++result.total_paths;
        if (path.covered_ratio > 0.0) ++result.covered_paths;
        result.mean += path.covered_ratio;
        if (deadline_seconds > 0.0 && (result.total_paths & 0x3ff) == 0) {
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - start;
          if (elapsed.count() > deadline_seconds) {
            result.truncated = true;
            return false;
          }
        }
        return true;
      });
  if (options.max_paths != 0 && emitted >= options.max_paths) result.truncated = true;
  if (result.total_paths > 0) {
    result.fractional = static_cast<double>(result.covered_paths) /
                        static_cast<double>(result.total_paths);
    result.mean /= static_cast<double>(result.total_paths);
  }
  return result;
}

std::vector<net::RuleId> CoverageEngine::untested_rules(const DeviceFilter& filter) const {
  std::vector<net::RuleId> out;
  for (const net::Device& dev : network_.devices()) {
    if (filter && !filter(dev)) continue;
    for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
      for (const net::RuleId rid : network_.table(dev.id, table)) {
        if (index_.match_set(rid).empty()) continue;  // shadowed: vacuous
        if (covered_.covered(rid).empty()) out.push_back(rid);
      }
    }
  }
  return out;
}

std::vector<net::InterfaceId> CoverageEngine::untested_interfaces(
    const DeviceFilter& filter) const {
  std::vector<net::InterfaceId> out;
  for (const net::Device& dev : network_.devices()) {
    if (filter && !filter(dev)) continue;
    for (const net::InterfaceId intf : dev.interfaces) {
      if (interface_coverage(intf) == 0.0) out.push_back(intf);
    }
  }
  return out;
}

MetricRow CoverageEngine::metrics(const DeviceFilter& filter) const {
  MetricRow row;
  row.device_fractional = devices_coverage(coverage::fractional_aggregator(), filter);
  row.interface_fractional = interfaces_coverage(coverage::fractional_aggregator(), filter);
  row.rule_fractional = rules_coverage(coverage::fractional_aggregator(), filter);
  row.rule_weighted = rules_coverage(coverage::weighted_average_aggregator(), filter);
  return row;
}

CoverageReport CoverageEngine::report() const {
  CoverageReport report;
  const auto metrics_for = [&](const DeviceFilter& filter) { return metrics(filter); };

  report.overall = metrics_for(nullptr);

  // Per-role breakdown in hierarchy order, only for roles that exist.
  for (const net::Role role :
       {net::Role::ToR, net::Role::Aggregation, net::Role::Spine, net::Role::RegionalHub,
        net::Role::Wan, net::Role::Other}) {
    const std::vector<net::DeviceId> members = network_.devices_with_role(role);
    if (members.empty()) continue;
    RoleBreakdown row;
    row.role = role;
    row.device_count = members.size();
    for (const net::DeviceId id : members) {
      row.interface_count += network_.device(id).interfaces.size();
      row.rule_count += network_.table(id, net::TableKind::Acl).size() +
                        network_.table(id, net::TableKind::Fib).size();
    }
    row.metrics = metrics_for(role_filter(role));
    report.by_role.push_back(row);
  }

  // Gap analysis: untested rules grouped by provenance (§7.2).
  std::map<net::RouteKind, RuleGap> gaps;
  for (const net::Rule& rule : network_.rules()) {
    if (index_.match_set(rule.id).empty()) continue;
    RuleGap& gap = gaps[rule.kind];
    gap.kind = rule.kind;
    ++gap.total;
    if (covered_.covered(rule.id).empty()) ++gap.untested;
  }
  for (const auto& [kind, gap] : gaps) report.gaps.push_back(gap);

  for (const net::Device& dev : network_.devices()) {
    if (device_coverage(dev.id) == 0.0) ++report.untested_device_count;
  }
  report.untested_interface_count = untested_interfaces().size();
  return report;
}

}  // namespace yardstick::ys
