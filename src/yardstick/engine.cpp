#include "yardstick/engine.hpp"

#include <atomic>
#include <chrono>
#include <optional>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace yardstick::ys {

using coverage::ComponentSpec;

namespace {

/// Attaches the budget to the manager before any member computation runs
/// (init-list ordering), so the node cap is enforced from the very first
/// match-set BDD operation.
const ResourceBudget* attach_budget(bdd::BddManager& mgr, const ResourceBudget* budget) {
  if (budget != nullptr) mgr.set_budget(budget);
  return budget;
}

/// Writes the elapsed steady-clock seconds into `out` on scope exit. In a
/// return statement, locals are destroyed *after* the returned object is
/// constructed, so a guard in a factory function times the construction.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& out) : out_(out), start_(ResourceBudget::Clock::now()) {}
  ~PhaseTimer() {
    out_ = std::chrono::duration<double>(ResourceBudget::Clock::now() - start_).count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& out_;
  ResourceBudget::Clock::time_point start_;
};

/// Samples the primary manager's engine statistics and the budget's
/// consumption into the metrics registry — called at phase boundaries so
/// the BDD hot path itself carries no instrumentation.
void sample_engine_gauges(const bdd::BddManager& mgr, const ResourceBudget* budget) {
  if (!obs::enabled()) return;
  obs::MetricsRegistry& reg = obs::metrics();
  const bdd::BddManager::Stats stats = mgr.stats();
  reg.gauge("ys.bdd.arena_nodes", "nodes in the primary BDD arena")
      .set(static_cast<double>(stats.arena_nodes));
  reg.gauge("ys.bdd.cache_hit_rate", "apply-cache hit fraction [0,1]")
      .set(stats.cache_hit_rate());
  reg.gauge("ys.bdd.cache_hits", "apply-cache hits on the primary manager")
      .set(static_cast<double>(stats.cache_hits));
  reg.gauge("ys.bdd.cache_misses", "apply-cache misses on the primary manager")
      .set(static_cast<double>(stats.cache_misses));
  reg.gauge("ys.bdd.unique_table_growths", "unique-table rehash events")
      .set(static_cast<double>(stats.unique_table_growths));
  reg.gauge("ys.bdd.op_cache_entries", "adaptive apply-cache capacity (entries)")
      .set(static_cast<double>(stats.op_cache_entries));
  reg.gauge("ys.bdd.op_cache_growths", "adaptive apply-cache resize events")
      .set(static_cast<double>(stats.op_cache_growths));
  reg.gauge("ys.bdd.neg_cache_hits", "complement-memo hits on the primary manager")
      .set(static_cast<double>(stats.neg_cache_hits));
  reg.gauge("ys.bdd.neg_cache_misses", "complement-memo misses on the primary manager")
      .set(static_cast<double>(stats.neg_cache_misses));
  if (budget != nullptr) {
    reg.gauge("ys.budget.used_bdd_nodes", "nodes charged against the shared budget")
        .set(static_cast<double>(budget->used_bdd_nodes()));
    reg.gauge("ys.budget.peak_bdd_nodes",
              "high-water mark of concurrent node charge across all managers")
        .set(static_cast<double>(budget->peak_bdd_nodes()));
    reg.gauge("ys.budget.max_bdd_nodes", "node cap (0 = unlimited)")
        .set(static_cast<double>(budget->max_bdd_nodes()));
    reg.gauge("ys.budget.exhausted", "1 when deadline/cancel tripped")
        .set(budget->exhausted() ? 1.0 : 0.0);
  }
}

}  // namespace

dataplane::MatchSetIndex CoverageEngine::timed_match_sets(
    bdd::BddManager& mgr, const net::Network& network, const EngineOptions& options,
    PhaseTimings& timings, const IncrementalSession* incremental) {
  PhaseTimer timer(timings.match_sets_seconds);
  return dataplane::MatchSetIndex(mgr, network, options.budget, options.threads,
                                  incremental != nullptr ? incremental->match_prefill()
                                                         : nullptr,
                                  options.gc_threshold);
}

coverage::CoveredSets CoverageEngine::timed_covered_sets(
    const dataplane::MatchSetIndex& index, const coverage::CoverageTrace& trace,
    const EngineOptions& options, PhaseTimings& timings,
    const IncrementalSession* incremental) {
  PhaseTimer timer(timings.covered_sets_seconds);
  return coverage::CoveredSets(index, trace, options.budget, options.threads,
                               incremental != nullptr ? incremental->cover_prefill()
                                                      : nullptr,
                               options.gc_threshold);
}

std::unique_ptr<IncrementalSession> CoverageEngine::make_incremental(
    bdd::BddManager& mgr, const net::Network& network,
    const coverage::CoverageTrace& trace, const EngineOptions& options) {
  if (options.cache_dir.empty()) return nullptr;
  const uint64_t fingerprint = options_fingerprint(
      options.threads, options.budget != nullptr ? options.budget->max_bdd_nodes() : 0,
      options.budget != nullptr && options.budget->has_deadline());
  return std::make_unique<IncrementalSession>(mgr, network, trace, options.cache_dir,
                                              fingerprint);
}

CoverageEngine::CoverageEngine(bdd::BddManager& mgr, const net::Network& network,
                               const coverage::CoverageTrace& trace,
                               const ResourceBudget* budget)
    : CoverageEngine(mgr, network, trace, EngineOptions{budget, 1}) {}

CoverageEngine::CoverageEngine(bdd::BddManager& mgr, const net::Network& network,
                               const coverage::CoverageTrace& trace,
                               const EngineOptions& options)
    : network_(network),
      budget_(attach_budget(mgr, options.budget)),
      threads_(options.threads),
      incremental_(make_incremental(mgr, network, trace, options)),
      index_(timed_match_sets(mgr, network, options, timings_, incremental_.get())),
      transfer_(index_),
      covered_(timed_covered_sets(index_, trace, options, timings_, incremental_.get())),
      factory_(transfer_) {
  if (incremental_) {
    incremental_->save(index_, covered_);
    if (obs::enabled()) {
      const CacheStats& cs = incremental_->stats();
      obs::MetricsRegistry& reg = obs::metrics();
      reg.counter("ys.cache.hits", "incremental cache: per-device records reused")
          .add(cs.match_hits + cs.cover_hits);
      reg.counter("ys.cache.misses", "incremental cache: per-device records recomputed")
          .add(cs.match_misses() + cs.cover_misses());
      reg.counter("ys.cache.invalidations",
                  "incremental cache: devices on the invalidation frontier")
          .add(cs.invalidated);
      reg.counter("ys.cache.saves", "incremental cache: files committed")
          .add(cs.saved ? 1 : 0);
    }
  }
  // Offline phase (steps 1-2) just finished: snapshot the primary
  // manager's state and the budget consumption into the registry.
  sample_engine_gauges(mgr, budget_);
}

template <typename Fn>
double CoverageEngine::degradable(bool* degraded, Fn&& fn) const {
  try {
    return fn();
  } catch (const StatusError& e) {
    if (!is_resource_exhaustion(e.code())) throw;
    if (degraded != nullptr) *degraded = true;
    return 0.0;
  }
}

double CoverageEngine::rule_coverage(net::RuleId id) const {
  return coverage::component_coverage(covered_, factory_.rule(id));
}

double CoverageEngine::device_coverage(net::DeviceId id) const {
  return coverage::component_coverage(covered_, factory_.device(id));
}

double CoverageEngine::interface_coverage(net::InterfaceId id,
                                          coverage::InterfaceDirection direction) const {
  return coverage::component_coverage(covered_, factory_.interface(id, direction));
}

double CoverageEngine::flow_coverage(net::DeviceId device, net::InterfaceId in_interface,
                                     const packet::PacketSet& headers) const {
  return coverage::component_coverage(covered_,
                                      factory_.flow(device, in_interface, headers));
}

std::vector<net::DeviceId> CoverageEngine::filtered_devices(
    const DeviceFilter& filter) const {
  std::vector<net::DeviceId> out;
  for (const net::Device& d : network_.devices()) {
    if (!filter || filter(d)) out.push_back(d.id);
  }
  return out;
}

double CoverageEngine::rules_coverage(const coverage::Aggregator& aggregate,
                                      const DeviceFilter& filter) const {
  return coverage::collection_coverage(covered_, factory_.all_rules(filtered_devices(filter)),
                                       aggregate);
}

double CoverageEngine::devices_coverage(const coverage::Aggregator& aggregate,
                                        const DeviceFilter& filter) const {
  return coverage::collection_coverage(
      covered_, factory_.all_devices(filtered_devices(filter)), aggregate);
}

double CoverageEngine::interfaces_coverage(const coverage::Aggregator& aggregate,
                                           const DeviceFilter& filter,
                                           coverage::InterfaceDirection direction) const {
  return coverage::collection_coverage(
      covered_, factory_.all_interfaces(filtered_devices(filter), direction), aggregate);
}

namespace {

/// Partial sweep results for one ingress port. Serial and parallel runs
/// both compute per-ingress partials with identical arithmetic and fold
/// them in ingress order, so the final counts/ratios are bit-identical
/// regardless of thread count.
struct IngressSweep {
  uint64_t total_paths = 0;
  uint64_t covered_paths = 0;
  double ratio_sum = 0.0;
  bool truncated = false;
};

/// Run the streamed DFS for one ingress port. `emitted_total` is the
/// sweep-global path counter enforcing options.max_paths across every
/// ingress (and every worker); the per-explorer cap is disabled.
IngressSweep sweep_ingress(const dataplane::Transfer& transfer,
                           const coverage::CoveredSets& covered,
                           const coverage::PathExplorerOptions& options,
                           const net::Interface& intf,
                           std::atomic<uint64_t>& emitted_total) {
  IngressSweep sweep;
  coverage::PathExplorerOptions local = options;
  local.max_paths = 0;  // the global cap below governs, not the per-DFS one
  const coverage::PathExplorer explorer(transfer, &covered, local);
  const packet::PacketSet all =
      packet::PacketSet::all(transfer.index().manager());
  try {
    explorer.explore(intf.device, intf.id, all, [&](const coverage::ExploredPath& path) {
      ++sweep.total_paths;
      if (path.covered_ratio > 0.0) ++sweep.covered_paths;
      sweep.ratio_sum += path.covered_ratio;
      // The explorer marks paths it had to cut short when the cooperative
      // budget or the deadline tripped mid-DFS.
      if (path.end == coverage::PathEnd::BudgetExceeded) sweep.truncated = true;
      const uint64_t emitted = emitted_total.fetch_add(1, std::memory_order_relaxed) + 1;
      return options.max_paths == 0 || emitted < options.max_paths;
    });
  } catch (const StatusError& e) {
    // The BDD node cap throws from inside set operations; everything
    // emitted so far is a valid partial sweep.
    if (!is_resource_exhaustion(e.code())) throw;
    sweep.truncated = true;
  }
  return sweep;
}

}  // namespace

PathCoverageResult CoverageEngine::path_coverage(coverage::PathExplorerOptions options,
                                                 double deadline_seconds) const {
  obs::Span sweep_span("path_coverage.sweep", "offline");
  const auto sweep_start = ResourceBudget::Clock::now();
  PathCoverageResult result;
  result.truncated = truncated();  // steps 1-2 already degraded: Eq. 3 inputs partial
  if (options.budget == nullptr) options.budget = budget_;
  if (deadline_seconds > 0.0) {
    const auto limit = ResourceBudget::Clock::now() +
                       std::chrono::duration_cast<ResourceBudget::Clock::duration>(
                           std::chrono::duration<double>(deadline_seconds));
    if (!options.has_deadline || limit < options.deadline) options.deadline = limit;
    options.has_deadline = true;
  }

  // The sweep frontier: every edge ingress port, in network interface
  // order (the fold order that fixes the floating-point sums).
  std::vector<const net::Interface*> frontier;
  for (const net::Interface& intf : network_.interfaces()) {
    if (intf.kind == net::PortKind::HostPort || intf.kind == net::PortKind::ExternalPort) {
      frontier.push_back(&intf);
    }
  }

  const unsigned workers = ys::resolve_threads(threads_, frontier.size());
  std::vector<IngressSweep> sweeps(frontier.size());
  std::atomic<uint64_t> emitted_total{0};
  std::atomic<bool> stopped_early{false};
  const auto out_of_time = [&options] {
    return (options.budget != nullptr && options.budget->exhausted()) ||
           (options.has_deadline &&
            ResourceBudget::Clock::now() >= options.deadline);
  };
  const auto out_of_paths = [&options, &emitted_total] {
    return options.max_paths != 0 &&
           emitted_total.load(std::memory_order_relaxed) >= options.max_paths;
  };

  if (workers <= 1) {
    for (size_t i = 0; i < frontier.size(); ++i) {
      if (out_of_time() || out_of_paths()) {
        stopped_early.store(true, std::memory_order_relaxed);
        break;
      }
      sweeps[i] = sweep_ingress(transfer_, covered_, options, *frontier[i], emitted_total);
    }
  } else {
    // Parallel sweep: workers clone the offline-phase products into private
    // managers (read-only imports from the quiescent primary) and drain a
    // shared ingress cursor; partials land in per-ingress slots.
    std::atomic<size_t> cursor{0};
    std::atomic<bool> clone_failed{false};
    ys::run_workers(workers, [&](unsigned /*worker*/) {
      bdd::BddManager local_mgr(index_.manager().num_vars());
      const bdd::ScopedBudget attach(local_mgr, options.budget);
      std::optional<dataplane::MatchSetIndex> local_index;
      std::optional<dataplane::Transfer> local_transfer;
      std::optional<coverage::CoveredSets> local_covered;
      try {
        local_index.emplace(local_mgr, index_);
        local_transfer.emplace(*local_index);
        local_covered.emplace(*local_index, covered_);
      } catch (const StatusError& e) {
        // A budget too tight to even clone the inputs: this worker
        // contributes nothing and the sweep reports truncated.
        if (!is_resource_exhaustion(e.code())) throw;
        clone_failed.store(true, std::memory_order_relaxed);
        return;
      }
      uint64_t drained = 0;
      while (true) {
        if (out_of_time() || out_of_paths()) {
          stopped_early.store(true, std::memory_order_relaxed);
          break;
        }
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= frontier.size()) break;
        sweeps[i] =
            sweep_ingress(*local_transfer, *local_covered, options, *frontier[i],
                          emitted_total);
        ++drained;
      }
      // Queue-occupancy signal: how evenly did workers drain the ingress
      // cursor? A skewed histogram means one giant ingress dominated.
      if (obs::enabled()) ys::worker_items_histogram().observe(static_cast<double>(drained));
    });
    if (clone_failed.load(std::memory_order_relaxed)) result.truncated = true;
  }

  // Deterministic fold in ingress order.
  for (const IngressSweep& s : sweeps) {
    result.total_paths += s.total_paths;
    result.covered_paths += s.covered_paths;
    result.mean += s.ratio_sum;
    result.truncated = result.truncated || s.truncated;
  }
  if (stopped_early.load(std::memory_order_relaxed)) result.truncated = true;
  if (options.max_paths != 0 && result.total_paths >= options.max_paths) {
    result.truncated = true;
  }
  // A budget that tripped between paths (or before the first ingress) makes
  // the sweep stop silently; the result is still partial.
  if (options.budget != nullptr && options.budget->exhausted()) result.truncated = true;
  if (result.total_paths > 0) {
    result.fractional = static_cast<double>(result.covered_paths) /
                        static_cast<double>(result.total_paths);
    result.mean /= static_cast<double>(result.total_paths);
  }
  result.seconds =
      std::chrono::duration<double>(ResourceBudget::Clock::now() - sweep_start).count();
  sweep_span.arg("total_paths", result.total_paths);
  sweep_span.arg("covered_paths", result.covered_paths);
  sweep_span.arg("workers", workers);
  sweep_span.arg("truncated", result.truncated ? 1 : 0);
  sample_engine_gauges(index_.manager(), options.budget);
  return result;
}

std::vector<net::RuleId> CoverageEngine::untested_rules(const DeviceFilter& filter) const {
  std::vector<net::RuleId> out;
  for (const net::Device& dev : network_.devices()) {
    if (filter && !filter(dev)) continue;
    for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
      for (const net::RuleId rid : network_.table(dev.id, table)) {
        if (index_.match_set(rid).empty()) continue;  // shadowed: vacuous
        if (covered_.covered(rid).empty()) out.push_back(rid);
      }
    }
  }
  return out;
}

std::vector<net::InterfaceId> CoverageEngine::untested_interfaces(
    const DeviceFilter& filter) const {
  std::vector<net::InterfaceId> out;
  for (const net::Device& dev : network_.devices()) {
    if (filter && !filter(dev)) continue;
    for (const net::InterfaceId intf : dev.interfaces) {
      if (interface_coverage(intf) == 0.0) out.push_back(intf);
    }
  }
  return out;
}

MetricRow CoverageEngine::metrics(const DeviceFilter& filter) const {
  // Each of the four numbers degrades independently: a budget tripping
  // mid-aggregation leaves that metric at its partial/zero value and flags
  // the row instead of propagating an exception to the caller.
  MetricRow row;
  bool degraded = truncated();
  row.device_fractional = degradable(
      &degraded, [&] { return devices_coverage(coverage::fractional_aggregator(), filter); });
  row.interface_fractional = degradable(&degraded, [&] {
    return interfaces_coverage(coverage::fractional_aggregator(), filter);
  });
  row.rule_fractional = degradable(
      &degraded, [&] { return rules_coverage(coverage::fractional_aggregator(), filter); });
  row.rule_weighted = degradable(&degraded, [&] {
    return rules_coverage(coverage::weighted_average_aggregator(), filter);
  });
  row.truncated = degraded;
  return row;
}

CoverageReport CoverageEngine::report() const {
  obs::Span span("analysis.report", "report");
  CoverageReport report;
  report.timings = timings_;
  report.truncated = truncated();
  const auto metrics_for = [&](const DeviceFilter& filter) { return metrics(filter); };

  report.overall = metrics_for(nullptr);
  report.truncated = report.truncated || report.overall.truncated;
  try {

    // Per-role breakdown in hierarchy order, only for roles that exist.
    for (const net::Role role :
         {net::Role::ToR, net::Role::Aggregation, net::Role::Spine,
          net::Role::RegionalHub, net::Role::Wan, net::Role::Other}) {
      const std::vector<net::DeviceId> members = network_.devices_with_role(role);
      if (members.empty()) continue;
      RoleBreakdown row;
      row.role = role;
      row.device_count = members.size();
      for (const net::DeviceId id : members) {
        row.interface_count += network_.device(id).interfaces.size();
        row.rule_count += network_.table(id, net::TableKind::Acl).size() +
                          network_.table(id, net::TableKind::Fib).size();
      }
      row.metrics = metrics_for(role_filter(role));
      report.truncated = report.truncated || row.metrics.truncated;
      report.by_role.push_back(row);
    }

    // Gap analysis: untested rules grouped by provenance (§7.2).
    std::map<net::RouteKind, RuleGap> gaps;
    for (const net::Rule& rule : network_.rules()) {
      if (index_.match_set(rule.id).empty()) continue;
      RuleGap& gap = gaps[rule.kind];
      gap.kind = rule.kind;
      ++gap.total;
      if (covered_.covered(rule.id).empty()) ++gap.untested;
    }
    for (const auto& [kind, gap] : gaps) report.gaps.push_back(gap);

    for (const net::Device& dev : network_.devices()) {
      if (device_coverage(dev.id) == 0.0) ++report.untested_device_count;
    }
    report.untested_interface_count = untested_interfaces().size();
  } catch (const StatusError& e) {
    // A budget tripping mid-report leaves the rows computed so far in
    // place; the flag tells readers the report is partial.
    if (!is_resource_exhaustion(e.code())) throw;
    report.truncated = true;
  }
  return report;
}

}  // namespace yardstick::ys
