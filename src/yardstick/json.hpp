// JSON export of coverage reports and test results — the integration
// surface for dashboards and CI pipelines (the role Codecov-style services
// play for software coverage, §1).
#pragma once

#include <string>
#include <vector>

#include "nettest/test.hpp"
#include "yardstick/report.hpp"

namespace yardstick::ys {

/// Serialize a coverage report as a JSON object (stable key order).
[[nodiscard]] std::string report_to_json(const CoverageReport& report);

/// Serialize a suite's results as a JSON array.
[[nodiscard]] std::string results_to_json(const std::vector<nettest::TestResult>& results);

}  // namespace yardstick::ys
