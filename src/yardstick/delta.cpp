#include "yardstick/delta.hpp"

#include <array>
#include <unordered_map>
#include <utility>

namespace yardstick::ys {

using packet::PacketSet;

void ContentHasher::bytes(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h_ ^= p[i];
    h_ *= 0x100000001b3ULL;
  }
}

void ContentHasher::u64(uint64_t v) {
  // Explicit little-endian bytes: the hash must not depend on host layout
  // of wider stores (the cache is local, but tests compare hashes).
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(buf, sizeof(buf));
}

namespace {

void hash_prefix(ContentHasher& h, const packet::Ipv4Prefix& p) {
  h.u64(p.address());
  h.u64(p.length());
}

void hash_match_spec(ContentHasher& h, const net::MatchSpec& spec) {
  h.maybe(spec.dst_prefix, [&](const packet::Ipv4Prefix& p) { hash_prefix(h, p); });
  h.maybe(spec.src_prefix, [&](const packet::Ipv4Prefix& p) { hash_prefix(h, p); });
  h.maybe(spec.proto, [&](uint8_t v) { h.u64(v); });
  h.maybe(spec.src_port, [&](const net::PortRange& r) {
    h.u64(r.lo);
    h.u64(r.hi);
  });
  h.maybe(spec.dst_port, [&](const net::PortRange& r) {
    h.u64(r.lo);
    h.u64(r.hi);
  });
  h.u64(spec.in_interfaces.size());
  for (const net::InterfaceId intf : spec.in_interfaces) h.u64(intf.value);
}

void hash_action(ContentHasher& h, const net::Action& action) {
  h.u64(static_cast<uint64_t>(action.type));
  h.u64(action.out_interfaces.size());
  for (const net::InterfaceId intf : action.out_interfaces) h.u64(intf.value);
  h.u64(action.rewrites.size());
  for (const net::Rewrite& rw : action.rewrites) {
    h.u64(static_cast<uint64_t>(rw.field));
    h.u64(rw.value);
  }
}

}  // namespace

uint64_t hash_device_tables(const net::Network& network, net::DeviceId dev) {
  ContentHasher h;
  for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
    const std::span<const net::RuleId> rules = network.table(dev, table);
    h.u64(rules.size());
    for (const net::RuleId rid : rules) {
      const net::Rule& r = network.rule(rid);
      h.u64(r.priority);
      hash_match_spec(h, r.match);
      hash_action(h, r.action);
    }
  }
  return h.value();
}

namespace {

/// Bottom-up structural hash of one BDD node: a pure function of
/// (var, low-subgraph, high-subgraph), never of arena layout — two sets
/// with the same logical content hash alike in any manager. The memo is a
/// dense arena-indexed vector (0 = not yet hashed) shared across every
/// slice of one key pass: one allocation amortized over the whole trace,
/// and subgraphs shared between locations hash exactly once.
uint64_t structural_hash(const bdd::BddManager& mgr, bdd::NodeIndex root,
                         std::vector<uint64_t>& memo) {
  constexpr uint64_t kFalseHash = 0x61c8864680b583ebULL;
  constexpr uint64_t kTrueHash = 0x3c79ac492ba7b653ULL;
  const auto mix = [](uint64_t var, uint64_t lo, uint64_t hi) {
    uint64_t h = 0xcbf29ce484222325ULL;
    h = (h ^ var) * 0x100000001b3ULL;
    h = (h ^ lo) * 0x100000001b3ULL;
    h = (h ^ hi) * 0x100000001b3ULL;
    return h;
  };
  if (memo.size() < mgr.arena_size()) memo.resize(mgr.arena_size(), 0);
  const auto known = [&](bdd::NodeIndex n, uint64_t& out) {
    if (n == bdd::kFalse) return out = kFalseHash, true;
    if (n == bdd::kTrue) return out = kTrueHash, true;
    // A subgraph genuinely hashing to 0 (p = 2^-64) is re-walked per
    // visit — same value every time, so merely redundant work.
    return memo[n] == 0 ? false : (out = memo[n], true);
  };
  uint64_t h = 0;
  if (known(root, h)) return h;
  std::vector<bdd::NodeIndex> stack{root};
  while (!stack.empty()) {
    const bdd::NodeIndex n = stack.back();
    const bdd::BddNode& node = mgr.node(n);
    uint64_t lo = 0, hi = 0;
    const bool lo_done = known(node.low, lo);
    const bool hi_done = known(node.high, hi);
    if (lo_done && hi_done) {
      stack.pop_back();
      memo[n] = mix(node.var, lo, hi);
      continue;
    }
    if (!lo_done) stack.push_back(node.low);
    if (!hi_done) stack.push_back(node.high);
  }
  (void)known(root, h);
  return h;
}

}  // namespace

void hash_packet_set(ContentHasher& hasher, const PacketSet& ps) {
  std::vector<uint64_t> memo;
  hasher.u64(structural_hash(*ps.raw().manager(), ps.raw().index(), memo));
}

std::vector<DeviceKeys> compute_device_keys(const net::Network& network,
                                            const coverage::CoverageTrace& trace) {
  std::vector<DeviceKeys> out(network.device_count());
  // One memo for the whole key pass: every trace slice lives in the same
  // manager, so structurally shared subgraphs across locations hash once.
  std::vector<uint64_t> memo;
  for (const net::Device& dev : network.devices()) {
    DeviceKeys& keys = out[dev.id.value];
    keys.fib_hash = hash_device_tables(network, dev.id);

    ContentHasher h;
    h.u64(keys.fib_hash);
    // The trace slice Algorithm 1 reads for this device: the device-local
    // injection location plus every interface location. Absent and empty
    // sets hash alike — both contribute nothing to the union.
    const auto add_location = [&](packet::LocationId loc) {
      const PacketSet at = trace.marked_packets().at(loc);
      h.u64(loc);
      if (at.valid() && !at.empty()) {
        h.u64(1);
        h.u64(structural_hash(*at.raw().manager(), at.raw().index(), memo));
      } else {
        h.u64(0);
      }
    };
    add_location(net::device_location(dev.id));
    for (const net::InterfaceId intf : dev.interfaces) {
      add_location(net::to_location(intf));
    }
    // State-inspection bits by table position (positions are stable under
    // the fib_hash gate; global rule ids are not and never enter a key).
    for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
      for (const net::RuleId rid : network.table(dev.id, table)) {
        h.u64(trace.rule_marked(rid) ? 1 : 0);
      }
    }
    keys.cov_hash = h.value();
  }
  return out;
}

std::vector<net::DeviceId> invalidation_frontier(const std::vector<DeviceKeys>& before,
                                                 const std::vector<DeviceKeys>& after) {
  std::vector<net::DeviceId> stale;
  const size_t n = std::max(before.size(), after.size());
  for (size_t d = 0; d < n; ++d) {
    if (d >= before.size() || d >= after.size() ||
        before[d].cov_hash != after[d].cov_hash) {
      stale.push_back(net::DeviceId{static_cast<uint32_t>(d)});
    }
  }
  return stale;
}

}  // namespace yardstick::ys
