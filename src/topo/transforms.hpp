// Transforming-rule overlay for the regional generator: tunnels and NAT.
//
// Two-phase contract, split around FIB computation:
//
//   1. plan_transforms() runs *before* routing. It picks deterministic
//      (ingress ToR, egress ToR) tunnel pairs, allocates a VIP and a tunnel
//      endpoint address per tunnel, and registers each endpoint on the
//      egress device's `tunnel_endpoints` so the BGP simulator originates
//      it network-wide. Endpoints are deliberately not loopbacks: the FIB
//      builder would otherwise install a local route at the origin that
//      shadows the decap rule.
//
//   2. install_transform_rules() runs *after* every FIB (re)build — it must
//      be re-applied whenever FibBuilder wipes the tables, e.g. per failure
//      scenario. It installs, honoring the failure sets in RoutingConfig:
//        - encap  (ingress ToR): dst=VIP/32 -> rewrite dst to the endpoint,
//          ECMP across the surviving northbound fabric links (the group
//          rehashes when links fail; with no uplinks left it blackholes);
//        - decap  (egress ToR):  dst=endpoint/32 -> rewrite dst to a hosted
//          address and deliver out the first host port;
//        - NAT    (each WAN):    dst=<wide-area prefix>, src=10.0.0.0/9 ->
//          rewrite src into the 203.0.113.0/24 pool, egress external.
//
// Address carving (disjoint from SubnetAllocator's ranges):
//   VIPs              198.18.0.0/16  (one /32 per tunnel)
//   tunnel endpoints  198.19.0.0/16  (one /32 per tunnel)
//   NAT pool          203.0.113.0/24
#pragma once

#include <vector>

#include "topo/regional.hpp"

namespace yardstick::topo {

struct TransformParams {
  /// Number of VIP tunnels (ingress/egress ToR pairs, chosen round-robin).
  int tunnels = 0;
  /// NAT-style source-rewrite rules installed on every WAN router.
  int nat_rules_per_wan = 0;
};

/// One planned tunnel: packets entering `ingress` destined to `vip` are
/// encapped (dst rewritten to `endpoint`), routed across the fabric, and
/// decapped at `egress` (dst rewritten to `inner_dst`, a hosted address).
struct TunnelPlan {
  net::DeviceId ingress;
  net::DeviceId egress;
  packet::Ipv4Prefix vip;       // /32 in 198.18.0.0/16
  packet::Ipv4Prefix endpoint;  // /32 in 198.19.0.0/16
  uint32_t inner_dst = 0;       // hosted address behind the egress ToR
};

/// Output of the planning phase; input to every rule (re)install.
struct TransformState {
  std::vector<TunnelPlan> tunnels;
  int nat_rules_per_wan = 0;
  std::vector<net::DeviceId> wans;

  [[nodiscard]] bool empty() const { return tunnels.empty() && nat_rules_per_wan == 0; }
};

/// Phase 1 (pre-FIB): plan tunnels and register endpoints for origination.
/// Requires at least two ToRs when params.tunnels > 0.
TransformState plan_transforms(RegionalNetwork& region, const TransformParams& params);

/// Phase 2 (post-FIB): install the transform rules into the current tables.
/// Skips failed devices and filters ECMP groups through `routing`'s failure
/// sets, so re-running it per scenario yields rehashed groups.
void install_transform_rules(net::Network& network, const TransformState& state,
                             const routing::RoutingConfig& routing);

}  // namespace yardstick::topo
