#include "topo/regional.hpp"

#include "common/status.hpp"

#include <stdexcept>
#include <string>

#include "topo/subnets.hpp"

namespace yardstick::topo {

using net::DeviceId;
using net::InterfaceId;
using net::PortKind;
using net::Role;

RegionalNetwork make_regional(const RegionalParams& p) {
  if (p.datacenters < 1 || p.pods_per_dc < 1 || p.tors_per_pod < 1 || p.aggs_per_pod < 1 ||
      p.spines_per_dc < 1 || p.hubs < 1 || p.wans < 1 || p.host_ports_per_tor < 1) {
    throw ys::InvalidInputError("regional network parameters must be positive");
  }

  RegionalNetwork region;
  net::Network& net = region.network;
  SubnetAllocator subnets;

  const auto connect = [&](DeviceId a, DeviceId b) {
    const InterfaceId ia =
        net.add_interface(a, "eth" + std::to_string(net.device(a).interfaces.size()));
    const InterfaceId ib =
        net.add_interface(b, "eth" + std::to_string(net.device(b).interfaces.size()));
    net.add_link(ia, ib, subnets.next_link_subnet());
  };

  const auto finish_router = [&](DeviceId id) {
    // Every router gets a loopback (redistributed into eBGP, §7.1) and the
    // local port its loopback traffic terminates on.
    net.device(id).loopbacks.push_back(subnets.next_loopback());
    net.add_interface(id, "local0", PortKind::LocalPort);
  };

  // Regional layers: hubs and WAN backbone routers.
  for (int h = 0; h < p.hubs; ++h) {
    const DeviceId hub = net.add_device("hub-" + std::to_string(h), Role::RegionalHub,
                                        routing::role_asn(Role::RegionalHub));
    region.hubs.push_back(hub);
    finish_router(hub);
    if (h < p.hubs_without_default) region.routing.no_default_devices.insert(hub);
  }
  for (int w = 0; w < p.wans; ++w) {
    const DeviceId wan =
        net.add_device("wan-" + std::to_string(w), Role::Wan, routing::role_asn(Role::Wan));
    region.wans.push_back(wan);
    finish_router(wan);
    net.add_interface(wan, "internet0", PortKind::ExternalPort);
    auto& wide_area = region.routing.wide_area_prefixes[wan];
    for (int i = 0; i < p.wide_area_prefix_count; ++i) {
      wide_area.push_back(subnets.next_wide_area_prefix());
    }
  }
  // Full mesh hub <-> WAN.
  for (const DeviceId hub : region.hubs) {
    for (const DeviceId wan : region.wans) connect(hub, wan);
  }

  // Datacenters.
  for (int d = 0; d < p.datacenters; ++d) {
    const std::string dc = "dc" + std::to_string(d);
    std::vector<DeviceId> spines;
    for (int s = 0; s < p.spines_per_dc; ++s) {
      const DeviceId spine = net.add_device(dc + "-spine-" + std::to_string(s), Role::Spine,
                                            routing::role_asn(Role::Spine));
      spines.push_back(spine);
      region.spines.push_back(spine);
      finish_router(spine);
      for (const DeviceId hub : region.hubs) connect(spine, hub);
    }
    for (int pod = 0; pod < p.pods_per_dc; ++pod) {
      std::vector<DeviceId> aggs;
      for (int a = 0; a < p.aggs_per_pod; ++a) {
        const DeviceId agg = net.add_device(
            dc + "-pod" + std::to_string(pod) + "-agg-" + std::to_string(a),
            Role::Aggregation, routing::role_asn(Role::Aggregation));
        aggs.push_back(agg);
        region.aggs.push_back(agg);
        finish_router(agg);
        for (const DeviceId spine : spines) connect(agg, spine);
      }
      for (int t = 0; t < p.tors_per_pod; ++t) {
        const DeviceId tor = net.add_device(
            dc + "-pod" + std::to_string(pod) + "-tor-" + std::to_string(t), Role::ToR,
            routing::role_asn(Role::ToR));
        region.tors.push_back(tor);
        finish_router(tor);
        for (const DeviceId agg : aggs) connect(tor, agg);
        // Host ports, each with its own hosted subnet (§7.1: ToRs connect
        // hosts on Ethernet interfaces with assigned subnets and advertise
        // aggregated prefixes for them).
        for (int hp = 0; hp < p.host_ports_per_tor; ++hp) {
          net.add_interface(tor, "host" + std::to_string(hp), PortKind::HostPort);
          net.device(tor).host_prefixes.push_back(subnets.next_host_prefix());
        }
      }
    }
  }

  return region;
}

}  // namespace yardstick::topo
