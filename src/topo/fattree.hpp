// k-ary fat-tree generator (Al-Fares et al. [1]) used by the performance
// evaluation (§8): k pods of k/2 edge (ToR) and k/2 aggregation switches,
// (k/2)^2 cores, 5k^2/4 routers total. Each ToR hosts one prefix; routing
// runs as in §7.1 (eBGP, static northbound defaults, optional WAN
// attachment announcing the default route and wide-area prefixes).
#pragma once

#include <vector>

#include "netmodel/network.hpp"
#include "routing/config.hpp"

namespace yardstick::topo {

struct FatTreeParams {
  /// Fat-tree arity; must be even and >= 2. Router count is 5k^2/4.
  int k = 4;
  /// Attach one WAN router above the core layer that originates the
  /// default route and `wide_area_prefix_count` external prefixes.
  bool with_wan = true;
  int wide_area_prefix_count = 8;
  /// Give every router a loopback (/32) and a local port. Off by default
  /// for the §8 benchmarks, which only need hosted prefixes.
  bool with_loopbacks = false;
};

struct FatTree {
  net::Network network;
  routing::RoutingConfig routing;
  std::vector<net::DeviceId> tors;
  std::vector<net::DeviceId> aggs;
  std::vector<net::DeviceId> cores;
  net::DeviceId wan;  // invalid when with_wan == false

  /// The hosted prefix of a ToR (one per ToR, §8.1).
  [[nodiscard]] const packet::Ipv4Prefix& tor_prefix(const net::Network& n,
                                                     net::DeviceId tor) const {
    return n.device(tor).host_prefixes.front();
  }
};

/// Build the topology and its routing configuration. Call
/// routing::FibBuilder::compute_and_build(tree.network, tree.routing)
/// afterwards to install the forwarding state.
[[nodiscard]] FatTree make_fat_tree(const FatTreeParams& params);

}  // namespace yardstick::topo
