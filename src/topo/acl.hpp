// Ingress ACL installation for generated topologies.
//
// Models the security half of the Figure 2 taxonomy: edge routers carry an
// ingress ACL that denies a handful of well-known-dangerous destination
// ports and permits everything else. ACLs are device configuration, not
// routing output — install them *after* FibBuilder has (re)built the
// forwarding state, since rebuilding clears all rules.
#pragma once

#include <cstdint>
#include <vector>

#include "netmodel/network.hpp"

namespace yardstick::topo {

struct SecurityPolicy {
  /// TCP destination ports denied at ingress (the paper's Fig. 2 example
  /// blocks port 23).
  std::vector<uint16_t> blocked_tcp_ports{23, 135, 139, 445};
};

inline constexpr uint8_t kTcp = 6;

/// Install an ingress ACL on each listed device: one deny entry per
/// blocked TCP port, then a final permit-everything entry. Returns the
/// rule ids of every installed entry (denies first, per device).
std::vector<net::RuleId> install_ingress_acls(net::Network& network,
                                              const std::vector<net::DeviceId>& devices,
                                              const SecurityPolicy& policy = {});

}  // namespace yardstick::topo
