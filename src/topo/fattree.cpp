#include "topo/fattree.hpp"

#include "common/status.hpp"

#include <stdexcept>
#include <string>

#include "topo/subnets.hpp"

namespace yardstick::topo {

using net::DeviceId;
using net::InterfaceId;
using net::PortKind;
using net::Role;
using packet::Ipv4Prefix;

FatTree make_fat_tree(const FatTreeParams& params) {
  const int k = params.k;
  if (k < 2 || k % 2 != 0) throw ys::InvalidInputError("fat-tree k must be even, >= 2");
  const int half = k / 2;

  FatTree tree;
  net::Network& net = tree.network;
  SubnetAllocator subnets;

  // Core switches.
  for (int i = 0; i < half * half; ++i) {
    tree.cores.push_back(
        net.add_device("core-" + std::to_string(i), Role::Spine, routing::role_asn(Role::Spine)));
  }
  // Pods: aggregation + edge (ToR).
  for (int pod = 0; pod < k; ++pod) {
    for (int a = 0; a < half; ++a) {
      tree.aggs.push_back(net.add_device("agg-" + std::to_string(pod) + "-" + std::to_string(a),
                                         Role::Aggregation,
                                         routing::role_asn(Role::Aggregation)));
    }
    for (int t = 0; t < half; ++t) {
      const DeviceId tor = net.add_device(
          "tor-" + std::to_string(pod) + "-" + std::to_string(t), Role::ToR,
          routing::role_asn(Role::ToR));
      tree.tors.push_back(tor);
      // One hosted prefix and one host port per ToR (§8.1).
      net.device(tor).host_prefixes.push_back(subnets.next_host_prefix());
      net.add_interface(tor, "host0", PortKind::HostPort);
    }
  }

  const auto connect = [&](DeviceId a, DeviceId b) {
    const InterfaceId ia =
        net.add_interface(a, "eth" + std::to_string(net.device(a).interfaces.size()));
    const InterfaceId ib =
        net.add_interface(b, "eth" + std::to_string(net.device(b).interfaces.size()));
    net.add_link(ia, ib, subnets.next_link_subnet());
  };

  // Pod wiring: each ToR to every agg of its pod; agg j to cores
  // [j*half, (j+1)*half).
  for (int pod = 0; pod < k; ++pod) {
    for (int t = 0; t < half; ++t) {
      for (int a = 0; a < half; ++a) {
        connect(tree.tors[pod * half + t], tree.aggs[pod * half + a]);
      }
    }
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        connect(tree.aggs[pod * half + a], tree.cores[a * half + c]);
      }
    }
  }

  if (params.with_loopbacks) {
    for (const net::Device& dev : net.devices()) {
      const DeviceId id = dev.id;
      net.device(id).loopbacks.push_back(subnets.next_loopback());
      net.add_interface(id, "local0", PortKind::LocalPort);
    }
  }

  if (params.with_wan) {
    tree.wan = net.add_device("wan-0", Role::Wan, routing::role_asn(Role::Wan));
    net.add_interface(tree.wan, "internet0", PortKind::ExternalPort);
    for (const DeviceId core : tree.cores) connect(core, tree.wan);
    auto& wide_area = tree.routing.wide_area_prefixes[tree.wan];
    for (int i = 0; i < params.wide_area_prefix_count; ++i) {
      wide_area.push_back(subnets.next_wide_area_prefix());
    }
  }

  return tree;
}

}  // namespace yardstick::topo
