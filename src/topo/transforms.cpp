#include "topo/transforms.hpp"

#include "common/status.hpp"
#include "packet/fields.hpp"

namespace yardstick::topo {

using net::Action;
using net::DeviceId;
using net::InterfaceId;
using net::MatchSpec;
using net::RouteKind;
using net::TableKind;
using packet::Ipv4Prefix;

namespace {

constexpr uint32_t kVipBase = 0xC6120000u;       // 198.18.0.0/16
constexpr uint32_t kEndpointBase = 0xC6130000u;  // 198.19.0.0/16
constexpr uint32_t kNatPoolBase = 0xCB007100u;   // 203.0.113.0/24

/// Priorities below the shortest FIB prefix priority (32 - len) so
/// transform rules are matched ahead of the routed entries they overlay.
constexpr uint32_t kTunnelPriority = 0;
constexpr uint32_t kNatPriority = 1;

}  // namespace

TransformState plan_transforms(RegionalNetwork& region, const TransformParams& params) {
  if (params.tunnels < 0 || params.nat_rules_per_wan < 0) {
    throw ys::InvalidInputError("transform counts must be non-negative");
  }
  TransformState state;
  state.nat_rules_per_wan = params.nat_rules_per_wan;
  state.wans = region.wans;

  if (params.tunnels > 0 && region.tors.size() < 2) {
    throw ys::InvalidInputError("tunnels require at least two ToRs");
  }
  if (params.tunnels > (1 << 16) - 1) {
    throw ys::InvalidInputError("tunnel VIP space exhausted");
  }

  net::Network& net = region.network;
  const size_t n = region.tors.size();
  for (int t = 0; t < params.tunnels; ++t) {
    TunnelPlan plan;
    // Round-robin ingress; egress offset by half the ring so pairs span
    // pods/datacenters and the fabric actually carries the encapped flow.
    plan.ingress = region.tors[static_cast<size_t>(t) % n];
    plan.egress = region.tors[(static_cast<size_t>(t) + (n + 1) / 2) % n];
    if (plan.egress == plan.ingress) {
      plan.egress = region.tors[(static_cast<size_t>(t) + 1) % n];
    }
    plan.vip = Ipv4Prefix(kVipBase + static_cast<uint32_t>(t), 32);
    plan.endpoint = Ipv4Prefix(kEndpointBase + static_cast<uint32_t>(t), 32);

    net::Device& egress = net.device(plan.egress);
    if (egress.host_prefixes.empty()) {
      throw ys::InvalidInputError("tunnel egress ToR has no hosted subnet");
    }
    plan.inner_dst = egress.host_prefixes.front().first() + 1;
    egress.tunnel_endpoints.push_back(plan.endpoint);
    state.tunnels.push_back(plan);
  }
  return state;
}

void install_transform_rules(net::Network& network, const TransformState& state,
                             const routing::RoutingConfig& routing) {
  const auto northbound = [&](DeviceId dev) {
    std::vector<InterfaceId> up;
    const int my_tier = routing::tier(network.device(dev).role);
    for (const auto& [intf, peer] : network.neighbors(dev)) {
      if (!routing.link_usable(network, intf)) continue;
      if (routing::tier(network.device(peer).role) > my_tier) up.push_back(intf);
    }
    return up;
  };

  for (const TunnelPlan& plan : state.tunnels) {
    // Encap at the ingress ToR: ECMP over the surviving uplinks. With every
    // uplink down the VIP blackholes — the scenario report should see that.
    if (!routing.failed_devices.contains(plan.ingress)) {
      std::vector<InterfaceId> uplinks = northbound(plan.ingress);
      Action encap = uplinks.empty() ? Action::drop() : Action::forward(std::move(uplinks));
      encap.rewrites.push_back({packet::Field::DstIp, plan.endpoint.address()});
      network.add_rule(plan.ingress, MatchSpec::for_dst(plan.vip), std::move(encap),
                       RouteKind::Tunnel, kTunnelPriority, TableKind::Fib);
    }
    // Decap at the egress ToR: deliver to the first host port with the
    // inner (hosted) destination restored.
    if (!routing.failed_devices.contains(plan.egress)) {
      const std::vector<InterfaceId> hosts =
          network.ports_of_kind(plan.egress, net::PortKind::HostPort);
      Action decap = hosts.empty() ? Action::drop() : Action::forward({hosts.front()});
      decap.rewrites.push_back({packet::Field::DstIp, plan.inner_dst});
      network.add_rule(plan.egress, MatchSpec::for_dst(plan.endpoint), std::move(decap),
                       RouteKind::Tunnel, kTunnelPriority, TableKind::Fib);
    }
  }

  if (state.nat_rules_per_wan <= 0) return;
  for (const DeviceId wan : state.wans) {
    if (routing.failed_devices.contains(wan)) continue;
    const auto it = routing.wide_area_prefixes.find(wan);
    if (it == routing.wide_area_prefixes.end() || it->second.empty()) continue;
    const std::vector<InterfaceId> external =
        network.ports_of_kind(wan, net::PortKind::ExternalPort);
    if (external.empty()) continue;
    for (int i = 0; i < state.nat_rules_per_wan; ++i) {
      // Internally-sourced traffic to a wide-area prefix leaves with its
      // source translated into the pool; everything else falls through to
      // the plain wide-area route below.
      MatchSpec match = MatchSpec::for_dst(it->second[static_cast<size_t>(i) %
                                                      it->second.size()]);
      match.src_prefix = Ipv4Prefix(0x0A000000u, 9);
      Action nat = Action::forward(external);
      nat.rewrites.push_back(
          {packet::Field::SrcIp, kNatPoolBase + static_cast<uint32_t>(i % 254) + 1});
      network.add_rule(wan, std::move(match), std::move(nat), RouteKind::Nat,
                       kNatPriority, TableKind::Fib);
    }
  }
}

}  // namespace yardstick::topo
