#include "topo/acl.hpp"

namespace yardstick::topo {

std::vector<net::RuleId> install_ingress_acls(net::Network& network,
                                              const std::vector<net::DeviceId>& devices,
                                              const SecurityPolicy& policy) {
  std::vector<net::RuleId> installed;
  for (const net::DeviceId device : devices) {
    uint32_t priority = 0;
    for (const uint16_t port : policy.blocked_tcp_ports) {
      net::MatchSpec match;
      match.proto = kTcp;
      match.dst_port = net::PortRange{port, port};
      installed.push_back(network.add_rule(device, std::move(match), net::Action::drop(),
                                           net::RouteKind::Security, priority++,
                                           net::TableKind::Acl));
    }
    // Final catch-all permit (otherwise the implicit deny eats the world).
    installed.push_back(network.add_rule(device, net::MatchSpec{}, net::Action::permit(),
                                         net::RouteKind::Security, priority,
                                         net::TableKind::Acl));
  }
  return installed;
}

}  // namespace yardstick::topo
