// Address-space allocator shared by the topology generators.
//
// Carves disjoint regions for the different route categories so generated
// networks never have accidental prefix collisions:
//   host subnets     10.0.0.0/9     (one /24 per allocation)
//   loopbacks        10.128.0.0/9   (one /32 per allocation)
//   link subnets     172.16.0.0/12  (one /31 per allocation)
//   wide-area space  100.64.0.0/10  (one /16 per allocation)
#pragma once

#include "common/status.hpp"
#include "packet/prefix.hpp"

namespace yardstick::topo {

class SubnetAllocator {
 public:
  [[nodiscard]] packet::Ipv4Prefix next_host_prefix() {
    if (host_index_ >= (1u << 15)) {
      throw ys::StatusError(ys::Error::InvalidInput, "host prefix space exhausted");
    }
    return packet::Ipv4Prefix(0x0A000000u, 9).subnet(24, host_index_++);
  }

  [[nodiscard]] packet::Ipv4Prefix next_loopback() {
    if (loopback_index_ >= (1u << 23)) {
      throw ys::StatusError(ys::Error::InvalidInput, "loopback space exhausted");
    }
    return packet::Ipv4Prefix(0x0A800000u, 9).subnet(32, loopback_index_++);
  }

  [[nodiscard]] packet::Ipv4Prefix next_link_subnet() {
    if (link_index_ >= (1u << 19)) {
      throw ys::StatusError(ys::Error::InvalidInput, "link subnet space exhausted");
    }
    return packet::Ipv4Prefix(0xAC100000u, 12).subnet(31, link_index_++);
  }

  [[nodiscard]] packet::Ipv4Prefix next_wide_area_prefix() {
    if (wide_area_index_ >= (1u << 6)) {
      throw ys::StatusError(ys::Error::InvalidInput, "wide-area prefix space exhausted");
    }
    return packet::Ipv4Prefix(0x64400000u, 10).subnet(16, wide_area_index_++);
  }

 private:
  uint32_t host_index_ = 0;
  uint32_t loopback_index_ = 0;
  uint32_t link_index_ = 0;
  uint32_t wide_area_index_ = 0;
};

}  // namespace yardstick::topo
