// Regional multi-datacenter network generator (§7.1).
//
// Topology: per datacenter, a hierarchical Clos of ToR -> pod aggregation
// -> spine; spines of every datacenter connect to a shared layer of
// regional hub routers, which in turn connect to wide-area (WAN) backbone
// routers. All routers run eBGP with per-tier private ASNs and carry the
// fail-safe static northbound default; every router has a loopback
// redistributed into BGP; links carry /31 subnets that are never
// redistributed. WAN routers announce the default route plus wide-area
// prefixes that are only leaked down to the spine layer.
//
// This is the synthetic stand-in for the Azure production network of the
// case study: every route category whose testing gaps §7.2 reports
// (internal, connected, wide-area, default) exists here.
#pragma once

#include <vector>

#include "netmodel/network.hpp"
#include "routing/config.hpp"

namespace yardstick::topo {

struct RegionalParams {
  int datacenters = 2;
  int pods_per_dc = 2;
  int tors_per_pod = 4;
  int aggs_per_pod = 2;
  int spines_per_dc = 4;
  int hubs = 4;
  int wans = 2;
  /// Host ports (each with its own hosted /24) per ToR. ToR port counts
  /// are host-dominated in practice, which is why ToR interface coverage
  /// stays low until host-facing tests exist (§7.3).
  int host_ports_per_tor = 5;
  int wide_area_prefix_count = 16;
  /// Hubs configured without any default route (they hold full wide-area
  /// tables); DefaultRouteCheck excludes them (§7.2, Fig. 6a).
  int hubs_without_default = 1;
};

struct RegionalNetwork {
  net::Network network;
  routing::RoutingConfig routing;
  std::vector<net::DeviceId> tors;
  std::vector<net::DeviceId> aggs;
  std::vector<net::DeviceId> spines;
  std::vector<net::DeviceId> hubs;
  std::vector<net::DeviceId> wans;
};

/// Build the topology and routing configuration. Install forwarding state
/// with routing::FibBuilder::compute_and_build(net.network, net.routing).
[[nodiscard]] RegionalNetwork make_regional(const RegionalParams& params);

}  // namespace yardstick::topo
