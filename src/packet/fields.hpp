// Packet header bit layout.
//
// Packets are finite bit vectors (the property the paper leans on to make
// input-space quantification tractable). We model the classic stateless
// 5-tuple: destination/source IPv4 address, IP protocol, and L4 ports —
// 104 bits total. BDD variable 0 is the most significant bit of the
// destination address; destination bits come first because longest-prefix
// match sets then have linear-size BDDs.
#pragma once

#include <cstdint>

#include "bdd/bdd.hpp"

namespace yardstick::packet {

enum class Field : uint8_t { DstIp, SrcIp, Proto, SrcPort, DstPort };

struct FieldSpec {
  bdd::Var offset;  // BDD variable of the field's most significant bit
  uint8_t width;    // number of bits
};

inline constexpr FieldSpec kDstIp{0, 32};
inline constexpr FieldSpec kSrcIp{32, 32};
inline constexpr FieldSpec kProto{64, 8};
inline constexpr FieldSpec kSrcPort{72, 16};
inline constexpr FieldSpec kDstPort{88, 16};

inline constexpr bdd::Var kNumHeaderBits = 104;

inline constexpr FieldSpec spec(Field f) {
  switch (f) {
    case Field::DstIp: return kDstIp;
    case Field::SrcIp: return kSrcIp;
    case Field::Proto: return kProto;
    case Field::SrcPort: return kSrcPort;
    case Field::DstPort: return kDstPort;
  }
  return kDstIp;  // unreachable
}

inline constexpr const char* field_name(Field f) {
  switch (f) {
    case Field::DstIp: return "dstIp";
    case Field::SrcIp: return "srcIp";
    case Field::Proto: return "proto";
    case Field::SrcPort: return "srcPort";
    case Field::DstPort: return "dstPort";
  }
  return "?";
}

}  // namespace yardstick::packet
