#include "packet/packet_set.hpp"

#include <cassert>
#include <vector>

namespace yardstick::packet {

using bdd::Bdd;
using bdd::BddManager;
using bdd::Var;

PacketSet PacketSet::field_prefix(BddManager& mgr, Field f, uint64_t value,
                                  uint8_t bits) {
  const FieldSpec s = spec(f);
  assert(bits <= s.width);
  std::vector<Var> vars;
  std::vector<bool> polarities;
  vars.reserve(bits);
  polarities.reserve(bits);
  // Bit i of the field (MSB-first) is BDD variable s.offset + i; the MSB of
  // `value` within the field is bit (s.width - 1).
  for (uint8_t i = 0; i < bits; ++i) {
    vars.push_back(s.offset + i);
    polarities.push_back(((value >> (s.width - 1 - i)) & 1) != 0);
  }
  return PacketSet(mgr.cube(vars, polarities));
}

PacketSet PacketSet::field_range(BddManager& mgr, Field f, uint64_t lo, uint64_t hi) {
  const FieldSpec s = spec(f);
  assert(lo <= hi);
  // Classic trick: a range decomposes into O(width) aligned power-of-two
  // blocks, i.e. prefixes of the field.
  Bdd acc = mgr.zero();
  uint64_t cursor = lo;
  const uint64_t end = hi;
  while (cursor <= end) {
    // Largest aligned block starting at cursor that fits within [cursor, end].
    uint8_t block = 0;  // log2 of block size
    while (block < s.width) {
      const uint64_t size = uint64_t{1} << (block + 1);
      const bool aligned = (cursor & (size - 1)) == 0;
      const bool fits = cursor + size - 1 <= end;
      if (!aligned || !fits) break;
      ++block;
    }
    const uint8_t prefix_bits = static_cast<uint8_t>(s.width - block);
    acc = acc | field_prefix(mgr, f, cursor, prefix_bits).raw();
    const uint64_t size = uint64_t{1} << block;
    if (end - cursor < size) break;  // avoid overflow at the top of the field
    cursor += size;
  }
  return PacketSet(acc);
}

PacketSet PacketSet::from_packet(BddManager& mgr, const ConcretePacket& p) {
  const std::vector<bool> bits = p.to_assignment();
  std::vector<Var> vars(kNumHeaderBits);
  for (Var v = 0; v < kNumHeaderBits; ++v) vars[v] = v;
  return PacketSet(mgr.cube(vars, bits));
}

PacketSet PacketSet::rewrite_field(Field f, uint64_t value) const {
  if (empty()) return *this;
  BddManager& mgr = *bdd_.manager();
  // Image = (exists field. S) AND field == value.
  return forget_field(f).intersect(field_equals(mgr, f, value));
}

PacketSet PacketSet::rewrite_field_preimage(Field f, uint64_t value) const {
  if (empty()) return *this;
  BddManager& mgr = *bdd_.manager();
  // Pre-image: if the slice of S at field == value is non-empty, then every
  // packet whose other fields lie in that slice maps into S.
  const PacketSet slice = intersect(field_equals(mgr, f, value));
  return slice.forget_field(f);
}

PacketSet PacketSet::forget_field(Field f) const {
  BddManager& mgr = *bdd_.manager();
  const FieldSpec s = spec(f);
  std::vector<bool> quantified(mgr.num_vars(), false);
  for (uint8_t i = 0; i < s.width; ++i) quantified[s.offset + i] = true;
  return PacketSet(mgr.exists(bdd_, quantified));
}

std::string PacketSet::to_string() const {
  if (!valid()) return "packets(invalid)";
  if (empty()) return "packets(empty)";
  return "packets(count=" + bdd::to_string(count()) + ", e.g. " + sample().to_string() +
         ")";
}

}  // namespace yardstick::packet
