// IPv4 address and prefix value types.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace yardstick::packet {

/// Render a host-order IPv4 address in dotted-quad form.
inline std::string ipv4_to_string(uint32_t addr) {
  return std::to_string((addr >> 24) & 0xff) + "." + std::to_string((addr >> 16) & 0xff) +
         "." + std::to_string((addr >> 8) & 0xff) + "." + std::to_string(addr & 0xff);
}

/// Parse a dotted-quad IPv4 address; returns nullopt on malformed input.
inline std::optional<uint32_t> parse_ipv4(std::string_view s) {
  uint32_t addr = 0;
  int octets = 0;
  uint32_t current = 0;
  bool have_digit = false;
  for (const char c : s) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<uint32_t>(c - '0');
      if (current > 255) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || octets == 3) return std::nullopt;
      addr = (addr << 8) | current;
      current = 0;
      have_digit = false;
      ++octets;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || octets != 3) return std::nullopt;
  return (addr << 8) | current;
}

/// An IPv4 prefix in CIDR form (address is stored masked to the length).
class Ipv4Prefix {
 public:
  Ipv4Prefix() = default;

  /// @param addr host-order address; bits past `len` are cleared.
  Ipv4Prefix(uint32_t addr, uint8_t len) : len_(len) {
    if (len > 32) throw ys::InvalidInputError("prefix length > 32");
    addr_ = addr & mask();
  }

  /// Parse "a.b.c.d/len" (or bare "a.b.c.d" as a /32).
  static Ipv4Prefix parse(std::string_view s) {
    const size_t slash = s.find('/');
    uint8_t len = 32;
    std::string_view addr_part = s;
    if (slash != std::string_view::npos) {
      addr_part = s.substr(0, slash);
      int parsed = 0;
      for (const char c : s.substr(slash + 1)) {
        if (c < '0' || c > '9') throw ys::InvalidInputError("bad prefix length");
        parsed = parsed * 10 + (c - '0');
        if (parsed > 32) throw ys::InvalidInputError("prefix length > 32");
      }
      len = static_cast<uint8_t>(parsed);
    }
    const auto addr = parse_ipv4(addr_part);
    if (!addr) throw ys::InvalidInputError("bad IPv4 address: " + std::string(s));
    return {*addr, len};
  }

  [[nodiscard]] uint32_t address() const { return addr_; }
  [[nodiscard]] uint8_t length() const { return len_; }

  [[nodiscard]] uint32_t mask() const {
    return len_ == 0 ? 0 : ~uint32_t{0} << (32 - len_);
  }

  [[nodiscard]] bool contains(uint32_t addr) const { return (addr & mask()) == addr_; }

  [[nodiscard]] bool contains(const Ipv4Prefix& other) const {
    return other.len_ >= len_ && contains(other.addr_);
  }

  [[nodiscard]] bool overlaps(const Ipv4Prefix& other) const {
    return contains(other) || other.contains(*this);
  }

  /// First address of the prefix.
  [[nodiscard]] uint32_t first() const { return addr_; }
  /// Last address of the prefix.
  [[nodiscard]] uint32_t last() const { return addr_ | ~mask(); }
  /// Number of addresses covered (2^(32-len)), as uint64 to allow /0.
  [[nodiscard]] uint64_t size() const { return uint64_t{1} << (32 - len_); }

  /// The i-th child prefix of length `child_len` (for carving subnets).
  [[nodiscard]] Ipv4Prefix subnet(uint8_t child_len, uint32_t index) const {
    if (child_len < len_ || child_len > 32) {
      throw ys::InvalidInputError("bad subnet length");
    }
    const uint32_t stride_bits = 32u - child_len;
    return {addr_ | (index << stride_bits), child_len};
  }

  [[nodiscard]] std::string to_string() const {
    return ipv4_to_string(addr_) + "/" + std::to_string(len_);
  }

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  uint32_t addr_ = 0;
  uint8_t len_ = 0;
};

/// The default route prefix 0.0.0.0/0.
inline Ipv4Prefix default_route_prefix() { return {0, 0}; }

}  // namespace yardstick::packet
