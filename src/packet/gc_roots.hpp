// GcRootTracker — phase-boundary GC driver for builders that own every
// live handle of a private BddManager.
//
// The engine's garbage collector (BddManager::collect) is explicit: the
// caller names the roots and fixes up its handles through the returned
// remap. That contract is only safe for managers whose complete live set
// one builder can enumerate — in practice the short-lived per-worker shard
// managers of the parallel offline phase, where the worker owns every
// PacketSet it has produced so far. The engine's primary manager is never
// collected: it holds handles the engine does not own (trace slices,
// caller copies), so enumerating its roots is impossible.
//
// Usage: track() each result slot as it is written, poll due() at a device
// boundary, and call collect() which gathers roots, compacts, and rewrites
// every tracked handle in place.
//
// Lifetime: tracked pointers are raw. Builders must only track slots in
// containers that are pre-sized before the build loop (the sharded build
// resizes its result vectors once up front), so the pointers stay stable
// for the tracker's lifetime.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "packet/packet_set.hpp"

namespace yardstick::packet {

class GcRootTracker {
 public:
  explicit GcRootTracker(bdd::BddManager& mgr) : mgr_(mgr) {}

  GcRootTracker(const GcRootTracker&) = delete;
  GcRootTracker& operator=(const GcRootTracker&) = delete;

  /// Register a handle slot that must survive (and be rewritten by) every
  /// future collect(). Tracking an invalid (default) PacketSet is fine —
  /// it contributes no root and is left untouched.
  void track(PacketSet& ps) { owned_.push_back(&ps); }

  [[nodiscard]] bool due() const { return mgr_.gc_due(); }
  [[nodiscard]] bdd::BddManager& manager() const { return mgr_; }

  /// Unconditional collection: gathers roots from the tracked slots,
  /// mark-compacts the manager, then rewrites every tracked handle (and,
  /// when given, an importer whose *destination* is this manager) through
  /// the remap. Handles not tracked here are invalid afterwards.
  bdd::GcResult collect(bdd::BddImporter* dst_importer = nullptr) {
    roots_.clear();
    roots_.reserve(owned_.size());
    for (const PacketSet* ps : owned_) {
      if (ps->valid()) roots_.push_back(ps->raw().index());
    }
    bdd::GcResult gc = mgr_.collect(roots_);
    for (PacketSet* ps : owned_) {
      if (ps->valid()) {
        *ps = PacketSet(bdd::Bdd(&mgr_, gc.map(ps->raw().index())));
      }
    }
    if (dst_importer != nullptr) dst_importer->rekey_destination(gc);
    return gc;
  }

 private:
  bdd::BddManager& mgr_;
  std::vector<PacketSet*> owned_;
  std::vector<bdd::NodeIndex> roots_;
};

}  // namespace yardstick::packet
