// PacketSet — a (possibly enormous) set of packet headers, represented as a
// BDD over the 104-bit header space. This is the concrete realization of the
// paper's Figure 5 operations: empty, negate, union, intersect, equal,
// fromRule, count — plus the field/prefix builders needed to express rule
// match fields and header rewrites.
#pragma once

#include <cstdint>
#include <string>

#include "bdd/bdd.hpp"
#include "packet/fields.hpp"
#include "packet/packet.hpp"
#include "packet/prefix.hpp"

namespace yardstick::packet {

class PacketSet {
 public:
  PacketSet() = default;
  explicit PacketSet(bdd::Bdd b) : bdd_(b) {}

  // --- Figure 5 operations ---

  /// The empty set of packets.
  static PacketSet none(bdd::BddManager& mgr) { return PacketSet(mgr.zero()); }
  /// Every possible packet header.
  static PacketSet all(bdd::BddManager& mgr) { return PacketSet(mgr.one()); }

  [[nodiscard]] PacketSet negate() const { return PacketSet(!bdd_); }
  [[nodiscard]] PacketSet union_with(const PacketSet& o) const {
    return PacketSet(bdd_ | o.bdd_);
  }
  [[nodiscard]] PacketSet intersect(const PacketSet& o) const {
    return PacketSet(bdd_ & o.bdd_);
  }
  [[nodiscard]] PacketSet minus(const PacketSet& o) const {
    return PacketSet(bdd_ - o.bdd_);
  }
  [[nodiscard]] bool equal(const PacketSet& o) const { return bdd_ == o.bdd_; }
  /// Exact number of headers in the set (up to 2^104).
  [[nodiscard]] bdd::Uint128 count() const { return bdd_.count(); }

  // --- Builders for match fields and concrete packets ---

  /// Packets whose destination address lies in `prefix`.
  static PacketSet dst_prefix(bdd::BddManager& mgr, const Ipv4Prefix& prefix) {
    return field_prefix(mgr, Field::DstIp, prefix.address(), prefix.length());
  }

  /// Packets whose source address lies in `prefix`.
  static PacketSet src_prefix(bdd::BddManager& mgr, const Ipv4Prefix& prefix) {
    return field_prefix(mgr, Field::SrcIp, prefix.address(), prefix.length());
  }

  /// Packets where `field` equals `value` exactly.
  static PacketSet field_equals(bdd::BddManager& mgr, Field f, uint64_t value) {
    return field_prefix(mgr, f, value << (64 - spec(f).width) >> (64 - spec(f).width),
                        spec(f).width);
  }

  /// Packets whose `field` top `bits` bits equal those of `value`.
  /// For 32-bit fields with `value` in host order this is a prefix match.
  static PacketSet field_prefix(bdd::BddManager& mgr, Field f, uint64_t value,
                                uint8_t bits);

  /// Packets where `field` lies in the inclusive range [lo, hi].
  static PacketSet field_range(bdd::BddManager& mgr, Field f, uint64_t lo, uint64_t hi);

  /// The singleton set containing exactly `p`.
  static PacketSet from_packet(bdd::BddManager& mgr, const ConcretePacket& p);

  /// Does the set contain the concrete packet?
  [[nodiscard]] bool contains(const ConcretePacket& p) const {
    return bdd_.manager()->evaluate(bdd_, p.to_assignment());
  }

  /// An arbitrary member of the set. Precondition: not empty.
  [[nodiscard]] ConcretePacket sample() const {
    return ConcretePacket::from_assignment(bdd_.manager()->pick_one(bdd_));
  }

  /// Rewrite `field` to the constant `value` in every packet of the set
  /// (image of the set under the transformation; many-to-one).
  [[nodiscard]] PacketSet rewrite_field(Field f, uint64_t value) const;

  /// Pre-image of this set under "rewrite `field` to `value`": the packets
  /// that, after the rewrite, land inside this set. Used for reversing
  /// forwarding transformations when computing path guard sets (§5.2).
  [[nodiscard]] PacketSet rewrite_field_preimage(Field f, uint64_t value) const;

  /// Forget the value of `field` (existential quantification).
  [[nodiscard]] PacketSet forget_field(Field f) const;

  [[nodiscard]] bool empty() const { return bdd_.is_false(); }
  [[nodiscard]] bool full() const { return bdd_.is_true(); }
  [[nodiscard]] const bdd::Bdd& raw() const { return bdd_; }
  [[nodiscard]] bool valid() const { return bdd_.valid(); }

  bool operator==(const PacketSet& o) const { return bdd_ == o.bdd_; }

  /// Human-readable summary (count + an example packet).
  [[nodiscard]] std::string to_string() const;

 private:
  bdd::Bdd bdd_;
};

}  // namespace yardstick::packet
