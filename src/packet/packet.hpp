// A fully concrete packet header (one point of the 104-bit header space).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "packet/fields.hpp"
#include "packet/prefix.hpp"

namespace yardstick::packet {

struct ConcretePacket {
  uint32_t dst_ip = 0;
  uint32_t src_ip = 0;
  uint8_t proto = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;

  friend auto operator<=>(const ConcretePacket&, const ConcretePacket&) = default;

  [[nodiscard]] uint64_t field_value(Field f) const {
    switch (f) {
      case Field::DstIp: return dst_ip;
      case Field::SrcIp: return src_ip;
      case Field::Proto: return proto;
      case Field::SrcPort: return src_port;
      case Field::DstPort: return dst_port;
    }
    return 0;
  }

  void set_field(Field f, uint64_t value) {
    switch (f) {
      case Field::DstIp: dst_ip = static_cast<uint32_t>(value); break;
      case Field::SrcIp: src_ip = static_cast<uint32_t>(value); break;
      case Field::Proto: proto = static_cast<uint8_t>(value); break;
      case Field::SrcPort: src_port = static_cast<uint16_t>(value); break;
      case Field::DstPort: dst_port = static_cast<uint16_t>(value); break;
    }
  }

  /// Full 104-bit assignment in BDD variable order.
  [[nodiscard]] std::vector<bool> to_assignment() const {
    std::vector<bool> bits(kNumHeaderBits, false);
    const auto emit = [&](FieldSpec s, uint64_t value) {
      for (uint8_t i = 0; i < s.width; ++i) {
        bits[s.offset + i] = (value >> (s.width - 1 - i)) & 1;
      }
    };
    emit(kDstIp, dst_ip);
    emit(kSrcIp, src_ip);
    emit(kProto, proto);
    emit(kSrcPort, src_port);
    emit(kDstPort, dst_port);
    return bits;
  }

  /// Reconstruct a packet from a 104-bit assignment.
  static ConcretePacket from_assignment(const std::vector<bool>& bits) {
    ConcretePacket p;
    const auto read = [&](FieldSpec s) {
      uint64_t value = 0;
      for (uint8_t i = 0; i < s.width; ++i) {
        value = (value << 1) | static_cast<uint64_t>(bits[s.offset + i]);
      }
      return value;
    };
    p.dst_ip = static_cast<uint32_t>(read(kDstIp));
    p.src_ip = static_cast<uint32_t>(read(kSrcIp));
    p.proto = static_cast<uint8_t>(read(kProto));
    p.src_port = static_cast<uint16_t>(read(kSrcPort));
    p.dst_port = static_cast<uint16_t>(read(kDstPort));
    return p;
  }

  [[nodiscard]] std::string to_string() const {
    return "pkt(dst=" + ipv4_to_string(dst_ip) + ", src=" + ipv4_to_string(src_ip) +
           ", proto=" + std::to_string(proto) + ", sport=" + std::to_string(src_port) +
           ", dport=" + std::to_string(dst_port) + ")";
  }
};

}  // namespace yardstick::packet
