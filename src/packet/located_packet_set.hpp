// LocatedPacketSet — a set of *located* packets (§4.1): pairs of a network
// location and a packet header. Locations are opaque dense integers assigned
// by the network model (one per device interface).
//
// Rather than encoding the location into BDD variables, we keep a sorted
// map from location to the PacketSet present there. Set algebra lifts
// pointwise; counting sums over locations. This keeps BDDs small and makes
// per-interface slicing (needed for interface coverage) free.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "packet/packet_set.hpp"

namespace yardstick::packet {

/// Opaque location identifier (assigned densely by the network model).
using LocationId = uint32_t;

inline constexpr LocationId kNoLocation = UINT32_MAX;

class LocatedPacketSet {
 public:
  LocatedPacketSet() = default;

  /// Singleton location carrying the given headers.
  LocatedPacketSet(LocationId loc, PacketSet packets) {
    insert(loc, std::move(packets));
  }

  /// Add headers at a location (unions with any already present).
  void insert(LocationId loc, const PacketSet& packets) {
    if (packets.empty()) return;
    auto [it, inserted] = sets_.try_emplace(loc, packets);
    if (!inserted) it->second = it->second.union_with(packets);
  }

  [[nodiscard]] LocatedPacketSet union_with(const LocatedPacketSet& o) const {
    LocatedPacketSet out = *this;
    for (const auto& [loc, ps] : o.sets_) out.insert(loc, ps);
    return out;
  }

  [[nodiscard]] LocatedPacketSet intersect(const LocatedPacketSet& o) const {
    LocatedPacketSet out;
    for (const auto& [loc, ps] : sets_) {
      const auto it = o.sets_.find(loc);
      if (it != o.sets_.end()) out.insert(loc, ps.intersect(it->second));
    }
    return out;
  }

  [[nodiscard]] LocatedPacketSet minus(const LocatedPacketSet& o) const {
    LocatedPacketSet out;
    for (const auto& [loc, ps] : sets_) {
      const auto it = o.sets_.find(loc);
      out.insert(loc, it == o.sets_.end() ? ps : ps.minus(it->second));
    }
    return out;
  }

  /// Headers present at `loc` (empty-set handle if none; caller supplies the
  /// manager-scoped empty value via valid() check).
  [[nodiscard]] PacketSet at(LocationId loc) const {
    const auto it = sets_.find(loc);
    return it == sets_.end() ? PacketSet{} : it->second;
  }

  [[nodiscard]] bool has(LocationId loc) const { return sets_.contains(loc); }

  /// Total located packets across all locations.
  [[nodiscard]] bdd::Uint128 count() const {
    bdd::Uint128 total = 0;
    for (const auto& [loc, ps] : sets_) total += ps.count();
    return total;
  }

  [[nodiscard]] bool empty() const { return sets_.empty(); }
  [[nodiscard]] size_t location_count() const { return sets_.size(); }

  [[nodiscard]] const std::map<LocationId, PacketSet>& entries() const { return sets_; }

  bool operator==(const LocatedPacketSet& o) const { return sets_ == o.sets_; }

  [[nodiscard]] std::string to_string() const {
    std::string out = "located{";
    bool first = true;
    for (const auto& [loc, ps] : sets_) {
      if (!first) out += ", ";
      first = false;
      out += "@" + std::to_string(loc) + ":" + bdd::to_string(ps.count());
    }
    return out + "}";
  }

 private:
  std::map<LocationId, PacketSet> sets_;
};

}  // namespace yardstick::packet
