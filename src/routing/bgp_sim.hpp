// Synchronous eBGP path-vector simulator.
//
// Reproduces the control plane of §7.1: per-tier private ASNs, allow-as-in,
// shortest-AS-path selection with ECMP across equal-cost neighbors, export
// policies (wide-area routes confined to upper layers), and origination of
// host prefixes, loopbacks and the WAN default. The output is one RIB per
// device; FibBuilder turns RIBs into forwarding rules.
//
// Implementation notes: routes carry a compact per-tier ASN occurrence
// count instead of a full AS path (there are only five tier ASNs), which
// keeps memory linear in |devices| x |prefixes| even on large fat-trees.
// Selection is monotone Bellman-Ford over path length, so iteration reaches
// a fixpoint in O(network diameter) synchronous rounds.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netmodel/network.hpp"
#include "routing/config.hpp"
#include "routing/route.hpp"

namespace yardstick::routing {

/// Compact per-device routing table entry used during simulation.
struct SimRibEntry {
  uint64_t prefix_key = 0;  // (addr << 6) | len
  packet::Ipv4Prefix prefix;
  net::RouteKind kind = net::RouteKind::Other;
  uint8_t path_length = 0;
  bool originated = false;
  /// Occurrences of each tier's ASN in the path (index = tier + 1).
  std::array<uint8_t, 6> asn_counts{};
  net::DeviceId originator;
  /// Egress interfaces of all equal-cost best paths.
  std::vector<net::InterfaceId> next_hops;

  [[nodiscard]] bool same_selection(const SimRibEntry& o) const {
    return prefix_key == o.prefix_key && kind == o.kind && path_length == o.path_length &&
           next_hops == o.next_hops;
  }
};

/// A device's converged routing table, sorted by prefix key.
using SimRib = std::vector<SimRibEntry>;

[[nodiscard]] inline uint64_t prefix_key(const packet::Ipv4Prefix& p) {
  return (static_cast<uint64_t>(p.address()) << 6) | p.length();
}

class BgpSimulator {
 public:
  BgpSimulator(const net::Network& network, RoutingConfig config)
      : network_(network), config_(std::move(config)) {}

  /// Run synchronous rounds to fixpoint. Returns one RIB per device
  /// (indexed by DeviceId).
  [[nodiscard]] std::vector<SimRib> run();

  /// Rounds executed by the last run() (diagnostic).
  [[nodiscard]] int rounds_used() const { return rounds_used_; }

 private:
  [[nodiscard]] SimRib originated_entries(const net::Device& dev) const;
  [[nodiscard]] bool export_allowed(const SimRibEntry& entry, const net::Device& exporter,
                                    const net::Device& receiver) const;
  [[nodiscard]] bool import_allowed(const SimRibEntry& advert,
                                    const net::Device& receiver) const;

  const net::Network& network_;
  RoutingConfig config_;
  int rounds_used_ = 0;
};

}  // namespace yardstick::routing
