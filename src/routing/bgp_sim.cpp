#include "routing/bgp_sim.hpp"

#include <algorithm>
#include <unordered_map>

namespace yardstick::routing {

using packet::Ipv4Prefix;

SimRib BgpSimulator::originated_entries(const net::Device& dev) const {
  SimRib out;
  const auto originate = [&](const Ipv4Prefix& p, net::RouteKind kind) {
    SimRibEntry e;
    e.prefix = p;
    e.prefix_key = prefix_key(p);
    e.kind = kind;
    e.path_length = 0;
    e.originated = true;
    e.originator = dev.id;
    out.push_back(std::move(e));
  };

  for (const Ipv4Prefix& p : dev.host_prefixes) originate(p, net::RouteKind::Internal);
  for (const Ipv4Prefix& p : dev.loopbacks) originate(p, net::RouteKind::Internal);
  for (const Ipv4Prefix& p : dev.tunnel_endpoints) originate(p, net::RouteKind::Internal);

  if (dev.role == net::Role::Wan) {
    if (config_.wan_originates_default) {
      originate(packet::default_route_prefix(), net::RouteKind::Default);
    }
    const auto it = config_.wide_area_prefixes.find(dev.id);
    if (it != config_.wide_area_prefixes.end()) {
      for (const Ipv4Prefix& p : it->second) originate(p, net::RouteKind::WideArea);
    }
  }

  std::sort(out.begin(), out.end(),
            [](const SimRibEntry& a, const SimRibEntry& b) {
              return a.prefix_key < b.prefix_key;
            });
  return out;
}

bool BgpSimulator::export_allowed(const SimRibEntry& entry, const net::Device& exporter,
                                  const net::Device& receiver) const {
  // A null-routed static default suppresses re-advertising the default —
  // the §2 misconfiguration that disconnects the data center when its
  // sibling border fails.
  if (entry.prefix.length() == 0 && config_.null_default_devices.contains(exporter.id)) {
    return false;
  }
  // Wide-area routes stay in the upper layers (§7.2): never advertised to
  // a device below the spine tier.
  if (config_.limit_wan_routes_to_upper_layers && entry.kind == net::RouteKind::WideArea &&
      tier(receiver.role) < tier(net::Role::Spine)) {
    return false;
  }
  return true;
}

bool BgpSimulator::import_allowed(const SimRibEntry& advert,
                                  const net::Device& receiver) const {
  // Hubs holding full wide-area tables run without any default route.
  if (advert.prefix.length() == 0 && config_.no_default_devices.contains(receiver.id)) {
    return false;
  }
  // allow-as-in: tolerate the local ASN in the path up to the configured
  // count (§7.1); beyond that the advert is treated as a loop.
  const int idx = tier(receiver.role) + 1;
  return advert.asn_counts[static_cast<size_t>(idx)] <=
         static_cast<uint8_t>(config_.allow_as_in);
}

std::vector<SimRib> BgpSimulator::run() {
  const size_t n = network_.device_count();
  std::vector<SimRib> ribs(n);
  std::vector<SimRib> origin(n);
  for (const net::Device& dev : network_.devices()) {
    if (config_.failed_devices.contains(dev.id)) continue;
    origin[dev.id.value] = originated_entries(dev);
    ribs[dev.id.value] = origin[dev.id.value];
  }

  // Cache each device's neighbor list once; failed links and links to
  // failed devices are down, and failed devices have no working links.
  std::vector<std::vector<std::pair<net::InterfaceId, net::DeviceId>>> nbrs(n);
  for (const net::Device& dev : network_.devices()) {
    if (config_.failed_devices.contains(dev.id)) continue;
    for (const auto& [intf, peer] : network_.neighbors(dev.id)) {
      if (config_.link_usable(network_, intf)) {
        nbrs[dev.id.value].emplace_back(intf, peer);
      }
    }
  }

  std::vector<bool> changed(n, true);
  rounds_used_ = 0;

  for (int round = 0; round < config_.max_rounds; ++round) {
    ++rounds_used_;
    bool any_change = false;
    std::vector<SimRib> next(n);
    std::vector<bool> next_changed(n, false);

    for (const net::Device& dev : network_.devices()) {
      const uint32_t v = dev.id.value;
      // Skip recomputation when no neighbor's RIB moved last round.
      bool neighbor_moved = false;
      for (const auto& [intf, peer] : nbrs[v]) {
        if (changed[peer.value]) {
          neighbor_moved = true;
          break;
        }
      }
      if (!neighbor_moved) {
        next[v] = ribs[v];
        continue;
      }

      // Accumulate best candidates per prefix.
      std::unordered_map<uint64_t, SimRibEntry> best;
      best.reserve(ribs[v].size() + 16);
      for (const SimRibEntry& e : origin[v]) best.emplace(e.prefix_key, e);

      for (const auto& [intf, peer] : nbrs[v]) {
        const net::Device& peer_dev = network_.device(peer);
        const int peer_tier_idx = tier(peer_dev.role) + 1;
        for (const SimRibEntry& entry : ribs[peer.value]) {
          if (!export_allowed(entry, peer_dev, dev)) continue;
          // Exporter prepends its ASN.
          SimRibEntry advert = entry;
          advert.path_length = static_cast<uint8_t>(entry.path_length + 1);
          advert.asn_counts[static_cast<size_t>(peer_tier_idx)] =
              static_cast<uint8_t>(advert.asn_counts[static_cast<size_t>(peer_tier_idx)] + 1);
          if (!import_allowed(advert, dev)) continue;

          auto [it, inserted] = best.try_emplace(advert.prefix_key, advert);
          if (inserted) {
            it->second.next_hops = {intf};
            it->second.originated = false;
            continue;
          }
          SimRibEntry& cur = it->second;
          if (cur.originated || cur.path_length < advert.path_length) continue;
          if (advert.path_length < cur.path_length) {
            advert.next_hops = {intf};
            advert.originated = false;
            cur = advert;
          } else {
            cur.next_hops.push_back(intf);  // equal-cost multipath
          }
        }
      }

      SimRib fresh;
      fresh.reserve(best.size());
      for (auto& [key, entry] : best) fresh.push_back(std::move(entry));
      std::sort(fresh.begin(), fresh.end(),
                [](const SimRibEntry& a, const SimRibEntry& b) {
                  return a.prefix_key < b.prefix_key;
                });
      // ECMP next-hop order must be deterministic for fixpoint comparison.
      for (SimRibEntry& e : fresh) std::sort(e.next_hops.begin(), e.next_hops.end());

      const bool same = fresh.size() == ribs[v].size() &&
                        std::equal(fresh.begin(), fresh.end(), ribs[v].begin(),
                                   [](const SimRibEntry& a, const SimRibEntry& b) {
                                     return a.same_selection(b);
                                   });
      if (!same) {
        any_change = true;
        next_changed[v] = true;
      }
      next[v] = std::move(fresh);
    }

    ribs = std::move(next);
    changed = std::move(next_changed);
    if (!any_change) break;
  }
  return ribs;
}

}  // namespace yardstick::routing
