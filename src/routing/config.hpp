// Routing configuration knobs mirroring the §7.1 network design.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netmodel/network.hpp"
#include "packet/prefix.hpp"

namespace yardstick::routing {

/// Hierarchy tier of a role; "northern" neighbors are those with a
/// strictly higher tier (§7.1: the static default forwards to connected
/// higher-layer neighbors).
[[nodiscard]] inline int tier(net::Role role) {
  switch (role) {
    case net::Role::Host: return -1;
    case net::Role::ToR: return 0;
    case net::Role::Aggregation: return 1;
    case net::Role::Spine: return 2;
    case net::Role::RegionalHub: return 3;
    case net::Role::Wan: return 4;
    case net::Role::Other: return 0;
  }
  return 0;
}

/// Private ASN assigned to a role tier (§7.1: ASN by role, with
/// allow-as-in so e.g. ToR1-Agg-ToR2 paths are accepted).
[[nodiscard]] inline uint32_t role_asn(net::Role role) {
  return 65000u + static_cast<uint32_t>(tier(role) + 1);
}

struct RoutingConfig {
  /// Max occurrences of the local ASN tolerated in a received AS path.
  int allow_as_in = 2;
  /// Fixpoint iteration bound (diameters here are tiny; this is a backstop).
  int max_rounds = 128;

  /// Install the fail-safe static default route pointing at all northern
  /// neighbors on every non-WAN router (§7.1).
  bool static_northbound_default = true;

  /// Devices whose static default route is a *null route* (discard). Such a
  /// device also stops re-advertising any BGP-learned default — this is the
  /// §2 motivating-example misconfiguration on border router B2.
  std::unordered_set<net::DeviceId> null_default_devices;

  /// Devices that carry no default route at all (neither static nor
  /// BGP-learned). Models the §7.2 regional hubs that are "not expected to
  /// have the default route" because they hold full wide-area tables.
  std::unordered_set<net::DeviceId> no_default_devices;

  /// What-if analysis: devices treated as failed. A failed device
  /// originates nothing, exchanges no routes, and gets an empty FIB; its
  /// links are down (no connected routes or static next hops through
  /// them). Recomputing the FIBs with e.g. a border router here replays
  /// the §2 outage without rebuilding the topology.
  std::unordered_set<net::DeviceId> failed_devices;

  /// What-if analysis: individual links treated as down (no adjacency, no
  /// connected routes, no static next hops across them).
  std::unordered_set<net::LinkId> failed_links;

  /// True if the interface's link is usable under the failure sets.
  [[nodiscard]] bool link_usable(const net::Network& network,
                                 net::InterfaceId intf) const {
    const net::Interface& i = network.interface(intf);
    if (!i.peer.valid()) return true;  // edge ports have no link to fail
    if (i.link.valid() && failed_links.contains(i.link)) return false;
    return !failed_devices.contains(network.interface(i.peer).device);
  }

  /// WAN-learned (wide-area) routes are advertised down only as far as the
  /// spine layer, never into aggregation/ToR layers (§7.2 category 3).
  bool limit_wan_routes_to_upper_layers = true;

  /// The WAN backbone originates the default route towards the region.
  bool wan_originates_default = true;

  /// Extra prefixes originated by specific devices as wide-area routes
  /// (simulating routes learned from the Internet/backbone).
  std::unordered_map<net::DeviceId, std::vector<packet::Ipv4Prefix>> wide_area_prefixes;
};

}  // namespace yardstick::routing
