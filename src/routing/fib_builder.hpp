// FIB construction: turn converged RIBs plus connected/static configuration
// into per-device longest-prefix-match rule tables.
//
// Rule provenance (RouteKind) is recorded on every installed rule so the
// case-study gap analysis (§7.2) can group untested rules into the paper's
// categories: internal routes, connected routes, wide-area routes, and the
// default route.
#pragma once

#include <vector>

#include "netmodel/network.hpp"
#include "routing/bgp_sim.hpp"
#include "routing/config.hpp"

namespace yardstick::routing {

class FibBuilder {
 public:
  /// Install forwarding rules on every device of `network` from the
  /// converged `ribs` (one per device) and the static/connected
  /// configuration in `config`. Any existing rules are cleared first.
  ///
  /// Route preference follows administrative distance: connected (0)
  /// beats static (1) beats eBGP (20) for the same prefix; distinct
  /// prefixes coexist under longest-prefix-match ordering.
  static void build(net::Network& network, const std::vector<SimRib>& ribs,
                    const RoutingConfig& config);

  /// Convenience: run the BGP simulator and build FIBs in one step.
  static std::vector<SimRib> compute_and_build(net::Network& network,
                                               const RoutingConfig& config);
};

}  // namespace yardstick::routing
