// BGP route and RIB types for the control-plane substrate.
//
// The paper's networks derive their forwarding state from eBGP (§7.1); this
// module reproduces that substrate so the coverage system operates on
// realistic FIBs (internal routes, connected routes, default routes,
// wide-area routes — the exact categories the case study's gap analysis
// turns on).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netmodel/network.hpp"
#include "packet/prefix.hpp"

namespace yardstick::routing {

/// A BGP route as carried in an advertisement.
struct BgpRoute {
  packet::Ipv4Prefix prefix;
  net::RouteKind kind = net::RouteKind::Other;
  /// AS path, most-recently-prepended first (exporter prepends its ASN).
  std::vector<uint32_t> as_path;
  /// Devices the advertisement traversed (most recent first). Used for
  /// loop suppression in the simulator: tier ASNs repeat legitimately
  /// (allow-as-in, §7.1), but no device accepts its own advertisement back.
  std::vector<net::DeviceId> device_path;
  net::DeviceId originator;

  [[nodiscard]] size_t path_length() const { return as_path.size(); }
};

/// Best-path set for one prefix at one device (ECMP across equal-length
/// paths, §7.1).
struct RibEntry {
  packet::Ipv4Prefix prefix;
  net::RouteKind kind = net::RouteKind::Other;
  size_t path_length = 0;
  /// Representative route (for diagnostics and further export).
  BgpRoute route;
  /// Egress interfaces towards every equal-cost next hop.
  std::vector<net::InterfaceId> next_hops;
  /// True if the device itself originates the prefix.
  bool originated = false;
};

/// A device's routing information base: best routes keyed by prefix.
using Rib = std::map<packet::Ipv4Prefix, RibEntry>;

}  // namespace yardstick::routing
