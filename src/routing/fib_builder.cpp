#include "routing/fib_builder.hpp"

#include <algorithm>
#include <unordered_map>

namespace yardstick::routing {

using net::Action;
using net::ActionType;
using net::MatchSpec;
using net::RouteKind;
using packet::Ipv4Prefix;

namespace {

/// Candidate FIB entry before administrative-distance deduplication.
struct Candidate {
  Ipv4Prefix prefix;
  RouteKind kind;
  Action action;
  int admin_distance;
};

constexpr int kAdConnected = 0;
constexpr int kAdStatic = 1;
constexpr int kAdEbgp = 20;

void install_device(net::Network& network, const net::Device& dev, const SimRib& rib,
                    const RoutingConfig& config) {
  std::unordered_map<uint64_t, Candidate> chosen;
  const auto offer = [&](Candidate c) {
    const uint64_t key = prefix_key(c.prefix);
    auto [it, inserted] = chosen.try_emplace(key, c);
    if (!inserted && c.admin_distance < it->second.admin_distance) it->second = c;
  };

  const auto link_up = [&](net::InterfaceId iid) { return config.link_usable(network, iid); };

  // Connected routes: the /31 of every addressed fabric link (§7.1; these
  // are never redistributed into eBGP). Links to failed devices are down.
  for (const net::InterfaceId iid : dev.interfaces) {
    const net::Interface& intf = network.interface(iid);
    if (!intf.address || !link_up(iid)) continue;
    offer({Ipv4Prefix(intf.address->address(), 31), RouteKind::Connected,
           Action::forward({iid}), kAdConnected});
  }

  // Own loopbacks terminate at the device's local port.
  const std::vector<net::InterfaceId> local_ports =
      network.ports_of_kind(dev.id, net::PortKind::LocalPort);
  if (!local_ports.empty()) {
    for (const Ipv4Prefix& p : dev.loopbacks) {
      offer({p, RouteKind::Internal, Action::forward(local_ports), kAdConnected});
    }
  }

  // Hosted subnets exit through the ToR's host-facing ports — one port per
  // subnet when the counts line up, otherwise ECMP across all of them.
  const std::vector<net::InterfaceId> host_ports =
      network.ports_of_kind(dev.id, net::PortKind::HostPort);
  if (!host_ports.empty()) {
    const bool one_to_one = host_ports.size() == dev.host_prefixes.size();
    for (size_t i = 0; i < dev.host_prefixes.size(); ++i) {
      offer({dev.host_prefixes[i], RouteKind::Internal,
             Action::forward(one_to_one ? std::vector<net::InterfaceId>{host_ports[i]}
                                        : host_ports),
             kAdConnected});
    }
  }

  // WAN devices send their originated default/wide-area traffic out the
  // external attachment (the un-modeled backbone).
  const std::vector<net::InterfaceId> external_ports =
      network.ports_of_kind(dev.id, net::PortKind::ExternalPort);

  // Fail-safe static default route pointing at all northern neighbors
  // (§7.1) — or a null route on misconfigured devices (§2). A null-routed
  // static default is device-local configuration, so it is installed even
  // when the fleet-wide static default policy is off.
  if (config.null_default_devices.contains(dev.id)) {
    offer({packet::default_route_prefix(), RouteKind::Default, Action::drop(),
           kAdStatic});
  } else if (config.static_northbound_default && dev.role != net::Role::Wan &&
             !config.no_default_devices.contains(dev.id)) {
    {
      std::vector<net::InterfaceId> northern;
      for (const auto& [intf, peer] : network.neighbors(dev.id)) {
        if (!config.link_usable(network, intf)) continue;
        if (tier(network.device(peer).role) > tier(dev.role)) northern.push_back(intf);
      }
      if (!northern.empty()) {
        offer({packet::default_route_prefix(), RouteKind::Default,
               Action::forward(std::move(northern)), kAdStatic});
      }
    }
  }

  // BGP-learned routes; locally originated WAN routes exit externally.
  for (const SimRibEntry& e : rib) {
    if (e.originated) {
      const bool wan_originated =
          e.kind == RouteKind::Default || e.kind == RouteKind::WideArea;
      if (wan_originated && !external_ports.empty()) {
        offer({e.prefix, e.kind, Action::forward(external_ports), kAdConnected});
      }
      // Internal originations (loopbacks / host subnets) were installed above.
      continue;
    }
    if (e.next_hops.empty()) continue;
    offer({e.prefix, e.kind, Action::forward(e.next_hops), kAdEbgp});
  }

  // Emit in longest-prefix-first order: priority = 32 - length, so the
  // ordered table realizes LPM under first-match semantics.
  std::vector<Candidate> final_entries;
  final_entries.reserve(chosen.size());
  for (auto& [key, c] : chosen) final_entries.push_back(std::move(c));
  std::sort(final_entries.begin(), final_entries.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.prefix.length() != b.prefix.length()) {
                return a.prefix.length() > b.prefix.length();
              }
              return prefix_key(a.prefix) < prefix_key(b.prefix);
            });
  for (Candidate& c : final_entries) {
    network.add_rule(dev.id, MatchSpec::for_dst(c.prefix), std::move(c.action), c.kind,
                     32u - c.prefix.length());
  }
}

}  // namespace

void FibBuilder::build(net::Network& network, const std::vector<SimRib>& ribs,
                       const RoutingConfig& config) {
  network.clear_rules();
  for (const net::Device& dev : network.devices()) {
    if (config.failed_devices.contains(dev.id)) continue;  // empty FIB
    install_device(network, dev, ribs[dev.id.value], config);
  }
}

std::vector<SimRib> FibBuilder::compute_and_build(net::Network& network,
                                                  const RoutingConfig& config) {
  BgpSimulator sim(network, config);
  std::vector<SimRib> ribs = sim.run();
  build(network, ribs, config);
  return ribs;
}

}  // namespace yardstick::routing
