// ResourceBudget — cooperative deadline / memory / cancellation limits.
//
// The offline phase answers open-ended questions: BDD growth and the path
// universe are unbounded in the worst case, so production callers need a
// way to say "spend at most this much". A budget combines
//   * a wall-clock deadline,
//   * a cap on BDD arena nodes (the dominant memory consumer), and
//   * a cooperative cancel flag that another thread may raise.
// Long-running loops call poll()/check(); the BddManager enforces the node
// cap at allocation time. When a limit trips, a typed BudgetExceededError
// or CancelledError propagates to the nearest degradation point, which
// records a `truncated` flag and returns partial results instead of
// running away (see CoverageEngine).
//
// Budgets are passed by (non-owning) pointer; nullptr everywhere means
// "unlimited", which keeps the default paths zero-cost.
//
// Thread-safety: one budget may be shared by many threads (the parallel
// offline phase attaches it to per-thread BddManager shards). The cancel
// flag, poll counter and node accounting are atomic; the deadline and
// node cap are plain fields configured before the budget is shared
// (thread creation provides the happens-before edge).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace yardstick::ys {

class ResourceBudget {
 public:
  using Clock = std::chrono::steady_clock;

  ResourceBudget() = default;

  /// Fluent setup: budget.with_deadline(5.0).with_max_bdd_nodes(1 << 20).
  ResourceBudget& with_deadline(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    deadline_seconds_ = seconds;
    has_deadline_ = true;
    return *this;
  }

  ResourceBudget& with_max_bdd_nodes(size_t nodes) {
    max_bdd_nodes_ = nodes;
    return *this;
  }

  /// Raise the cooperative cancel flag (safe from another thread).
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// 0 = unlimited. Enforced by BddManager at node-allocation time.
  [[nodiscard]] size_t max_bdd_nodes() const { return max_bdd_nodes_; }

  // --- Cross-manager BDD node accounting (thread-safe) ---
  //
  // Every BddManager attached to this budget charges its arena growth
  // here, so the node cap bounds *total* memory across all shards of a
  // parallel computation, not per-manager usage. Managers release their
  // charge when detached (set_budget(nullptr)), returning shard capacity
  // to the pool when short-lived per-thread managers die.

  /// Reserve `n` nodes against the cap. Returns false (charging nothing)
  /// when the reservation would exceed the cap.
  [[nodiscard]] bool try_charge_bdd_nodes(size_t n) const {
    if (max_bdd_nodes_ == 0) {
      note_peak(used_bdd_nodes_.fetch_add(n, std::memory_order_relaxed) + n);
      return true;
    }
    size_t used = used_bdd_nodes_.load(std::memory_order_relaxed);
    while (used + n <= max_bdd_nodes_) {
      if (used_bdd_nodes_.compare_exchange_weak(used, used + n,
                                                std::memory_order_relaxed)) {
        note_peak(used + n);
        return true;
      }
    }
    return false;
  }

  /// Unconditional charge (used when attaching a manager whose arena
  /// already exists; subsequent allocations then fail fast).
  void charge_bdd_nodes(size_t n) const {
    note_peak(used_bdd_nodes_.fetch_add(n, std::memory_order_relaxed) + n);
  }

  void release_bdd_nodes(size_t n) const {
    used_bdd_nodes_.fetch_sub(n, std::memory_order_relaxed);
  }

  [[nodiscard]] size_t used_bdd_nodes() const {
    return used_bdd_nodes_.load(std::memory_order_relaxed);
  }

  /// High-water mark of concurrent node charge across every manager that
  /// ever attached — the "peak arena nodes" a run actually needed. A GC
  /// that reclaims nodes lowers used_bdd_nodes() but never this. Monotone;
  /// maintained with a CAS-max so concurrent shard growth can't lose an
  /// observation.
  [[nodiscard]] size_t peak_bdd_nodes() const {
    return peak_bdd_nodes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool has_deadline() const { return has_deadline_; }

  [[nodiscard]] bool deadline_passed() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Non-throwing probe: has any cooperative limit (deadline, cancel)
  /// tripped? The node cap is not reported here — it is enforced, with
  /// full precision, inside the BDD allocator.
  [[nodiscard]] bool exhausted() const {
    return cancel_requested() || deadline_passed();
  }

  /// Throwing probe for long-running loops: raises CancelledError or
  /// BudgetExceededError when a cooperative limit has tripped.
  void check(const char* where) const {
    if (cancel_requested()) throw CancelledError(where);
    if (deadline_passed()) throw BudgetExceededError(deadline_description());
  }

  /// Amortized check(): consults the clock only every `stride` calls so it
  /// can sit in per-rule / per-node loops. The cancel flag is still seen
  /// promptly (it is a plain atomic load).
  void poll(const char* where, uint32_t stride = 64) const {
    if (cancel_requested()) throw CancelledError(where);
    if (!has_deadline_) return;
    if ((poll_counter_.fetch_add(1, std::memory_order_relaxed) + 1) % stride != 0) return;
    if (deadline_passed()) throw BudgetExceededError(deadline_description());
  }

  [[nodiscard]] std::string deadline_description() const {
    return "deadline " + std::to_string(deadline_seconds_) + "s";
  }

  [[nodiscard]] std::string node_cap_description() const {
    return "bdd-nodes " + std::to_string(max_bdd_nodes_);
  }

 private:
  void note_peak(size_t used) const {
    size_t peak = peak_bdd_nodes_.load(std::memory_order_relaxed);
    while (used > peak && !peak_bdd_nodes_.compare_exchange_weak(
                              peak, used, std::memory_order_relaxed)) {
    }
  }

  Clock::time_point deadline_{};
  double deadline_seconds_ = 0.0;
  bool has_deadline_ = false;
  size_t max_bdd_nodes_ = 0;
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<uint32_t> poll_counter_{0};
  mutable std::atomic<size_t> used_bdd_nodes_{0};
  mutable std::atomic<size_t> peak_bdd_nodes_{0};
};

}  // namespace yardstick::ys
