// Fault-injection hooks — named failure points compiled into the library.
//
// Resilience claims ("save_trace never leaves a partial file", "the engine
// degrades gracefully when the node budget trips mid-DFS") are only
// testable if failures can be provoked at precise internal moments. Each
// interesting site calls fire("site.name"); a test arms a site with a
// countdown and an action (throw an IoError, flip a cancel flag), and the
// Nth crossing of the site runs the action.
//
// Disarmed cost is one relaxed atomic load (`active()`), so the hooks stay
// compiled into release builds; the registry itself is only touched while
// at least one fault is armed. See tests/fault_injection.hpp for the RAII
// harness test code uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace yardstick::fault {

namespace detail {

struct ArmedFault {
  uint64_t remaining = 0;  // fires when a hit decrements this to zero
  std::function<void()> action;              // for fire()
  std::function<int64_t(int64_t)> shape;     // for fire_adjust()
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, ArmedFault> points;
  std::atomic<int> armed_count{0};
};

inline Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace detail

/// Fast disarmed-path probe; callers guard fire() with it on hot paths.
[[nodiscard]] inline bool active() {
  return detail::registry().armed_count.load(std::memory_order_relaxed) > 0;
}

/// Arm `point` to run `action` on its `nth` crossing (1 = next crossing).
/// The action may throw — the exception propagates out of the fire() site,
/// exactly like a real failure there would.
inline void arm(const std::string& point, uint64_t nth, std::function<void()> action) {
  detail::Registry& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.points.contains(point)) r.armed_count.fetch_add(1, std::memory_order_relaxed);
  r.points[point] = {nth == 0 ? 1 : nth, std::move(action), nullptr};
}

/// Arm `point` so its `nth` crossing of fire_adjust() maps the value the
/// code was about to use onto another one. This is how syscall-shaped
/// faults are provoked: an I/O wrapper passes the byte count it intends to
/// request (or 0 for a pre-call probe) and the armed shape can cap it
/// (short read/write) or return a negative errno (EINTR, ECONNRESET,
/// accept failure) that the wrapper treats exactly like the kernel
/// refusing the call. The shape may also throw.
inline void arm_adjust(const std::string& point, uint64_t nth,
                       std::function<int64_t(int64_t)> shape) {
  detail::Registry& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.points.contains(point)) r.armed_count.fetch_add(1, std::memory_order_relaxed);
  r.points[point] = {nth == 0 ? 1 : nth, nullptr, std::move(shape)};
}

/// Disarm everything (test teardown).
inline void reset() {
  detail::Registry& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.points.clear();
  r.armed_count.store(0, std::memory_order_relaxed);
}

/// Record a crossing of `point`; runs the armed action when the countdown
/// reaches zero. No-op (after the `active()` guard) when nothing is armed.
inline void fire(const char* point) {
  if (!active()) return;
  std::function<void()> action;
  {
    detail::Registry& r = detail::registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.points.find(point);
    if (it == r.points.end() || !it->second.action) return;
    if (--it->second.remaining > 0) return;
    action = std::move(it->second.action);
    r.points.erase(it);
    r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  // Run outside the lock: the action may throw or re-arm.
  if (action) action();
}

/// Record a crossing of a value-shaping point; returns `value` untouched
/// unless an armed shape is due, in which case the shaped value replaces
/// it. No-op (after the `active()` guard) when nothing is armed.
[[nodiscard]] inline int64_t fire_adjust(const char* point, int64_t value) {
  if (!active()) return value;
  std::function<int64_t(int64_t)> shape;
  {
    detail::Registry& r = detail::registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.points.find(point);
    if (it == r.points.end() || !it->second.shape) return value;
    if (--it->second.remaining > 0) return value;
    shape = std::move(it->second.shape);
    r.points.erase(it);
    r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  // Run outside the lock: the shape may throw or re-arm.
  return shape(value);
}

}  // namespace yardstick::fault
