// Minimal threading helpers for the parallel offline phase.
//
// The offline phase parallelizes embarrassingly (per-device match/covered
// sets, per-ingress path sweeps), so all it needs is a fork-join worker
// pool with deterministic error propagation — no task graph, no futures.
// Determinism contract: workers write into pre-sized slots keyed by work
// item, and callers fold those slots in item order, so results are
// bit-identical to a serial run regardless of thread count.
#pragma once

#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace yardstick::ys {

/// Per-worker queue occupancy for every parallel phase: how many work
/// items (devices, ingress ports, ...) each worker drained. A skewed
/// distribution here is the first thing to look at when a parallel run
/// does not speed up. The handle is cached — registration is cold-path.
[[nodiscard]] inline obs::Histogram& worker_items_histogram() {
  static obs::Histogram& h = obs::metrics().histogram(
      "ys.parallel.items_per_worker",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384},
      "work items drained per worker per parallel phase");
  return h;
}

/// Resolve a requested worker count: 0 = one per hardware thread, always
/// at least 1, never more than the number of work items.
[[nodiscard]] inline unsigned resolve_threads(unsigned requested, size_t work_items) {
  unsigned n = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (work_items > 0 && work_items < n) n = static_cast<unsigned>(work_items);
  return n;
}

/// Run fn(worker_index) on `workers` threads and join them all. Every
/// worker always runs to completion (or its own exception) before this
/// returns; the first captured exception — by worker index, so the choice
/// is deterministic — is rethrown afterwards. With one worker, runs
/// inline on the calling thread.
inline void run_workers(unsigned workers, const std::function<void(unsigned)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&fn, &errors, w] {
      obs::Span span("parallel.worker", "parallel");
      span.arg("worker", w);
      try {
        fn(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace yardstick::ys
