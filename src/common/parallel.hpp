// Minimal threading helpers for the parallel offline phase.
//
// The offline phase parallelizes embarrassingly (per-device match/covered
// sets, per-ingress path sweeps), so all it needs is a fork-join worker
// pool with deterministic error propagation — no task graph, no futures.
// Determinism contract: workers write into pre-sized slots keyed by work
// item, and callers fold those slots in item order, so results are
// bit-identical to a serial run regardless of thread count.
#pragma once

#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace yardstick::ys {

/// Resolve a requested worker count: 0 = one per hardware thread, always
/// at least 1, never more than the number of work items.
[[nodiscard]] inline unsigned resolve_threads(unsigned requested, size_t work_items) {
  unsigned n = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (work_items > 0 && work_items < n) n = static_cast<unsigned>(work_items);
  return n;
}

/// Run fn(worker_index) on `workers` threads and join them all. Every
/// worker always runs to completion (or its own exception) before this
/// returns; the first captured exception — by worker index, so the choice
/// is deterministic — is rethrown afterwards. With one worker, runs
/// inline on the calling thread.
inline void run_workers(unsigned workers, const std::function<void(unsigned)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&fn, &errors, w] {
      try {
        fn(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace yardstick::ys
