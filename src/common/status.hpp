// Typed error taxonomy shared by every module.
//
// Yardstick's offline phase is handed artifacts that outlive the process
// that produced them (archived traces, network files) and is asked
// open-ended questions whose cost is unbounded in the worst case. Callers
// therefore need to distinguish *why* an operation failed — bad input,
// corrupt artifact, exhausted budget, cancellation, I/O — without parsing
// exception messages. Every throw in the library carries one of the codes
// below plus structured context (input source/line, the budget that
// tripped).
//
// Hierarchy:
//   * InvalidInputError derives from std::invalid_argument (precondition
//     violations on API calls and malformed *user-authored* input);
//   * everything else derives from StatusError -> std::runtime_error
//     (environmental/runtime failures).
// Both branches expose code() so a single catch can dispatch, and both
// stay catchable by the standard base classes existing callers use.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace yardstick::ys {

enum class Error : uint8_t {
  Ok = 0,
  /// Caller passed something semantically invalid (bad parameters,
  /// malformed network file, out-of-range prefix).
  InvalidInput,
  /// A persisted coverage trace failed validation (truncated, checksum
  /// mismatch, hostile node structure).
  CorruptTrace,
  /// A resource budget (wall-clock deadline, BDD node cap) was exhausted.
  BudgetExceeded,
  /// A cooperative cancellation flag was raised.
  Cancelled,
  /// The operating system refused an I/O operation.
  IoError,
  /// A bug: an invariant the library promises was violated.
  Internal,
};

[[nodiscard]] inline const char* to_string(Error e) {
  switch (e) {
    case Error::Ok: return "ok";
    case Error::InvalidInput: return "invalid-input";
    case Error::CorruptTrace: return "corrupt-trace";
    case Error::BudgetExceeded: return "budget-exceeded";
    case Error::Cancelled: return "cancelled";
    case Error::IoError: return "io-error";
    case Error::Internal: return "internal";
  }
  return "?";
}

/// Structured context attached to a typed error. Fields are optional;
/// empty/zero means "not applicable".
struct ErrorContext {
  /// Input source: a file path or a human-readable input name.
  std::string source;
  /// 1-based line of the input at fault (0 = not line-addressable).
  size_t line = 0;
  /// Description of the budget that tripped ("deadline 5s", "bdd-nodes 10000").
  std::string budget;
};

namespace detail {
inline std::string render(Error code, const std::string& message,
                          const ErrorContext& ctx) {
  std::string out(to_string(code));
  out += ": ";
  if (!ctx.source.empty()) {
    out += ctx.source;
    if (ctx.line != 0) out += ", line " + std::to_string(ctx.line);
    out += ": ";
  }
  out += message;
  if (!ctx.budget.empty()) out += " [budget: " + ctx.budget + "]";
  return out;
}
}  // namespace detail

/// Base of the runtime branch of the taxonomy.
class StatusError : public std::runtime_error {
 public:
  StatusError(Error code, const std::string& message, ErrorContext ctx = {})
      : std::runtime_error(detail::render(code, message, ctx)),
        code_(code),
        context_(std::move(ctx)) {}

  [[nodiscard]] Error code() const { return code_; }
  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  Error code_;
  ErrorContext context_;
};

/// A persisted trace failed validation. `Detail` distinguishes an input
/// that simply ran out (interrupted transfer, partial write by a crashed
/// producer) from one whose bytes are present but wrong (bit rot, hostile
/// tampering) — operators handle the two differently.
class CorruptTraceError : public StatusError {
 public:
  enum class Detail : uint8_t { Truncated, Corrupted };

  CorruptTraceError(Detail detail, const std::string& message, ErrorContext ctx = {})
      : StatusError(Error::CorruptTrace,
                    std::string(detail == Detail::Truncated ? "(truncated) " : "(corrupted) ") +
                        message,
                    std::move(ctx)),
        detail_(detail),
        bare_message_(message) {}

  [[nodiscard]] Detail detail() const { return detail_; }

  /// The message without the code/source/detail prefixes — for callers
  /// that re-raise with richer context (e.g. adding the file path).
  [[nodiscard]] const std::string& bare_message() const { return bare_message_; }

 private:
  Detail detail_;
  std::string bare_message_;
};

/// A resource budget tripped; context().budget names which one.
class BudgetExceededError : public StatusError {
 public:
  explicit BudgetExceededError(const std::string& budget_description)
      : StatusError(Error::BudgetExceeded, "resource budget exhausted",
                    ErrorContext{.source = {}, .line = 0, .budget = budget_description}) {}
};

/// The caller's cooperative cancel flag was raised.
class CancelledError : public StatusError {
 public:
  explicit CancelledError(const std::string& where)
      : StatusError(Error::Cancelled, "operation cancelled at " + where) {}
};

/// The operating system refused an I/O operation.
class IoError : public StatusError {
 public:
  explicit IoError(const std::string& message, ErrorContext ctx = {})
      : StatusError(Error::IoError, message, std::move(ctx)) {}
};

/// Precondition violation; stays catchable as std::invalid_argument so
/// long-standing callers (and tests) keep working.
class InvalidInputError : public std::invalid_argument {
 public:
  explicit InvalidInputError(const std::string& message, ErrorContext ctx = {})
      : std::invalid_argument(detail::render(Error::InvalidInput, message, ctx)),
        context_(std::move(ctx)) {}

  [[nodiscard]] Error code() const { return Error::InvalidInput; }
  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  ErrorContext context_;
};

/// True for the codes on which partial results are acceptable: the caller
/// asked us to stop, so degrading gracefully (truncated flag) is correct;
/// every other code is a hard failure.
[[nodiscard]] inline bool is_resource_exhaustion(Error e) {
  return e == Error::BudgetExceeded || e == Error::Cancelled;
}

}  // namespace yardstick::ys
