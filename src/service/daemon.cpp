#include "service/daemon.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <future>
#include <mutex>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/fault.hpp"
#include "common/status.hpp"
#include "netio/frame.hpp"
#include "obs/metrics.hpp"
#include "service/io.hpp"
#include "service/queue.hpp"
#include "service/wal.hpp"
#include "yardstick/persist.hpp"

namespace yardstick::service {

namespace {

using netio::DecodeStatus;
using netio::Frame;
using netio::FrameType;

/// One queued batch. The connection thread parks on `done` until the
/// consumer has journaled and merged the payload — acknowledgements are
/// sent only for durable batches.
struct QueuedBatch {
  uint64_t session = 0;
  uint64_t seq = 0;
  std::string payload;  // binary trace delta
  std::promise<bool> done;
};

/// A connection slot. The handler thread uses the fd but never closes
/// it; the accept loop (or shutdown) joins finished threads and lets the
/// Fd destructor close — so ::shutdown() during drain can never race a
/// reused descriptor number.
struct ConnSlot {
  Fd fd;
  std::thread thread;
  std::atomic<bool> finished{false};
};

bool send_frame(int fd, FrameType type, uint64_t seq, std::string_view body = {}) {
  const std::string wire = netio::encode_frame(type, seq, body);
  return io_write_full(fd, wire.data(), wire.size(), "net.write");
}

}  // namespace

struct Daemon::Impl {
  explicit Impl(DaemonOptions o)
      : opts(std::move(o)),
        mgr(opts.num_vars),
        wal({.path = opts.wal_path, .fsync = opts.wal_fsync}),
        queue(opts.queue_capacity),
        m_frames(obs::metrics().counter("ys.ingest.frames",
                                        "frames received by yardstickd")),
        m_events(obs::metrics().counter("ys.ingest.events",
                                        "mark events merged into session traces")),
        m_busy(obs::metrics().counter("ys.ingest.busy_rejections",
                                      "batches answered with backpressure")),
        m_corrupt(obs::metrics().counter("ys.ingest.corrupt_frames",
                                         "frames rejected as torn or corrupt")),
        m_rejected(obs::metrics().counter("ys.ingest.rejected_batches",
                                          "batches rejected (decode/journal failure)")),
        m_retransmits(obs::metrics().counter("ys.ingest.duplicate_free_merges",
                                             "batches merged (unions, so re-delivery "
                                             "is counted but never double-applied)")),
        g_queue_depth(obs::metrics().gauge("ys.ingest.queue_depth",
                                           "ingress queue occupancy")),
        g_wal_bytes(obs::metrics().gauge("ys.ingest.wal_bytes",
                                         "write-ahead journal size")),
        g_sessions(obs::metrics().gauge("ys.ingest.sessions",
                                        "distinct sessions merged")) {}

  DaemonOptions opts;
  bdd::BddManager mgr;
  // Per-session traces; merged deterministically in key order. Session 0
  // holds what recovery loaded from a snapshot.
  std::map<uint64_t, coverage::CoverageTrace> sessions;
  Wal wal;
  BoundedQueue<QueuedBatch> queue;

  Fd unix_listener;
  Fd tcp_listener;
  Fd stop_rd, stop_wr;
  std::thread consumer;
  std::vector<std::unique_ptr<ConnSlot>> conns;  // accept-loop/shutdown only
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> halt{false};  // crash_stop: drop instead of drain
  bool started = false;
  bool threads_joined = false;

  // Counters (atomics: touched by connection threads and the consumer).
  std::atomic<uint64_t> connections{0}, accept_failures{0}, frames{0},
      corrupt_frames{0}, batches{0}, rejected_batches{0}, busy_rejections{0},
      events{0}, compactions{0};
  uint64_t recovered_records = 0;
  bool recovered_torn_tail = false;
  bool recovered_snapshot = false;

  obs::Counter& m_frames;
  obs::Counter& m_events;
  obs::Counter& m_busy;
  obs::Counter& m_corrupt;
  obs::Counter& m_rejected;
  obs::Counter& m_retransmits;
  obs::Gauge& g_queue_depth;
  obs::Gauge& g_wal_bytes;
  obs::Gauge& g_sessions;

  void recover();
  void consume();
  bool process(QueuedBatch& batch);
  void maybe_compact();
  void save_snapshot();
  void handle_conn(int fd);
  bool dispatch(int fd, const Frame& frame, uint64_t& session, bool& greeted);
  void accept_from(int listener);
  void reap_finished();
  void stop_threads(bool drain);
  [[nodiscard]] coverage::CoverageTrace merged() const;
};

void Daemon::Impl::recover() {
  if (!opts.snapshot_path.empty() && ::access(opts.snapshot_path.c_str(), F_OK) == 0) {
    // A corrupt snapshot is a hard start failure (CorruptTraceError
    // propagates): silently dropping acknowledged coverage would be
    // worse than refusing to come up.
    sessions[0].merge(ys::load_trace(opts.snapshot_path, mgr));
    recovered_snapshot = true;
  }
  if (!opts.wal_path.empty()) {
    const Wal::ReplayStats rs = Wal::replay(opts.wal_path, [&](std::string_view rec) {
      if (rec.size() < 8) return;  // malformed but checksum-valid: skip
      const uint64_t session = netio::get_u64(rec.data());
      try {
        sessions[session].merge(netio::decode_trace_delta(rec.substr(8), mgr));
      } catch (const ys::CorruptTraceError&) {
        // Validated before journaling, so this means version skew or
        // on-disk damage the checksum missed; skip the record rather
        // than refuse every restart.
        rejected_batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
    recovered_records = rs.records;
    recovered_torn_tail = rs.torn_tail || rs.bad_tail;
    wal.open_for_append();
    // Fold the replayed journal into a fresh snapshot right away: a
    // crash loop must not grow the WAL without bound.
    if (rs.records > 0 && !opts.snapshot_path.empty()) {
      save_snapshot();
      wal.reset();
      compactions.fetch_add(1, std::memory_order_relaxed);
    }
    g_wal_bytes.set(static_cast<double>(wal.bytes()));
  }
  g_sessions.set(static_cast<double>(sessions.size()));
}

coverage::CoverageTrace Daemon::Impl::merged() const {
  coverage::CoverageTrace out;
  for (const auto& [id, trace] : sessions) out.merge(trace);  // id order: deterministic
  return out;
}

void Daemon::Impl::save_snapshot() {
  const coverage::CoverageTrace all = merged();
  ys::save_trace(opts.snapshot_path, all, mgr);
}

void Daemon::Impl::maybe_compact() {
  if (opts.wal_path.empty() || opts.snapshot_path.empty()) return;
  if (wal.bytes() < opts.compact_wal_bytes) return;
  save_snapshot();  // atomic: crash between the two steps just replays a
  wal.reset();      // stale journal onto the snapshot — a no-op union
  compactions.fetch_add(1, std::memory_order_relaxed);
  g_wal_bytes.set(static_cast<double>(wal.bytes()));
}

bool Daemon::Impl::process(QueuedBatch& batch) {
  // Validate + rebuild first: garbage must never reach the journal.
  coverage::CoverageTrace delta;
  try {
    delta = netio::decode_trace_delta(batch.payload, mgr);
  } catch (const ys::CorruptTraceError&) {
    rejected_batches.fetch_add(1, std::memory_order_relaxed);
    m_rejected.add();
    return false;
  }
  if (!opts.wal_path.empty()) {
    std::string record;
    record.reserve(8 + batch.payload.size());
    netio::put_u64(record, batch.session);
    record.append(batch.payload);
    try {
      wal.append(record);
    } catch (const ys::IoError&) {
      // Not durable, so not acknowledged; the client retries and the
      // eventual successful merge is a union — no double counting.
      rejected_batches.fetch_add(1, std::memory_order_relaxed);
      m_rejected.add();
      return false;
    }
    g_wal_bytes.set(static_cast<double>(wal.bytes()));
  }
  const uint64_t n = delta.marked_rules().size() +
                     delta.marked_packets().location_count();
  auto [it, inserted] = sessions.try_emplace(batch.session);
  it->second.merge(delta);
  if (inserted) g_sessions.set(static_cast<double>(sessions.size()));
  events.fetch_add(n, std::memory_order_relaxed);
  m_events.add(n);
  m_retransmits.add();
  return true;
}

void Daemon::Impl::consume() {
  while (auto item = queue.pop()) {
    g_queue_depth.set(static_cast<double>(queue.depth()));
    if (halt.load(std::memory_order_relaxed)) {
      // Crash simulation: the batch dies unprocessed; its promise breaks
      // and the connection reports an error, as a real crash would.
      continue;
    }
    if (fault::active()) fault::fire("daemon.consume.delay");
    bool ok = false;
    try {
      ok = process(*item);
      batches.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      item->done.set_value(false);
      throw;
    }
    item->done.set_value(ok);
    maybe_compact();
  }
}

bool Daemon::Impl::dispatch(int fd, const Frame& frame, uint64_t& session,
                            bool& greeted) {
  switch (frame.type) {
    case FrameType::Hello: {
      if (frame.body.size() < 12) {
        send_frame(fd, FrameType::Error, frame.seq, "malformed hello");
        return false;
      }
      const uint64_t sid = netio::get_u64(frame.body.data());
      const uint32_t vars = netio::get_u32(frame.body.data() + 8);
      if (vars != opts.num_vars) {
        send_frame(fd, FrameType::Error, frame.seq,
                   "variable universe mismatch: daemon has " +
                       std::to_string(opts.num_vars));
        return false;
      }
      session = sid;
      greeted = true;
      std::string body;
      netio::put_u64(body, sid);
      return send_frame(fd, FrameType::HelloAck, frame.seq, body);
    }
    case FrameType::Batch: {
      if (!greeted) {
        send_frame(fd, FrameType::Error, frame.seq, "batch before hello");
        return false;
      }
      QueuedBatch item;
      item.session = session;
      item.seq = frame.seq;
      item.payload = frame.body;
      std::future<bool> done = item.done.get_future();
      if (!queue.try_push(std::move(item))) {
        // Explicit backpressure: the memory bound holds, the client owns
        // the retry (safe: merge is a union).
        busy_rejections.fetch_add(1, std::memory_order_relaxed);
        m_busy.add();
        std::string body;
        netio::put_u32(body, opts.busy_retry_ms);
        return send_frame(fd, FrameType::Busy, frame.seq, body);
      }
      g_queue_depth.set(static_cast<double>(queue.depth()));
      bool ok = false;
      try {
        ok = done.get();
      } catch (const std::future_error&) {
        ok = false;  // consumer halted (crash path) before reaching it
      }
      if (ok) return send_frame(fd, FrameType::Ack, frame.seq);
      send_frame(fd, FrameType::Error, frame.seq, "batch rejected");
      return false;
    }
    case FrameType::Bye:
      send_frame(fd, FrameType::ByeAck, frame.seq);
      return false;
    default:
      send_frame(fd, FrameType::Error, frame.seq, "unexpected frame type");
      return false;
  }
}

void Daemon::Impl::handle_conn(int fd) {
  uint64_t session = 0;
  bool greeted = false;
  std::string buffer;
  std::vector<char> chunk(64 * 1024);
  for (;;) {
    // Drain every complete frame already buffered before reading again.
    while (true) {
      const netio::DecodeResult r = netio::decode_frame(buffer);
      if (r.status == DecodeStatus::NeedMore) break;
      if (r.status == DecodeStatus::Corrupt) {
        // Torn or tampered stream: refuse loudly and drop the
        // connection; the client reconnects and resends (idempotent).
        corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        m_corrupt.add();
        send_frame(fd, FrameType::Error, 0, r.error);
        return;
      }
      buffer.erase(0, r.consumed);
      frames.fetch_add(1, std::memory_order_relaxed);
      m_frames.add();
      if (!dispatch(fd, r.frame, session, greeted)) return;
    }
    const ssize_t n = io_read(fd, chunk.data(), chunk.size(), "net.read");
    if (n <= 0) return;  // EOF, reset, or shutdown() during drain
    buffer.append(chunk.data(), static_cast<size_t>(n));
  }
}

void Daemon::Impl::reap_finished() {
  for (auto it = conns.begin(); it != conns.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = conns.erase(it);  // Fd closes here, after the join
    } else {
      ++it;
    }
  }
}

void Daemon::Impl::accept_from(int listener) {
  Fd conn = accept_conn(listener);
  if (!conn.valid()) {
    // One refused accept (EMFILE, injected fault, transient kernel
    // error) must not kill the daemon; count it and keep serving.
    accept_failures.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  connections.fetch_add(1, std::memory_order_relaxed);
  auto slot = std::make_unique<ConnSlot>();
  slot->fd = std::move(conn);
  ConnSlot* raw = slot.get();
  slot->thread = std::thread([this, raw] {
    handle_conn(raw->fd.get());
    raw->finished.store(true, std::memory_order_release);
  });
  conns.push_back(std::move(slot));
}

void Daemon::Impl::stop_threads(bool drain) {
  unix_listener.reset();
  tcp_listener.reset();
  if (!drain) {
    halt.store(true, std::memory_order_relaxed);
    queue.clear();   // undrained batches die; their promises break
    queue.close();
  }
  // Wake connection threads blocked in read(); they finish their
  // in-flight frame (whose batch the consumer will still drain) and exit.
  for (auto& slot : conns) {
    if (slot->fd.valid()) ::shutdown(slot->fd.get(), SHUT_RDWR);
  }
  for (auto& slot : conns) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  conns.clear();
  if (drain) queue.close();  // consumer drains the rest, then exits
  if (consumer.joinable()) consumer.join();
  threads_joined = true;
}

Daemon::Daemon(DaemonOptions opts) : impl_(std::make_unique<Impl>(std::move(opts))) {}

Daemon::~Daemon() {
  if (impl_->started && !impl_->threads_joined) crash_stop();
}

void Daemon::start() {
  Impl& d = *impl_;
  if (d.opts.socket_path.empty() && d.opts.tcp_port == 0) {
    throw ys::InvalidInputError("daemon needs a unix socket path or a tcp port");
  }
  d.recover();
  if (!d.opts.socket_path.empty()) d.unix_listener = listen_unix(d.opts.socket_path);
  if (d.opts.tcp_port != 0) d.tcp_listener = listen_tcp(d.opts.tcp_port);
  int fds[2];
  if (::pipe(fds) != 0) throw ys::IoError("cannot create daemon stop pipe");
  d.stop_rd = Fd(fds[0]);
  d.stop_wr = Fd(fds[1]);
  d.consumer = std::thread([&d] { d.consume(); });
  d.started = true;
}

void Daemon::run(int wake_fd) {
  Impl& d = *impl_;
  while (!d.stop_requested.load(std::memory_order_relaxed)) {
    struct pollfd pfds[4];
    nfds_t n = 0;
    pfds[n++] = {d.stop_rd.get(), POLLIN, 0};
    if (wake_fd >= 0) pfds[n++] = {wake_fd, POLLIN, 0};
    const nfds_t first_listener = n;
    if (d.unix_listener.valid()) pfds[n++] = {d.unix_listener.get(), POLLIN, 0};
    if (d.tcp_listener.valid()) pfds[n++] = {d.tcp_listener.get(), POLLIN, 0};
    // A finite timeout doubles as the reap tick for finished connections.
    const int rc = ::poll(pfds, n, 500);
    if (rc < 0) {
      if (errno == EINTR) continue;  // a signal: loop re-checks the wake fds
      break;
    }
    if (pfds[0].revents != 0) break;
    if (wake_fd >= 0 && pfds[1].revents != 0) break;
    for (nfds_t i = first_listener; i < n; ++i) {
      if ((pfds[i].revents & POLLIN) != 0) d.accept_from(pfds[i].fd);
    }
    d.reap_finished();
  }
}

void Daemon::request_stop() {
  Impl& d = *impl_;
  d.stop_requested.store(true, std::memory_order_relaxed);
  if (d.stop_wr.valid()) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(d.stop_wr.get(), &byte, 1);
  }
}

void Daemon::shutdown() {
  Impl& d = *impl_;
  if (!d.started || d.threads_joined) return;
  request_stop();
  d.stop_threads(/*drain=*/true);
  // Everything accepted has now reached the session traces: persist the
  // final state atomically and retire the journal it supersedes.
  if (!d.opts.snapshot_path.empty()) {
    d.save_snapshot();
    if (!d.opts.wal_path.empty()) d.wal.reset();
  }
}

void Daemon::crash_stop() {
  Impl& d = *impl_;
  if (!d.started || d.threads_joined) return;
  request_stop();
  d.stop_threads(/*drain=*/false);
}

coverage::CoverageTrace Daemon::merged_trace(bdd::BddManager& into) const {
  return impl_->merged().imported_into(into);
}

std::string Daemon::serialized_trace() const {
  const coverage::CoverageTrace all = impl_->merged();
  return ys::serialize_trace(all, impl_->mgr);
}

DaemonStats Daemon::stats() const {
  const Impl& d = *impl_;
  DaemonStats s;
  s.connections = d.connections.load(std::memory_order_relaxed);
  s.accept_failures = d.accept_failures.load(std::memory_order_relaxed);
  s.frames = d.frames.load(std::memory_order_relaxed);
  s.corrupt_frames = d.corrupt_frames.load(std::memory_order_relaxed);
  s.batches = d.batches.load(std::memory_order_relaxed);
  s.rejected_batches = d.rejected_batches.load(std::memory_order_relaxed);
  s.busy_rejections = d.busy_rejections.load(std::memory_order_relaxed);
  s.events = d.events.load(std::memory_order_relaxed);
  s.compactions = d.compactions.load(std::memory_order_relaxed);
  s.wal_bytes = d.opts.wal_path.empty() ? 0 : d.wal.bytes();
  s.sessions = d.sessions.size();
  s.recovered_records = d.recovered_records;
  s.recovered_torn_tail = d.recovered_torn_tail;
  s.recovered_snapshot = d.recovered_snapshot;
  return s;
}

uint16_t Daemon::tcp_port() const {
  const Impl& d = *impl_;
  if (!d.tcp_listener.valid()) return 0;
  struct sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (::getsockname(d.tcp_listener.get(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

coverage::CoverageTrace recover_trace(const std::string& snapshot_path,
                                      const std::string& wal_path,
                                      bdd::BddManager& mgr, DaemonStats* stats) {
  std::map<uint64_t, coverage::CoverageTrace> sessions;
  DaemonStats s;
  if (!snapshot_path.empty() && ::access(snapshot_path.c_str(), F_OK) == 0) {
    sessions[0].merge(ys::load_trace(snapshot_path, mgr));
    s.recovered_snapshot = true;
  }
  if (!wal_path.empty()) {
    const Wal::ReplayStats rs = Wal::replay(wal_path, [&](std::string_view rec) {
      if (rec.size() < 8) return;
      const uint64_t session = netio::get_u64(rec.data());
      try {
        sessions[session].merge(netio::decode_trace_delta(rec.substr(8), mgr));
      } catch (const ys::CorruptTraceError&) {
        ++s.rejected_batches;
      }
    });
    s.recovered_records = rs.records;
    s.recovered_torn_tail = rs.torn_tail || rs.bad_tail;
  }
  s.sessions = sessions.size();
  if (stats != nullptr) *stats = s;
  coverage::CoverageTrace out;
  for (const auto& [id, trace] : sessions) out.merge(trace);
  return out;
}

}  // namespace yardstick::service
