#include "service/io.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/fault.hpp"
#include "common/status.hpp"

namespace yardstick::service {

namespace {

/// Crosses "<site>.pre"; a negative shaped value becomes a simulated
/// syscall failure with errno = -value. Returns false when the caller
/// should treat the call as failed without issuing it.
bool pre_syscall(const char* site, std::string& point_buf) {
  if (!fault::active()) return true;
  point_buf.assign(site);
  point_buf += ".pre";
  const int64_t verdict = fault::fire_adjust(point_buf.c_str(), 0);
  if (verdict < 0) {
    errno = static_cast<int>(-verdict);
    return false;
  }
  return true;
}

/// Crosses "<site>.len"; the shape may cap the requested count.
size_t shaped_len(const char* site, size_t len, std::string& point_buf) {
  if (!fault::active()) return len;
  point_buf.assign(site);
  point_buf += ".len";
  const int64_t shaped = fault::fire_adjust(point_buf.c_str(), static_cast<int64_t>(len));
  return shaped > 0 ? static_cast<size_t>(shaped) : len;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

ssize_t io_read(int fd, void* buf, size_t len, const char* site) {
  std::string point;
  for (;;) {
    if (!pre_syscall(site, point)) {
      if (errno == EINTR) continue;
      return -1;
    }
    const size_t ask = shaped_len(site, len, point);
    const ssize_t n = ::read(fd, buf, ask);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool io_write_full(int fd, const void* buf, size_t len, const char* site) {
  const char* p = static_cast<const char*>(buf);
  std::string point;
  size_t off = 0;
  while (off < len) {
    if (!pre_syscall(site, point)) {
      if (errno == EINTR) continue;
      return false;
    }
    const size_t ask = shaped_len(site, len - off, point);
    const ssize_t n = ::write(fd, p + off, ask);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

int io_poll_in(int fd, int timeout_ms) {
  struct pollfd pfd = {fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;  // imprecise remaining time is fine
    if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) return 1;
    return rc > 0 ? 1 : rc;
  }
}

Fd listen_unix(const std::string& path) {
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ys::IoError("unix socket path too long", {.source = path});
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw ys::IoError("cannot create unix socket", {.source = path});
  ::unlink(path.c_str());  // a kill -9'd predecessor leaves a stale file
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw ys::IoError(std::string("cannot bind unix socket: ") + std::strerror(errno),
                      {.source = path});
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    throw ys::IoError(std::string("cannot listen: ") + std::strerror(errno),
                      {.source = path});
  }
  return fd;
}

Fd listen_tcp(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  const std::string where = "127.0.0.1:" + std::to_string(port);
  if (!fd.valid()) throw ys::IoError("cannot create tcp socket", {.source = where});
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw ys::IoError(std::string("cannot bind: ") + std::strerror(errno),
                      {.source = where});
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    throw ys::IoError(std::string("cannot listen: ") + std::strerror(errno),
                      {.source = where});
  }
  return fd;
}

Fd accept_conn(int listen_fd) {
  std::string point;
  for (;;) {
    if (!pre_syscall("net.accept", point)) {
      if (errno == EINTR) continue;
      return Fd();
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    return Fd(fd);
  }
}

Fd connect_unix(const std::string& path) {
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return Fd();
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    if (errno == EINTR) continue;
    return Fd();
  }
}

Fd connect_tcp(const std::string& host, uint16_t port) {
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return Fd();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    if (errno == EINTR) continue;
    return Fd();
  }
}

}  // namespace yardstick::service
