// POSIX I/O primitives for the ingestion daemon, hardened at the syscall
// boundary.
//
// Every wrapper here owns one failure edge the daemon must survive:
// short reads and writes (loops continue), EINTR (retried, counted),
// refused accepts (reported, never fatal), and stale socket files
// (unlinked before bind). Each wrapper crosses a named fault point
// (fault::fire_adjust) immediately before its syscall, so tests can make
// "the kernel returned -1/EINTR/half the bytes" happen at an exact
// moment: the point `<site>.pre` may return a negative errno to fail the
// call, and `<site>.len` may cap the requested byte count (a short op).
#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>

namespace yardstick::service {

/// RAII file descriptor. Move-only; closes on destruction (EINTR on
/// close is ignored — POSIX leaves the fd state unspecified and
/// double-close is the worse bug).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset(int fd = -1);
  /// Release ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// read(2) with EINTR retry and fault shaping (`<site>.pre`, `<site>.len`).
/// Returns bytes read, 0 at EOF, -1 with errno set on failure.
ssize_t io_read(int fd, void* buf, size_t len, const char* site = "net.read");

/// Write all of `len` bytes, absorbing short writes and EINTR. Returns
/// true on success; false with errno set on failure (the stream position
/// is then indeterminate — a torn frame the peer's checksum catches).
bool io_write_full(int fd, const void* buf, size_t len, const char* site = "net.write");

/// poll(2) for readability. Returns 1 when readable/hung-up, 0 on
/// timeout, -1 with errno set on failure. EINTR is retried with the
/// remaining time.
int io_poll_in(int fd, int timeout_ms);

/// Listening sockets. Both throw ys::IoError on failure: a daemon that
/// cannot bind has nothing to degrade to. listen_unix unlinks a stale
/// socket file first (a kill -9'd predecessor leaves one behind).
[[nodiscard]] Fd listen_unix(const std::string& path);
[[nodiscard]] Fd listen_tcp(uint16_t port);  // 127.0.0.1 only

/// accept(2) with EINTR retry and fault shaping ("net.accept.pre").
/// Returns an invalid Fd with errno set on failure — the accept loop
/// counts it and keeps serving (one refused accept must not kill the
/// daemon).
[[nodiscard]] Fd accept_conn(int listen_fd);

/// Client-side connects. Return an invalid Fd with errno set on failure
/// so the client's retry/backoff loop owns the policy.
[[nodiscard]] Fd connect_unix(const std::string& path);
[[nodiscard]] Fd connect_tcp(const std::string& host, uint16_t port);

}  // namespace yardstick::service
