// Bounded multi-producer single-consumer queue — the daemon's ingress
// buffer.
//
// Boundedness is the robustness property: a flood of producers cannot
// grow daemon memory without limit. When the queue is full, try_push
// fails *immediately* and the connection handler answers with an explicit
// Busy (backpressure) frame instead of silently stalling the socket —
// the client owns the retry policy, the daemon owns the memory bound.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace yardstick::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Non-blocking; false when the queue is full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once closed *and* drained,
  /// so close() lets the consumer finish every accepted item before
  /// exiting (the graceful-shutdown drain).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Reject new pushes; wake the consumer to drain what was accepted.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Drop everything undrained (crash simulation / hard stop).
  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    items_.clear();
  }

  [[nodiscard]] size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace yardstick::service
