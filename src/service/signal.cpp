#include "service/signal.hpp"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <unistd.h>

#include "common/status.hpp"

namespace yardstick::service {

namespace {

// File-scope, lock-free state: everything a handler touches must be
// async-signal-safe, which rules out the instance owning it behind a
// mutex or allocation.
std::atomic<int> g_pipe_rd{-1};
std::atomic<int> g_pipe_wr{-1};
std::atomic<int> g_signal_count{0};
std::atomic<bool> g_requested{false};

void on_signal(int signo) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) >= 1) {
    // Second signal: the operator wants out *now*, drain be damned.
    _exit(128 + signo);
  }
  g_requested.store(true, std::memory_order_relaxed);
  const int wr = g_pipe_wr.load(std::memory_order_relaxed);
  if (wr >= 0) {
    const char byte = 's';
    // A full pipe is fine: the poll side is already readable.
    [[maybe_unused]] const ssize_t n = ::write(wr, &byte, 1);
  }
}

}  // namespace

ShutdownSignal& ShutdownSignal::install() {
  static ShutdownSignal instance;
  if (g_pipe_rd.load(std::memory_order_relaxed) < 0) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw ys::IoError("cannot create shutdown self-pipe");
    }
    g_pipe_rd.store(fds[0], std::memory_order_relaxed);
    g_pipe_wr.store(fds[1], std::memory_order_relaxed);

    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: blocked syscalls should wake
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
  }
  return instance;
}

int ShutdownSignal::fd() const { return g_pipe_rd.load(std::memory_order_relaxed); }

bool ShutdownSignal::requested() const {
  return g_requested.load(std::memory_order_relaxed);
}

void ShutdownSignal::trigger() {
  g_requested.store(true, std::memory_order_relaxed);
  const int wr = g_pipe_wr.load(std::memory_order_relaxed);
  if (wr >= 0) {
    const char byte = 't';
    [[maybe_unused]] const ssize_t n = ::write(wr, &byte, 1);
  }
}

}  // namespace yardstick::service
