// IngestClient — the test tool's side of yardstickd.
//
// Mirrors the CoverageTrace online API (mark_packet/mark_rule) but
// accumulates events into a pending delta and ships it to the daemon in
// batched frames. The client owns the full unreliable-transport policy:
//   * batches auto-flush at a size threshold (amortizes framing + RTT);
//   * an unacknowledged batch is kept and retried — with a fresh
//     connection if needed — under capped attempts and exponential
//     backoff with deterministic jitter (seeded xorshift, so tests
//     replay);
//   * a Busy (backpressure) frame sleeps for the daemon's retry-after
//     hint and resends;
//   * re-delivery after an ambiguous failure (e.g. the ack was lost, not
//     the batch) is safe because the daemon merges by union.
// Only when the attempt cap is exhausted does flush() throw ys::IoError —
// the pending delta stays intact, so the caller may retry later or fall
// back to the in-process CoverageTrace path.
#pragma once

#include <cstdint>
#include <string>

#include "coverage/trace.hpp"
#include "netio/frame.hpp"
#include "netmodel/network.hpp"
#include "packet/fields.hpp"
#include "packet/located_packet_set.hpp"
#include "service/io.hpp"

namespace yardstick::service {

struct ClientOptions {
  /// Unix-domain daemon socket ("" = use TCP instead).
  std::string socket_path;
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
  /// Session identity; shards of one logical test run that must merge
  /// deterministically use distinct ids (the daemon merges in id order).
  uint64_t session_id = 1;
  /// Auto-flush once this many mark events are pending (0 = manual
  /// flush only).
  size_t batch_events = 1024;
  /// How long to wait for the daemon's reply to one frame.
  uint32_t ack_timeout_ms = 5000;
  /// Attempts per batch before flush() gives up with ys::IoError.
  uint32_t max_attempts = 8;
  /// Exponential backoff: min(cap, base << attempt) plus jitter.
  uint32_t backoff_base_ms = 10;
  uint32_t backoff_cap_ms = 2000;
  /// Seed for the jitter PRNG (deterministic for tests; vary per shard).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Must match the daemon's variable universe (checked at Hello).
  bdd::Var num_vars = packet::kNumHeaderBits;
};

struct ClientStats {
  uint64_t flushes = 0;        ///< Successful batch deliveries.
  uint64_t events_sent = 0;    ///< Mark events in acknowledged batches.
  uint64_t retries = 0;        ///< Re-sends after failure or lost ack.
  uint64_t busy_backoffs = 0;  ///< Busy frames honored.
  uint64_t reconnects = 0;     ///< Connections (re)established.
};

class IngestClient {
 public:
  explicit IngestClient(ClientOptions opts);
  /// Best-effort close(); never throws.
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Online API — identical shape to CoverageTrace. May flush (and thus
  /// throw ys::IoError) when the pending batch reaches batch_events.
  void mark_packet(packet::LocationId location, const packet::PacketSet& packets);
  void mark_packet(const packet::LocatedPacketSet& packets);
  void mark_rule(net::RuleId rule);

  /// Deliver the pending delta. Retries per the backoff policy; throws
  /// ys::IoError once max_attempts is exhausted (pending events are
  /// preserved for a later retry).
  void flush();

  /// flush() + polite Bye. Safe to call repeatedly.
  void close();

  [[nodiscard]] size_t pending_events() const { return pending_events_; }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }

 private:
  enum class SendOutcome : uint8_t { Acked, Busy, Failed };

  void maybe_autoflush();
  bool ensure_connected();  ///< connect + Hello/HelloAck; false on failure
  SendOutcome send_batch(const std::string& payload, uint32_t& retry_ms);
  bool read_frame(netio::Frame& out);
  void drop_connection();
  void backoff(uint32_t attempt);
  [[nodiscard]] uint64_t jitter_next();

  ClientOptions opts_;
  Fd fd_;
  bool greeted_ = false;
  std::string recv_buf_;
  coverage::CoverageTrace pending_;
  size_t pending_events_ = 0;
  uint64_t seq_ = 1;
  uint64_t jitter_state_;
  ClientStats stats_;
};

}  // namespace yardstick::service
