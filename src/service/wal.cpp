#include "service/wal.hpp"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fault.hpp"
#include "common/status.hpp"
#include "netio/frame.hpp"

namespace yardstick::service {

namespace {

constexpr const char* kHeader = "yardstick-wal v1\n";
constexpr size_t kHeaderBytes = 17;
constexpr size_t kRecordHeaderBytes = 12;  // u32 len + u64 checksum

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw ys::IoError(what + ": " + std::strerror(errno), {.source = path});
}

}  // namespace

void Wal::open_for_append() {
  Fd fd(::open(opts_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644));
  if (!fd.valid()) io_fail("cannot open journal", opts_.path);
  struct stat st = {};
  if (::fstat(fd.get(), &st) != 0) io_fail("cannot stat journal", opts_.path);
  if (st.st_size == 0) {
    if (!io_write_full(fd.get(), kHeader, kHeaderBytes, "wal.write")) {
      io_fail("cannot write journal header", opts_.path);
    }
    if (::fsync(fd.get()) != 0) io_fail("cannot fsync journal header", opts_.path);
    bytes_ = kHeaderBytes;
  } else {
    bytes_ = static_cast<uint64_t>(st.st_size);
  }
  fd_ = std::move(fd);
}

void Wal::append(std::string_view payload) {
  if (!fd_.valid()) throw ys::IoError("journal not open", {.source = opts_.path});
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  netio::put_u32(record, static_cast<uint32_t>(payload.size()));
  netio::put_u64(record, netio::fnv1a_64(payload.data(), payload.size()));
  record.append(payload);
  // One write_full for the whole record: a crash (or injected fault)
  // mid-way leaves a torn tail that replay() detects and discards.
  if (!io_write_full(fd_.get(), record.data(), record.size(), "wal.write")) {
    io_fail("journal append failed", opts_.path);
  }
  if (opts_.fsync) {
    if (fault::active()) fault::fire("wal.append.fsync");
    if (::fsync(fd_.get()) != 0) io_fail("journal fsync failed", opts_.path);
  }
  bytes_ += record.size();
}

void Wal::reset() {
  fd_.reset();
  Fd fd(::open(opts_.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
  if (!fd.valid()) io_fail("cannot truncate journal", opts_.path);
  if (!io_write_full(fd.get(), kHeader, kHeaderBytes, "wal.write")) {
    io_fail("cannot rewrite journal header", opts_.path);
  }
  if (::fsync(fd.get()) != 0) io_fail("cannot fsync truncated journal", opts_.path);
  fd_ = std::move(fd);
  bytes_ = kHeaderBytes;
}

Wal::ReplayStats Wal::replay(const std::string& path,
                             const std::function<void(std::string_view)>& apply) {
  ReplayStats stats;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (::access(path.c_str(), F_OK) != 0) return stats;  // no journal yet
    throw ys::IoError("cannot open journal for replay", {.source = path});
  }
  char header[kHeaderBytes];
  if (!in.read(header, kHeaderBytes) ||
      std::memcmp(header, kHeader, kHeaderBytes) != 0) {
    // Not a journal (or torn before the header finished): nothing usable.
    stats.torn_tail = true;
    return stats;
  }
  std::string payload;
  for (;;) {
    char rec_header[kRecordHeaderBytes];
    in.read(rec_header, kRecordHeaderBytes);
    if (in.gcount() == 0 && in.eof()) break;  // clean end
    if (in.gcount() < static_cast<std::streamsize>(kRecordHeaderBytes)) {
      stats.torn_tail = true;  // crash mid record-header
      break;
    }
    const uint32_t len = netio::get_u32(rec_header);
    const uint64_t checksum = netio::get_u64(rec_header + 4);
    if (len > netio::kMaxFrameBody) {
      stats.bad_tail = true;  // a flipped length bit must not drive resize()
      break;
    }
    payload.resize(len);
    in.read(payload.data(), len);
    if (in.gcount() < static_cast<std::streamsize>(len)) {
      stats.torn_tail = true;  // crash mid payload
      break;
    }
    if (netio::fnv1a_64(payload.data(), payload.size()) != checksum) {
      stats.bad_tail = true;  // bit rot or a torn rewrite; stop trusting
      break;
    }
    apply(payload);
    ++stats.records;
    stats.bytes += kRecordHeaderBytes + len;
  }
  if (in.bad()) throw ys::IoError("journal read failed", {.source = path});
  return stats;
}

}  // namespace yardstick::service
