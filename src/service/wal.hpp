// Write-ahead journal for the ingestion daemon.
//
// Durability contract: a batch is acknowledged to the client only after
// its bytes are appended (and, by default, fsync'd) here. If the daemon
// is killed — even kill -9 mid-append — restart recovery replays the
// journal and loses at most the unacknowledged tail; the client still
// holds that batch and resends it, and because trace merge is a union,
// re-delivery of anything already journaled is harmless. That pairing
// (durable-before-ack + idempotent merge) is what makes the crash-
// recovery CI job's "bit-identical to an uninterrupted run" assertion
// hold.
//
// On-disk format:
//   "yardstick-wal v1\n"                                  (header)
//   repeated records: u32 len | u64 fnv1a(payload) | payload
// A record torn by a crash is detected by its short length or checksum
// and treated as the end of the journal — replay never trusts the tail.
//
// Compaction: once the journal exceeds a byte threshold, the daemon
// saves its merged trace through persist.cpp's atomic save_trace and
// truncates the journal back to the header (reset()). The ordering is
// deliberately crash-safe without coordination: snapshot first, truncate
// second. A crash between the two leaves snapshot + stale journal, and
// replaying already-snapshotted records is again a no-op union.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "service/io.hpp"

namespace yardstick::service {

class Wal {
 public:
  struct Options {
    std::string path;
    /// fsync every append (the durable-before-ack contract). Off trades
    /// durability of the latest few records for throughput.
    bool fsync = true;
  };

  struct ReplayStats {
    size_t records = 0;      ///< Complete, checksum-valid records applied.
    uint64_t bytes = 0;      ///< Bytes consumed by applied records.
    bool torn_tail = false;  ///< File ended inside a record (crash mid-append).
    bool bad_tail = false;   ///< Tail record present but checksum-invalid.
  };

  explicit Wal(Options opts) : opts_(std::move(opts)) {}

  /// Open (creating with a header if absent) for appending. Throws
  /// ys::IoError.
  void open_for_append();

  /// Append one record; flushes, and fsyncs unless disabled. Throws
  /// ys::IoError — after which the tail may be torn, exactly like a
  /// crash, and the caller must NOT acknowledge the batch.
  void append(std::string_view payload);

  /// Truncate back to the bare header (post-compaction). Throws
  /// ys::IoError.
  void reset();

  /// Bytes currently in the journal file (header included).
  [[nodiscard]] uint64_t bytes() const { return bytes_; }
  [[nodiscard]] const std::string& path() const { return opts_.path; }

  /// Stream every valid record of `path` through `apply`, stopping at a
  /// torn or corrupt tail. A missing file is an empty journal. Throws
  /// ys::IoError only if the file exists but cannot be opened/read, and
  /// whatever `apply` throws.
  static ReplayStats replay(const std::string& path,
                            const std::function<void(std::string_view)>& apply);

 private:
  Options opts_;
  Fd fd_;
  uint64_t bytes_ = 0;
};

}  // namespace yardstick::service
