// SIGTERM/SIGINT wiring for the daemon — the repo's first signal handling.
//
// A signal handler may only touch async-signal-safe state, so the handler
// here does exactly two things: set a flag and write one byte into a
// self-pipe. The daemon's accept loop polls the pipe's read end alongside
// its listening sockets, turning "a signal arrived" into "a poll fd went
// readable" — the drain-and-save shutdown then runs in normal (non-
// handler) context where it may lock, allocate and fsync. A second
// signal hard-exits (128+signo): an operator's double Ctrl-C means
// "now", even if the drain is wedged.
#pragma once

namespace yardstick::service {

class ShutdownSignal {
 public:
  /// Install SIGTERM/SIGINT handlers (idempotent) and return the
  /// process-wide instance. Throws ys::IoError if the self-pipe cannot
  /// be created.
  static ShutdownSignal& install();

  /// Read end of the self-pipe: poll it for readability next to the
  /// listening sockets.
  [[nodiscard]] int fd() const;

  /// True once a shutdown signal has been observed (or trigger() called).
  [[nodiscard]] bool requested() const;

  /// Programmatic shutdown request — same path as a signal, usable from
  /// tests and from non-signal code.
  void trigger();

  ShutdownSignal(const ShutdownSignal&) = delete;
  ShutdownSignal& operator=(const ShutdownSignal&) = delete;

 private:
  ShutdownSignal() = default;
};

}  // namespace yardstick::service
