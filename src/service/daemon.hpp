// yardstickd — the fault-tolerant trace-ingestion daemon (online phase as
// a service).
//
// The paper's whole pitch for the online phase (§5, Fig. 4) is that
// markPacket/markRule stay off the testing tools' critical path. As an
// in-process library that holds only while the tool links the engine and
// never crashes. yardstickd moves ingestion behind a socket: many
// concurrent test-tool sessions stream batched mark events at a
// long-running daemon that journals, merges and periodically snapshots
// them — a tool crash loses nothing acknowledged, a daemon crash loses
// nothing journaled.
//
// Data path:   conn threads ──frames──▶ bounded queue ──▶ consumer thread
//                   │  Busy on full          │               │ WAL append
//                   ◀──Ack after journal+merge◀──────────────┘ merge into
//                                                              per-session trace
//
// Robustness properties, each with a test or fault point behind it:
//   * bounded ingress queue; overflow answers an explicit Busy frame
//     (backpressure) instead of stalling the socket or growing memory;
//   * durable-before-ack: a batch is acknowledged only after its WAL
//     append succeeds, so ack'd events survive kill -9;
//   * idempotent recovery: traces merge by union, so WAL replay plus
//     client re-delivery after a crash converge on the same trace as an
//     uninterrupted run — byte-identical snapshots;
//   * per-session traces merged in session-id order (deterministic merge
//     independent of arrival interleaving);
//   * graceful shutdown (SIGTERM/SIGINT via service/signal.hpp): stop
//     accepting, drain every accepted batch, snapshot atomically through
//     persist.cpp, truncate the WAL;
//   * every syscall edge (short read/write, EINTR, accept failure, torn
//     frame, full queue, mid-append crash) is exercised through
//     common/fault.hpp fault points.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "bdd/bdd.hpp"
#include "coverage/trace.hpp"
#include "packet/fields.hpp"

namespace yardstick::service {

struct DaemonOptions {
  /// Unix-domain listener path ("" = disabled).
  std::string socket_path;
  /// TCP listener on 127.0.0.1 (0 = disabled). At least one listener
  /// must be enabled.
  uint16_t tcp_port = 0;
  /// Write-ahead journal path ("" = journaling off: acks are then only
  /// memory-durable).
  std::string wal_path;
  /// Snapshot path for compaction and graceful shutdown ("" = off).
  std::string snapshot_path;
  /// Ingress queue bound: the daemon's memory guarantee.
  size_t queue_capacity = 1024;
  /// Compact (snapshot + truncate WAL) once the journal exceeds this.
  uint64_t compact_wal_bytes = 64ull << 20;
  /// fsync every WAL append (durable-before-ack). Benchmarks may disable.
  bool wal_fsync = true;
  /// Retry-after hint carried in Busy (backpressure) frames, ms.
  uint32_t busy_retry_ms = 25;
  /// BDD variable universe; must match the clients' Hello.
  bdd::Var num_vars = packet::kNumHeaderBits;
};

struct DaemonStats {
  uint64_t connections = 0;
  uint64_t accept_failures = 0;
  uint64_t frames = 0;
  uint64_t corrupt_frames = 0;
  uint64_t batches = 0;
  uint64_t rejected_batches = 0;  ///< decode/WAL failures (client retries)
  uint64_t busy_rejections = 0;   ///< backpressure answers
  uint64_t events = 0;            ///< mark events merged
  uint64_t compactions = 0;
  uint64_t wal_bytes = 0;
  uint64_t sessions = 0;
  uint64_t recovered_records = 0;  ///< WAL records replayed at start()
  bool recovered_torn_tail = false;
  bool recovered_snapshot = false;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts);
  /// Destruction of a still-running daemon behaves like crash_stop():
  /// threads halt, nothing is drained or snapshotted.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Recover (snapshot load + WAL replay), bind listeners, start the
  /// consumer thread. Throws ys::StatusError subclasses on unrecoverable
  /// setup failures (cannot bind, corrupt snapshot).
  void start();

  /// Serve until stop is requested: request_stop(), or `wake_fd` (e.g.
  /// ShutdownSignal::fd()) becoming readable. Returns after the accept
  /// loop exits; call shutdown() next for the graceful drain.
  void run(int wake_fd = -1);

  /// Ask run() to return (thread-safe, signal-unsafe — from signal
  /// handlers use ShutdownSignal's fd as run()'s wake_fd instead).
  void request_stop();

  /// Graceful drain-and-save: stop accepting, let every accepted batch
  /// reach the trace, snapshot atomically, truncate the WAL, join all
  /// threads. Idempotent.
  void shutdown();

  /// Simulated crash for recovery tests: halt threads where they stand,
  /// drop undrained queue items, skip snapshot and WAL truncation. The
  /// object stays inspectable; a new Daemon on the same paths recovers.
  void crash_stop();

  /// Deterministic merge of all session traces, in session-id order,
  /// into `into`'s manager (which must have matching num_vars). Only
  /// valid while no consumer thread runs (before start() or after
  /// shutdown()/crash_stop()).
  [[nodiscard]] coverage::CoverageTrace merged_trace(bdd::BddManager& into) const;

  /// Canonical serialization of the merged trace (persist-v2 text) —
  /// what a snapshot would contain. Same threading caveat as
  /// merged_trace().
  [[nodiscard]] std::string serialized_trace() const;

  [[nodiscard]] DaemonStats stats() const;
  [[nodiscard]] uint16_t tcp_port() const;  ///< resolved port (for tests)

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Offline recovery (the `ingest-replay` subcommand): rebuild the merged
/// trace a daemon would recover from `snapshot_path` (optional) plus
/// `wal_path`, without binding any socket. Returns the trace in `mgr`;
/// `stats` (optional) reports replayed record counts and tail state.
[[nodiscard]] coverage::CoverageTrace recover_trace(const std::string& snapshot_path,
                                                    const std::string& wal_path,
                                                    bdd::BddManager& mgr,
                                                    DaemonStats* stats = nullptr);

}  // namespace yardstick::service
