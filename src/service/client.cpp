#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "netio/frame.hpp"

namespace yardstick::service {

namespace {

using netio::DecodeStatus;
using netio::Frame;
using netio::FrameType;

void sleep_ms(uint64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

IngestClient::IngestClient(ClientOptions opts)
    : opts_(std::move(opts)),
      jitter_state_(opts_.jitter_seed != 0 ? opts_.jitter_seed : 1) {}

IngestClient::~IngestClient() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; the pending delta is simply lost, as
    // it would be if the process died here.
  }
}

uint64_t IngestClient::jitter_next() {
  // xorshift64: deterministic per seed, no global RNG state.
  uint64_t x = jitter_state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  jitter_state_ = x;
  return x;
}

void IngestClient::backoff(uint32_t attempt) {
  const uint32_t shift = std::min(attempt, 16u);
  const uint64_t base =
      std::min<uint64_t>(opts_.backoff_cap_ms,
                         static_cast<uint64_t>(opts_.backoff_base_ms) << shift);
  // Up to +50% jitter so retrying shards do not stampede in lockstep.
  sleep_ms(base + (base > 0 ? jitter_next() % (base / 2 + 1) : 0));
}

void IngestClient::mark_packet(packet::LocationId location,
                               const packet::PacketSet& packets) {
  pending_.mark_packet(location, packets);
  ++pending_events_;
  maybe_autoflush();
}

void IngestClient::mark_packet(const packet::LocatedPacketSet& packets) {
  pending_.mark_packet(packets);
  ++pending_events_;
  maybe_autoflush();
}

void IngestClient::mark_rule(net::RuleId rule) {
  pending_.mark_rule(rule);
  ++pending_events_;
  maybe_autoflush();
}

void IngestClient::maybe_autoflush() {
  if (opts_.batch_events > 0 && pending_events_ >= opts_.batch_events) flush();
}

void IngestClient::drop_connection() {
  fd_.reset();
  greeted_ = false;
  recv_buf_.clear();
}

bool IngestClient::ensure_connected() {
  if (fd_.valid() && greeted_) return true;
  drop_connection();
  Fd fd = opts_.socket_path.empty()
              ? connect_tcp(opts_.tcp_host, opts_.tcp_port)
              : connect_unix(opts_.socket_path);
  if (!fd.valid()) return false;
  fd_ = std::move(fd);
  ++stats_.reconnects;
  std::string body;
  netio::put_u64(body, opts_.session_id);
  netio::put_u32(body, opts_.num_vars);
  const std::string hello = netio::encode_frame(FrameType::Hello, seq_, body);
  if (!io_write_full(fd_.get(), hello.data(), hello.size(), "net.write")) {
    drop_connection();
    return false;
  }
  Frame reply;
  if (!read_frame(reply) || reply.type != FrameType::HelloAck) {
    // An Error reply here (version or universe mismatch) is permanent,
    // but surfacing that is flush()'s job once attempts run out.
    drop_connection();
    return false;
  }
  greeted_ = true;
  return true;
}

bool IngestClient::read_frame(netio::Frame& out) {
  std::vector<char> chunk(64 * 1024);
  for (;;) {
    const netio::DecodeResult r = netio::decode_frame(recv_buf_);
    if (r.status == DecodeStatus::Ok) {
      recv_buf_.erase(0, r.consumed);
      out = r.frame;
      return true;
    }
    if (r.status == DecodeStatus::Corrupt) return false;
    const int ready = io_poll_in(fd_.get(), static_cast<int>(opts_.ack_timeout_ms));
    if (ready <= 0) return false;  // timeout or poll failure
    const ssize_t n = io_read(fd_.get(), chunk.data(), chunk.size(), "net.read");
    if (n <= 0) return false;  // daemon went away mid-reply
    recv_buf_.append(chunk.data(), static_cast<size_t>(n));
  }
}

IngestClient::SendOutcome IngestClient::send_batch(const std::string& payload,
                                                   uint32_t& retry_ms) {
  const std::string wire = netio::encode_frame(FrameType::Batch, seq_, payload);
  if (!io_write_full(fd_.get(), wire.data(), wire.size(), "net.write")) {
    return SendOutcome::Failed;
  }
  Frame reply;
  if (!read_frame(reply)) return SendOutcome::Failed;
  switch (reply.type) {
    case FrameType::Ack:
      return reply.seq == seq_ ? SendOutcome::Acked : SendOutcome::Failed;
    case FrameType::Busy:
      retry_ms = reply.body.size() >= 4 ? netio::get_u32(reply.body.data())
                                        : opts_.backoff_base_ms;
      return SendOutcome::Busy;
    default:
      return SendOutcome::Failed;  // Error frame or protocol confusion
  }
}

void IngestClient::flush() {
  if (pending_events_ == 0) return;
  const std::string payload = netio::encode_trace_delta(pending_);
  const size_t events = pending_events_;
  for (uint32_t attempt = 0; attempt < opts_.max_attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (!ensure_connected()) {
      backoff(attempt);
      continue;
    }
    uint32_t retry_ms = 0;
    switch (send_batch(payload, retry_ms)) {
      case SendOutcome::Acked:
        ++seq_;
        ++stats_.flushes;
        stats_.events_sent += events;
        pending_.clear();
        pending_events_ = 0;
        return;
      case SendOutcome::Busy:
        // The daemon's queue is full; honor its hint (plus jitter) and
        // resend on the same connection. Deliberately cheaper than the
        // failure backoff: the daemon is alive, just behind.
        ++stats_.busy_backoffs;
        sleep_ms(retry_ms + jitter_next() % (retry_ms / 2 + 1));
        break;
      case SendOutcome::Failed:
        // Ambiguous: the batch may or may not have been journaled before
        // the connection died. Resending is safe — the merge is a union.
        drop_connection();
        backoff(attempt);
        break;
    }
  }
  throw ys::IoError("batch not acknowledged after " +
                        std::to_string(opts_.max_attempts) + " attempts",
                    {.source = opts_.socket_path.empty()
                                   ? opts_.tcp_host + ":" + std::to_string(opts_.tcp_port)
                                   : opts_.socket_path});
}

void IngestClient::close() {
  flush();
  if (fd_.valid() && greeted_) {
    const std::string bye = netio::encode_frame(FrameType::Bye, seq_);
    if (io_write_full(fd_.get(), bye.data(), bye.size(), "net.write")) {
      Frame reply;
      (void)read_frame(reply);  // best-effort ByeAck; we are leaving anyway
    }
  }
  drop_connection();
}

}  // namespace yardstick::service
