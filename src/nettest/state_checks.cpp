#include "nettest/state_checks.hpp"

#include <algorithm>

#include "nettest/instrument.hpp"
#include "routing/config.hpp"

namespace yardstick::nettest {

std::optional<net::RuleId> find_rule_for_prefix(const net::Network& network,
                                                net::DeviceId device,
                                                const packet::Ipv4Prefix& prefix) {
  for (const net::RuleId rid : network.table(device)) {
    const net::Rule& rule = network.rule(rid);
    if (rule.match.dst_prefix && *rule.match.dst_prefix == prefix) return rid;
  }
  return std::nullopt;
}

TestResult DefaultRouteCheck::run(const dataplane::Transfer& transfer,
                                  ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  TestResult result = make_result();

  for (const net::Device& dev : network.devices()) {
    if (dev.role == net::Role::Wan || excluded_.contains(dev.id)) continue;
    ++result.checks;

    const auto rid = find_rule_for_prefix(network, dev.id, packet::default_route_prefix());
    if (!rid) {
      result.fail(dev.name + ": no default route");
      continue;
    }
    // The inspection itself is the coverage event, whether or not the
    // assertion below holds.
    mark_inspected_rule(tracker, *rid);

    const net::Rule& rule = network.rule(*rid);
    if (rule.action.type != net::ActionType::Forward) {
      result.fail(dev.name + ": default route does not forward (null route?)");
      continue;
    }
    std::vector<net::InterfaceId> expected;
    for (const auto& [intf, peer] : network.neighbors(dev.id)) {
      if (routing::tier(network.device(peer).role) > routing::tier(dev.role)) {
        expected.push_back(intf);
      }
    }
    std::sort(expected.begin(), expected.end());
    std::vector<net::InterfaceId> actual = rule.action.out_interfaces;
    std::sort(actual.begin(), actual.end());
    if (actual != expected) {
      result.fail(dev.name + ": default route next hops are not the northern neighbors");
    }
  }
  return result;
}

TestResult ConnectedRouteCheck::run(const dataplane::Transfer& transfer,
                                    ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  TestResult result = make_result();

  for (const net::Link& link : network.links()) {
    if (!link.subnet) continue;
    for (const net::InterfaceId side : {link.a, link.b}) {
      const net::Interface& intf = network.interface(side);
      ++result.checks;
      const auto rid = find_rule_for_prefix(network, intf.device, *link.subnet);
      if (!rid) {
        result.fail(network.device(intf.device).name + ": missing connected route for " +
                    link.subnet->to_string());
        continue;
      }
      mark_inspected_rule(tracker, *rid);

      const net::Rule& rule = network.rule(*rid);
      const bool forwards_on_link =
          rule.action.type == net::ActionType::Forward &&
          std::find(rule.action.out_interfaces.begin(), rule.action.out_interfaces.end(),
                    side) != rule.action.out_interfaces.end();
      if (rule.kind != net::RouteKind::Connected || !forwards_on_link) {
        result.fail(network.device(intf.device).name + ": connected route for " +
                    link.subnet->to_string() + " malformed");
      }
    }
  }
  return result;
}

}  // namespace yardstick::nettest
