// Coverage instrumentation call sites.
//
// The paper reports that integrating the production testing tool with
// Yardstick took seven one-line API calls (§6). These helpers are this
// codebase's equivalent: each test type funnels its reporting through
// exactly one of them, and each helper body is a single tracker call.
// Everything a helper needs (the rule id, the located packet set) is
// information the test already has; translating it into covered sets is
// Yardstick's job in the offline phase.
#pragma once

#include "dataplane/simulator.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::nettest {

/// State-inspection tests: report the rule just inspected.
inline void mark_inspected_rule(ys::CoverageTracker& tracker, net::RuleId rule) {
  tracker.mark_rule(rule);
}

/// Local behavioral tests: report the packet set injected at a device.
inline void mark_local_injection(ys::CoverageTracker& tracker, net::DeviceId device,
                                 const packet::PacketSet& packets) {
  tracker.mark_packet(net::device_location(device), packets);
}

/// End-to-end concrete tests: report one hop of a concrete trace.
inline void mark_concrete_hop(ys::CoverageTracker& tracker, bdd::BddManager& mgr,
                              const dataplane::ConcreteHop& hop) {
  tracker.mark_packet(hop.in_interface.valid() ? net::to_location(hop.in_interface)
                                               : net::device_location(hop.device),
                      packet::PacketSet::from_packet(mgr, hop.packet));
}

/// End-to-end symbolic tests: adapt the tracker into the symbolic
/// simulator's per-hop visitor (§5.1: a separate markPacket call per hop
/// with the packet set at that hop).
inline dataplane::SymbolicSimulator::HopVisitor symbolic_hop_marker(
    ys::CoverageTracker& tracker) {
  return [&tracker](net::DeviceId device, net::InterfaceId in_interface,
                    const packet::PacketSet& arriving) {
    tracker.mark_packet(in_interface.valid() ? net::to_location(in_interface)
                                             : net::device_location(device),
                        arriving);
  };
}

}  // namespace yardstick::nettest
