// End-to-end behavioral tests (Figure 2, right column).
//
//   * ToRReachability (§8.1) — end-to-end symbolic: every packet that
//     originates at a ToR destined to another ToR's hosted prefix reaches
//     the correct ToR.
//   * ToRPingmesh (§8.1, after Pingmesh [14]) — end-to-end concrete: the
//     same invariant probed with one sampled address per ToR pair.
//   * ReachabilityTest — the generic building block: a list of symbolic
//     queries (inject headers at a source, assert on where they are
//     delivered). The §2 motivating tests (leaf-to-leaf, leaf-to-WAN,
//     border-to-leaf) are instances.
//   * Ping / Traceroute — concrete single-probe utilities.
//
// Symbolic tests report the packet set at every hop through the simulator
// visitor; concrete tests report one singleton set per hop (§5.1).
#pragma once

#include <optional>

#include "dataplane/simulator.hpp"
#include "nettest/test.hpp"

namespace yardstick::nettest {

/// Source-ToR sharding for the end-to-end suites: shard `s` of `n` checks
/// only the sources with index ≡ s (mod n). Production pingmesh suites are
/// sliced exactly this way so runs parallelize and a failure localizes to a
/// slice; the union of all n shards checks (and covers) the same pairs as
/// the unsharded test.
struct TestShard {
  size_t shard = 0;
  size_t of = 1;

  [[nodiscard]] bool contains(size_t source_index) const {
    return source_index % of == shard;
  }
  /// "" for the trivial shard, "[s/n]" otherwise — keeps sharded test
  /// names distinct (suite analysis and minimization key rows by name).
  [[nodiscard]] std::string suffix() const {
    if (of <= 1) return "";
    return "[" + std::to_string(shard) + "/" + std::to_string(of) + "]";
  }
};

class ToRReachability final : public NetworkTest {
 public:
  ToRReachability() = default;

  /// @param policy_exempt headers the security policy is allowed to drop
  ///        (e.g. blocked ports); they are exempt from the reachability
  ///        requirement but still injected — exercising the ACL rules
  ///        that deny them is part of the test's coverage.
  explicit ToRReachability(packet::PacketSet policy_exempt)
      : policy_exempt_(std::move(policy_exempt)) {}

  /// Shard-sliced variant: only sources in `shard` are flooded.
  explicit ToRReachability(TestShard shard) : shard_(shard) {}

  [[nodiscard]] std::string name() const override {
    return "ToRReachability" + shard_.suffix();
  }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::EndToEndSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;

 private:
  packet::PacketSet policy_exempt_;  // invalid handle = nothing exempt
  TestShard shard_;
};

class ToRPingmesh final : public NetworkTest {
 public:
  ToRPingmesh() = default;
  /// Shard-sliced variant: only sources in `shard` send probes.
  explicit ToRPingmesh(TestShard shard) : shard_(shard) {}

  [[nodiscard]] std::string name() const override {
    return "ToRPingmesh" + shard_.suffix();
  }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::EndToEndConcrete;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;

 private:
  TestShard shard_;
};

/// One symbolic end-to-end query: inject `headers` at a source location
/// and assert on the delivered set.
struct ReachabilityQuery {
  net::DeviceId source;
  /// Ingress interface at the source (invalid = local injection).
  net::InterfaceId source_interface;
  packet::PacketSet headers;
  /// If set: headers that must be delivered at `expected_egress`
  /// (equality). If unset: all injected headers must be delivered
  /// somewhere (no drops).
  std::optional<net::InterfaceId> expected_egress;
  packet::PacketSet expected_delivered;  // used with expected_egress
};

class ReachabilityTest final : public NetworkTest {
 public:
  ReachabilityTest(std::string name, std::vector<ReachabilityQuery> queries)
      : name_(std::move(name)), queries_(std::move(queries)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::EndToEndSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;

 private:
  std::string name_;
  std::vector<ReachabilityQuery> queries_;
};

/// Concrete probe: does `pkt` injected at `source` get delivered? Marks
/// every hop on the tracker and returns the trace (ping/traceroute are the
/// same mechanism; traceroute additionally inspects the hop list).
[[nodiscard]] dataplane::ConcreteTrace probe(const dataplane::Transfer& transfer,
                                             ys::CoverageTracker& tracker,
                                             net::DeviceId source,
                                             net::InterfaceId source_interface,
                                             const packet::ConcretePacket& pkt);

}  // namespace yardstick::nettest
