#include "nettest/contract_checks.hpp"

#include <algorithm>
#include <functional>

#include "nettest/instrument.hpp"
#include "nettest/shortest_paths.hpp"
#include "nettest/state_checks.hpp"

namespace yardstick::nettest {

namespace {

using DeviceScope = std::function<bool(const net::Device&)>;
using PrefixesOf = std::function<std::vector<packet::Ipv4Prefix>(const net::Device&)>;

/// Shared contract engine: for every (origin, prefix) pair, verify each
/// in-scope device's FIB entry against the BFS shortest-path contract and
/// report the injected packet set.
void run_contracts(const dataplane::Transfer& transfer, ys::CoverageTracker& tracker,
                   TestResult& result, const PrefixesOf& prefixes_of,
                   const DeviceScope& in_scope) {
  const net::Network& network = transfer.network();
  bdd::BddManager& mgr = transfer.index().manager();

  for (const net::Device& origin : network.devices()) {
    const std::vector<packet::Ipv4Prefix> prefixes = prefixes_of(origin);
    if (prefixes.empty()) continue;
    const std::vector<int> dist = fabric_distances(network, origin.id);

    for (const packet::Ipv4Prefix& prefix : prefixes) {
      const packet::PacketSet injected = packet::PacketSet::dst_prefix(mgr, prefix);

      for (const net::Device& dev : network.devices()) {
        if (!in_scope(dev)) continue;
        // Contracts exist only for devices d >= 1 hops from the origin
        // (§7.3: "if the device v' is d hops away from v, it should
        // forward {pv} to all its neighbors with distance d-1"). The
        // originator's own delivery rule is out of scope — which is why
        // host-facing interfaces stay untested until a dedicated test
        // exists (Fig. 6d).
        if (dist[dev.id.value] <= 0) continue;
        ++result.checks;

        const auto rid = find_rule_for_prefix(network, dev.id, prefix);
        if (!rid) {
          result.fail(dev.name + ": no route for internal prefix " + prefix.to_string());
          continue;
        }
        // The contract evaluation injects `injected` at the device — the
        // coverage event — then asserts on the forwarding decision.
        mark_local_injection(tracker, dev.id, injected);

        const net::Rule& rule = network.rule(*rid);
        if (rule.action.type != net::ActionType::Forward) {
          result.fail(dev.name + ": internal prefix " + prefix.to_string() + " dropped");
          continue;
        }
        std::vector<net::InterfaceId> actual = rule.action.out_interfaces;
        std::sort(actual.begin(), actual.end());

        const std::vector<net::InterfaceId> expected =
            contract_next_hops(network, dist, dev.id);
        if (actual != expected) {
          result.fail(dev.name + ": prefix " + prefix.to_string() +
                      " not forwarded along all shortest paths");
        }
      }
    }
  }
}

std::vector<packet::Ipv4Prefix> internal_prefixes(const net::Device& dev) {
  std::vector<packet::Ipv4Prefix> out = dev.host_prefixes;
  out.insert(out.end(), dev.loopbacks.begin(), dev.loopbacks.end());
  return out;
}

}  // namespace

TestResult InternalRouteCheck::run(const dataplane::Transfer& transfer,
                                   ys::CoverageTracker& tracker) const {
  TestResult result = make_result();
  run_contracts(transfer, tracker, result, internal_prefixes,
                [](const net::Device&) { return true; });
  return result;
}

TestResult ToRContract::run(const dataplane::Transfer& transfer,
                            ys::CoverageTracker& tracker) const {
  TestResult result = make_result();
  run_contracts(
      transfer, tracker, result,
      [](const net::Device& dev) {
        return dev.role == net::Role::ToR ? dev.host_prefixes
                                          : std::vector<packet::Ipv4Prefix>{};
      },
      [](const net::Device&) { return true; });
  return result;
}

TestResult AggCanReachTorLoopback::run(const dataplane::Transfer& transfer,
                                       ys::CoverageTracker& tracker) const {
  TestResult result = make_result();
  run_contracts(
      transfer, tracker, result,
      [](const net::Device& dev) {
        return dev.role == net::Role::ToR ? dev.loopbacks
                                          : std::vector<packet::Ipv4Prefix>{};
      },
      [](const net::Device& dev) { return dev.role == net::Role::Aggregation; });
  return result;
}

}  // namespace yardstick::nettest
