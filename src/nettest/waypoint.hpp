// Waypoint (firewall-traversal) tests — the remaining Figure 2 rows:
//   concrete:  "Traceroute between two endpoints must traverse the firewall"
//   symbolic:  "All packets between two endpoints must traverse a firewall"
#pragma once

#include "nettest/test.hpp"

namespace yardstick::nettest {

/// One waypoint obligation: packets in `headers` injected at `source`
/// must pass through `waypoint` before leaving the network.
struct WaypointQuery {
  net::DeviceId source;
  net::InterfaceId source_interface;  // invalid = local injection
  packet::PacketSet headers;
  net::DeviceId waypoint;
};

/// Symbolic: floods each query and verifies that every delivered packet
/// was observed arriving at the waypoint. (Exact for forwarding without
/// header rewrites; rewritten packets are conservatively flagged.)
class WaypointCheck final : public NetworkTest {
 public:
  WaypointCheck(std::string name, std::vector<WaypointQuery> queries)
      : name_(std::move(name)), queries_(std::move(queries)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::EndToEndSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;

 private:
  std::string name_;
  std::vector<WaypointQuery> queries_;
};

/// Concrete: traceroutes one sampled packet per query and asserts the
/// waypoint device appears on the hop list.
class TracerouteWaypointCheck final : public NetworkTest {
 public:
  TracerouteWaypointCheck(std::string name, std::vector<WaypointQuery> queries)
      : name_(std::move(name)), queries_(std::move(queries)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::EndToEndConcrete;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;

 private:
  std::string name_;
  std::vector<WaypointQuery> queries_;
};

}  // namespace yardstick::nettest
