// ACL tests (Figure 2 rows: "The access control list A1 on router R1 must
// have an entry that blocks packets to port 23" and "Router R1 must drop
// all packets to port 23").
//
//   * AclBlockCheck — state inspection: every device with an ingress ACL
//     must carry a deny entry for each listed TCP port. Reports markRule.
//   * BlockedPortCheck — local symbolic: inject all TCP packets to the
//     listed ports at each ACL-bearing device and verify the ACL denies
//     every one of them. Reports markPacket at the device.
#pragma once

#include <cstdint>
#include <vector>

#include "nettest/test.hpp"

namespace yardstick::nettest {

class AclBlockCheck final : public NetworkTest {
 public:
  explicit AclBlockCheck(std::vector<uint16_t> blocked_tcp_ports = {23})
      : ports_(std::move(blocked_tcp_ports)) {}

  [[nodiscard]] std::string name() const override { return "AclBlockCheck"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::StateInspection;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;

 private:
  std::vector<uint16_t> ports_;
};

class BlockedPortCheck final : public NetworkTest {
 public:
  explicit BlockedPortCheck(std::vector<uint16_t> blocked_tcp_ports = {23})
      : ports_(std::move(blocked_tcp_ports)) {}

  [[nodiscard]] std::string name() const override { return "BlockedPortCheck"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::LocalSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;

 private:
  std::vector<uint16_t> ports_;
};

}  // namespace yardstick::nettest
