#include "nettest/acl_checks.hpp"

#include "nettest/instrument.hpp"

namespace yardstick::nettest {

using packet::Field;
using packet::PacketSet;

TestResult AclBlockCheck::run(const dataplane::Transfer& transfer,
                              ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  TestResult result = make_result();

  for (const net::Device& dev : network.devices()) {
    if (!network.has_acl(dev.id)) continue;
    for (const uint16_t port : ports_) {
      ++result.checks;
      bool found = false;
      for (const net::RuleId rid : network.table(dev.id, net::TableKind::Acl)) {
        const net::Rule& rule = network.rule(rid);
        const bool denies_port =
            rule.action.type == net::ActionType::Drop && rule.match.dst_port &&
            rule.match.dst_port->lo <= port && port <= rule.match.dst_port->hi;
        if (!denies_port) continue;
        mark_inspected_rule(tracker, rid);
        found = true;
        break;
      }
      if (!found) {
        result.fail(dev.name + ": ACL has no deny entry for port " + std::to_string(port));
      }
    }
  }
  return result;
}

TestResult BlockedPortCheck::run(const dataplane::Transfer& transfer,
                                 ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  bdd::BddManager& mgr = transfer.index().manager();
  TestResult result = make_result();

  PacketSet probe = PacketSet::none(mgr);
  for (const uint16_t port : ports_) {
    probe = probe.union_with(PacketSet::field_equals(mgr, Field::DstPort, port));
  }
  probe = probe.intersect(PacketSet::field_equals(mgr, Field::Proto, 6));

  for (const net::Device& dev : network.devices()) {
    if (!network.has_acl(dev.id)) continue;
    ++result.checks;
    mark_local_injection(tracker, dev.id, probe);
    const dataplane::DeviceStage stage =
        transfer.process(dev.id, net::InterfaceId{}, probe);
    if (!stage.permitted.empty()) {
      result.fail(dev.name + ": ACL permits packets to a blocked port");
    }
  }
  return result;
}

}  // namespace yardstick::nettest
