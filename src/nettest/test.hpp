// Network test framework — the "testing tool" side of Yardstick.
//
// Mirrors the taxonomy of Figure 2: tests either inspect forwarding state
// directly or analyze behavior; behavioral tests are local or end-to-end,
// concrete or symbolic. Every test reports coverage through the two
// tracker calls (markPacket / markRule) using information it already has
// (§5.1) — see instrument.hpp for the call sites.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataplane/transfer.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::nettest {

/// Where a test sits in the Figure 2 taxonomy.
enum class TestCategory : uint8_t {
  StateInspection,
  LocalConcrete,
  LocalSymbolic,
  EndToEndConcrete,
  EndToEndSymbolic,
};

[[nodiscard]] inline const char* to_string(TestCategory c) {
  switch (c) {
    case TestCategory::StateInspection: return "state-inspection";
    case TestCategory::LocalConcrete: return "local-concrete";
    case TestCategory::LocalSymbolic: return "local-symbolic";
    case TestCategory::EndToEndConcrete: return "end-to-end-concrete";
    case TestCategory::EndToEndSymbolic: return "end-to-end-symbolic";
  }
  return "?";
}

struct TestResult {
  std::string name;
  TestCategory category = TestCategory::StateInspection;
  size_t checks = 0;
  size_t failures = 0;
  /// First few failure descriptions (capped to keep results readable).
  std::vector<std::string> failure_messages;

  [[nodiscard]] bool passed() const { return failures == 0; }

  static constexpr size_t kMaxMessages = 16;
  void fail(std::string message) {
    ++failures;
    if (failure_messages.size() < kMaxMessages) {
      failure_messages.push_back(std::move(message));
    }
  }
};

/// Base class for all network tests. Tests are pure functions of the
/// forwarding-state snapshot; the tracker records what they exercised.
class NetworkTest {
 public:
  virtual ~NetworkTest() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual TestCategory category() const = 0;
  [[nodiscard]] virtual TestResult run(const dataplane::Transfer& transfer,
                                       ys::CoverageTracker& tracker) const = 0;

 protected:
  [[nodiscard]] TestResult make_result() const {
    TestResult r;
    r.name = name();
    r.category = category();
    return r;
  }
};

/// An ordered collection of tests run against one snapshot.
class TestSuite {
 public:
  TestSuite() = default;
  explicit TestSuite(std::string name) : name_(std::move(name)) {}

  TestSuite& add(std::unique_ptr<NetworkTest> test) {
    tests_.push_back(std::move(test));
    return *this;
  }

  [[nodiscard]] std::vector<TestResult> run_all(const dataplane::Transfer& transfer,
                                                ys::CoverageTracker& tracker) const {
    std::vector<TestResult> results;
    results.reserve(tests_.size());
    for (const auto& test : tests_) results.push_back(test->run(transfer, tracker));
    return results;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t size() const { return tests_.size(); }
  /// Access an individual test (for per-test contribution analysis).
  [[nodiscard]] const NetworkTest& test(size_t i) const { return *tests_[i]; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<NetworkTest>> tests_;
};

}  // namespace yardstick::nettest
