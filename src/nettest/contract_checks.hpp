// Local symbolic tests (Figure 2): shortest-path forwarding contracts in
// the style of RCDC [19] — an end-to-end invariant decomposed into one
// local contract per device.
//
//   * InternalRouteCheck (§7.3): every prefix originated inside the region
//     (host subnets, loopbacks) is forwarded through and only through the
//     full set of topological shortest paths, on every router.
//   * ToRContract (§8.1): the same decomposition restricted to ToR hosted
//     prefixes (the local-symbolic counterpart of ToRReachability).
//   * AggCanReachTorLoopback (§7.2): aggregation routers correctly forward
//     packets for ToR loopbacks (the original production test).
//
// Each verified contract injects the prefix's packet set at the device,
// reported via one markPacket call (§5.1, local behavioral tests).
#pragma once

#include "nettest/test.hpp"

namespace yardstick::nettest {

class InternalRouteCheck final : public NetworkTest {
 public:
  [[nodiscard]] std::string name() const override { return "InternalRouteCheck"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::LocalSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;
};

class ToRContract final : public NetworkTest {
 public:
  [[nodiscard]] std::string name() const override { return "ToRContract"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::LocalSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;
};

class AggCanReachTorLoopback final : public NetworkTest {
 public:
  [[nodiscard]] std::string name() const override { return "AggCanReachTorLoopback"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::LocalSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;
};

}  // namespace yardstick::nettest
