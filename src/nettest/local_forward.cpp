#include "nettest/local_forward.hpp"

#include <algorithm>

#include "nettest/instrument.hpp"
#include "nettest/shortest_paths.hpp"

namespace yardstick::nettest {

using packet::ConcretePacket;
using packet::PacketSet;

TestResult LocalForwardCheck::run(const dataplane::Transfer& transfer,
                                  ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  bdd::BddManager& mgr = transfer.index().manager();
  TestResult result = make_result();

  for (const net::Device& origin : network.devices()) {
    if (origin.host_prefixes.empty()) continue;
    const std::vector<int> dist = fabric_distances(network, origin.id);

    for (const packet::Ipv4Prefix& prefix : origin.host_prefixes) {
      // One sampled packet into the prefix per contract (local concrete).
      ConcretePacket pkt;
      pkt.dst_ip = prefix.first() + 1;
      pkt.proto = 6;
      pkt.dst_port = 443;

      for (const net::Device& dev : network.devices()) {
        if (dist[dev.id.value] <= 0) continue;  // no contract at the origin
        ++result.checks;
        // Report the single concrete packet injected at this device.
        tracker.mark_packet(net::device_location(dev.id),
                            PacketSet::from_packet(mgr, pkt));

        const net::RuleId rid = transfer.lookup(dev.id, net::InterfaceId{}, pkt);
        if (!rid.valid()) {
          result.fail(dev.name + ": no route for sampled packet to " + prefix.to_string());
          continue;
        }
        const net::Rule& rule = network.rule(rid);
        if (rule.action.type != net::ActionType::Forward) {
          result.fail(dev.name + ": sampled packet to " + prefix.to_string() + " dropped");
          continue;
        }
        // Each egress must face a neighbor one hop closer to the origin.
        const std::vector<net::InterfaceId> expected =
            contract_next_hops(network, dist, dev.id);
        for (const net::InterfaceId out : rule.action.out_interfaces) {
          if (std::find(expected.begin(), expected.end(), out) == expected.end()) {
            result.fail(dev.name + ": packet to " + prefix.to_string() +
                        " forwarded off the shortest paths");
            break;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace yardstick::nettest
