// Local concrete test (the remaining Figure 2 cell): "Router R1 must
// forward a given packet with dest. D via neighbor N1".
//
// LocalForwardCheck samples one concrete packet per (device, hosted
// prefix) contract and verifies the single-device forwarding decision
// against the shortest-path next hops — the concrete counterpart of
// ToRContract, useful where symbolic analysis of a device model is
// unavailable and only a lookup API exists.
#pragma once

#include "nettest/test.hpp"

namespace yardstick::nettest {

class LocalForwardCheck final : public NetworkTest {
 public:
  [[nodiscard]] std::string name() const override { return "LocalForwardCheck"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::LocalConcrete;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;
};

}  // namespace yardstick::nettest
