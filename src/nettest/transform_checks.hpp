// Behavioral checks for transforming rules (tunnels, NAT).
//
// Both checks discover their targets by scanning the installed tables for
// RouteKind::Tunnel / RouteKind::Nat rules, so they stay decoupled from the
// topology generator and automatically shrink (or go dark) when a failure
// scenario removes devices or cuts the fabric paths the tunnels ride on —
// exactly the signal the coverage-under-failure report diffs.
#pragma once

#include "nettest/test.hpp"

namespace yardstick::nettest {

/// End-to-end symbolic: for every encap/decap pair (an encap rule rewrites
/// the destination to the address another tunnel rule matches), flood the
/// VIP headers from the ingress device and require the full set to be
/// delivered at the egress device's host port with the inner destination
/// restored.
class TunnelRoundTripCheck : public NetworkTest {
 public:
  [[nodiscard]] std::string name() const override { return "tunnel-round-trip"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::EndToEndSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;
};

/// End-to-end symbolic: for every NAT rule, flood its match headers at the
/// owning device and require everything delivered out the external ports to
/// carry the translated source — and nothing to escape untranslated.
class NatTranslationCheck : public NetworkTest {
 public:
  [[nodiscard]] std::string name() const override { return "nat-translation"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::EndToEndSymbolic;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;
};

}  // namespace yardstick::nettest
