#include "nettest/waypoint.hpp"

#include "dataplane/simulator.hpp"
#include "nettest/instrument.hpp"
#include "nettest/reachability.hpp"

namespace yardstick::nettest {

using packet::PacketSet;

TestResult WaypointCheck::run(const dataplane::Transfer& transfer,
                              ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  bdd::BddManager& mgr = transfer.index().manager();
  TestResult result = make_result();
  const dataplane::SymbolicSimulator sim(transfer);

  for (const WaypointQuery& q : queries_) {
    ++result.checks;
    // Collect headers observed at the waypoint while marking coverage for
    // every hop — one visitor serves both purposes.
    PacketSet at_waypoint = PacketSet::none(mgr);
    const auto marker = symbolic_hop_marker(tracker);
    const dataplane::SymbolicResult outcome = sim.flood(
        q.source, q.source_interface, q.headers, 64,
        [&](net::DeviceId device, net::InterfaceId in_interface,
            const PacketSet& arriving) {
          marker(device, in_interface, arriving);
          if (device == q.waypoint) at_waypoint = at_waypoint.union_with(arriving);
        });

    PacketSet delivered = PacketSet::none(mgr);
    for (const auto& [loc, ps] : outcome.delivered.entries()) {
      delivered = delivered.union_with(ps);
    }
    if (!delivered.minus(at_waypoint).empty()) {
      result.fail(name_ + ": packets from " + network.device(q.source).name +
                  " reach their destination without traversing " +
                  network.device(q.waypoint).name);
    }
  }
  return result;
}

TestResult TracerouteWaypointCheck::run(const dataplane::Transfer& transfer,
                                        ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  TestResult result = make_result();

  for (const WaypointQuery& q : queries_) {
    if (q.headers.empty()) continue;
    ++result.checks;
    const dataplane::ConcreteTrace trace =
        probe(transfer, tracker, q.source, q.source_interface, q.headers.sample());
    bool traversed = false;
    for (const dataplane::ConcreteHop& hop : trace.hops) {
      if (hop.device == q.waypoint) traversed = true;
    }
    if (trace.disposition != dataplane::Disposition::Delivered) {
      result.fail(name_ + ": traceroute " + to_string(trace.disposition));
    } else if (!traversed) {
      result.fail(name_ + ": traceroute bypassed " + network.device(q.waypoint).name);
    }
  }
  return result;
}

}  // namespace yardstick::nettest
