#include "nettest/shortest_paths.hpp"

#include <algorithm>
#include <deque>

namespace yardstick::nettest {

std::vector<int> fabric_distances(const net::Network& network, net::DeviceId origin) {
  std::vector<int> dist(network.device_count(), kUnreachable);
  dist[origin.value] = 0;
  std::deque<net::DeviceId> queue{origin};
  while (!queue.empty()) {
    const net::DeviceId v = queue.front();
    queue.pop_front();
    for (const auto& [intf, peer] : network.neighbors(v)) {
      if (dist[peer.value] == kUnreachable) {
        dist[peer.value] = dist[v.value] + 1;
        queue.push_back(peer);
      }
    }
  }
  return dist;
}

std::vector<net::InterfaceId> contract_next_hops(const net::Network& network,
                                                 const std::vector<int>& distances,
                                                 net::DeviceId device) {
  std::vector<net::InterfaceId> out;
  const int d = distances[device.value];
  if (d <= 0) return out;
  for (const auto& [intf, peer] : network.neighbors(device)) {
    if (distances[peer.value] == d - 1) out.push_back(intf);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace yardstick::nettest
