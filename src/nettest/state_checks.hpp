// State-inspection tests (Figure 2, top row).
//
//   * DefaultRouteCheck — the RCDC-derived contract of §7.2: every router
//     (minus explicit exclusions) must carry a default route whose next
//     hops are exactly its northern (higher-tier) neighbors.
//   * ConnectedRouteCheck — the §7.3 test born from Yardstick's gap
//     analysis: both ends of every /31 link must carry the connected
//     route for the link subnet out of the right interface.
//
// Both report coverage with markRule only: inspecting a rule covers its
// entire match set (§5.1).
#pragma once

#include <optional>
#include <unordered_set>

#include "nettest/test.hpp"

namespace yardstick::nettest {

/// Find a device's rule whose match field is exactly `prefix` (any kind).
[[nodiscard]] std::optional<net::RuleId> find_rule_for_prefix(
    const net::Network& network, net::DeviceId device, const packet::Ipv4Prefix& prefix);

class DefaultRouteCheck final : public NetworkTest {
 public:
  /// @param excluded devices not expected to carry a default route (§7.2:
  ///        some regional hubs hold full tables instead). WAN routers are
  ///        always excluded — they originate the default.
  explicit DefaultRouteCheck(std::unordered_set<net::DeviceId> excluded = {})
      : excluded_(std::move(excluded)) {}

  [[nodiscard]] std::string name() const override { return "DefaultRouteCheck"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::StateInspection;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;

 private:
  std::unordered_set<net::DeviceId> excluded_;
};

class ConnectedRouteCheck final : public NetworkTest {
 public:
  [[nodiscard]] std::string name() const override { return "ConnectedRouteCheck"; }
  [[nodiscard]] TestCategory category() const override {
    return TestCategory::StateInspection;
  }
  [[nodiscard]] TestResult run(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker) const override;
};

}  // namespace yardstick::nettest
