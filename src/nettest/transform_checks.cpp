#include "nettest/transform_checks.hpp"

#include <map>
#include <optional>

#include "dataplane/simulator.hpp"
#include "nettest/instrument.hpp"

namespace yardstick::nettest {

using dataplane::SymbolicSimulator;
using packet::PacketSet;

namespace {

/// The DstIp rewrite a rule applies, if any.
std::optional<uint64_t> dst_rewrite(const net::Rule& rule) {
  for (const net::Rewrite& rw : rule.action.rewrites) {
    if (rw.field == packet::Field::DstIp) return rw.value;
  }
  return std::nullopt;
}

/// Headers the device's ingress ACL lets through: the union of the Permit
/// entries' disjoint match sets, with the destination projected out (the
/// tunnel rewrites dst between the two ACL stages; port/proto policy is
/// what actually clips the flow). Everything if the device has no ACL.
PacketSet acl_permitted(const dataplane::Transfer& transfer, net::DeviceId device) {
  const net::Network& network = transfer.network();
  bdd::BddManager& mgr = transfer.index().manager();
  if (!network.has_acl(device)) return PacketSet::all(mgr);
  PacketSet permitted = PacketSet::none(mgr);
  for (const net::RuleId rid : network.table(device, net::TableKind::Acl)) {
    if (network.rule(rid).action.type == net::ActionType::Permit) {
      permitted = permitted.union_with(transfer.index().match_set(rid));
    }
  }
  return permitted.forget_field(packet::Field::DstIp);
}

}  // namespace

TestResult TunnelRoundTripCheck::run(const dataplane::Transfer& transfer,
                                     ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  bdd::BddManager& mgr = transfer.index().manager();
  TestResult result = make_result();
  const SymbolicSimulator sim(transfer);

  // Index tunnel rules by the /32 address they match; an encap rule is one
  // whose DstIp rewrite lands on another tunnel rule's match (the decap).
  std::map<uint32_t, const net::Rule*> by_match;
  for (const net::Rule& rule : network.rules()) {
    if (rule.kind != net::RouteKind::Tunnel) continue;
    if (rule.match.dst_prefix && rule.match.dst_prefix->length() == 32) {
      by_match.emplace(rule.match.dst_prefix->address(), &rule);
    }
  }

  for (const auto& [vip, encap] : by_match) {
    const std::optional<uint64_t> endpoint = dst_rewrite(*encap);
    if (!endpoint) continue;
    const auto decap_it = by_match.find(static_cast<uint32_t>(*endpoint));
    if (decap_it == by_match.end() || decap_it->second->device == encap->device) {
      continue;  // not an encap (this is a decap, or a degenerate pair)
    }
    const net::Rule& decap = *decap_it->second;
    const std::optional<uint64_t> inner = dst_rewrite(decap);
    if (!inner) continue;
    ++result.checks;

    // Inject the VIP headers the way a rack host would emit them.
    const std::vector<net::InterfaceId> ingress_ports =
        network.ports_of_kind(encap->device, net::PortKind::HostPort);
    const net::InterfaceId ingress =
        ingress_ports.empty() ? net::InterfaceId{} : ingress_ports[0];
    const PacketSet headers = PacketSet::dst_prefix(mgr, *encap->match.dst_prefix);

    const dataplane::SymbolicResult outcome =
        sim.flood(encap->device, ingress, headers, 64, symbolic_hop_marker(tracker));

    PacketSet delivered = PacketSet::none(mgr);
    for (const net::InterfaceId port :
         network.ports_of_kind(decap.device, net::PortKind::HostPort)) {
      const PacketSet at = outcome.delivered.at(net::to_location(port));
      if (at.valid()) delivered = delivered.union_with(at);
    }
    // Security policy at the ingress/egress ACL stages legitimately clips
    // the flow; forwarding must deliver everything the ACLs let through.
    const PacketSet expected =
        PacketSet::field_equals(mgr, packet::Field::DstIp, *inner)
            .intersect(acl_permitted(transfer, encap->device))
            .intersect(acl_permitted(transfer, decap.device));
    if (!delivered.equal(expected)) {
      result.fail(network.device(encap->device).name + " -> " +
                  network.device(decap.device).name + ": tunnel " +
                  encap->match.dst_prefix->to_string() +
                  " not fully delivered with inner destination restored");
    }
  }
  return result;
}

TestResult NatTranslationCheck::run(const dataplane::Transfer& transfer,
                                    ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  bdd::BddManager& mgr = transfer.index().manager();
  TestResult result = make_result();
  const SymbolicSimulator sim(transfer);

  for (const net::Rule& rule : network.rules()) {
    if (rule.kind != net::RouteKind::Nat) continue;
    std::optional<uint64_t> translated;
    for (const net::Rewrite& rw : rule.action.rewrites) {
      if (rw.field == packet::Field::SrcIp) translated = rw.value;
    }
    if (!translated || !rule.match.dst_prefix) continue;
    ++result.checks;

    PacketSet headers = PacketSet::dst_prefix(mgr, *rule.match.dst_prefix);
    if (rule.match.src_prefix) {
      headers = headers.intersect(PacketSet::src_prefix(mgr, *rule.match.src_prefix));
    }
    const dataplane::SymbolicResult outcome =
        sim.flood(rule.device, net::InterfaceId{}, headers, 64,
                  symbolic_hop_marker(tracker));

    PacketSet delivered = PacketSet::none(mgr);
    for (const net::InterfaceId port :
         network.ports_of_kind(rule.device, net::PortKind::ExternalPort)) {
      const PacketSet at = outcome.delivered.at(net::to_location(port));
      if (at.valid()) delivered = delivered.union_with(at);
    }
    const PacketSet translated_src =
        PacketSet::field_equals(mgr, packet::Field::SrcIp, *translated);
    if (delivered.empty()) {
      result.fail(network.device(rule.device).name + ": NAT match " +
                  rule.match.to_string() + " delivered nothing externally");
    } else if (!delivered.minus(translated_src).empty()) {
      result.fail(network.device(rule.device).name + ": headers escaped " +
                  rule.match.to_string() + " without source translation");
    }
  }
  return result;
}

}  // namespace yardstick::nettest
