#include "nettest/reachability.hpp"

#include "nettest/instrument.hpp"

namespace yardstick::nettest {

using dataplane::SymbolicSimulator;
using packet::PacketSet;

TestResult ToRReachability::run(const dataplane::Transfer& transfer,
                                ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  bdd::BddManager& mgr = transfer.index().manager();
  TestResult result = make_result();
  const SymbolicSimulator sim(transfer);

  const std::vector<net::DeviceId> tors = network.devices_with_role(net::Role::ToR);

  // Pre-build each ToR's expected destination set.
  std::vector<PacketSet> hosted(tors.size(), PacketSet::none(mgr));
  for (size_t i = 0; i < tors.size(); ++i) {
    for (const packet::Ipv4Prefix& p : network.device(tors[i]).host_prefixes) {
      hosted[i] = hosted[i].union_with(PacketSet::dst_prefix(mgr, p));
    }
  }

  for (size_t src = 0; src < tors.size(); ++src) {
    if (!shard_.contains(src)) continue;
    // All packets originating at this ToR destined to any other ToR.
    PacketSet headers = PacketSet::none(mgr);
    for (size_t dst = 0; dst < tors.size(); ++dst) {
      if (dst != src) headers = headers.union_with(hosted[dst]);
    }
    const std::vector<net::InterfaceId> src_ports =
        network.ports_of_kind(tors[src], net::PortKind::HostPort);
    const net::InterfaceId ingress = src_ports.empty() ? net::InterfaceId{} : src_ports[0];

    const dataplane::SymbolicResult outcome =
        sim.flood(tors[src], ingress, headers, 64, symbolic_hop_marker(tracker));

    for (size_t dst = 0; dst < tors.size(); ++dst) {
      if (dst == src) continue;
      ++result.checks;
      PacketSet delivered = PacketSet::none(mgr);
      for (const net::InterfaceId port :
           network.ports_of_kind(tors[dst], net::PortKind::HostPort)) {
        const PacketSet at = outcome.delivered.at(net::to_location(port));
        if (at.valid()) delivered = delivered.union_with(at);
      }
      PacketSet expected = hosted[dst];
      if (policy_exempt_.valid()) {
        expected = expected.minus(policy_exempt_);
        delivered = delivered.minus(policy_exempt_);
      }
      if (!delivered.equal(expected)) {
        result.fail(network.device(tors[src]).name + " -> " +
                    network.device(tors[dst]).name +
                    ": hosted prefix not fully delivered");
      }
    }
  }
  return result;
}

TestResult ToRPingmesh::run(const dataplane::Transfer& transfer,
                            ys::CoverageTracker& tracker) const {
  const net::Network& network = transfer.network();
  TestResult result = make_result();

  const std::vector<net::DeviceId> tors = network.devices_with_role(net::Role::ToR);

  for (size_t src_index = 0; src_index < tors.size(); ++src_index) {
    if (!shard_.contains(src_index)) continue;
    const net::DeviceId src = tors[src_index];
    const std::vector<net::InterfaceId> src_ports =
        network.ports_of_kind(src, net::PortKind::HostPort);
    const net::InterfaceId ingress = src_ports.empty() ? net::InterfaceId{} : src_ports[0];
    const net::Device& src_dev = network.device(src);

    for (const net::DeviceId dst : tors) {
      if (dst == src) continue;
      const net::Device& dst_dev = network.device(dst);
      if (dst_dev.host_prefixes.empty()) continue;
      ++result.checks;

      // Sample one address from the destination prefix (§8.1), with a
      // plausible source address and 5-tuple.
      packet::ConcretePacket pkt;
      pkt.dst_ip = dst_dev.host_prefixes.front().first() + 1;
      pkt.src_ip = src_dev.host_prefixes.empty()
                       ? 0x0a000001u
                       : src_dev.host_prefixes.front().first() + 1;
      pkt.proto = 1;  // ICMP

      const dataplane::ConcreteTrace trace = probe(transfer, tracker, src, ingress, pkt);
      const bool reached =
          trace.disposition == dataplane::Disposition::Delivered && trace.egress.valid() &&
          network.interface(trace.egress).device == dst;
      if (!reached) {
        result.fail(src_dev.name + " -> " + dst_dev.name + ": ping " +
                    to_string(trace.disposition));
      }
    }
  }
  return result;
}

TestResult ReachabilityTest::run(const dataplane::Transfer& transfer,
                                 ys::CoverageTracker& tracker) const {
  bdd::BddManager& mgr = transfer.index().manager();
  TestResult result = make_result();
  const SymbolicSimulator sim(transfer);

  for (const ReachabilityQuery& q : queries_) {
    ++result.checks;
    const dataplane::SymbolicResult outcome =
        sim.flood(q.source, q.source_interface, q.headers, 64, symbolic_hop_marker(tracker));

    if (q.expected_egress) {
      const PacketSet at = outcome.delivered.at(net::to_location(*q.expected_egress));
      const PacketSet actual = at.valid() ? at : PacketSet::none(mgr);
      if (!actual.equal(q.expected_delivered)) {
        result.fail(name_ + ": delivered set mismatch at interface " +
                    std::to_string(q.expected_egress->value));
      }
    } else {
      // Everything injected must be delivered somewhere.
      PacketSet delivered = PacketSet::none(mgr);
      for (const auto& [loc, ps] : outcome.delivered.entries()) {
        delivered = delivered.union_with(ps);
      }
      // Header rewrites could make delivered != injected even when nothing
      // drops; compare drop sets instead, which is transform-agnostic.
      if (!outcome.dropped.empty() || !outcome.unmatched.empty()) {
        result.fail(name_ + ": some packets were dropped");
      } else if (delivered.empty() && !q.headers.empty()) {
        result.fail(name_ + ": nothing was delivered");
      }
    }
  }
  return result;
}

dataplane::ConcreteTrace probe(const dataplane::Transfer& transfer,
                               ys::CoverageTracker& tracker, net::DeviceId source,
                               net::InterfaceId source_interface,
                               const packet::ConcretePacket& pkt) {
  const dataplane::ConcreteSimulator sim(transfer);
  const dataplane::ConcreteTrace trace = sim.run(source, source_interface, pkt);
  bdd::BddManager& mgr = transfer.index().manager();
  // The packet is identical across hops unless a rule rewrote it; build
  // the singleton set once and reuse it (marking is on the test's hot
  // path, §5).
  PacketSet singleton;
  const packet::ConcretePacket* built_for = nullptr;
  for (const dataplane::ConcreteHop& hop : trace.hops) {
    if (built_for == nullptr || !(*built_for == hop.packet)) {
      singleton = PacketSet::from_packet(mgr, hop.packet);
      built_for = &hop.packet;
    }
    tracker.mark_packet(hop.in_interface.valid() ? net::to_location(hop.in_interface)
                                                 : net::device_location(hop.device),
                        singleton);
  }
  return trace;
}

}  // namespace yardstick::nettest
