// Shortest-path forwarding contracts.
//
// The §7.3 InternalRouteCheck (and the RCDC-style local tests) decompose
// "internal destinations are routed along all topological shortest paths"
// into per-device contracts: a device d hops from the originator must
// forward the prefix to exactly its neighbors at distance d-1. This header
// provides the BFS machinery shared by those tests.
#pragma once

#include <vector>

#include "netmodel/network.hpp"

namespace yardstick::nettest {

inline constexpr int kUnreachable = -1;

/// BFS hop distances from `origin` over fabric links (host/local/external
/// ports do not carry fabric traffic). Index = DeviceId.
[[nodiscard]] std::vector<int> fabric_distances(const net::Network& network,
                                                net::DeviceId origin);

/// The interfaces of `device` facing neighbors one hop closer to the
/// origin — the expected ECMP next-hop set of the local contract. Empty
/// when the device is the origin or cannot reach it.
[[nodiscard]] std::vector<net::InterfaceId> contract_next_hops(
    const net::Network& network, const std::vector<int>& distances, net::DeviceId device);

}  // namespace yardstick::nettest
