#include "dataplane/transfer.hpp"

#include <algorithm>

namespace yardstick::dataplane {

using packet::ConcretePacket;
using packet::PacketSet;

namespace {
bool interface_allowed(const net::MatchSpec& spec, net::InterfaceId in_interface) {
  if (spec.in_interfaces.empty() || !in_interface.valid()) return true;
  return std::find(spec.in_interfaces.begin(), spec.in_interfaces.end(), in_interface) !=
         spec.in_interfaces.end();
}
}  // namespace

std::vector<RuleSplit> Transfer::split(net::DeviceId device,
                                       net::InterfaceId in_interface,
                                       const PacketSet& input,
                                       net::TableKind table) const {
  std::vector<RuleSplit> out;
  if (input.empty()) return out;
  PacketSet remaining = input;
  for (const net::RuleId rid : network().table(device, table)) {
    if (remaining.empty()) break;
    const net::Rule& r = network().rule(rid);
    if (!interface_allowed(r.match, in_interface)) continue;
    PacketSet claimed = remaining.intersect(index_.match_set(rid));
    if (claimed.empty()) continue;
    remaining = remaining.minus(claimed);
    out.push_back({rid, std::move(claimed)});
  }
  return out;
}

DeviceStage Transfer::process(net::DeviceId device, net::InterfaceId in_interface,
                              const PacketSet& input) const {
  bdd::BddManager& mgr = index_.manager();
  DeviceStage stage;
  stage.permitted = input;
  stage.denied = PacketSet::none(mgr);
  if (network().has_acl(device)) {
    stage.acl = split(device, in_interface, input, net::TableKind::Acl);
    PacketSet permitted = PacketSet::none(mgr);
    for (const RuleSplit& s : stage.acl) {
      if (network().rule(s.rule).action.type == net::ActionType::Permit) {
        permitted = permitted.union_with(s.packets);
      }
    }
    stage.permitted = permitted;
    stage.denied = input.minus(permitted);  // explicit + implicit deny
  }
  stage.fib = split(device, in_interface, stage.permitted, net::TableKind::Fib);
  return stage;
}

PacketSet Transfer::rewrite(const net::Rule& rule, const PacketSet& input) const {
  PacketSet acc = input;
  for (const net::Rewrite& rw : rule.action.rewrites) {
    acc = acc.rewrite_field(rw.field, rw.value);
  }
  return acc;
}

PacketSet Transfer::rewrite_preimage(const net::Rule& rule,
                                     const PacketSet& output) const {
  PacketSet acc = output;
  // Invert in reverse application order.
  for (auto it = rule.action.rewrites.rbegin(); it != rule.action.rewrites.rend(); ++it) {
    acc = acc.rewrite_field_preimage(it->field, it->value);
  }
  return acc;
}

std::vector<HopOutput> Transfer::apply(const net::Rule& rule,
                                       const PacketSet& input) const {
  std::vector<HopOutput> out;
  if (rule.action.type == net::ActionType::Drop || input.empty()) return out;
  const PacketSet transformed = rewrite(rule, input);
  out.reserve(rule.action.out_interfaces.size());
  for (const net::InterfaceId egress : rule.action.out_interfaces) {
    const net::InterfaceId next = network().interface(egress).peer;
    out.push_back({egress, next, transformed});
  }
  return out;
}

net::RuleId Transfer::lookup(net::DeviceId device, net::InterfaceId in_interface,
                             const ConcretePacket& pkt, net::TableKind table) const {
  for (const net::RuleId rid : network().table(device, table)) {
    const net::Rule& r = network().rule(rid);
    if (interface_allowed(r.match, in_interface) && matches(r.match, pkt, in_interface)) {
      return rid;
    }
  }
  return {};
}

net::InterfaceId Transfer::pick_ecmp(const net::Rule& rule,
                                     const ConcretePacket& pkt) const {
  const auto& outs = rule.action.out_interfaces;
  if (outs.empty()) return {};
  // Deterministic 5-tuple hash, stable across runs so traceroutes and
  // pingmesh samples are reproducible.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(pkt.dst_ip);
  mix(pkt.src_ip);
  mix(pkt.proto);
  mix(pkt.src_port);
  mix(pkt.dst_port);
  return outs[h % outs.size()];
}

bool matches(const net::MatchSpec& spec, const ConcretePacket& pkt,
             net::InterfaceId in_interface) {
  if (!interface_allowed(spec, in_interface)) return false;
  if (spec.dst_prefix && !spec.dst_prefix->contains(pkt.dst_ip)) return false;
  if (spec.src_prefix && !spec.src_prefix->contains(pkt.src_ip)) return false;
  if (spec.proto && *spec.proto != pkt.proto) return false;
  if (spec.src_port && (pkt.src_port < spec.src_port->lo || pkt.src_port > spec.src_port->hi)) {
    return false;
  }
  if (spec.dst_port && (pkt.dst_port < spec.dst_port->lo || pkt.dst_port > spec.dst_port->hi)) {
    return false;
  }
  return true;
}

}  // namespace yardstick::dataplane
