// Match-set computation (§5.2 step 1).
//
// A rule's *match field* is the packet set written in the table entry. Its
// *match set* M[r] is the disjoint set the rule actually applies to under
// first-match semantics: the match field minus everything consumed by
// earlier rules in the same table. Coverage is always computed against
// M[r], which is what makes the metrics semantics-based (§3.2) — a packet
// matching the default route exercises only the default rule, regardless
// of how a device implementation would scan the table.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "netmodel/network.hpp"
#include "packet/packet_set.hpp"

namespace yardstick::dataplane {

/// Per-device step-1 results restored from the incremental cache
/// (src/yardstick/cache.*). Devices with `device_hit` set have all four
/// outputs already present in the vectors below, as packet sets living in
/// the destination manager; the constructor adopts them verbatim and walks
/// only the remaining devices. Every vector is sized like the
/// corresponding index member (rule- or device-indexed).
struct MatchPrefill {
  std::vector<char> device_hit;                   // indexed by DeviceId
  std::vector<packet::PacketSet> match_fields;    // indexed by RuleId
  std::vector<packet::PacketSet> match_sets;      // indexed by RuleId
  std::vector<packet::PacketSet> matched_space;   // indexed by DeviceId
  std::vector<packet::PacketSet> acl_permitted;   // indexed by DeviceId

  [[nodiscard]] bool hit(net::DeviceId id) const {
    return id.value < device_hit.size() && device_hit[id.value] != 0;
  }
};

class MatchSetIndex {
 public:
  /// Computes match fields and disjoint match sets for every rule in the
  /// network. Cost is one linear walk per device table.
  ///
  /// `budget` (non-owning, may be null) bounds the computation: when the
  /// deadline, node cap or cancel flag trips mid-walk, the remaining rules
  /// get empty match sets, truncated() flips to true, and construction
  /// completes without throwing — partial results instead of a runaway.
  ///
  /// `threads` > 1 shards the per-device walks across that many worker
  /// threads, each building in its own BddManager, and merges the results
  /// into `mgr` via memoized structural import. The merged sets are
  /// canonical in `mgr` and semantically identical to a serial build, so
  /// every size/count downstream is bit-identical regardless of thread
  /// count (0 = one worker per hardware thread).
  ///
  /// `prefill` (non-owning, may be null) supplies cached step-1 results
  /// for a subset of devices; only the misses are walked (serially or
  /// sharded). Because both cached and recomputed sets are canonical in
  /// `mgr`, a prefilled build is bit-identical to a full one.
  ///
  /// `gc_threshold` in (0, 1] arms phase-boundary mark-compact GC on the
  /// per-worker shard managers: after each device's walk, a shard whose
  /// dead fraction may have reached the threshold is collected against the
  /// results built so far. Enabling GC forces the sharded build path even
  /// at one thread (the primary manager is never collected — it holds
  /// handles this builder does not own), which is bit-identical to the
  /// serial path by the merge-canonicalization argument above. 0 disables.
  MatchSetIndex(bdd::BddManager& mgr, const net::Network& network,
                const ys::ResourceBudget* budget = nullptr, unsigned threads = 1,
                const MatchPrefill* prefill = nullptr, double gc_threshold = 0.0);

  /// Structural clone into another manager: copies every packet set of
  /// `other` into `dst` (memoized import, shared subgraphs copied once).
  /// Read-only with respect to `other`, so concurrent workers may each
  /// clone the same index into their private managers.
  MatchSetIndex(bdd::BddManager& dst, const MatchSetIndex& other);

  /// True when a resource budget stopped the computation early; every
  /// accessor below then under-reports for the rules never reached.
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// The raw match field of the rule (what the table entry says).
  [[nodiscard]] const packet::PacketSet& match_field(net::RuleId id) const {
    return match_fields_[id.value];
  }

  /// The disjoint match set M[r] (match field minus earlier rules).
  [[nodiscard]] const packet::PacketSet& match_set(net::RuleId id) const {
    return match_sets_[id.value];
  }

  /// Exact size |M[r]| of the disjoint match set.
  [[nodiscard]] bdd::Uint128 match_set_size(net::RuleId id) const {
    return match_sets_[id.value].count();
  }

  /// Union of all match sets in the device's forwarding table: the packet
  /// space the FIB handles at all (unmatched packets drop ruleless-ly).
  [[nodiscard]] const packet::PacketSet& matched_space(net::DeviceId id) const {
    return matched_space_[id.value];
  }

  /// Packets the device's ingress ACL lets through to the FIB: the union
  /// of the permit rules' match sets; everything (an always-true set) on
  /// devices without an ACL stage. Behavioral coverage of FIB rules is
  /// clipped by this space — packets the ACL denies never exercise the
  /// FIB (§4.1 multi-table extension).
  [[nodiscard]] const packet::PacketSet& acl_permitted_space(net::DeviceId id) const {
    return acl_permitted_[id.value];
  }

  [[nodiscard]] bdd::BddManager& manager() const { return mgr_; }
  [[nodiscard]] const net::Network& network() const { return network_; }

  /// Build just the match field for a MatchSpec (header dimensions only;
  /// in-interface restrictions are handled by the transfer function).
  static packet::PacketSet build_match_field(bdd::BddManager& mgr,
                                             const net::MatchSpec& spec);

 private:
  bdd::BddManager& mgr_;
  const net::Network& network_;
  std::vector<packet::PacketSet> match_fields_;  // indexed by RuleId
  std::vector<packet::PacketSet> match_sets_;    // indexed by RuleId
  std::vector<packet::PacketSet> matched_space_;  // indexed by DeviceId
  std::vector<packet::PacketSet> acl_permitted_;  // indexed by DeviceId
  bool truncated_ = false;
};

}  // namespace yardstick::dataplane
