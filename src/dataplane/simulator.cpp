#include "dataplane/simulator.hpp"

#include <deque>

namespace yardstick::dataplane {

using packet::ConcretePacket;
using packet::PacketSet;

ConcreteTrace ConcreteSimulator::run(net::DeviceId device, net::InterfaceId in_interface,
                                     ConcretePacket pkt, int max_hops) const {
  const net::Network& network = transfer_.network();
  ConcreteTrace trace;
  for (int hop = 0; hop < max_hops; ++hop) {
    ConcreteHop record;
    record.device = device;
    record.in_interface = in_interface;
    record.packet = pkt;

    // Ingress ACL stage (§4.1 multi-table devices): explicit deny drops;
    // no match on a device that has an ACL is an implicit deny.
    if (network.has_acl(device)) {
      const net::RuleId acl =
          transfer_.lookup(device, in_interface, pkt, net::TableKind::Acl);
      record.acl_rule = acl;
      const bool denied =
          !acl.valid() || network.rule(acl).action.type == net::ActionType::Drop;
      if (denied) {
        trace.hops.push_back(record);
        trace.disposition = acl.valid() ? Disposition::Dropped : Disposition::NoRule;
        trace.final_packet = pkt;
        return trace;
      }
    }

    const net::RuleId rid = transfer_.lookup(device, in_interface, pkt);
    record.rule = rid;
    if (!rid.valid()) {
      trace.hops.push_back(record);
      trace.disposition = Disposition::NoRule;
      trace.final_packet = pkt;
      return trace;
    }
    const net::Rule& rule = network.rule(rid);
    if (rule.action.type == net::ActionType::Drop) {
      trace.hops.push_back(record);
      trace.disposition = Disposition::Dropped;
      trace.final_packet = pkt;
      return trace;
    }
    for (const net::Rewrite& rw : rule.action.rewrites) {
      pkt.set_field(rw.field, rw.value);
    }
    const net::InterfaceId egress = transfer_.pick_ecmp(rule, pkt);
    record.out_interface = egress;
    trace.hops.push_back(record);

    const net::InterfaceId next = network.interface(egress).peer;
    if (!next.valid()) {
      // Left the modeled network (host port or external attachment).
      trace.disposition = Disposition::Delivered;
      trace.final_packet = pkt;
      trace.egress = egress;
      return trace;
    }
    device = network.interface(next).device;
    in_interface = next;
  }
  trace.disposition = Disposition::Loop;
  trace.final_packet = pkt;
  return trace;
}

SymbolicResult SymbolicSimulator::flood(net::DeviceId device,
                                        net::InterfaceId in_interface,
                                        const PacketSet& headers, int max_hops,
                                        const HopVisitor& visitor) const {
  const net::Network& network = transfer_.network();
  bdd::BddManager& mgr = transfer_.index().manager();
  SymbolicResult result;
  if (headers.empty()) return result;

  struct WorkItem {
    net::DeviceId device;
    net::InterfaceId in_interface;
    PacketSet packets;
    int depth;
  };

  // Headers already processed per device; arrivals are trimmed against this
  // so the flood terminates even with forwarding loops.
  std::unordered_map<uint32_t, PacketSet> seen;
  std::deque<WorkItem> queue;
  queue.push_back({device, in_interface, headers, 0});

  while (!queue.empty()) {
    WorkItem item = std::move(queue.front());
    queue.pop_front();

    auto [it, inserted] = seen.try_emplace(item.device.value, PacketSet::none(mgr));
    const PacketSet fresh = item.packets.minus(it->second);
    if (fresh.empty()) continue;
    it->second = it->second.union_with(fresh);

    if (visitor) visitor(item.device, item.in_interface, fresh);

    const packet::LocationId here = item.in_interface.valid()
                                        ? net::to_location(item.in_interface)
                                        : net::device_location(item.device);

    const DeviceStage stage = transfer_.process(item.device, item.in_interface, fresh);

    // ACL stage: explicit denies drop with rule attribution; the implicit
    // deny of ACL-unmatched packets is ruleless.
    if (!stage.denied.empty()) {
      PacketSet explicit_denied = PacketSet::none(mgr);
      for (const RuleSplit& s : stage.acl) {
        if (network.rule(s.rule).action.type == net::ActionType::Drop) {
          explicit_denied = explicit_denied.union_with(s.packets);
        }
      }
      if (!explicit_denied.empty()) result.dropped.insert(here, explicit_denied);
      const PacketSet implicit = stage.denied.minus(explicit_denied);
      if (!implicit.empty()) result.unmatched.insert(here, implicit);
    }

    // Anything permitted that matches no FIB rule drops ruleless-ly.
    PacketSet matched = PacketSet::none(mgr);
    for (const RuleSplit& s : stage.fib) matched = matched.union_with(s.packets);
    const PacketSet unmatched = stage.permitted.minus(matched);
    if (!unmatched.empty()) result.unmatched.insert(here, unmatched);

    for (const RuleSplit& s : stage.fib) {
      const net::Rule& rule = network.rule(s.rule);
      if (rule.action.type == net::ActionType::Drop) {
        result.dropped.insert(here, s.packets);
        continue;
      }
      for (const HopOutput& hop : transfer_.apply(rule, s.packets)) {
        if (!hop.next_interface.valid()) {
          result.delivered.insert(net::to_location(hop.out_interface), hop.packets);
          continue;
        }
        if (item.depth + 1 >= max_hops) continue;  // backstop
        queue.push_back({network.interface(hop.next_interface).device,
                         hop.next_interface, hop.packets, item.depth + 1});
      }
    }
  }
  return result;
}

}  // namespace yardstick::dataplane
