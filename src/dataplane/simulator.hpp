// End-to-end simulators over the dataplane.
//
// ConcreteSimulator traces one packet hop by hop (the substrate for ping,
// traceroute and Pingmesh-style tests); SymbolicSimulator floods a packet
// set from a start location and computes where every header ends up (the
// substrate for symbolic reachability tests).
//
// Both report each hop through an optional visitor so testing tools can
// mark coverage (markPacket) with information they already have (§5.1).
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "dataplane/transfer.hpp"
#include "packet/located_packet_set.hpp"

namespace yardstick::dataplane {

/// Why a concrete packet stopped being forwarded.
enum class Disposition : uint8_t {
  Delivered,  // forwarded out a host-facing or unconnected interface
  Dropped,    // matched an explicit drop rule
  NoRule,     // matched nothing in a table
  Loop,       // exceeded the hop limit
};

[[nodiscard]] inline const char* to_string(Disposition d) {
  switch (d) {
    case Disposition::Delivered: return "delivered";
    case Disposition::Dropped: return "dropped";
    case Disposition::NoRule: return "no-rule";
    case Disposition::Loop: return "loop";
  }
  return "?";
}

/// One hop of a concrete trace: the state of the packet as it entered the
/// device, the rules that handled it, and the chosen egress.
struct ConcreteHop {
  net::DeviceId device;
  net::InterfaceId in_interface;  // invalid for the injection hop
  packet::ConcretePacket packet;  // as it arrived at this device
  net::RuleId acl_rule;           // ACL entry that matched (if the device has one)
  net::RuleId rule;               // FIB rule; invalid if denied/no match
  net::InterfaceId out_interface; // invalid on drop/deny/no-rule
};

struct ConcreteTrace {
  std::vector<ConcreteHop> hops;
  Disposition disposition = Disposition::NoRule;
  packet::ConcretePacket final_packet;
  /// Egress interface the packet left the network through (Delivered only).
  net::InterfaceId egress;
};

class ConcreteSimulator {
 public:
  explicit ConcreteSimulator(const Transfer& transfer) : transfer_(transfer) {}

  /// Inject `pkt` at `device` (arriving on `in_interface`, which may be
  /// invalid for local injection) and follow it until it is delivered,
  /// dropped, or the hop limit is hit. ECMP choices are deterministic.
  [[nodiscard]] ConcreteTrace run(net::DeviceId device, net::InterfaceId in_interface,
                                  packet::ConcretePacket pkt, int max_hops = 64) const;

 private:
  const Transfer& transfer_;
};

/// Result of a symbolic flood.
struct SymbolicResult {
  /// Headers that left the network, keyed by the egress interface location.
  packet::LocatedPacketSet delivered;
  /// Headers dropped by an explicit drop rule, keyed by the location at
  /// which they arrived at the dropping device.
  packet::LocatedPacketSet dropped;
  /// Headers that matched no rule at some device.
  packet::LocatedPacketSet unmatched;
};

class SymbolicSimulator {
 public:
  /// Visitor invoked once per processed arrival: packets `arriving` at
  /// `device` via `in_interface` (invalid for the injection). Exactly the
  /// information an instrumented tool passes to markPacket.
  using HopVisitor = std::function<void(net::DeviceId device, net::InterfaceId in_interface,
                                        const packet::PacketSet& arriving)>;

  explicit SymbolicSimulator(const Transfer& transfer) : transfer_(transfer) {}

  /// Flood `headers` from `device` and compute final dispositions for the
  /// whole set. Terminates by processing only not-yet-seen headers per
  /// device (the per-device seen set is a monotone lattice), with
  /// `max_hops` as a backstop against rewrite-induced churn.
  [[nodiscard]] SymbolicResult flood(net::DeviceId device, net::InterfaceId in_interface,
                                     const packet::PacketSet& headers, int max_hops = 64,
                                     const HopVisitor& visitor = nullptr) const;

 private:
  const Transfer& transfer_;
};

}  // namespace yardstick::dataplane
