// Symbolic and concrete one-hop transfer functions.
//
// The transfer function is the semantic heart of the dataplane: given
// packets arriving at a device, it determines which rule claims which
// packets (via the disjoint match sets) and what each rule's action does to
// them — forwarding out one or more interfaces (with optional header
// rewrites) or dropping.
//
// Note on in-interface restrictions: disjoint match sets are computed in
// header space (see match_sets.hpp). Rules that restrict ingress interfaces
// are honored by the transfer function, but tables must not contain
// header-overlapping rules that differ only in ingress interface — the FIBs
// produced by the routing substrate never do.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/match_sets.hpp"
#include "netmodel/network.hpp"
#include "packet/packet.hpp"
#include "packet/packet_set.hpp"

namespace yardstick::dataplane {

/// The portion of an input packet set claimed by one rule.
struct RuleSplit {
  net::RuleId rule;
  packet::PacketSet packets;  // subset of the input that this rule handles
};

/// Where a forwarded packet set ends up after one hop.
struct HopOutput {
  net::InterfaceId out_interface;  // egress interface on the current device
  net::InterfaceId next_interface; // ingress interface on the neighbor
                                   // (invalid => leaves the modeled network)
  packet::PacketSet packets;       // post-rewrite headers
};

/// The outcome of running a packet set through a device's ingress ACL and
/// forwarding table.
struct DeviceStage {
  /// ACL claims (both permit and deny rules); empty without an ACL stage.
  std::vector<RuleSplit> acl;
  /// Subset of the input that survives the ACL (everything without one).
  packet::PacketSet permitted;
  /// Subset denied (explicit deny rules plus the implicit deny of
  /// ACL-unmatched packets).
  packet::PacketSet denied;
  /// Forwarding-table claims over the permitted packets.
  std::vector<RuleSplit> fib;
};

class Transfer {
 public:
  Transfer(const MatchSetIndex& index) : index_(index) {}

  /// Split an input set among one table's rules. Packets matching no rule
  /// are left unclaimed (implicit deny in an ACL; ruleless drop in a FIB —
  /// either way, no ATU). `in_interface` may be invalid to model locally
  /// injected packets, which match rules regardless of ingress
  /// restrictions.
  [[nodiscard]] std::vector<RuleSplit> split(net::DeviceId device,
                                             net::InterfaceId in_interface,
                                             const packet::PacketSet& input,
                                             net::TableKind table = net::TableKind::Fib) const;

  /// Run both stages: ACL (when present) then FIB over the permitted set.
  [[nodiscard]] DeviceStage process(net::DeviceId device, net::InterfaceId in_interface,
                                    const packet::PacketSet& input) const;

  /// Apply a rule's action to a packet set: rewrite headers and fan out to
  /// each egress interface. Empty result means the rule drops.
  [[nodiscard]] std::vector<HopOutput> apply(const net::Rule& rule,
                                             const packet::PacketSet& input) const;

  /// Image of `input` under the rule's rewrites only (no fan-out).
  [[nodiscard]] packet::PacketSet rewrite(const net::Rule& rule,
                                          const packet::PacketSet& input) const;

  /// Pre-image: the packets that the rule's rewrites map into `output`.
  /// Used to reverse path exploration when computing guard sets (§5.2).
  [[nodiscard]] packet::PacketSet rewrite_preimage(const net::Rule& rule,
                                                   const packet::PacketSet& output) const;

  /// First-match lookup for a concrete packet in one of the device's
  /// tables; returns an invalid id if the packet matches nothing.
  [[nodiscard]] net::RuleId lookup(net::DeviceId device, net::InterfaceId in_interface,
                                   const packet::ConcretePacket& pkt,
                                   net::TableKind table = net::TableKind::Fib) const;

  /// Deterministic ECMP choice for a concrete packet: hashes the 5-tuple to
  /// pick one egress interface of a forwarding rule.
  [[nodiscard]] net::InterfaceId pick_ecmp(const net::Rule& rule,
                                           const packet::ConcretePacket& pkt) const;

  [[nodiscard]] const MatchSetIndex& index() const { return index_; }
  [[nodiscard]] const net::Network& network() const { return index_.network(); }

 private:
  const MatchSetIndex& index_;
};

/// Does a concrete packet match a rule's declarative spec (header fields
/// and ingress interface)? Pure field comparisons, no BDD work.
[[nodiscard]] bool matches(const net::MatchSpec& spec, const packet::ConcretePacket& pkt,
                           net::InterfaceId in_interface);

}  // namespace yardstick::dataplane
