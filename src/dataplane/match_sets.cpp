#include "dataplane/match_sets.hpp"

#include <memory>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "packet/gc_roots.hpp"

namespace yardstick::dataplane {

using packet::Field;
using packet::PacketSet;

PacketSet MatchSetIndex::build_match_field(bdd::BddManager& mgr,
                                           const net::MatchSpec& spec) {
  PacketSet acc = PacketSet::all(mgr);
  if (spec.dst_prefix) acc = acc.intersect(PacketSet::dst_prefix(mgr, *spec.dst_prefix));
  if (spec.src_prefix) acc = acc.intersect(PacketSet::src_prefix(mgr, *spec.src_prefix));
  if (spec.proto) {
    acc = acc.intersect(PacketSet::field_equals(mgr, Field::Proto, *spec.proto));
  }
  if (spec.src_port) {
    acc = acc.intersect(
        PacketSet::field_range(mgr, Field::SrcPort, spec.src_port->lo, spec.src_port->hi));
  }
  if (spec.dst_port) {
    acc = acc.intersect(
        PacketSet::field_range(mgr, Field::DstPort, spec.dst_port->lo, spec.dst_port->hi));
  }
  return acc;
}

namespace {

/// One device's table walk — the unit of work both the serial and the
/// sharded parallel build share. Writes the device's rules into the
/// (rule/device-indexed) output vectors, building in `mgr`.
void build_device_tables(bdd::BddManager& mgr, const net::Network& network,
                         const net::Device& dev, std::vector<PacketSet>& match_fields,
                         std::vector<PacketSet>& match_sets,
                         std::vector<PacketSet>& matched_space,
                         std::vector<PacketSet>& acl_permitted) {
  for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
    // Walk the ordered table, giving each rule the part of its match
    // field not already claimed by an earlier rule.
    PacketSet claimed = PacketSet::none(mgr);
    PacketSet permitted = PacketSet::none(mgr);
    for (const net::RuleId rid : network.table(dev.id, table)) {
      const net::Rule& r = network.rule(rid);
      PacketSet field = MatchSetIndex::build_match_field(mgr, r.match);
      PacketSet disjoint = field.minus(claimed);
      claimed = claimed.union_with(field);
      if (r.action.type == net::ActionType::Permit) {
        permitted = permitted.union_with(disjoint);
      }
      match_sets[rid.value] = std::move(disjoint);
      match_fields[rid.value] = std::move(field);
    }
    if (table == net::TableKind::Fib) {
      matched_space[dev.id.value] = claimed;
    } else {
      // No ACL stage means everything is permitted (implicit deny only
      // applies when an ACL exists).
      acl_permitted[dev.id.value] =
          network.has_acl(dev.id) ? permitted : PacketSet::all(mgr);
    }
  }
}

/// Per-worker shard of the parallel build: a private manager plus result
/// vectors for the devices this worker owns (strided assignment).
struct BuildShard {
  std::unique_ptr<bdd::BddManager> mgr;
  std::vector<PacketSet> match_fields;
  std::vector<PacketSet> match_sets;
  std::vector<PacketSet> matched_space;
  std::vector<PacketSet> acl_permitted;
  bool truncated = false;
};

}  // namespace

MatchSetIndex::MatchSetIndex(bdd::BddManager& mgr, const net::Network& network,
                             const ys::ResourceBudget* budget, unsigned threads,
                             const MatchPrefill* prefill, double gc_threshold)
    : mgr_(mgr), network_(network) {
  obs::Span build_span("match_sets.build", "offline");
  const size_t num_rules = network.rule_count();
  match_fields_.resize(num_rules);
  match_sets_.resize(num_rules);
  matched_space_.resize(network.device_count());
  acl_permitted_.resize(network.device_count());

  // Adopt cached devices up front; only the misses form the work list the
  // serial and sharded paths below walk. Prefilled sets already live in
  // mgr_, so adoption is handle copies — no BDD operations, no budget
  // charge.
  const std::vector<net::Device>& devices = network.devices();
  std::vector<const net::Device*> work;
  work.reserve(devices.size());
  for (const net::Device& dev : devices) {
    if (prefill != nullptr && prefill->hit(dev.id)) {
      for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
        for (const net::RuleId rid : network.table(dev.id, table)) {
          match_fields_[rid.value] = prefill->match_fields[rid.value];
          match_sets_[rid.value] = prefill->match_sets[rid.value];
        }
      }
      matched_space_[dev.id.value] = prefill->matched_space[dev.id.value];
      acl_permitted_[dev.id.value] = prefill->acl_permitted[dev.id.value];
    } else {
      work.push_back(&dev);
    }
  }

  const unsigned workers = ys::resolve_threads(threads, work.size());
  build_span.arg("devices", devices.size());
  build_span.arg("prefilled", devices.size() - work.size());
  build_span.arg("rules", num_rules);
  build_span.arg("workers", workers);

  // GC runs only on shard managers (the primary holds handles this builder
  // does not own), so an armed threshold routes even a one-thread build
  // through the sharded path — bit-identical to serial by construction.
  const bool sharded = workers > 1 || (gc_threshold > 0.0 && !work.empty());

  if (!sharded) {
    try {
      for (const net::Device* dev : work) {
        if (budget != nullptr) budget->poll("match-set computation");
        build_device_tables(mgr, network, *dev, match_fields_, match_sets_,
                            matched_space_, acl_permitted_);
      }
    } catch (const ys::StatusError& e) {
      if (!ys::is_resource_exhaustion(e.code())) throw;
      truncated_ = true;
    }
  } else {
    // Sharded build: worker w owns work items w, w+T, w+2T, ... and builds
    // them in a private manager; the main thread then merges every shard
    // into the primary manager by structural import, walking devices in
    // network order so the merge is deterministic.
    std::vector<BuildShard> shards(workers);
    ys::run_workers(workers, [&](unsigned w) {
      BuildShard& shard = shards[w];
      shard.mgr = std::make_unique<bdd::BddManager>(mgr_.num_vars());
      // Attached manually (not ScopedBudget): the charge must outlive the
      // worker and stay until the main thread finishes the merge below,
      // since the shard's nodes are alive until then.
      if (budget != nullptr) shard.mgr->set_budget(budget);
      shard.match_fields.resize(num_rules);
      shard.match_sets.resize(num_rules);
      shard.matched_space.resize(network.device_count());
      shard.acl_permitted.resize(network.device_count());
      // Result vectors are fully sized above and never reallocate, so the
      // tracker may hold raw pointers into them across the whole build.
      if (gc_threshold > 0.0) shard.mgr->set_gc_threshold(gc_threshold);
      packet::GcRootTracker gc_roots(*shard.mgr);
      try {
        for (size_t d = w; d < work.size(); d += workers) {
          if (budget != nullptr) budget->poll("match-set computation");
          const net::Device& dev = *work[d];
          build_device_tables(*shard.mgr, network, dev, shard.match_fields,
                              shard.match_sets, shard.matched_space,
                              shard.acl_permitted);
          if (gc_threshold > 0.0) {
            for (const net::TableKind table :
                 {net::TableKind::Acl, net::TableKind::Fib}) {
              for (const net::RuleId rid : network.table(dev.id, table)) {
                gc_roots.track(shard.match_fields[rid.value]);
                gc_roots.track(shard.match_sets[rid.value]);
              }
            }
            gc_roots.track(shard.matched_space[dev.id.value]);
            gc_roots.track(shard.acl_permitted[dev.id.value]);
            if (gc_roots.due()) {
              obs::Span gc_span("bdd.gc", "offline");
              const bdd::GcResult gc = gc_roots.collect();
              gc_span.arg("reclaimed", gc.reclaimed);
              gc_span.arg("live", gc.live_nodes);
            }
          }
        }
      } catch (const ys::StatusError& e) {
        if (!ys::is_resource_exhaustion(e.code())) throw;
        shard.truncated = true;
      }
    });

    // Queue occupancy: worker w owns the work items ≡ w (mod workers).
    for (unsigned w = 0; w < workers; ++w) {
      ys::worker_items_histogram().observe(
          static_cast<double>((work.size() - w + workers - 1) / workers));
    }

    obs::Span merge_span("match_sets.merge", "offline");
    std::vector<std::unique_ptr<bdd::BddImporter>> importers;
    importers.reserve(workers);
    for (BuildShard& shard : shards) {
      truncated_ = truncated_ || shard.truncated;
      importers.push_back(std::make_unique<bdd::BddImporter>(mgr_, *shard.mgr));
    }
    try {
      for (size_t d = 0; d < work.size(); ++d) {
        const net::Device& dev = *work[d];
        BuildShard& shard = shards[d % workers];
        bdd::BddImporter& imp = *importers[d % workers];
        const auto merged = [&imp](const PacketSet& src) {
          return src.valid() ? PacketSet(imp.import(src.raw())) : PacketSet{};
        };
        for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
          for (const net::RuleId rid : network.table(dev.id, table)) {
            match_fields_[rid.value] = merged(shard.match_fields[rid.value]);
            match_sets_[rid.value] = merged(shard.match_sets[rid.value]);
          }
        }
        matched_space_[dev.id.value] = merged(shard.matched_space[dev.id.value]);
        acl_permitted_[dev.id.value] = merged(shard.acl_permitted[dev.id.value]);
      }
    } catch (const ys::StatusError& e) {
      if (!ys::is_resource_exhaustion(e.code())) throw;
      truncated_ = true;
    }
    if (obs::enabled()) {
      static obs::Counter& imported = obs::metrics().counter(
          "ys.bdd.imported_nodes", "nodes copied across BDD managers");
      size_t total = 0;
      for (const auto& imp : importers) total += imp->imported_nodes();
      imported.add(total);
      static obs::Counter& gc_runs = obs::metrics().counter(
          "ys.bdd.gc.runs", "phase-boundary mark-compact collections");
      static obs::Counter& gc_reclaimed = obs::metrics().counter(
          "ys.bdd.gc.reclaimed_nodes", "dead BDD nodes reclaimed by GC");
      static obs::Counter& shard_hits = obs::metrics().counter(
          "ys.bdd.shard_cache_hits", "apply-cache hits across shard managers");
      static obs::Counter& shard_misses = obs::metrics().counter(
          "ys.bdd.shard_cache_misses", "apply-cache misses across shard managers");
      for (const BuildShard& shard : shards) {
        const bdd::BddManager::Stats s = shard.mgr->stats();
        gc_runs.add(s.gc_runs);
        gc_reclaimed.add(s.gc_reclaimed_nodes);
        shard_hits.add(s.cache_hits);
        shard_misses.add(s.cache_misses);
      }
    }
    // Release the shards' node accounting before their managers die.
    for (BuildShard& shard : shards) shard.mgr->set_budget(nullptr);
  }
  if (obs::enabled()) {
    static obs::Counter& built_devices = obs::metrics().counter(
        "ys.match_sets.devices_built", "devices whose tables were walked (step 1)");
    static obs::Counter& built_rules = obs::metrics().counter(
        "ys.match_sets.rules_built", "rules given disjoint match sets (step 1)");
    built_devices.add(work.size());
    built_rules.add(num_rules);
  }

  // Degraded completion: rules/devices never reached get well-formed empty
  // sets (terminal-only — constructing them cannot trip the budget again),
  // so every downstream query stays valid and merely under-reports.
  if (truncated_) {
    for (PacketSet& ps : match_fields_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
    for (PacketSet& ps : match_sets_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
    for (PacketSet& ps : matched_space_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
    for (PacketSet& ps : acl_permitted_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
  }
}

MatchSetIndex::MatchSetIndex(bdd::BddManager& dst, const MatchSetIndex& other)
    : mgr_(dst), network_(other.network_), truncated_(other.truncated_) {
  obs::Span span("match_sets.clone", "offline");
  bdd::BddImporter imp(dst, other.mgr_);
  const auto clone_all = [&imp](const std::vector<PacketSet>& src,
                                std::vector<PacketSet>& out) {
    out.reserve(src.size());
    for (const PacketSet& ps : src) {
      out.push_back(ps.valid() ? PacketSet(imp.import(ps.raw())) : PacketSet{});
    }
  };
  clone_all(other.match_fields_, match_fields_);
  clone_all(other.match_sets_, match_sets_);
  clone_all(other.matched_space_, matched_space_);
  clone_all(other.acl_permitted_, acl_permitted_);
  if (obs::enabled()) {
    obs::metrics()
        .counter("ys.bdd.imported_nodes", "nodes copied across BDD managers")
        .add(imp.imported_nodes());
  }
}

}  // namespace yardstick::dataplane
