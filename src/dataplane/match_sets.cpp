#include "dataplane/match_sets.hpp"

namespace yardstick::dataplane {

using packet::Field;
using packet::PacketSet;

PacketSet MatchSetIndex::build_match_field(bdd::BddManager& mgr,
                                           const net::MatchSpec& spec) {
  PacketSet acc = PacketSet::all(mgr);
  if (spec.dst_prefix) acc = acc.intersect(PacketSet::dst_prefix(mgr, *spec.dst_prefix));
  if (spec.src_prefix) acc = acc.intersect(PacketSet::src_prefix(mgr, *spec.src_prefix));
  if (spec.proto) {
    acc = acc.intersect(PacketSet::field_equals(mgr, Field::Proto, *spec.proto));
  }
  if (spec.src_port) {
    acc = acc.intersect(
        PacketSet::field_range(mgr, Field::SrcPort, spec.src_port->lo, spec.src_port->hi));
  }
  if (spec.dst_port) {
    acc = acc.intersect(
        PacketSet::field_range(mgr, Field::DstPort, spec.dst_port->lo, spec.dst_port->hi));
  }
  return acc;
}

MatchSetIndex::MatchSetIndex(bdd::BddManager& mgr, const net::Network& network,
                             const ys::ResourceBudget* budget)
    : mgr_(mgr), network_(network) {
  const size_t num_rules = network.rule_count();
  match_fields_.resize(num_rules);
  match_sets_.resize(num_rules);
  matched_space_.resize(network.device_count());
  acl_permitted_.resize(network.device_count());

  try {
    for (const net::Device& dev : network.devices()) {
      if (budget != nullptr) budget->poll("match-set computation");
      for (const net::TableKind table : {net::TableKind::Acl, net::TableKind::Fib}) {
        // Walk the ordered table, giving each rule the part of its match
        // field not already claimed by an earlier rule.
        PacketSet claimed = PacketSet::none(mgr);
        PacketSet permitted = PacketSet::none(mgr);
        for (const net::RuleId rid : network.table(dev.id, table)) {
          const net::Rule& r = network.rule(rid);
          PacketSet field = build_match_field(mgr, r.match);
          PacketSet disjoint = field.minus(claimed);
          claimed = claimed.union_with(field);
          if (r.action.type == net::ActionType::Permit) {
            permitted = permitted.union_with(disjoint);
          }
          match_sets_[rid.value] = std::move(disjoint);
          match_fields_[rid.value] = std::move(field);
        }
        if (table == net::TableKind::Fib) {
          matched_space_[dev.id.value] = claimed;
        } else {
          // No ACL stage means everything is permitted (implicit deny only
          // applies when an ACL exists).
          acl_permitted_[dev.id.value] =
              network.has_acl(dev.id) ? permitted : PacketSet::all(mgr);
        }
      }
    }
  } catch (const ys::StatusError& e) {
    if (!ys::is_resource_exhaustion(e.code())) throw;
    truncated_ = true;
  }

  // Degraded completion: rules/devices never reached get well-formed empty
  // sets (terminal-only — constructing them cannot trip the budget again),
  // so every downstream query stays valid and merely under-reports.
  if (truncated_) {
    for (PacketSet& ps : match_fields_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
    for (PacketSet& ps : match_sets_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
    for (PacketSet& ps : matched_space_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
    for (PacketSet& ps : acl_permitted_) {
      if (!ps.valid()) ps = PacketSet::none(mgr);
    }
  }
}

}  // namespace yardstick::dataplane
