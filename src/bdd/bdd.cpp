#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

#include "common/fault.hpp"
#include "common/status.hpp"

namespace yardstick::bdd {

namespace {
constexpr size_t kInitialUniqueCapacity = 1 << 16;
// The unique table never shrinks below this after a collection; going
// smaller saves nothing and pays an extra rehash cascade on regrowth.
constexpr size_t kMinUniqueCapacityAfterGc = 1 << 12;
// The apply cache starts small (per-worker shard managers multiply this by
// the thread count) and doubles adaptively up to the max; see
// maybe_grow_op_cache().
constexpr size_t kOpCacheInitial = 1 << 16;
constexpr size_t kOpCacheMax = 1 << 22;
constexpr size_t kNegCacheSize = 1 << 16;

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

// Truth table for each binary op, indexed by (a_bit << 1) | b_bit.
constexpr uint8_t kTruthTable[4] = {
    0b1000,  // And: true only at (1,1)
    0b1110,  // Or: true except (0,0)
    0b0110,  // Xor
    0b0010,  // Diff: true only at (1,0)
};

[[maybe_unused]] bool eval_op(BddManager::Op op, bool a, bool b) {
  const unsigned idx = (static_cast<unsigned>(a) << 1) | static_cast<unsigned>(b);
  return (kTruthTable[static_cast<unsigned>(op)] >> idx) & 1u;
}
}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle operators
// ---------------------------------------------------------------------------

Bdd Bdd::operator&(const Bdd& o) const {
  assert(mgr_ == o.mgr_ && mgr_ != nullptr);
  return {mgr_, mgr_->apply(BddManager::Op::And, idx_, o.idx_)};
}

Bdd Bdd::operator|(const Bdd& o) const {
  assert(mgr_ == o.mgr_ && mgr_ != nullptr);
  return {mgr_, mgr_->apply(BddManager::Op::Or, idx_, o.idx_)};
}

Bdd Bdd::operator^(const Bdd& o) const {
  assert(mgr_ == o.mgr_ && mgr_ != nullptr);
  return {mgr_, mgr_->apply(BddManager::Op::Xor, idx_, o.idx_)};
}

Bdd Bdd::operator-(const Bdd& o) const {
  assert(mgr_ == o.mgr_ && mgr_ != nullptr);
  return {mgr_, mgr_->apply(BddManager::Op::Diff, idx_, o.idx_)};
}

Bdd Bdd::operator!() const {
  assert(mgr_ != nullptr);
  return {mgr_, mgr_->negate(idx_)};
}

bool Bdd::implies(const Bdd& o) const {
  assert(mgr_ == o.mgr_ && mgr_ != nullptr);
  return mgr_->apply(BddManager::Op::Diff, idx_, o.idx_) == kFalse;
}

Uint128 Bdd::count() const {
  assert(mgr_ != nullptr);
  return mgr_->count_index(idx_);
}

size_t Bdd::node_count() const {
  assert(mgr_ != nullptr);
  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack{idx_};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second || n <= kTrue) continue;
    stack.push_back(mgr_->node(n).low);
    stack.push_back(mgr_->node(n).high);
  }
  return seen.size();
}

// ---------------------------------------------------------------------------
// Manager
// ---------------------------------------------------------------------------

BddManager::BddManager(Var num_vars) : num_vars_(num_vars) {
  if (num_vars > 120) {
    throw ys::InvalidInputError("BddManager supports at most 120 variables");
  }
  nodes_.reserve(kInitialUniqueCapacity);
  // Terminals occupy indices 0 and 1; their var is a sentinel past the end.
  nodes_.push_back({num_vars_, kFalse, kFalse});
  nodes_.push_back({num_vars_, kTrue, kTrue});
  unique_table_.assign(kInitialUniqueCapacity, kEmptySlot);
  unique_mask_ = kInitialUniqueCapacity - 1;
  op_cache_.assign(kOpCacheInitial, {});
  op_cache_mask_ = kOpCacheInitial - 1;
  neg_cache_.assign(kNegCacheSize, {});
  neg_cache_mask_ = kNegCacheSize - 1;
}

uint64_t BddManager::hash_triple(Var v, NodeIndex lo, NodeIndex hi) {
  uint64_t h = static_cast<uint64_t>(v) * kGolden;
  h ^= (static_cast<uint64_t>(lo) + 0x7f4a7c15U) * 0xbf58476d1ce4e5b9ULL;
  h ^= (static_cast<uint64_t>(hi) + 0x1ce4e5b9U) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

void BddManager::rehash_unique_table(size_t new_capacity) {
  assert((new_capacity & (new_capacity - 1)) == 0);
  ++table_growths_;
  std::vector<uint32_t> fresh(new_capacity, kEmptySlot);
  const uint64_t mask = new_capacity - 1;
  for (const uint32_t idx : unique_table_) {
    if (idx == kEmptySlot) continue;
    const BddNode& n = nodes_[idx];
    uint64_t slot = hash_triple(n.var, n.low, n.high) & mask;
    while (fresh[slot] != kEmptySlot) slot = (slot + 1) & mask;
    fresh[slot] = idx;
  }
  unique_table_ = std::move(fresh);
  unique_mask_ = mask;
}

void BddManager::grow_unique_table() { rehash_unique_table(unique_table_.size() * 2); }

void BddManager::reserve_nodes(size_t expected) {
  nodes_.reserve(nodes_.size() + expected);
  const size_t needed = nodes_.size() + expected;
  if (needed * 4 <= unique_table_.size() * 3) return;
  size_t capacity = unique_table_.size();
  while (needed * 4 > capacity * 3) capacity *= 2;
  // Jump straight to the final capacity: one rehash of what exists now,
  // instead of one per doubling.
  rehash_unique_table(capacity);
}

void BddManager::maybe_grow_op_cache() {
  if (op_cache_.size() >= kOpCacheMax || nodes_.size() <= op_cache_.size()) return;
  // A direct-mapped cache smaller than the arena's working set thrashes —
  // but only grow when the observed hit rate since the last resize agrees,
  // so workloads that stay hot in a small cache keep their footprint.
  const uint64_t window_hits = cache_stats_.hits - resize_base_hits_;
  const uint64_t window_total =
      window_hits + (cache_stats_.misses - resize_base_misses_);
  if (window_total >= 1024 && window_hits * 16 >= window_total * 15) return;
  const size_t new_size = op_cache_.size() * 2;
  std::vector<CacheEntry> fresh(new_size);
  const uint64_t mask = new_size - 1;
  for (const CacheEntry& e : op_cache_) {
    if (e.key == UINT64_MAX) continue;
    fresh[(e.key * kGolden >> 32) & mask] = e;  // direct-mapped: last write wins
  }
  op_cache_ = std::move(fresh);
  op_cache_mask_ = mask;
  ++op_cache_growths_;
  resize_base_hits_ = cache_stats_.hits;
  resize_base_misses_ = cache_stats_.misses;
}

NodeIndex BddManager::make(Var v, NodeIndex low, NodeIndex high) {
  if (low == high) return low;  // reduction rule
  uint64_t slot = hash_triple(v, low, high) & unique_mask_;
  while (true) {
    const uint32_t occupant = unique_table_[slot];
    if (occupant == kEmptySlot) break;
    const BddNode& n = nodes_[occupant];
    if (n.var == v && n.low == low && n.high == high) return occupant;
    slot = (slot + 1) & unique_mask_;
  }
  // Fresh allocation: the budget gate runs before the arena mutates, so a
  // tripped budget leaves the manager fully consistent. The node charge
  // goes to the budget's atomic counter, shared by every manager attached
  // to it — sharded parallel builds are capped collectively.
  if (budget_ != nullptr) {
    if ((nodes_.size() & 0xfff) == 0) budget_->check("bdd allocation");
    if (!budget_->try_charge_bdd_nodes(1)) {
      throw ys::BudgetExceededError(budget_->node_cap_description());
    }
    ++charged_nodes_;
  }
  if (fault::active()) fault::fire("bdd.make");
  const NodeIndex fresh = static_cast<NodeIndex>(nodes_.size());
  nodes_.push_back({v, low, high});
  unique_table_[slot] = fresh;
  // Resize at 3/4 load to keep probe chains short.
  if (nodes_.size() * 4 > unique_table_.size() * 3) grow_unique_table();
  if (nodes_.size() > op_cache_.size()) maybe_grow_op_cache();
  return fresh;
}

void BddManager::set_budget(const ys::ResourceBudget* budget) {
  if (budget == budget_) return;
  if (budget_ != nullptr) {
    budget_->release_bdd_nodes(charged_nodes_);
    charged_nodes_ = 0;
  }
  budget_ = budget;
  if (budget_ != nullptr) {
    // Charge the existing arena (terminals included) so the cap bounds
    // total nodes, not growth since attachment.
    budget_->charge_bdd_nodes(nodes_.size());
    charged_nodes_ = nodes_.size();
  }
}

GcResult BddManager::collect(std::span<const NodeIndex> roots) {
  const size_t old_size = nodes_.size();
  GcResult res;
  res.remap.assign(old_size, GcResult::kDeadNode);

  // --- Mark everything reachable from the roots. ---
  std::vector<char> live(old_size, 0);
  live[kFalse] = 1;
  live[kTrue] = 1;
  std::vector<NodeIndex> stack;
  stack.reserve(256);
  for (const NodeIndex r : roots) {
    assert(r < old_size);
    if (r > kTrue && live[r] == 0) {
      live[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const BddNode nd = nodes_[stack.back()];
    stack.pop_back();
    if (nd.low > kTrue && live[nd.low] == 0) {
      live[nd.low] = 1;
      stack.push_back(nd.low);
    }
    if (nd.high > kTrue && live[nd.high] == 0) {
      live[nd.high] = 1;
      stack.push_back(nd.high);
    }
  }
  size_t live_count = 0;
  for (const char m : live) live_count += static_cast<unsigned char>(m);

  // --- Pre-allocate every replacement structure before touching the
  // arena, so an allocation failure propagates with the manager intact. ---
  size_t unique_cap = kMinUniqueCapacityAfterGc;
  while (live_count * 4 > unique_cap * 3) unique_cap *= 2;
  std::vector<uint32_t> fresh_table(unique_cap, kEmptySlot);
  size_t op_target = kOpCacheInitial;
  while (op_target < live_count && op_target < kOpCacheMax) op_target *= 2;
  std::vector<CacheEntry> fresh_op(op_target);
  std::vector<Uint128> fresh_memo(live_count, 0);
  std::vector<bool> fresh_memo_valid(live_count, false);

  // --- Compact in place. make() is strictly bottom-up, so children always
  // precede parents in the arena and one ascending pass can rewrite child
  // indices through the remap as it goes. Model-count memo entries ride
  // along: a node's count depends only on its (unchanged) semantics. ---
  res.remap[kFalse] = kFalse;
  res.remap[kTrue] = kTrue;
  const size_t memo_limit = std::min(count_memo_.size(), old_size);
  NodeIndex next = 2;
  for (NodeIndex i = 2; i < old_size; ++i) {
    if (live[i] == 0) continue;
    const BddNode nd = nodes_[i];
    nodes_[next] = {nd.var, res.remap[nd.low], res.remap[nd.high]};
    if (i < memo_limit && count_memo_valid_[i]) {
      fresh_memo[next] = count_memo_[i];
      fresh_memo_valid[next] = true;
    }
    res.remap[i] = next;
    ++next;
  }
  nodes_.resize(next);

  // --- Rebuild the unique table at right-sized capacity (one pass, no
  // doubling cascade on the way back up). ---
  const uint64_t mask = unique_cap - 1;
  for (NodeIndex i = 2; i < next; ++i) {
    const BddNode& n = nodes_[i];
    uint64_t slot = hash_triple(n.var, n.low, n.high) & mask;
    while (fresh_table[slot] != kEmptySlot) slot = (slot + 1) & mask;
    fresh_table[slot] = i;
  }
  unique_table_ = std::move(fresh_table);
  unique_mask_ = mask;

  // --- Operation caches key on old indices: replace them. The apply
  // cache is also right-sized back down so post-GC phases don't drag a
  // cache grown for the pre-GC peak. ---
  op_cache_ = std::move(fresh_op);
  op_cache_mask_ = op_target - 1;
  std::fill(neg_cache_.begin(), neg_cache_.end(), CacheEntry{});
  resize_base_hits_ = cache_stats_.hits;
  resize_base_misses_ = cache_stats_.misses;
  count_memo_ = std::move(fresh_memo);
  count_memo_valid_ = std::move(fresh_memo_valid);

  // --- Hand the freed node charge back to the shared budget so sibling
  // shard managers can use the headroom. ---
  const size_t reclaimed = old_size - next;
  if (budget_ != nullptr && reclaimed > 0) {
    const size_t release = std::min(charged_nodes_, reclaimed);
    budget_->release_bdd_nodes(release);
    charged_nodes_ -= release;
  }
  live_after_gc_ = next;
  ++gc_runs_;
  gc_reclaimed_ += reclaimed;
  res.live_nodes = next;
  res.reclaimed = reclaimed;
  return res;
}

Bdd BddManager::var(Var v) {
  assert(v < num_vars_);
  return {this, make(v, kFalse, kTrue)};
}

Bdd BddManager::nvar(Var v) {
  assert(v < num_vars_);
  return {this, make(v, kTrue, kFalse)};
}

Bdd BddManager::cube(std::span<const Var> vars, const std::vector<bool>& bits) {
  assert(vars.size() == bits.size());
  // Build bottom-up in descending variable order for linear-time construction.
  std::vector<std::pair<Var, bool>> sorted;
  sorted.reserve(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) sorted.emplace_back(vars[i], bits[i]);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  NodeIndex acc = kTrue;
  for (const auto& [v, bit] : sorted) {
    acc = bit ? make(v, kFalse, acc) : make(v, acc, kFalse);
  }
  return {this, acc};
}

NodeIndex BddManager::apply(Op op, NodeIndex a, NodeIndex b) {
  return apply_rec(op, a, b);
}

NodeIndex BddManager::apply_rec(Op op, NodeIndex a, NodeIndex b) {
  // Terminal shortcuts.
  switch (op) {
    case Op::And:
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
      if (a == b) return a;
      if (a > b) std::swap(a, b);  // commutative: canonicalize for cache
      break;
    case Op::Or:
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return a;
      if (a > b) std::swap(a, b);
      break;
    case Op::Xor:
      if (a == b) return kFalse;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a > b) std::swap(a, b);
      break;
    case Op::Diff:
      if (a == kFalse || b == kTrue) return kFalse;
      if (a == b) return kFalse;
      if (b == kFalse) return a;
      break;
  }

  // Injective packing: op in bits 62-63, a in bits 31-61, b in bits 0-30.
  // Node indices stay far below 2^31 in practice; assert in debug builds.
  assert(a < (1u << 31) && b < (1u << 31));
  const uint64_t key = (static_cast<uint64_t>(op) << 62) |
                       (static_cast<uint64_t>(a) << 31) | static_cast<uint64_t>(b);
  const uint64_t slot = (key * kGolden >> 32) & op_cache_mask_;
  if (cache_enabled_) {
    const CacheEntry& e = op_cache_[slot];
    if (e.key == key) {
      ++cache_stats_.hits;
      return e.result;
    }
    ++cache_stats_.misses;
  }

  const Var la = level(a);
  const Var lb = level(b);
  const Var top = la < lb ? la : lb;
  const NodeIndex a_low = la == top ? nodes_[a].low : a;
  const NodeIndex a_high = la == top ? nodes_[a].high : a;
  const NodeIndex b_low = lb == top ? nodes_[b].low : b;
  const NodeIndex b_high = lb == top ? nodes_[b].high : b;

  const NodeIndex low = apply_rec(op, a_low, b_low);
  const NodeIndex high = apply_rec(op, a_high, b_high);
  const NodeIndex result = make(top, low, high);

  // make() may have resized the cache; recompute the slot before storing.
  if (cache_enabled_) op_cache_[(key * kGolden >> 32) & op_cache_mask_] = {key, result};
  return result;
}

NodeIndex BddManager::negate(NodeIndex a) { return negate_rec(a); }

NodeIndex BddManager::negate_rec(NodeIndex a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  const uint64_t slot =
      (static_cast<uint64_t>(a) * kGolden >> 32) & neg_cache_mask_;
  if (cache_enabled_) {
    const CacheEntry& e = neg_cache_[slot];
    if (e.key == a) {
      ++neg_stats_.hits;
      return e.result;
    }
    ++neg_stats_.misses;
  }
  const BddNode nd = nodes_[a];
  const NodeIndex low = negate_rec(nd.low);
  const NodeIndex high = negate_rec(nd.high);
  const NodeIndex result = make(nd.var, low, high);
  if (cache_enabled_) {
    neg_cache_[slot] = {a, result};
    // Negation is an involution: prime the reverse direction too, so
    // round-trips (covered = NOT uncovered = NOT NOT covered) stay O(1).
    neg_cache_[(static_cast<uint64_t>(result) * kGolden >> 32) & neg_cache_mask_] = {
        result, a};
  }
  return result;
}

Uint128 BddManager::count_index(NodeIndex a) {
  if (count_memo_.size() < nodes_.size()) {
    count_memo_.resize(nodes_.size(), 0);
    count_memo_valid_.resize(nodes_.size(), false);
  }
  // Iterative post-order to avoid deep recursion on wide header spaces.
  // c(n) = c(low)*2^(level(low)-level(n)-1) + c(high)*2^(level(high)-level(n)-1)
  // with c(false)=0, c(true)=1; final count scales by 2^level(root).
  struct Frame {
    NodeIndex n;
    bool expanded;
  };
  std::vector<Frame> stack{{a, false}};
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (n == kFalse || n == kTrue) continue;
    if (count_memo_valid_[n]) continue;
    const BddNode& nd = nodes_[n];
    if (!expanded) {
      stack.push_back({n, true});
      stack.push_back({nd.low, false});
      stack.push_back({nd.high, false});
      continue;
    }
    const auto sub = [&](NodeIndex child) -> Uint128 {
      Uint128 c;
      if (child == kFalse) {
        c = 0;
      } else if (child == kTrue) {
        c = 1;
      } else {
        c = count_memo_[child];
      }
      return c << (level(child) - nd.var - 1);
    };
    count_memo_[n] = sub(nd.low) + sub(nd.high);
    count_memo_valid_[n] = true;
  }
  Uint128 base;
  if (a == kFalse) {
    base = 0;
  } else if (a == kTrue) {
    base = 1;
  } else {
    base = count_memo_[a];
  }
  return base << level(a);
}

Bdd BddManager::exists(const Bdd& f, const std::vector<bool>& quantified) {
  assert(f.manager() == this);
  assert(quantified.size() >= num_vars_);
  std::vector<NodeIndex> memo(nodes_.size(), kEmptySlot);
  return {this, exists_rec(f.index(), quantified, memo)};
}

NodeIndex BddManager::exists_rec(NodeIndex f, const std::vector<bool>& quantified,
                                 std::vector<NodeIndex>& memo) {
  if (f <= kTrue) return f;
  if (memo[f] != kEmptySlot) return memo[f];
  const BddNode nd = nodes_[f];
  const NodeIndex low = exists_rec(nd.low, quantified, memo);
  const NodeIndex high = exists_rec(nd.high, quantified, memo);
  // Note: make() may grow nodes_, so memo is indexed by the *input* node id,
  // which is stable. memo may be smaller than nodes_ after growth; only
  // original nodes are memoized, which is all we look up.
  const NodeIndex result = quantified[nd.var] ? apply(Op::Or, low, high)
                                              : make(nd.var, low, high);
  memo[f] = result;
  return result;
}

Bdd BddManager::restrict_var(const Bdd& f, Var v, bool value) {
  assert(f.manager() == this);
  std::vector<NodeIndex> memo(nodes_.size(), kEmptySlot);
  return {this, restrict_rec(f.index(), v, value, memo)};
}

NodeIndex BddManager::restrict_rec(NodeIndex f, Var v, bool value,
                                   std::vector<NodeIndex>& memo) {
  if (f <= kTrue) return f;
  const BddNode nd = nodes_[f];
  if (nd.var > v) return f;  // v does not appear below this level
  if (nd.var == v) return value ? nd.high : nd.low;
  if (memo[f] != kEmptySlot) return memo[f];
  const NodeIndex low = restrict_rec(nd.low, v, value, memo);
  const NodeIndex high = restrict_rec(nd.high, v, value, memo);
  const NodeIndex result = make(nd.var, low, high);
  memo[f] = result;
  return result;
}

std::vector<bool> BddManager::pick_one(const Bdd& f) {
  assert(f.manager() == this && !f.is_false());
  std::vector<bool> assignment(num_vars_, false);
  NodeIndex n = f.index();
  while (n > kTrue) {
    const BddNode& nd = nodes_[n];
    if (nd.low != kFalse) {
      assignment[nd.var] = false;
      n = nd.low;
    } else {
      assignment[nd.var] = true;
      n = nd.high;
    }
  }
  return assignment;
}

std::vector<Var> BddManager::support(const Bdd& f) {
  std::vector<bool> present(num_vars_, false);
  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack{f.index()};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (n <= kTrue || !seen.insert(n).second) continue;
    present[nodes_[n].var] = true;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  std::vector<Var> result;
  for (Var v = 0; v < num_vars_; ++v) {
    if (present[v]) result.push_back(v);
  }
  return result;
}

bool BddManager::evaluate(const Bdd& f, const std::vector<bool>& assignment) const {
  assert(assignment.size() >= num_vars_);
  NodeIndex n = f.index();
  while (n > kTrue) {
    const BddNode& nd = nodes_[n];
    n = assignment[nd.var] ? nd.high : nd.low;
  }
  return n == kTrue;
}

std::string BddManager::to_dot(const Bdd& f) {
  std::ostringstream out;
  out << "digraph bdd {\n";
  out << "  node0 [label=\"0\", shape=box];\n  node1 [label=\"1\", shape=box];\n";
  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack{f.index()};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (n <= kTrue || !seen.insert(n).second) continue;
    const BddNode& nd = nodes_[n];
    out << "  node" << n << " [label=\"x" << nd.var << "\"];\n";
    out << "  node" << n << " -> node" << nd.low << " [style=dashed];\n";
    out << "  node" << n << " -> node" << nd.high << ";\n";
    stack.push_back(nd.low);
    stack.push_back(nd.high);
  }
  out << "}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// NodeIndexMap
// ---------------------------------------------------------------------------

NodeIndexMap::NodeIndexMap(size_t initial_capacity) {
  size_t capacity = 16;
  while (capacity < initial_capacity) capacity *= 2;
  entries_.assign(capacity, Entry{});
  mask_ = capacity - 1;
}

const NodeIndex* NodeIndexMap::find(NodeIndex key) const {
  size_t slot = slot_of(key);
  while (true) {
    const Entry& e = entries_[slot];
    if (e.key == key) return &e.value;
    if (e.key == kEmptySlot) return nullptr;
    slot = (slot + 1) & mask_;
  }
}

void NodeIndexMap::insert(NodeIndex key, NodeIndex value) {
  assert(key != kEmptySlot);
  if ((size_ + 1) * 4 > entries_.size() * 3) grow();
  size_t slot = slot_of(key);
  while (entries_[slot].key != kEmptySlot) {
    assert(entries_[slot].key != key);  // callers probe with find() first
    slot = (slot + 1) & mask_;
  }
  entries_[slot] = {key, value};
  ++size_;
}

void NodeIndexMap::grow() {
  std::vector<Entry> old = std::move(entries_);
  entries_.assign(old.size() * 2, Entry{});
  mask_ = entries_.size() - 1;
  for (const Entry& e : old) {
    if (e.key == kEmptySlot) continue;
    size_t slot = slot_of(e.key);
    while (entries_[slot].key != kEmptySlot) slot = (slot + 1) & mask_;
    entries_[slot] = e;
  }
}

void NodeIndexMap::remap_values(const GcResult& gc) {
  size_t survivors = 0;
  for (const Entry& e : entries_) {
    if (e.key != kEmptySlot && gc.map(e.value) != GcResult::kDeadNode) ++survivors;
  }
  size_t capacity = 16;
  while (survivors * 4 > capacity * 3) capacity *= 2;
  std::vector<Entry> old = std::move(entries_);
  entries_.assign(capacity, Entry{});
  mask_ = capacity - 1;
  size_ = 0;
  for (const Entry& e : old) {
    if (e.key == kEmptySlot) continue;
    const NodeIndex renumbered = gc.map(e.value);
    if (renumbered == GcResult::kDeadNode) continue;  // re-imported on next use
    size_t slot = slot_of(e.key);
    while (entries_[slot].key != kEmptySlot) slot = (slot + 1) & mask_;
    entries_[slot] = {e.key, renumbered};
    ++size_;
  }
}

// ---------------------------------------------------------------------------
// Cross-manager import
// ---------------------------------------------------------------------------

BddImporter::BddImporter(BddManager& dst, const BddManager& src) : dst_(dst), src_(src) {
  if (dst.num_vars() != src.num_vars()) {
    throw ys::InvalidInputError("BddImporter requires matching variable universes");
  }
}

NodeIndex BddImporter::import_index(NodeIndex root) {
  if (root <= kTrue) return root;  // terminals share indices everywhere
  if (const NodeIndex* hit = memo_.find(root)) return *hit;
  // Copy the fields before recursing: dst_.make() may be src_ itself in
  // degenerate uses, and recursion must not hold a reference into a
  // vector that can reallocate.
  const BddNode nd = src_.node(root);
  const NodeIndex low = import_index(nd.low);
  const NodeIndex high = import_index(nd.high);
  const NodeIndex out = dst_.make(nd.var, low, high);
  memo_.insert(root, out);
  return out;
}

Bdd BddImporter::import(const Bdd& f) {
  if (!f.valid()) return {};
  assert(f.manager() == &src_ || f.manager() == &dst_);
  if (f.manager() == &dst_) return f;
  return {&dst_, import_index(f.index())};
}

}  // namespace yardstick::bdd
