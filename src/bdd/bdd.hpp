// A from-scratch reduced, ordered binary decision diagram (ROBDD) engine.
//
// This is the packet-set substrate for the whole library: every PacketSet
// operation in the paper's Figure 5 (empty/negate/union/intersect/equal/
// fromRule/count) lowers onto this engine. The design follows classic
// BDD-package practice (Brace-Rudell-Bryant):
//
//   * nodes live in a single arena, identified by 32-bit indices;
//   * a hash-consing "unique table" guarantees canonicity, so semantic
//     equality of packet sets is pointer (index) equality;
//   * binary boolean operations run through a memoized apply() with a
//     direct-mapped operation cache that grows with the arena;
//   * negation runs through a dedicated complement memo so (f, NOT f)
//     pairs never pollute the binary-op cache;
//   * model counting is exact over the manager's fixed variable universe,
//     using 128-bit integers (the header space is 104 bits wide).
//
// Garbage collection is explicit and phase-boundary: collect() mark-compacts
// the arena against a caller-provided root set and returns an index remap
// for the caller's surviving handles. There is no automatic reference
// counting — Yardstick's builders own every live handle of their private
// managers, so root discovery is a walk over the results built so far (see
// packet::GcRootTracker). Managers used as long-lived primaries (holding
// handles the engine does not own, e.g. traces) are simply never collected.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bdd/uint128.hpp"
#include "common/budget.hpp"

namespace yardstick::bdd {

/// Index of a node in the manager's arena. Indices 0 and 1 are the
/// constant false/true terminals.
using NodeIndex = uint32_t;

inline constexpr NodeIndex kFalse = 0;
inline constexpr NodeIndex kTrue = 1;

/// Boolean variable index; variable 0 is closest to the root.
using Var = uint32_t;

class BddManager;

/// Value-semantics handle to a BDD rooted at some node of a manager.
///
/// Handles are cheap to copy (pointer + index). All boolean operators are
/// provided; two handles from the same manager compare equal iff they
/// denote the same boolean function (canonicity of the ROBDD).
class Bdd {
 public:
  Bdd() = default;
  Bdd(BddManager* mgr, NodeIndex idx) : mgr_(mgr), idx_(idx) {}

  [[nodiscard]] NodeIndex index() const { return idx_; }
  [[nodiscard]] BddManager* manager() const { return mgr_; }
  [[nodiscard]] bool is_false() const { return idx_ == kFalse; }
  [[nodiscard]] bool is_true() const { return idx_ == kTrue; }
  [[nodiscard]] bool valid() const { return mgr_ != nullptr; }

  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  /// Set difference: *this AND NOT o.
  Bdd operator-(const Bdd& o) const;
  Bdd operator!() const;

  Bdd& operator&=(const Bdd& o) { return *this = *this & o; }
  Bdd& operator|=(const Bdd& o) { return *this = *this | o; }
  Bdd& operator^=(const Bdd& o) { return *this = *this ^ o; }
  Bdd& operator-=(const Bdd& o) { return *this = *this - o; }

  bool operator==(const Bdd& o) const { return mgr_ == o.mgr_ && idx_ == o.idx_; }
  bool operator!=(const Bdd& o) const { return !(*this == o); }

  /// True iff this function implies (is a subset of) `o`.
  [[nodiscard]] bool implies(const Bdd& o) const;

  /// Number of satisfying assignments over the manager's full variable set.
  [[nodiscard]] Uint128 count() const;

  /// Number of distinct arena nodes reachable from this root (incl. terminals).
  [[nodiscard]] size_t node_count() const;

 private:
  BddManager* mgr_ = nullptr;
  NodeIndex idx_ = kFalse;
};

/// One arena node: a decision on `var` with else/then branches.
struct BddNode {
  Var var;
  NodeIndex low;
  NodeIndex high;
};

/// Result of one mark-compact collection: the old-index -> new-index map
/// callers use to fix up every handle they held across the collect() call.
/// Collected (dead) nodes map to kDeadNode; terminals map to themselves.
struct GcResult {
  static constexpr NodeIndex kDeadNode = UINT32_MAX;

  size_t live_nodes = 0;  ///< arena size after compaction (incl. terminals)
  size_t reclaimed = 0;   ///< nodes freed by this collection
  std::vector<NodeIndex> remap;  ///< indexed by pre-collection NodeIndex

  /// New index of a pre-collection node (kDeadNode if it was collected).
  [[nodiscard]] NodeIndex map(NodeIndex old_index) const { return remap[old_index]; }
};

/// Owner of the node arena, unique table and operation caches.
///
/// A manager is constructed with a fixed variable count; all counting is
/// relative to that universe. Managers are not thread-safe; Yardstick uses
/// one per analysis (plus short-lived per-worker shards).
class BddManager {
 public:
  /// @param num_vars size of the variable universe (max 120 so that
  ///        counts fit in 128 bits).
  explicit BddManager(Var num_vars);

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  [[nodiscard]] Var num_vars() const { return num_vars_; }

  [[nodiscard]] Bdd zero() { return {this, kFalse}; }
  [[nodiscard]] Bdd one() { return {this, kTrue}; }
  /// Single positive literal x_v.
  [[nodiscard]] Bdd var(Var v);
  /// Single negative literal NOT x_v.
  [[nodiscard]] Bdd nvar(Var v);

  /// Conjunction of literals: bits[i] gives the polarity of vars[i].
  [[nodiscard]] Bdd cube(std::span<const Var> vars, const std::vector<bool>& bits);

  /// Existentially quantify away every variable v with quantified[v] == true.
  [[nodiscard]] Bdd exists(const Bdd& f, const std::vector<bool>& quantified);

  /// Restrict variable v to a constant value in f (Shannon cofactor).
  [[nodiscard]] Bdd restrict_var(const Bdd& f, Var v, bool value);

  /// One (arbitrary) satisfying assignment; unconstrained variables get
  /// false. Precondition: f is satisfiable.
  [[nodiscard]] std::vector<bool> pick_one(const Bdd& f);

  /// Variables on which f actually depends.
  [[nodiscard]] std::vector<Var> support(const Bdd& f);

  /// Graphviz dump for debugging small functions.
  [[nodiscard]] std::string to_dot(const Bdd& f);

  /// Evaluate f under a complete assignment.
  [[nodiscard]] bool evaluate(const Bdd& f, const std::vector<bool>& assignment) const;

  /// Total nodes currently in the arena (diagnostic).
  [[nodiscard]] size_t arena_size() const { return nodes_.size(); }

  /// Direct-mapped operation cache statistics (diagnostic / ablation).
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const { return cache_stats_; }

  /// Aggregate engine statistics for the observability layer. Maintained
  /// with plain (non-atomic) members — a manager is single-threaded — and
  /// sampled into the obs metrics registry at phase boundaries, so the
  /// BDD hot path carries zero instrumentation cost.
  struct Stats {
    size_t arena_nodes = 0;          ///< nodes currently in the arena
    uint64_t cache_hits = 0;         ///< apply-cache hits
    uint64_t cache_misses = 0;       ///< apply-cache misses
    uint64_t unique_table_growths = 0;  ///< rehash/double events
    uint64_t gc_runs = 0;               ///< mark-compact collections
    uint64_t gc_reclaimed_nodes = 0;    ///< dead nodes reclaimed across all GCs
    uint64_t op_cache_growths = 0;      ///< adaptive apply-cache resizes
    size_t op_cache_entries = 0;        ///< current apply-cache capacity
    uint64_t neg_cache_hits = 0;        ///< complement-memo hits
    uint64_t neg_cache_misses = 0;      ///< complement-memo misses
    /// Hit fraction in [0,1]; 0 when no lookups happened yet.
    [[nodiscard]] double cache_hit_rate() const {
      const uint64_t total = cache_hits + cache_misses;
      return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
    }
  };
  [[nodiscard]] Stats stats() const {
    return {nodes_.size(),     cache_stats_.hits,  cache_stats_.misses,
            table_growths_,    gc_runs_,           gc_reclaimed_,
            op_cache_growths_, op_cache_.size(),   neg_stats_.hits,
            neg_stats_.misses};
  }

  /// Disable the apply cache (ablation only; quadratic blow-ups expected).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  // --- Phase-boundary mark-compact garbage collection ---

  /// Everything allocated since the last collection counts as potentially
  /// dead; gc_due() fires when that upper bound on the dead fraction
  /// reaches the configured threshold, so collection work is amortized
  /// O(1) per allocation regardless of how often callers poll.
  static constexpr size_t kDefaultGcMinArena = 4096;

  /// Arm (or disarm) the collection trigger. `dead_fraction` in (0, 1):
  /// gc_due() fires once at least that fraction of the arena was allocated
  /// since the last collection; 0 disarms; 1.0 keeps the machinery armed
  /// but never triggers (used to measure the bookkeeping overhead).
  /// `min_arena` suppresses collections of arenas too small to matter.
  void set_gc_threshold(double dead_fraction, size_t min_arena = kDefaultGcMinArena) {
    gc_threshold_ = dead_fraction;
    gc_min_arena_ = min_arena;
  }
  [[nodiscard]] double gc_threshold() const { return gc_threshold_; }

  /// Cheap trigger probe for builders' inner loops (no marking involved).
  [[nodiscard]] bool gc_due() const {
    if (gc_threshold_ <= 0.0 || nodes_.size() < gc_min_arena_) return false;
    const size_t grown = nodes_.size() - (live_after_gc_ < nodes_.size()
                                              ? live_after_gc_
                                              : nodes_.size());
    return static_cast<double>(grown) >=
           gc_threshold_ * static_cast<double>(nodes_.size());
  }

  /// Mark-compact collection. Marks every node reachable from `roots`,
  /// compacts the arena in place (renumbering survivors), rebuilds the
  /// unique table at right-sized capacity, rebuilds the model-count memo
  /// for survivors, clears the operation caches (their keys are old
  /// indices), and releases the freed node charge back to the attached
  /// ResourceBudget. Returns the remap callers MUST use to fix up every
  /// handle they held across the call — any unremapped NodeIndex (and any
  /// Bdd handle wrapping one) is invalid afterwards. BddImporters whose
  /// destination is this manager must be rekeyed (rekey_destination) or
  /// discarded; importers whose *source* is this manager must be discarded.
  GcResult collect(std::span<const NodeIndex> roots);

  /// Attach a resource budget (non-owning; nullptr = detach). The node
  /// cap is enforced on every fresh allocation; the deadline and cancel
  /// flag are polled every few thousand allocations. On a tripped budget,
  /// make() throws ys::BudgetExceededError / ys::CancelledError *before*
  /// mutating the arena, so the manager stays valid and callers can
  /// degrade to partial results.
  ///
  /// Node accounting is *global across managers*: attaching charges the
  /// current arena size against the budget's atomic node counter and every
  /// fresh allocation charges one more, so sharded per-thread managers
  /// sharing one budget are capped collectively. Detaching (nullptr, or
  /// attaching a different budget) releases this manager's charge, and
  /// collect() releases the charge of every node it reclaims. The budget
  /// must stay alive while attached.
  void set_budget(const ys::ResourceBudget* budget);
  [[nodiscard]] const ys::ResourceBudget* budget() const { return budget_; }

  // --- Internal index-level API (used by Bdd operators; public so that
  // free functions and tests can drive the engine directly). ---
  enum class Op : uint8_t { And = 0, Or = 1, Xor = 2, Diff = 3 };

  NodeIndex apply(Op op, NodeIndex a, NodeIndex b);
  /// Complement through the dedicated negation memo (never the apply cache).
  NodeIndex negate(NodeIndex a);
  [[nodiscard]] const BddNode& node(NodeIndex i) const { return nodes_[i]; }
  Uint128 count_index(NodeIndex a);
  NodeIndex make(Var v, NodeIndex low, NodeIndex high);

  /// Pre-size the arena and unique table for `expected` additional nodes,
  /// so a bulk rebuild (deserializing a trace or cache artifact, whose
  /// node count is in the header) pays one table rehash instead of a
  /// doubling cascade.
  void reserve_nodes(size_t expected);

 private:
  struct CacheEntry {
    uint64_t key = UINT64_MAX;  // packed (op, a, b); UINT64_MAX = empty
    NodeIndex result = kFalse;
  };

  NodeIndex apply_rec(Op op, NodeIndex a, NodeIndex b);
  NodeIndex negate_rec(NodeIndex a);
  NodeIndex exists_rec(NodeIndex f, const std::vector<bool>& quantified,
                       std::vector<NodeIndex>& memo);
  NodeIndex restrict_rec(NodeIndex f, Var v, bool value,
                         std::vector<NodeIndex>& memo);
  [[nodiscard]] Var level(NodeIndex i) const {
    return i <= kTrue ? num_vars_ : nodes_[i].var;
  }
  /// Rebuild the unique table at exactly `new_capacity` (a power of two),
  /// reinserting every current slot. One rehash, whatever the old size.
  void rehash_unique_table(size_t new_capacity);
  void grow_unique_table();
  /// Adaptive apply-cache sizing: once the arena outgrows the cache and
  /// the hit rate since the last resize says the cache is actually
  /// thrashing, double it (re-slotting live entries) up to kOpCacheMax.
  void maybe_grow_op_cache();
  [[nodiscard]] static uint64_t hash_triple(Var v, NodeIndex lo, NodeIndex hi);

  Var num_vars_;
  std::vector<BddNode> nodes_;

  // Open-addressing unique table over node indices; kEmptySlot marks free.
  static constexpr uint32_t kEmptySlot = UINT32_MAX;
  std::vector<uint32_t> unique_table_;
  uint64_t unique_mask_ = 0;

  std::vector<CacheEntry> op_cache_;
  uint64_t op_cache_mask_ = 0;
  bool cache_enabled_ = true;
  CacheStats cache_stats_;
  // Apply-cache stats at the last resize/collection: the window since then
  // is what the adaptive-growth heuristic judges.
  uint64_t resize_base_hits_ = 0;
  uint64_t resize_base_misses_ = 0;
  uint64_t op_cache_growths_ = 0;

  // Dedicated complement memo (f <-> NOT f), keyed by node index. Both
  // directions are inserted on a miss (negation is an involution).
  std::vector<CacheEntry> neg_cache_;
  uint64_t neg_cache_mask_ = 0;
  CacheStats neg_stats_;

  uint64_t table_growths_ = 0;
  const ys::ResourceBudget* budget_ = nullptr;
  // Nodes this manager has charged against budget_ (released on detach
  // and, for reclaimed nodes, by collect()).
  size_t charged_nodes_ = 0;

  // GC trigger state.
  double gc_threshold_ = 0.0;
  size_t gc_min_arena_ = kDefaultGcMinArena;
  size_t live_after_gc_ = 2;  // arena size right after the last collection
  uint64_t gc_runs_ = 0;
  uint64_t gc_reclaimed_ = 0;

  // Persistent per-node model-count memo (nodes are immutable between
  // collections; collect() carries surviving entries across the remap).
  std::vector<Uint128> count_memo_;
  std::vector<bool> count_memo_valid_;
};

/// Open-addressing NodeIndex -> NodeIndex map (the unique-table idiom:
/// power-of-two capacity, multiplicative hashing, linear probing, growth
/// at 3/4 load). Terminals are never stored, so kFalse can double as the
/// empty-key sentinel via an explicit occupancy convention: a slot is free
/// iff key == kEmptySlot. Backing storage is one flat array of 8-byte
/// entries — no per-node allocation, no pointer chase — which is what the
/// cross-manager merge (a measured hot path of the parallel offline
/// phase) wants from its memo.
class NodeIndexMap {
 public:
  explicit NodeIndexMap(size_t initial_capacity = 1 << 10);

  /// Value stored for `key`, or nullptr. Never invalidated by insert of a
  /// *different* key... but insert may grow the table, so don't hold the
  /// pointer across inserts.
  [[nodiscard]] const NodeIndex* find(NodeIndex key) const;

  /// Insert a key that is not present (importer memos never overwrite).
  void insert(NodeIndex key, NodeIndex value);

  [[nodiscard]] size_t size() const { return size_; }

  /// Rewrite every stored value through a GC remap of the *value* manager:
  /// entries whose value was collected are dropped, survivors are
  /// renumbered. (Keys belong to a different, uncollected manager.)
  void remap_values(const GcResult& gc);

 private:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;
  struct Entry {
    NodeIndex key = kEmptySlot;
    NodeIndex value = kFalse;
  };

  [[nodiscard]] size_t slot_of(NodeIndex key) const {
    return static_cast<size_t>((static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL) >>
                               32) &
           mask_;
  }
  void grow();

  std::vector<Entry> entries_;
  uint64_t mask_ = 0;
  size_t size_ = 0;
};

/// Memoized structural copier between managers ("BDD export/import").
///
/// Recursing over (var, lo, hi) rebuilds a function bottom-up through
/// dst.make(), so the copy is canonical in the destination manager and
/// semantically identical to the source — model counts, implications and
/// equality checks all agree. One importer owns one memo table; reuse it
/// for every root copied from the same source so shared subgraphs are
/// copied exactly once.
///
/// Thread-safety: import() mutates only the destination and *reads* only
/// the source, so many importers (each with its own destination) may share
/// one source concurrently as long as nothing mutates the source — the
/// contract the parallel offline phase relies on when per-thread shards
/// pull inputs from the engine's primary manager.
///
/// Garbage collection: when the *destination* manager is collected, call
/// rekey_destination() with the remap so the memo follows the renumbering
/// (entries whose copy died are dropped and simply re-imported on next
/// use). Collecting the *source* invalidates the importer entirely.
class BddImporter {
 public:
  /// Both managers must share the same variable universe.
  BddImporter(BddManager& dst, const BddManager& src);

  BddImporter(const BddImporter&) = delete;
  BddImporter& operator=(const BddImporter&) = delete;

  /// Copy `f` (rooted in the source manager) into the destination;
  /// invalid handles pass through unchanged.
  [[nodiscard]] Bdd import(const Bdd& f);
  [[nodiscard]] NodeIndex import_index(NodeIndex root);

  /// Distinct source nodes copied so far (shared subgraphs count once) —
  /// the cross-manager import volume the observability layer reports.
  [[nodiscard]] size_t imported_nodes() const { return memo_.size(); }

  /// Follow a destination-manager collection: drop memo entries whose
  /// copies were reclaimed, renumber the survivors.
  void rekey_destination(const GcResult& gc) { memo_.remap_values(gc); }

  [[nodiscard]] BddManager& destination() const { return dst_; }
  [[nodiscard]] const BddManager& source() const { return src_; }

 private:
  BddManager& dst_;
  const BddManager& src_;
  NodeIndexMap memo_;
};

/// RAII budget attachment: attaches on construction, detaches on scope
/// exit (returning the manager's node charge to the shared pool). The
/// parallel offline phase wraps every short-lived shard manager in one of
/// these so node accounting stays balanced on every exit path.
class ScopedBudget {
 public:
  ScopedBudget(BddManager& mgr, const ys::ResourceBudget* budget) : mgr_(mgr) {
    if (budget != nullptr) mgr_.set_budget(budget);
  }
  ~ScopedBudget() { mgr_.set_budget(nullptr); }

  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;

 private:
  BddManager& mgr_;
};

}  // namespace yardstick::bdd
