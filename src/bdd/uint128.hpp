// Helpers for 128-bit unsigned integers used for exact packet-set model
// counts. The packet header space is 104 bits wide, so counts can reach
// 2^104 — beyond uint64_t but comfortably inside unsigned __int128.
#pragma once

#include <cstdint>
#include <string>

namespace yardstick::bdd {

using Uint128 = unsigned __int128;

/// Render a 128-bit unsigned integer in decimal (no standard operator<<).
inline std::string to_string(Uint128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.push_back(static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  return {out.rbegin(), out.rend()};
}

/// Lossy conversion for ratio computations (coverage fractions).
inline double to_double(Uint128 v) {
  return static_cast<double>(static_cast<uint64_t>(v >> 64)) * 18446744073709551616.0 +
         static_cast<double>(static_cast<uint64_t>(v));
}

/// v / 2^k as a double, exact enough for coverage ratios in [0,1].
inline double ratio(Uint128 numer, Uint128 denom) {
  if (denom == 0) return 0.0;
  return to_double(numer) / to_double(denom);
}

/// 2^k for k <= 127.
inline Uint128 pow2(unsigned k) { return static_cast<Uint128>(1) << k; }

}  // namespace yardstick::bdd
