# Empty dependencies file for yardstick.
# This may be replaced when dependencies are built.
