file(REMOVE_RECURSE
  "CMakeFiles/yardstick.dir/yardstick_cli.cpp.o"
  "CMakeFiles/yardstick.dir/yardstick_cli.cpp.o.d"
  "yardstick"
  "yardstick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yardstick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
