file(REMOVE_RECURSE
  "CMakeFiles/bench_metric_computation.dir/bench_metric_computation.cpp.o"
  "CMakeFiles/bench_metric_computation.dir/bench_metric_computation.cpp.o.d"
  "bench_metric_computation"
  "bench_metric_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metric_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
