# Empty dependencies file for bench_metric_computation.
# This may be replaced when dependencies are built.
