
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_case_study.cpp" "bench/CMakeFiles/bench_case_study.dir/bench_case_study.cpp.o" "gcc" "bench/CMakeFiles/bench_case_study.dir/bench_case_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/ys_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/ys_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/yardstick/CMakeFiles/ys_yardstick.dir/DependInfo.cmake"
  "/root/repo/build/src/nettest/CMakeFiles/ys_nettest.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ys_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/ys_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/ys_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/ys_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ys_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
