# Empty compiler generated dependencies file for bench_packetset_ops.
# This may be replaced when dependencies are built.
