file(REMOVE_RECURSE
  "CMakeFiles/bench_packetset_ops.dir/bench_packetset_ops.cpp.o"
  "CMakeFiles/bench_packetset_ops.dir/bench_packetset_ops.cpp.o.d"
  "bench_packetset_ops"
  "bench_packetset_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packetset_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
