file(REMOVE_RECURSE
  "libys_yardstick.a"
)
