file(REMOVE_RECURSE
  "CMakeFiles/ys_yardstick.dir/analysis.cpp.o"
  "CMakeFiles/ys_yardstick.dir/analysis.cpp.o.d"
  "CMakeFiles/ys_yardstick.dir/engine.cpp.o"
  "CMakeFiles/ys_yardstick.dir/engine.cpp.o.d"
  "CMakeFiles/ys_yardstick.dir/json.cpp.o"
  "CMakeFiles/ys_yardstick.dir/json.cpp.o.d"
  "CMakeFiles/ys_yardstick.dir/persist.cpp.o"
  "CMakeFiles/ys_yardstick.dir/persist.cpp.o.d"
  "CMakeFiles/ys_yardstick.dir/report.cpp.o"
  "CMakeFiles/ys_yardstick.dir/report.cpp.o.d"
  "CMakeFiles/ys_yardstick.dir/snapshot.cpp.o"
  "CMakeFiles/ys_yardstick.dir/snapshot.cpp.o.d"
  "libys_yardstick.a"
  "libys_yardstick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_yardstick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
