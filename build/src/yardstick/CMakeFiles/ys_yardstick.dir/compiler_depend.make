# Empty compiler generated dependencies file for ys_yardstick.
# This may be replaced when dependencies are built.
