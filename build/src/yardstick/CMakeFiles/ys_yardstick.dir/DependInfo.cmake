
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yardstick/analysis.cpp" "src/yardstick/CMakeFiles/ys_yardstick.dir/analysis.cpp.o" "gcc" "src/yardstick/CMakeFiles/ys_yardstick.dir/analysis.cpp.o.d"
  "/root/repo/src/yardstick/engine.cpp" "src/yardstick/CMakeFiles/ys_yardstick.dir/engine.cpp.o" "gcc" "src/yardstick/CMakeFiles/ys_yardstick.dir/engine.cpp.o.d"
  "/root/repo/src/yardstick/json.cpp" "src/yardstick/CMakeFiles/ys_yardstick.dir/json.cpp.o" "gcc" "src/yardstick/CMakeFiles/ys_yardstick.dir/json.cpp.o.d"
  "/root/repo/src/yardstick/persist.cpp" "src/yardstick/CMakeFiles/ys_yardstick.dir/persist.cpp.o" "gcc" "src/yardstick/CMakeFiles/ys_yardstick.dir/persist.cpp.o.d"
  "/root/repo/src/yardstick/report.cpp" "src/yardstick/CMakeFiles/ys_yardstick.dir/report.cpp.o" "gcc" "src/yardstick/CMakeFiles/ys_yardstick.dir/report.cpp.o.d"
  "/root/repo/src/yardstick/snapshot.cpp" "src/yardstick/CMakeFiles/ys_yardstick.dir/snapshot.cpp.o" "gcc" "src/yardstick/CMakeFiles/ys_yardstick.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coverage/CMakeFiles/ys_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/ys_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/ys_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/ys_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ys_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
