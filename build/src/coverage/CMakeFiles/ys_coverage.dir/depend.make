# Empty dependencies file for ys_coverage.
# This may be replaced when dependencies are built.
