
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coverage/components.cpp" "src/coverage/CMakeFiles/ys_coverage.dir/components.cpp.o" "gcc" "src/coverage/CMakeFiles/ys_coverage.dir/components.cpp.o.d"
  "/root/repo/src/coverage/covered_sets.cpp" "src/coverage/CMakeFiles/ys_coverage.dir/covered_sets.cpp.o" "gcc" "src/coverage/CMakeFiles/ys_coverage.dir/covered_sets.cpp.o.d"
  "/root/repo/src/coverage/framework.cpp" "src/coverage/CMakeFiles/ys_coverage.dir/framework.cpp.o" "gcc" "src/coverage/CMakeFiles/ys_coverage.dir/framework.cpp.o.d"
  "/root/repo/src/coverage/path_explorer.cpp" "src/coverage/CMakeFiles/ys_coverage.dir/path_explorer.cpp.o" "gcc" "src/coverage/CMakeFiles/ys_coverage.dir/path_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/ys_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/ys_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/ys_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ys_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
