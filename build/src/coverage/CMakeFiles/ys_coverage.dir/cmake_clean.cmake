file(REMOVE_RECURSE
  "CMakeFiles/ys_coverage.dir/components.cpp.o"
  "CMakeFiles/ys_coverage.dir/components.cpp.o.d"
  "CMakeFiles/ys_coverage.dir/covered_sets.cpp.o"
  "CMakeFiles/ys_coverage.dir/covered_sets.cpp.o.d"
  "CMakeFiles/ys_coverage.dir/framework.cpp.o"
  "CMakeFiles/ys_coverage.dir/framework.cpp.o.d"
  "CMakeFiles/ys_coverage.dir/path_explorer.cpp.o"
  "CMakeFiles/ys_coverage.dir/path_explorer.cpp.o.d"
  "libys_coverage.a"
  "libys_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
