file(REMOVE_RECURSE
  "libys_coverage.a"
)
