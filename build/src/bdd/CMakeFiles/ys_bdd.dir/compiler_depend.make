# Empty compiler generated dependencies file for ys_bdd.
# This may be replaced when dependencies are built.
