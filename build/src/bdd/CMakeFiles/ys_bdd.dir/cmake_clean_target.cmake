file(REMOVE_RECURSE
  "libys_bdd.a"
)
