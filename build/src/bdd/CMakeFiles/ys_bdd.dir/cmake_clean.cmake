file(REMOVE_RECURSE
  "CMakeFiles/ys_bdd.dir/bdd.cpp.o"
  "CMakeFiles/ys_bdd.dir/bdd.cpp.o.d"
  "libys_bdd.a"
  "libys_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
