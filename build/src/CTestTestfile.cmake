# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("bdd")
subdirs("packet")
subdirs("netmodel")
subdirs("dataplane")
subdirs("routing")
subdirs("topo")
subdirs("coverage")
subdirs("yardstick")
subdirs("nettest")
subdirs("netio")
