# Empty compiler generated dependencies file for ys_netio.
# This may be replaced when dependencies are built.
