file(REMOVE_RECURSE
  "libys_netio.a"
)
