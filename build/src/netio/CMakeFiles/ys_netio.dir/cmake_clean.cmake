file(REMOVE_RECURSE
  "CMakeFiles/ys_netio.dir/network_format.cpp.o"
  "CMakeFiles/ys_netio.dir/network_format.cpp.o.d"
  "libys_netio.a"
  "libys_netio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_netio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
