file(REMOVE_RECURSE
  "libys_netmodel.a"
)
