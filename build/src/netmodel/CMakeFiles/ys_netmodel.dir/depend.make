# Empty dependencies file for ys_netmodel.
# This may be replaced when dependencies are built.
