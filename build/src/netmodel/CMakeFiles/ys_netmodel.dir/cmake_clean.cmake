file(REMOVE_RECURSE
  "CMakeFiles/ys_netmodel.dir/network.cpp.o"
  "CMakeFiles/ys_netmodel.dir/network.cpp.o.d"
  "libys_netmodel.a"
  "libys_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
