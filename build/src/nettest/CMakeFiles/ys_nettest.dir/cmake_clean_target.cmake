file(REMOVE_RECURSE
  "libys_nettest.a"
)
