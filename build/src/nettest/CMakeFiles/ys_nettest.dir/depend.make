# Empty dependencies file for ys_nettest.
# This may be replaced when dependencies are built.
