file(REMOVE_RECURSE
  "CMakeFiles/ys_nettest.dir/acl_checks.cpp.o"
  "CMakeFiles/ys_nettest.dir/acl_checks.cpp.o.d"
  "CMakeFiles/ys_nettest.dir/contract_checks.cpp.o"
  "CMakeFiles/ys_nettest.dir/contract_checks.cpp.o.d"
  "CMakeFiles/ys_nettest.dir/local_forward.cpp.o"
  "CMakeFiles/ys_nettest.dir/local_forward.cpp.o.d"
  "CMakeFiles/ys_nettest.dir/reachability.cpp.o"
  "CMakeFiles/ys_nettest.dir/reachability.cpp.o.d"
  "CMakeFiles/ys_nettest.dir/shortest_paths.cpp.o"
  "CMakeFiles/ys_nettest.dir/shortest_paths.cpp.o.d"
  "CMakeFiles/ys_nettest.dir/state_checks.cpp.o"
  "CMakeFiles/ys_nettest.dir/state_checks.cpp.o.d"
  "CMakeFiles/ys_nettest.dir/waypoint.cpp.o"
  "CMakeFiles/ys_nettest.dir/waypoint.cpp.o.d"
  "libys_nettest.a"
  "libys_nettest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_nettest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
