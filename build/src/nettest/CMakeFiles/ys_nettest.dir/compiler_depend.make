# Empty compiler generated dependencies file for ys_nettest.
# This may be replaced when dependencies are built.
