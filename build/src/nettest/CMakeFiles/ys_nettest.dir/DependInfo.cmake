
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nettest/acl_checks.cpp" "src/nettest/CMakeFiles/ys_nettest.dir/acl_checks.cpp.o" "gcc" "src/nettest/CMakeFiles/ys_nettest.dir/acl_checks.cpp.o.d"
  "/root/repo/src/nettest/contract_checks.cpp" "src/nettest/CMakeFiles/ys_nettest.dir/contract_checks.cpp.o" "gcc" "src/nettest/CMakeFiles/ys_nettest.dir/contract_checks.cpp.o.d"
  "/root/repo/src/nettest/local_forward.cpp" "src/nettest/CMakeFiles/ys_nettest.dir/local_forward.cpp.o" "gcc" "src/nettest/CMakeFiles/ys_nettest.dir/local_forward.cpp.o.d"
  "/root/repo/src/nettest/reachability.cpp" "src/nettest/CMakeFiles/ys_nettest.dir/reachability.cpp.o" "gcc" "src/nettest/CMakeFiles/ys_nettest.dir/reachability.cpp.o.d"
  "/root/repo/src/nettest/shortest_paths.cpp" "src/nettest/CMakeFiles/ys_nettest.dir/shortest_paths.cpp.o" "gcc" "src/nettest/CMakeFiles/ys_nettest.dir/shortest_paths.cpp.o.d"
  "/root/repo/src/nettest/state_checks.cpp" "src/nettest/CMakeFiles/ys_nettest.dir/state_checks.cpp.o" "gcc" "src/nettest/CMakeFiles/ys_nettest.dir/state_checks.cpp.o.d"
  "/root/repo/src/nettest/waypoint.cpp" "src/nettest/CMakeFiles/ys_nettest.dir/waypoint.cpp.o" "gcc" "src/nettest/CMakeFiles/ys_nettest.dir/waypoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/ys_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/yardstick/CMakeFiles/ys_yardstick.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ys_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/ys_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/ys_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/ys_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ys_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
