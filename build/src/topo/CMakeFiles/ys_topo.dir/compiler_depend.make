# Empty compiler generated dependencies file for ys_topo.
# This may be replaced when dependencies are built.
