file(REMOVE_RECURSE
  "CMakeFiles/ys_topo.dir/acl.cpp.o"
  "CMakeFiles/ys_topo.dir/acl.cpp.o.d"
  "CMakeFiles/ys_topo.dir/fattree.cpp.o"
  "CMakeFiles/ys_topo.dir/fattree.cpp.o.d"
  "CMakeFiles/ys_topo.dir/regional.cpp.o"
  "CMakeFiles/ys_topo.dir/regional.cpp.o.d"
  "libys_topo.a"
  "libys_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
