file(REMOVE_RECURSE
  "libys_topo.a"
)
