# Empty compiler generated dependencies file for ys_routing.
# This may be replaced when dependencies are built.
