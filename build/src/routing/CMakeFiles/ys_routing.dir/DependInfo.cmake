
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bgp_sim.cpp" "src/routing/CMakeFiles/ys_routing.dir/bgp_sim.cpp.o" "gcc" "src/routing/CMakeFiles/ys_routing.dir/bgp_sim.cpp.o.d"
  "/root/repo/src/routing/fib_builder.cpp" "src/routing/CMakeFiles/ys_routing.dir/fib_builder.cpp.o" "gcc" "src/routing/CMakeFiles/ys_routing.dir/fib_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netmodel/CMakeFiles/ys_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/ys_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ys_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
