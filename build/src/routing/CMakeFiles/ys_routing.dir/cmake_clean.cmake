file(REMOVE_RECURSE
  "CMakeFiles/ys_routing.dir/bgp_sim.cpp.o"
  "CMakeFiles/ys_routing.dir/bgp_sim.cpp.o.d"
  "CMakeFiles/ys_routing.dir/fib_builder.cpp.o"
  "CMakeFiles/ys_routing.dir/fib_builder.cpp.o.d"
  "libys_routing.a"
  "libys_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
