file(REMOVE_RECURSE
  "libys_routing.a"
)
