# Empty compiler generated dependencies file for ys_packet.
# This may be replaced when dependencies are built.
