file(REMOVE_RECURSE
  "libys_packet.a"
)
