file(REMOVE_RECURSE
  "CMakeFiles/ys_packet.dir/packet_set.cpp.o"
  "CMakeFiles/ys_packet.dir/packet_set.cpp.o.d"
  "libys_packet.a"
  "libys_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
