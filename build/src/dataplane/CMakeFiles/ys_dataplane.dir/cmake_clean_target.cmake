file(REMOVE_RECURSE
  "libys_dataplane.a"
)
