file(REMOVE_RECURSE
  "CMakeFiles/ys_dataplane.dir/match_sets.cpp.o"
  "CMakeFiles/ys_dataplane.dir/match_sets.cpp.o.d"
  "CMakeFiles/ys_dataplane.dir/simulator.cpp.o"
  "CMakeFiles/ys_dataplane.dir/simulator.cpp.o.d"
  "CMakeFiles/ys_dataplane.dir/transfer.cpp.o"
  "CMakeFiles/ys_dataplane.dir/transfer.cpp.o.d"
  "libys_dataplane.a"
  "libys_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ys_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
