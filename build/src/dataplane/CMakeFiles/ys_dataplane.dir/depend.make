# Empty dependencies file for ys_dataplane.
# This may be replaced when dependencies are built.
