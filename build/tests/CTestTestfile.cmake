# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/prefix_test[1]_include.cmake")
include("/root/repo/build/tests/packet_set_test[1]_include.cmake")
include("/root/repo/build/tests/netmodel_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_framework_test[1]_include.cmake")
include("/root/repo/build/tests/path_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/nettest_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/case_study_test[1]_include.cmake")
include("/root/repo/build/tests/acl_test[1]_include.cmake")
include("/root/repo/build/tests/waypoint_test[1]_include.cmake")
include("/root/repo/build/tests/tooling_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/located_packet_set_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/netio_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_stress_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
