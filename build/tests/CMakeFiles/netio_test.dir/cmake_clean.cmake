file(REMOVE_RECURSE
  "CMakeFiles/netio_test.dir/netio_test.cpp.o"
  "CMakeFiles/netio_test.dir/netio_test.cpp.o.d"
  "netio_test"
  "netio_test.pdb"
  "netio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
