file(REMOVE_RECURSE
  "CMakeFiles/nettest_test.dir/nettest_test.cpp.o"
  "CMakeFiles/nettest_test.dir/nettest_test.cpp.o.d"
  "nettest_test"
  "nettest_test.pdb"
  "nettest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nettest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
