# Empty dependencies file for nettest_test.
# This may be replaced when dependencies are built.
