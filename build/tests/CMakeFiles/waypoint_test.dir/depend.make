# Empty dependencies file for waypoint_test.
# This may be replaced when dependencies are built.
