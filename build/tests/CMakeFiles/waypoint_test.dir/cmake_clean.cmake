file(REMOVE_RECURSE
  "CMakeFiles/waypoint_test.dir/waypoint_test.cpp.o"
  "CMakeFiles/waypoint_test.dir/waypoint_test.cpp.o.d"
  "waypoint_test"
  "waypoint_test.pdb"
  "waypoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waypoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
