# Empty dependencies file for coverage_framework_test.
# This may be replaced when dependencies are built.
