file(REMOVE_RECURSE
  "CMakeFiles/coverage_framework_test.dir/coverage_framework_test.cpp.o"
  "CMakeFiles/coverage_framework_test.dir/coverage_framework_test.cpp.o.d"
  "coverage_framework_test"
  "coverage_framework_test.pdb"
  "coverage_framework_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_framework_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
