# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for located_packet_set_test.
