# Empty compiler generated dependencies file for located_packet_set_test.
# This may be replaced when dependencies are built.
