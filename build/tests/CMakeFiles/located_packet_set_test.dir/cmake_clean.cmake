file(REMOVE_RECURSE
  "CMakeFiles/located_packet_set_test.dir/located_packet_set_test.cpp.o"
  "CMakeFiles/located_packet_set_test.dir/located_packet_set_test.cpp.o.d"
  "located_packet_set_test"
  "located_packet_set_test.pdb"
  "located_packet_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/located_packet_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
