file(REMOVE_RECURSE
  "CMakeFiles/path_coverage_test.dir/path_coverage_test.cpp.o"
  "CMakeFiles/path_coverage_test.dir/path_coverage_test.cpp.o.d"
  "path_coverage_test"
  "path_coverage_test.pdb"
  "path_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
