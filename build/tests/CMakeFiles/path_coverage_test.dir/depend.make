# Empty dependencies file for path_coverage_test.
# This may be replaced when dependencies are built.
