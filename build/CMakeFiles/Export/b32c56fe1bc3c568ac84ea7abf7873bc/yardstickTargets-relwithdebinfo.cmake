#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "yardstick::ys_bdd" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_bdd APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_bdd PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_bdd.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_bdd )
list(APPEND _cmake_import_check_files_for_yardstick::ys_bdd "${_IMPORT_PREFIX}/lib/libys_bdd.a" )

# Import target "yardstick::ys_packet" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_packet APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_packet PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_packet.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_packet )
list(APPEND _cmake_import_check_files_for_yardstick::ys_packet "${_IMPORT_PREFIX}/lib/libys_packet.a" )

# Import target "yardstick::ys_netmodel" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_netmodel APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_netmodel PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_netmodel.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_netmodel )
list(APPEND _cmake_import_check_files_for_yardstick::ys_netmodel "${_IMPORT_PREFIX}/lib/libys_netmodel.a" )

# Import target "yardstick::ys_dataplane" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_dataplane APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_dataplane PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_dataplane.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_dataplane )
list(APPEND _cmake_import_check_files_for_yardstick::ys_dataplane "${_IMPORT_PREFIX}/lib/libys_dataplane.a" )

# Import target "yardstick::ys_routing" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_routing APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_routing PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_routing.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_routing )
list(APPEND _cmake_import_check_files_for_yardstick::ys_routing "${_IMPORT_PREFIX}/lib/libys_routing.a" )

# Import target "yardstick::ys_topo" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_topo APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_topo PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_topo.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_topo )
list(APPEND _cmake_import_check_files_for_yardstick::ys_topo "${_IMPORT_PREFIX}/lib/libys_topo.a" )

# Import target "yardstick::ys_coverage" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_coverage APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_coverage PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_coverage.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_coverage )
list(APPEND _cmake_import_check_files_for_yardstick::ys_coverage "${_IMPORT_PREFIX}/lib/libys_coverage.a" )

# Import target "yardstick::ys_yardstick" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_yardstick APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_yardstick PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_yardstick.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_yardstick )
list(APPEND _cmake_import_check_files_for_yardstick::ys_yardstick "${_IMPORT_PREFIX}/lib/libys_yardstick.a" )

# Import target "yardstick::ys_nettest" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_nettest APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_nettest PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_nettest.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_nettest )
list(APPEND _cmake_import_check_files_for_yardstick::ys_nettest "${_IMPORT_PREFIX}/lib/libys_nettest.a" )

# Import target "yardstick::ys_netio" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::ys_netio APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::ys_netio PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libys_netio.a"
  )

list(APPEND _cmake_import_check_targets yardstick::ys_netio )
list(APPEND _cmake_import_check_files_for_yardstick::ys_netio "${_IMPORT_PREFIX}/lib/libys_netio.a" )

# Import target "yardstick::yardstick" for configuration "RelWithDebInfo"
set_property(TARGET yardstick::yardstick APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(yardstick::yardstick PROPERTIES
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/bin/yardstick"
  )

list(APPEND _cmake_import_check_targets yardstick::yardstick )
list(APPEND _cmake_import_check_files_for_yardstick::yardstick "${_IMPORT_PREFIX}/bin/yardstick" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
