# Empty compiler generated dependencies file for path_audit.
# This may be replaced when dependencies are built.
