file(REMOVE_RECURSE
  "CMakeFiles/path_audit.dir/path_audit.cpp.o"
  "CMakeFiles/path_audit.dir/path_audit.cpp.o.d"
  "path_audit"
  "path_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
