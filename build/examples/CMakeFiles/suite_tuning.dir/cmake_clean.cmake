file(REMOVE_RECURSE
  "CMakeFiles/suite_tuning.dir/suite_tuning.cpp.o"
  "CMakeFiles/suite_tuning.dir/suite_tuning.cpp.o.d"
  "suite_tuning"
  "suite_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
