# Empty dependencies file for suite_tuning.
# This may be replaced when dependencies are built.
