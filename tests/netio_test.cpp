// Tests for the text network-interchange format.
#include <gtest/gtest.h>

#include <random>

#include "dataplane/simulator.hpp"
#include "netio/network_format.hpp"
#include "routing/fib_builder.hpp"
#include "topo/acl.hpp"
#include "topo/fattree.hpp"
#include "topo/regional.hpp"

namespace yardstick::netio {
namespace {

using packet::Ipv4Prefix;

constexpr const char* kSmall = R"(
network v1
# a one-link toy
device leaf role tor
device spine role spine asn 65100
interface leaf host0 kind host
interface leaf eth0
interface spine eth0
link leaf:eth0 spine:eth0 subnet 172.16.0.0/31
host-prefix leaf 10.0.1.0/24
loopback spine 10.128.0.1/32
fib leaf dst 10.0.1.0/24 fwd host0 kind internal
fib leaf dst 0.0.0.0/0 fwd eth0 kind default
fib spine dst 10.0.1.0/24 fwd eth0 kind internal
acl leaf deny proto 6 dport 23
acl leaf permit
)";

TEST(NetIoTest, ParsesSmallNetwork) {
  const LoadedNetwork loaded = parse_network(kSmall);
  const net::Network& n = loaded.network;
  EXPECT_TRUE(loaded.has_forwarding_state);
  EXPECT_EQ(n.device_count(), 2u);
  EXPECT_EQ(n.interface_count(), 3u);
  EXPECT_EQ(n.link_count(), 1u);

  const auto leaf = n.find_device("leaf");
  ASSERT_TRUE(leaf.has_value());
  EXPECT_EQ(n.device(*leaf).role, net::Role::ToR);
  EXPECT_EQ(n.device(*leaf).asn, routing::role_asn(net::Role::ToR));  // defaulted
  EXPECT_EQ(n.device(*n.find_device("spine")).asn, 65100u);
  EXPECT_EQ(n.device(*leaf).host_prefixes.front(), Ipv4Prefix::parse("10.0.1.0/24"));
  EXPECT_EQ(n.table(*leaf).size(), 2u);
  EXPECT_EQ(n.table(*leaf, net::TableKind::Acl).size(), 2u);
  EXPECT_TRUE(n.has_acl(*leaf));

  // LPM ordering derived from prefix lengths.
  const net::Rule& first = n.rule(n.table(*leaf)[0]);
  EXPECT_EQ(first.match.dst_prefix->length(), 24);
  // The link /31 was assigned to both ends (even side to leaf:eth0).
  const net::Interface& leaf_eth0 = n.interface(net::InterfaceId{1});
  ASSERT_TRUE(leaf_eth0.address.has_value());
  EXPECT_EQ(leaf_eth0.address->address(), Ipv4Prefix::parse("172.16.0.0/31").first());
}

TEST(NetIoTest, ParsedNetworkForwards) {
  const LoadedNetwork loaded = parse_network(kSmall);
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, loaded.network);
  const dataplane::Transfer transfer(index);
  const dataplane::ConcreteSimulator sim(transfer);

  const auto spine = *loaded.network.find_device("spine");
  packet::ConcretePacket pkt;
  pkt.dst_ip = 0x0a000105u;
  const auto trace = sim.run(spine, net::InterfaceId{}, pkt);
  EXPECT_EQ(trace.disposition, dataplane::Disposition::Delivered);

  // The leaf ACL denies telnet.
  const auto leaf = *loaded.network.find_device("leaf");
  pkt.proto = 6;
  pkt.dst_port = 23;
  const auto host = loaded.network.ports_of_kind(leaf, net::PortKind::HostPort);
  const auto denied = sim.run(leaf, host.front(), pkt);
  EXPECT_EQ(denied.disposition, dataplane::Disposition::Dropped);
}

TEST(NetIoTest, RoutingConfigDirectives) {
  const LoadedNetwork loaded = parse_network(R"(
network v1
device hub role regionalhub
device wan role wan
no-default hub
null-default hub
wide-area wan 100.64.0.0/16
wide-area wan 100.65.0.0/16
)");
  const auto hub = *loaded.network.find_device("hub");
  const auto wan = *loaded.network.find_device("wan");
  EXPECT_TRUE(loaded.routing.no_default_devices.contains(hub));
  EXPECT_TRUE(loaded.routing.null_default_devices.contains(hub));
  EXPECT_EQ(loaded.routing.wide_area_prefixes.at(wan).size(), 2u);
  EXPECT_FALSE(loaded.has_forwarding_state);
}

TEST(NetIoTest, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      (void)parse_network(text);
      FAIL() << "expected parse failure for: " << needle;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("bogus v1\n", "expected header");
  expect_error("network v1\nfrobnicate x\n", "unknown keyword");
  expect_error("network v1\ndevice a role emperor\n", "unknown role");
  expect_error("network v1\ninterface nosuch eth0\n", "unknown device");
  expect_error("network v1\ndevice a role tor\nfib a dst 10.0.0.0/8 fwd nosuch\n",
               "unknown interface");
  expect_error("network v1\ndevice a role tor\nfib a dst banana drop\n", "line 3");
  expect_error("network v1\ndevice a role tor\nacl a frob\n", "permit or deny");
  expect_error("", "empty input");
}

TEST(NetIoTest, RoundTripFatTreeWithState) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  topo::install_ingress_acls(tree.network, tree.tors);

  const std::string text = format_network(tree.network, tree.routing);
  const LoadedNetwork loaded = parse_network(text);

  EXPECT_TRUE(loaded.has_forwarding_state);
  EXPECT_EQ(loaded.network.device_count(), tree.network.device_count());
  EXPECT_EQ(loaded.network.interface_count(), tree.network.interface_count());
  EXPECT_EQ(loaded.network.link_count(), tree.network.link_count());
  EXPECT_EQ(loaded.network.rule_count(), tree.network.rule_count());

  // Behavior preserved: identical disjoint match sets table by table.
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex a(mgr, tree.network);
  const dataplane::MatchSetIndex b(mgr, loaded.network);
  for (const net::Device& dev : tree.network.devices()) {
    const auto dev2 = loaded.network.find_device(dev.name);
    ASSERT_TRUE(dev2.has_value());
    const auto ta = tree.network.table(dev.id);
    const auto tb = loaded.network.table(*dev2);
    ASSERT_EQ(ta.size(), tb.size()) << dev.name;
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(a.match_set(ta[i]), b.match_set(tb[i])) << dev.name;
    }
  }
}

TEST(NetIoTest, RoundTripTopologyThenRecomputeState) {
  // Save only the topology of a regional network (clear rules first);
  // loading + running the substrate must produce the same rule count.
  topo::RegionalParams params;
  params.datacenters = 1;
  topo::RegionalNetwork region = topo::make_regional(params);
  routing::FibBuilder::compute_and_build(region.network, region.routing);
  const size_t expected_rules = region.network.rule_count();

  region.network.clear_rules();
  const std::string text = format_network(region.network, region.routing);
  LoadedNetwork loaded = parse_network(text);
  EXPECT_FALSE(loaded.has_forwarding_state);
  routing::FibBuilder::compute_and_build(loaded.network, loaded.routing);
  EXPECT_EQ(loaded.network.rule_count(), expected_rules);
}

TEST(NetIoTest, FileRoundTrip) {
  topo::FatTree tree = topo::make_fat_tree({.k = 2});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const std::string path = ::testing::TempDir() + "/yardstick_net_test.txt";
  save_network_file(path, tree.network, tree.routing);
  const LoadedNetwork loaded = load_network_file(path);
  EXPECT_EQ(loaded.network.device_count(), tree.network.device_count());
  std::remove(path.c_str());
  EXPECT_THROW(load_network_file(path + ".nope"), std::runtime_error);
}


TEST(NetIoTest, MutatedInputNeverCrashes) {
  // Robustness fuzz: random single-byte mutations of a valid file must
  // either parse or throw std::runtime_error — never crash or hang.
  topo::FatTree tree = topo::make_fat_tree({.k = 2});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const std::string valid = format_network(tree.network, tree.routing);
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    const int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0: mutated[pos] = static_cast<char>(' ' + rng() % 95); break;
        case 1: mutated.erase(pos, 1 + rng() % 8); break;
        default: mutated.insert(pos, 1, static_cast<char>(' ' + rng() % 95)); break;
      }
      if (mutated.empty()) mutated = "x";
    }
    try {
      (void)parse_network(mutated);
    } catch (const std::runtime_error&) {
      // expected for most mutations
    } catch (const std::exception& e) {
      // stoul and friends may throw other std exceptions on numeric
      // fields; anything derived from std::exception is acceptable.
      SUCCEED() << e.what();
    }
  }
}

}  // namespace
}  // namespace yardstick::netio
