// Tests for LocatedPacketSet — the located-packet algebra of §4.1.
#include <gtest/gtest.h>

#include "packet/located_packet_set.hpp"

namespace yardstick::packet {
namespace {

using bdd::pow2;
using bdd::Uint128;

class LocatedTest : public ::testing::Test {
 protected:
  [[nodiscard]] PacketSet prefix(const char* cidr) {
    return PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse(cidr));
  }

  bdd::BddManager mgr_{kNumHeaderBits};
};

TEST_F(LocatedTest, EmptyByDefault) {
  const LocatedPacketSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), Uint128{0});
  EXPECT_EQ(s.location_count(), 0u);
  EXPECT_FALSE(s.at(3).valid());
  EXPECT_FALSE(s.has(3));
}

TEST_F(LocatedTest, InsertUnionsPerLocation) {
  LocatedPacketSet s;
  s.insert(1, prefix("10.0.0.0/8"));
  s.insert(1, prefix("11.0.0.0/8"));
  s.insert(2, prefix("10.0.0.0/8"));
  EXPECT_EQ(s.location_count(), 2u);
  EXPECT_EQ(s.at(1), prefix("10.0.0.0/8").union_with(prefix("11.0.0.0/8")));
  EXPECT_EQ(s.count(), 3 * pow2(96));
}

TEST_F(LocatedTest, InsertIgnoresEmptySets) {
  LocatedPacketSet s;
  s.insert(7, PacketSet::none(mgr_));
  EXPECT_TRUE(s.empty());
}

TEST_F(LocatedTest, UnionIsPointwise) {
  LocatedPacketSet a(1, prefix("10.0.0.0/8"));
  LocatedPacketSet b;
  b.insert(1, prefix("11.0.0.0/8"));
  b.insert(2, prefix("12.0.0.0/8"));
  const LocatedPacketSet u = a.union_with(b);
  EXPECT_EQ(u.at(1), prefix("10.0.0.0/7"));  // 10/8 union 11/8
  EXPECT_EQ(u.at(2), prefix("12.0.0.0/8"));
  EXPECT_EQ(u.count(), a.count() + b.count());
}

TEST_F(LocatedTest, IntersectKeepsCommonLocations) {
  LocatedPacketSet a;
  a.insert(1, prefix("10.0.0.0/7"));  // covers 10/8 and 11/8
  a.insert(2, prefix("12.0.0.0/8"));
  LocatedPacketSet b(1, prefix("10.0.0.0/8"));
  const LocatedPacketSet i = a.intersect(b);
  EXPECT_EQ(i.location_count(), 1u);
  EXPECT_EQ(i.at(1), prefix("10.0.0.0/8"));
}

TEST_F(LocatedTest, MinusSubtractsPointwise) {
  LocatedPacketSet a;
  a.insert(1, prefix("10.0.0.0/7"));
  a.insert(2, prefix("12.0.0.0/8"));
  LocatedPacketSet b(1, prefix("10.0.0.0/8"));
  const LocatedPacketSet d = a.minus(b);
  EXPECT_EQ(d.at(1), prefix("11.0.0.0/8"));
  EXPECT_EQ(d.at(2), prefix("12.0.0.0/8"));
  // Subtracting everything drops the location entirely.
  const LocatedPacketSet gone = a.minus(a);
  EXPECT_TRUE(gone.empty());
}

TEST_F(LocatedTest, EqualityIsStructural) {
  LocatedPacketSet a(1, prefix("10.0.0.0/8"));
  LocatedPacketSet b(1, prefix("10.0.0.0/8"));
  EXPECT_EQ(a, b);
  b.insert(2, prefix("11.0.0.0/8"));
  EXPECT_NE(a, b);
}

TEST_F(LocatedTest, ToStringListsLocations) {
  LocatedPacketSet s(5, prefix("10.0.0.0/8"));
  EXPECT_NE(s.to_string().find("@5"), std::string::npos);
}

}  // namespace
}  // namespace yardstick::packet
