// Tests for path exploration (§5.2) and Equation (3) path/flow coverage.
#include <gtest/gtest.h>

#include "coverage/components.hpp"
#include "coverage/path_explorer.hpp"
#include "test_util.hpp"

namespace yardstick::coverage {
namespace {

using dataplane::MatchSetIndex;
using dataplane::Transfer;
using packet::Field;
using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::TinyNetwork;

class PathTest : public ::testing::Test {
 protected:
  PathTest() : tiny_(make_tiny()), index_(mgr_, tiny_.net), transfer_(index_) {}

  [[nodiscard]] PacketSet dst(const Ipv4Prefix& p) {
    return PacketSet::dst_prefix(mgr_, p);
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  MatchSetIndex index_;
  Transfer transfer_;
};

TEST_F(PathTest, UniverseFromOneHostPort) {
  const CoverageTrace empty;
  const CoveredSets covered(index_, empty);
  const PathExplorer explorer(transfer_, &covered);

  std::vector<std::vector<net::RuleId>> paths;
  std::vector<PathEnd> ends;
  explorer.explore(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_),
                   [&](const ExploredPath& p) {
                     paths.push_back(p.rules);
                     ends.push_back(p.end);
                     return true;
                   });
  // Expected maximal paths from leaf1:
  //   p1 hairpin out the host port           [l1_to_p1]           delivered
  //   p2 via spine to leaf2                  [l1_to_p2, sp_to_p2, l2_to_p2] delivered
  //   everything else: default into spine's null route [l1_default, sp_drop] dropped
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], (std::vector<net::RuleId>{tiny_.l1_to_p1}));
  EXPECT_EQ(ends[0], PathEnd::Delivered);
  EXPECT_EQ(paths[1], (std::vector<net::RuleId>{tiny_.l1_to_p2, tiny_.sp_to_p2,
                                                tiny_.l2_to_p2}));
  EXPECT_EQ(ends[1], PathEnd::Delivered);
  EXPECT_EQ(paths[2],
            (std::vector<net::RuleId>{tiny_.l1_default, tiny_.sp_default_drop}));
  EXPECT_EQ(ends[2], PathEnd::Dropped);
}

TEST_F(PathTest, GuardSizesMatchTraffic) {
  const PathExplorer explorer(transfer_, nullptr);
  std::vector<bdd::Uint128> sizes;
  explorer.explore(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_),
                   [&](const ExploredPath& p) {
                     sizes.push_back(p.guard_size);
                     return true;
                   });
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], dst(tiny_.p1).count());
  EXPECT_EQ(sizes[1], dst(tiny_.p2).count());
  EXPECT_EQ(sizes[2],
            PacketSet::all(mgr_).minus(dst(tiny_.p1)).minus(dst(tiny_.p2)).count());
}

TEST_F(PathTest, UniverseVisitsAllIngressPorts) {
  const PathExplorer explorer(transfer_, nullptr);
  uint64_t count = explorer.explore_universe([](const ExploredPath&) { return true; });
  // 3 maximal paths from each of the two host ports (the tiny network is
  // symmetric).
  EXPECT_EQ(count, 6u);
}

TEST_F(PathTest, MaxPathsBudgetStopsExploration) {
  PathExplorerOptions options;
  options.max_paths = 2;
  const PathExplorer explorer(transfer_, nullptr, options);
  const uint64_t count =
      explorer.explore_universe([](const ExploredPath&) { return true; });
  EXPECT_EQ(count, 2u);
}

TEST_F(PathTest, CallbackFalseStopsEarly) {
  const PathExplorer explorer(transfer_, nullptr);
  uint64_t seen = 0;
  explorer.explore(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_),
                   [&](const ExploredPath&) {
                     ++seen;
                     return false;
                   });
  EXPECT_EQ(seen, 1u);
}

TEST_F(PathTest, CoveredRatioEquationThree) {
  // Test half of p2 end-to-end: the p2 path's coverage is 0.5; the others 0.
  CoverageTrace trace;
  const PacketSet half = dst(Ipv4Prefix::parse("10.0.2.0/25"));
  trace.mark_packet(net::to_location(tiny_.l1_host), half);
  trace.mark_packet(net::to_location(tiny_.sp_d1), half);
  trace.mark_packet(net::to_location(tiny_.l2_up), half);
  const CoveredSets covered(index_, trace);
  const PathExplorer explorer(transfer_, &covered);

  std::vector<double> ratios;
  explorer.explore(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_),
                   [&](const ExploredPath& p) {
                     ratios.push_back(p.covered_ratio);
                     return true;
                   });
  ASSERT_EQ(ratios.size(), 3u);
  EXPECT_DOUBLE_EQ(ratios[0], 0.0);  // p1 path untested
  EXPECT_DOUBLE_EQ(ratios[1], 0.5);  // p2 path half tested end-to-end
  EXPECT_DOUBLE_EQ(ratios[2], 0.0);  // default path untested
}

TEST_F(PathTest, DisjointHopTestsGiveZeroPathCoverage) {
  // Different rules of the path tested with disjoint packet sets: no one
  // packet crossed the whole path, so coverage is zero (§4.3.2).
  CoverageTrace trace;
  trace.mark_packet(net::to_location(tiny_.l1_host), dst(Ipv4Prefix::parse("10.0.2.0/25")));
  trace.mark_packet(net::to_location(tiny_.sp_d1), dst(Ipv4Prefix::parse("10.0.2.128/25")));
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);

  const ComponentSpec spec = factory.path(
      {tiny_.l1_to_p2, tiny_.sp_to_p2, tiny_.l2_to_p2}, dst(tiny_.p2));
  EXPECT_DOUBLE_EQ(component_coverage(covered, spec), 0.0);
}

TEST_F(PathTest, PathMeasureFullCoverage) {
  CoverageTrace trace;
  for (const net::RuleId rid : {tiny_.l1_to_p2, tiny_.sp_to_p2, tiny_.l2_to_p2}) {
    trace.mark_rule(rid);
  }
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);
  const ComponentSpec spec = factory.path(
      {tiny_.l1_to_p2, tiny_.sp_to_p2, tiny_.l2_to_p2}, dst(tiny_.p2));
  EXPECT_DOUBLE_EQ(component_coverage(covered, spec), 1.0);
}

TEST_F(PathTest, PathMeasureWithRewriteUsesMinRatio) {
  // Build a 2-hop chain where hop 1 rewrites dst to a constant
  // (many-to-one). Footnote 2: the measure is the min per-hop ratio.
  net::Network n;
  const auto a = n.add_device("a", net::Role::Other);
  const auto b = n.add_device("b", net::Role::Other);
  const auto a_in = n.add_interface(a, "in", net::PortKind::HostPort);
  const auto a0 = n.add_interface(a, "eth0");
  const auto b0 = n.add_interface(b, "eth0");
  const auto b_out = n.add_interface(b, "out", net::PortKind::HostPort);
  n.add_link(a0, b0);

  net::Action vip_rewrite = net::Action::forward({a0});
  vip_rewrite.rewrites.push_back({Field::DstIp, 0x0a00020fu});  // into 10.0.2.0/24
  const auto r1 = n.add_rule(a, net::MatchSpec::for_dst(Ipv4Prefix::parse("20.0.0.0/8")),
                             vip_rewrite, net::RouteKind::Other, 1);
  const auto r2 = n.add_rule(b, net::MatchSpec::for_dst(Ipv4Prefix::parse("10.0.2.0/24")),
                             net::Action::forward({b_out}), net::RouteKind::Other, 1);

  const MatchSetIndex index(mgr_, n);
  const Transfer transfer(index);
  const ComponentFactory factory(transfer);

  // Test a quarter of the 20/8 guard end to end.
  CoverageTrace trace;
  const PacketSet quarter = PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse("20.0.0.0/10"));
  trace.mark_packet(net::to_location(a_in), quarter);
  // After the rewrite everything collapses to one dst; the covered packets
  // at b are the rewritten images of the tested quarter = the full image.
  trace.mark_packet(net::to_location(b0),
                    quarter.rewrite_field(Field::DstIp, 0x0a00020fu));
  const CoveredSets covered(index, trace);

  const ComponentSpec spec =
      factory.path({r1, r2}, PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse("20.0.0.0/8")));
  // Hop 1 ratio: image of tested quarter == image of all (many-to-one) = 1?
  // No: Eq. 3 applies T[r1] *before* the transform, so survivors after hop
  // 1 are the image of the quarter — which equals the full image set. The
  // min ratio across hops is therefore determined pre-collapse at hop 1
  // via the companion set: |F(quarter)| / |F(all)| = 1. Coverage is 1.
  // What the test pins down: the measure is well-defined (no 0/0) and in
  // [0,1] under many-to-one transforms.
  const double value = component_coverage(covered, spec);
  EXPECT_GE(value, 0.0);
  EXPECT_LE(value, 1.0);
}

TEST_F(PathTest, FlowCoverageWeightsPaths) {
  // Flow = everything entering leaf1's host port. Cover the p2 path fully
  // (rule inspection); the flow's coverage is the weighted share of its
  // packets that are tested end-to-end.
  CoverageTrace trace;
  for (const net::RuleId rid : {tiny_.l1_to_p2, tiny_.sp_to_p2, tiny_.l2_to_p2}) {
    trace.mark_rule(rid);
  }
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);

  const ComponentSpec flow =
      factory.flow(tiny_.leaf1, tiny_.l1_host, PacketSet::all(mgr_));
  const double value = component_coverage(covered, flow);
  const double expected = bdd::ratio(dst(tiny_.p2).count(), PacketSet::all(mgr_).count());
  EXPECT_NEAR(value, expected, 1e-9);

  // A flow restricted to p2 alone is fully covered.
  const ComponentSpec flow_p2 = factory.flow(tiny_.leaf1, tiny_.l1_host, dst(tiny_.p2));
  EXPECT_DOUBLE_EQ(component_coverage(covered, flow_p2), 1.0);
}

TEST_F(PathTest, CoflowAggregatesFlows) {
  // A CoFlow of both directions between the leaves: cover the p2 chain
  // only; the CoFlow's coverage is p2's share of the two flows' traffic.
  CoverageTrace trace;
  for (const net::RuleId rid : {tiny_.l1_to_p2, tiny_.sp_to_p2, tiny_.l2_to_p2}) {
    trace.mark_rule(rid);
  }
  const CoveredSets covered(index_, trace);
  const ComponentFactory factory(transfer_);

  std::vector<ComponentFactory::FlowEndpoint> flows;
  flows.push_back({tiny_.leaf1, tiny_.l1_host, dst(tiny_.p2)});
  flows.push_back({tiny_.leaf2, tiny_.l2_host, dst(tiny_.p1)});
  const ComponentSpec spec = factory.coflow(flows);
  // Forward direction fully covered, reverse untested: weighted mean 0.5
  // (both flows carry the same packet count).
  EXPECT_NEAR(component_coverage(covered, spec), 0.5, 1e-9);

  // Empty CoFlow is vacuous.
  EXPECT_DOUBLE_EQ(component_coverage(covered, factory.coflow({})), 1.0);
}

TEST_F(PathTest, FlowWithNoViablePathsIsVacuous) {
  // Inject at leaf1 packets that leaf1 drops nowhere... use an empty set:
  // no guarded strings -> vacuous coverage 1 with weight 0.
  const CoverageTrace empty;
  const CoveredSets covered(index_, empty);
  const ComponentFactory factory(transfer_);
  const ComponentSpec flow =
      factory.flow(tiny_.leaf1, tiny_.l1_host, PacketSet::none(mgr_));
  EXPECT_DOUBLE_EQ(component_coverage(covered, flow), 1.0);
}

TEST_F(PathTest, DepthLimitEmitsTruncatedPaths) {
  net::Network n;
  const auto a = n.add_device("a", net::Role::Other);
  const auto b = n.add_device("b", net::Role::Other);
  const auto ain = n.add_interface(a, "in", net::PortKind::HostPort);
  const auto a0 = n.add_interface(a, "eth0");
  const auto b0 = n.add_interface(b, "eth0");
  n.add_link(a0, b0);
  n.add_rule(a, net::MatchSpec{}, net::Action::forward({a0}));
  n.add_rule(b, net::MatchSpec{}, net::Action::forward({b0}));
  const MatchSetIndex index(mgr_, n);
  const Transfer transfer(index);
  PathExplorerOptions options;
  options.max_depth = 8;
  const PathExplorer explorer(transfer, nullptr, options);
  std::vector<PathEnd> ends;
  explorer.explore(a, ain, PacketSet::all(mgr_), [&](const ExploredPath& p) {
    ends.push_back(p.end);
    EXPECT_LE(p.rules.size(), 8u);
    return true;
  });
  ASSERT_FALSE(ends.empty());
  EXPECT_EQ(ends[0], PathEnd::DepthLimit);
}

TEST_F(PathTest, UnmatchedTailEmittedAtPreviousRule) {
  // spine table without default: leaf1's default traffic dies unmatched at
  // the spine; the emitted path must end at l1_default with Unmatched.
  net::Network n;
  const auto leaf = n.add_device("leaf", net::Role::ToR);
  const auto spine = n.add_device("spine", net::Role::Spine);
  const auto lin = n.add_interface(leaf, "in", net::PortKind::HostPort);
  const auto l0 = n.add_interface(leaf, "eth0");
  const auto s0 = n.add_interface(spine, "eth0");
  n.add_link(l0, s0);
  const auto p1 = Ipv4Prefix::parse("10.0.1.0/24");
  n.add_rule(spine, net::MatchSpec::for_dst(p1), net::Action::drop(), net::RouteKind::Other, 8);
  const auto leaf_default =
      n.add_rule(leaf, net::MatchSpec::for_dst(Ipv4Prefix(0, 0)),
                 net::Action::forward({l0}), net::RouteKind::Default, 32);
  const MatchSetIndex index(mgr_, n);
  const Transfer transfer(index);
  const PathExplorer explorer(transfer, nullptr);
  std::vector<std::pair<std::vector<net::RuleId>, PathEnd>> emitted;
  explorer.explore(leaf, lin, PacketSet::all(mgr_), [&](const ExploredPath& p) {
    emitted.emplace_back(p.rules, p.end);
    return true;
  });
  bool found_unmatched = false;
  for (const auto& [rules, end] : emitted) {
    if (end == PathEnd::Unmatched) {
      found_unmatched = true;
      EXPECT_EQ(rules, (std::vector<net::RuleId>{leaf_default}));
    }
  }
  EXPECT_TRUE(found_unmatched);
}

}  // namespace
}  // namespace yardstick::coverage
