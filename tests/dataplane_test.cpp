// Tests for the dataplane layer: disjoint match sets (§5.2 step 1), the
// symbolic/concrete transfer functions, and the end-to-end simulators.
#include <gtest/gtest.h>

#include "dataplane/simulator.hpp"
#include "test_util.hpp"

namespace yardstick::dataplane {
namespace {

using packet::ConcretePacket;
using packet::Field;
using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::packet_to;
using testutil::TinyNetwork;

class DataplaneTest : public ::testing::Test {
 protected:
  DataplaneTest() : tiny_(make_tiny()), index_(mgr_, tiny_.net), transfer_(index_) {}

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  MatchSetIndex index_;
  Transfer transfer_;
};

TEST_F(DataplaneTest, MatchFieldsAreRawPrefixes) {
  EXPECT_EQ(index_.match_field(tiny_.l1_to_p1),
            PacketSet::dst_prefix(mgr_, tiny_.p1));
  EXPECT_TRUE(index_.match_field(tiny_.l1_default).full());
}

TEST_F(DataplaneTest, MatchSetsSubtractEarlierRules) {
  // Default route's disjoint match set excludes both /24s.
  const PacketSet expected = PacketSet::all(mgr_)
                                 .minus(PacketSet::dst_prefix(mgr_, tiny_.p1))
                                 .minus(PacketSet::dst_prefix(mgr_, tiny_.p2));
  EXPECT_EQ(index_.match_set(tiny_.l1_default), expected);
  // Specific rules are not shadowed.
  EXPECT_EQ(index_.match_set(tiny_.l1_to_p1), index_.match_field(tiny_.l1_to_p1));
}

TEST_F(DataplaneTest, MatchSetsPartitionTheMatchedSpace) {
  for (const net::Device& dev : tiny_.net.devices()) {
    PacketSet union_sets = PacketSet::none(mgr_);
    bdd::Uint128 sum = 0;
    for (const net::RuleId rid : tiny_.net.table(dev.id)) {
      const PacketSet& ms = index_.match_set(rid);
      EXPECT_TRUE(ms.intersect(union_sets).empty()) << "overlap on " << dev.name;
      union_sets = union_sets.union_with(ms);
      sum += ms.count();
    }
    EXPECT_EQ(union_sets, index_.matched_space(dev.id));
    EXPECT_EQ(sum, index_.matched_space(dev.id).count());
  }
}

TEST_F(DataplaneTest, ShadowedRuleHasEmptyMatchSet) {
  // A /32 inside p1 added after the /24 is fully shadowed.
  net::Network& n = tiny_.net;
  const net::RuleId shadowed =
      n.add_rule(tiny_.leaf1, net::MatchSpec::for_dst(Ipv4Prefix::parse("10.0.1.5/32")),
                 net::Action::drop(), net::RouteKind::Other, 40);
  const MatchSetIndex fresh(mgr_, n);
  EXPECT_TRUE(fresh.match_set(shadowed).empty());
  EXPECT_FALSE(fresh.match_field(shadowed).empty());
}

TEST_F(DataplaneTest, SplitClaimsByFirstMatch) {
  const PacketSet input = PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse("10.0.0.0/22"));
  const auto splits = transfer_.split(tiny_.leaf1, tiny_.l1_host, input);
  ASSERT_EQ(splits.size(), 3u);  // p1, p2, default remainder
  bdd::Uint128 total = 0;
  for (const RuleSplit& s : splits) total += s.packets.count();
  EXPECT_EQ(total, input.count());
}

TEST_F(DataplaneTest, SplitEmptyInput) {
  EXPECT_TRUE(transfer_.split(tiny_.leaf1, tiny_.l1_host, PacketSet::none(mgr_)).empty());
}

TEST_F(DataplaneTest, ApplyFansOutAndRespectsDrop) {
  const net::Rule& fwd = tiny_.net.rule(tiny_.sp_to_p1);
  const PacketSet input = PacketSet::dst_prefix(mgr_, tiny_.p1);
  const auto hops = transfer_.apply(fwd, input);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].out_interface, tiny_.sp_d1);
  EXPECT_EQ(hops[0].next_interface, tiny_.l1_up);
  EXPECT_EQ(hops[0].packets, input);

  const net::Rule& drop = tiny_.net.rule(tiny_.sp_default_drop);
  EXPECT_TRUE(transfer_.apply(drop, input).empty());
}

TEST_F(DataplaneTest, RewriteAppliesActionTransforms) {
  net::Rule rule = tiny_.net.rule(tiny_.sp_to_p1);
  rule.action.rewrites.push_back({Field::DstIp, 0x0a000105u});
  const PacketSet input = PacketSet::dst_prefix(mgr_, tiny_.p1);
  const PacketSet out = transfer_.rewrite(rule, input);
  EXPECT_EQ(out, PacketSet::field_equals(mgr_, Field::DstIp, 0x0a000105u));
  // Pre-image brings back the whole input domain.
  EXPECT_EQ(transfer_.rewrite_preimage(rule, out).intersect(input), input);
}

TEST_F(DataplaneTest, ConcreteLookupFollowsLpm) {
  EXPECT_EQ(transfer_.lookup(tiny_.leaf1, tiny_.l1_host, packet_to(tiny_.p1)),
            tiny_.l1_to_p1);
  EXPECT_EQ(transfer_.lookup(tiny_.leaf1, tiny_.l1_host, packet_to(tiny_.p2)),
            tiny_.l1_to_p2);
  EXPECT_EQ(transfer_.lookup(tiny_.leaf1, tiny_.l1_host,
                             packet_to(Ipv4Prefix::parse("99.0.0.0/8"))),
            tiny_.l1_default);
}

TEST_F(DataplaneTest, EcmpPickIsDeterministicAndValid) {
  net::Rule rule = tiny_.net.rule(tiny_.sp_to_p1);
  rule.action.out_interfaces = {tiny_.sp_d1, tiny_.sp_d2};
  const ConcretePacket pkt = packet_to(tiny_.p1);
  const net::InterfaceId first = transfer_.pick_ecmp(rule, pkt);
  EXPECT_EQ(transfer_.pick_ecmp(rule, pkt), first);
  EXPECT_TRUE(first == tiny_.sp_d1 || first == tiny_.sp_d2);
  // Different flows spread (not a strict requirement, but the hash must
  // depend on the packet at all).
  bool varies = false;
  for (uint16_t port = 0; port < 64 && !varies; ++port) {
    ConcretePacket probe = pkt;
    probe.src_port = port;
    varies = transfer_.pick_ecmp(rule, probe) != first;
  }
  EXPECT_TRUE(varies);
}

TEST_F(DataplaneTest, MatchSpecConcreteMatching) {
  net::MatchSpec spec;
  spec.dst_prefix = tiny_.p1;
  spec.proto = 6;
  spec.dst_port = net::PortRange{80, 443};
  ConcretePacket pkt = packet_to(tiny_.p1);
  EXPECT_TRUE(matches(spec, pkt, net::InterfaceId{}));
  pkt.proto = 17;
  EXPECT_FALSE(matches(spec, pkt, net::InterfaceId{}));
  pkt.proto = 6;
  pkt.dst_port = 8080;
  EXPECT_FALSE(matches(spec, pkt, net::InterfaceId{}));
  spec.in_interfaces = {tiny_.l1_host};
  pkt.dst_port = 80;
  EXPECT_TRUE(matches(spec, pkt, tiny_.l1_host));
  EXPECT_FALSE(matches(spec, pkt, tiny_.l1_up));
  // Local injection (invalid interface) bypasses ingress restrictions.
  EXPECT_TRUE(matches(spec, pkt, net::InterfaceId{}));
}

TEST_F(DataplaneTest, ConcreteSimulatorDeliversAcrossSpine) {
  const ConcreteSimulator sim(transfer_);
  const ConcreteTrace trace = sim.run(tiny_.leaf1, tiny_.l1_host, packet_to(tiny_.p2));
  EXPECT_EQ(trace.disposition, Disposition::Delivered);
  EXPECT_EQ(trace.egress, tiny_.l2_host);
  ASSERT_EQ(trace.hops.size(), 3u);
  EXPECT_EQ(trace.hops[0].device, tiny_.leaf1);
  EXPECT_EQ(trace.hops[1].device, tiny_.spine);
  EXPECT_EQ(trace.hops[2].device, tiny_.leaf2);
  EXPECT_EQ(trace.hops[1].rule, tiny_.sp_to_p2);
}

TEST_F(DataplaneTest, ConcreteSimulatorDropsOnNullRoute) {
  const ConcreteSimulator sim(transfer_);
  const ConcreteTrace trace =
      sim.run(tiny_.leaf1, tiny_.l1_host, packet_to(Ipv4Prefix::parse("99.0.0.0/8")));
  EXPECT_EQ(trace.disposition, Disposition::Dropped);
  EXPECT_EQ(trace.hops.back().device, tiny_.spine);
  EXPECT_EQ(trace.hops.back().rule, tiny_.sp_default_drop);
}

TEST_F(DataplaneTest, ConcreteSimulatorLoopDetection) {
  // Two devices defaulting at each other loop forever.
  net::Network n;
  const auto a = n.add_device("a", net::Role::Other);
  const auto b = n.add_device("b", net::Role::Other);
  const auto a0 = n.add_interface(a, "eth0");
  const auto b0 = n.add_interface(b, "eth0");
  n.add_link(a0, b0);
  n.add_rule(a, net::MatchSpec{}, net::Action::forward({a0}));
  n.add_rule(b, net::MatchSpec{}, net::Action::forward({b0}));
  const MatchSetIndex index(mgr_, n);
  const Transfer transfer(index);
  const ConcreteSimulator sim(transfer);
  EXPECT_EQ(sim.run(a, net::InterfaceId{}, packet_to(Ipv4Prefix::parse("1.0.0.0/8")), 16)
                .disposition,
            Disposition::Loop);
}

TEST_F(DataplaneTest, SymbolicFloodPartitionsDispositions) {
  const SymbolicSimulator sim(transfer_);
  const PacketSet everything = PacketSet::all(mgr_);
  const SymbolicResult result = sim.flood(tiny_.leaf1, tiny_.l1_host, everything);

  const PacketSet to_p1 = PacketSet::dst_prefix(mgr_, tiny_.p1);
  const PacketSet to_p2 = PacketSet::dst_prefix(mgr_, tiny_.p2);
  EXPECT_EQ(result.delivered.at(net::to_location(tiny_.l1_host)), to_p1);
  EXPECT_EQ(result.delivered.at(net::to_location(tiny_.l2_host)), to_p2);
  // Everything else dies on the spine's null default.
  EXPECT_EQ(result.dropped.at(net::to_location(tiny_.sp_d1)),
            everything.minus(to_p1).minus(to_p2));
  EXPECT_TRUE(result.unmatched.empty());
  // Conservation: delivered + dropped == injected.
  EXPECT_EQ(result.delivered.count() + result.dropped.count(), everything.count());
}

TEST_F(DataplaneTest, SymbolicFloodVisitorSeesEveryHop) {
  const SymbolicSimulator sim(transfer_);
  std::vector<net::DeviceId> visited;
  (void)sim.flood(tiny_.leaf1, tiny_.l1_host, PacketSet::dst_prefix(mgr_, tiny_.p2), 64,
                  [&](net::DeviceId dev, net::InterfaceId, const PacketSet& arriving) {
                    visited.push_back(dev);
                    EXPECT_FALSE(arriving.empty());
                  });
  EXPECT_EQ(visited, (std::vector<net::DeviceId>{tiny_.leaf1, tiny_.spine, tiny_.leaf2}));
}

TEST_F(DataplaneTest, SymbolicFloodTerminatesOnLoops) {
  net::Network n;
  const auto a = n.add_device("a", net::Role::Other);
  const auto b = n.add_device("b", net::Role::Other);
  const auto a0 = n.add_interface(a, "eth0");
  const auto b0 = n.add_interface(b, "eth0");
  n.add_link(a0, b0);
  n.add_rule(a, net::MatchSpec{}, net::Action::forward({a0}));
  n.add_rule(b, net::MatchSpec{}, net::Action::forward({b0}));
  const MatchSetIndex index(mgr_, n);
  const Transfer transfer(index);
  const SymbolicSimulator sim(transfer);
  const SymbolicResult result = sim.flood(a, net::InterfaceId{}, PacketSet::all(mgr_));
  // Loops deliver nothing; the flood must still terminate.
  EXPECT_TRUE(result.delivered.empty());
}

TEST_F(DataplaneTest, SymbolicAgreesWithConcreteOnSingletons) {
  const SymbolicSimulator sym(transfer_);
  const ConcreteSimulator conc(transfer_);
  for (const Ipv4Prefix& dst : {tiny_.p1, tiny_.p2, Ipv4Prefix::parse("8.8.8.0/24")}) {
    const ConcretePacket pkt = packet_to(dst);
    const ConcreteTrace trace = conc.run(tiny_.leaf1, tiny_.l1_host, pkt);
    const SymbolicResult result =
        sym.flood(tiny_.leaf1, tiny_.l1_host, PacketSet::from_packet(mgr_, pkt));
    if (trace.disposition == Disposition::Delivered) {
      EXPECT_TRUE(result.delivered.at(net::to_location(trace.egress)).contains(pkt));
    } else {
      EXPECT_TRUE(result.delivered.empty());
    }
  }
}

}  // namespace
}  // namespace yardstick::dataplane
