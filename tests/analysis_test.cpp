// Tests for suite analysis (redundancy, greedy ordering) and
// coverage-guided test suggestions.
#include <gtest/gtest.h>

#include "nettest/contract_checks.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "test_util.hpp"
#include "topo/acl.hpp"
#include "topo/fattree.hpp"
#include "yardstick/analysis.hpp"

namespace yardstick::ys {
namespace {

using packet::PacketSet;

/// A trivial test that marks exactly one given rule.
class OneRuleTest final : public nettest::NetworkTest {
 public:
  OneRuleTest(std::string name, net::RuleId rule) : name_(std::move(name)), rule_(rule) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] nettest::TestCategory category() const override {
    return nettest::TestCategory::StateInspection;
  }
  [[nodiscard]] nettest::TestResult run(const dataplane::Transfer&,
                                        CoverageTracker& tracker) const override {
    tracker.mark_rule(rule_);
    nettest::TestResult r;
    r.name = name_;
    r.checks = 1;
    return r;
  }

 private:
  std::string name_;
  net::RuleId rule_;
};

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() : tiny_(testutil::make_tiny()), index_(mgr_, tiny_.net), transfer_(index_) {}

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  testutil::TinyNetwork tiny_;
  dataplane::MatchSetIndex index_;
  dataplane::Transfer transfer_;
};

TEST_F(AnalysisTest, DetectsRedundantDuplicate) {
  nettest::TestSuite suite("s");
  suite.add(std::make_unique<OneRuleTest>("a", tiny_.l1_to_p1));
  suite.add(std::make_unique<OneRuleTest>("a-duplicate", tiny_.l1_to_p1));
  suite.add(std::make_unique<OneRuleTest>("b", tiny_.sp_to_p2));

  const SuiteAnalyzer analyzer(mgr_, tiny_.net);
  const SuiteAnalysis analysis = analyzer.analyze(transfer_, suite);

  ASSERT_EQ(analysis.tests.size(), 3u);
  // The duplicated pair: each is individually redundant (the other covers
  // the same rule); the distinct test is not.
  EXPECT_TRUE(analysis.tests[0].redundant);
  EXPECT_TRUE(analysis.tests[1].redundant);
  EXPECT_FALSE(analysis.tests[2].redundant);
  EXPECT_GT(analysis.tests[2].marginal, 0.0);
  // Solo coverages: one rule each out of 9.
  EXPECT_NEAR(analysis.tests[0].solo, 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(analysis.full, 2.0 / 9.0, 1e-12);
}

TEST_F(AnalysisTest, GreedyOrderFrontLoadsCoverage) {
  nettest::TestSuite suite("s");
  suite.add(std::make_unique<OneRuleTest>("small", tiny_.l1_to_p1));
  // A "big" test marking three rules.
  class ThreeRuleTest final : public nettest::NetworkTest {
   public:
    explicit ThreeRuleTest(const testutil::TinyNetwork& t) : t_(t) {}
    [[nodiscard]] std::string name() const override { return "big"; }
    [[nodiscard]] nettest::TestCategory category() const override {
      return nettest::TestCategory::StateInspection;
    }
    [[nodiscard]] nettest::TestResult run(const dataplane::Transfer&,
                                          CoverageTracker& tracker) const override {
      tracker.mark_rule(t_.sp_to_p1);
      tracker.mark_rule(t_.sp_to_p2);
      tracker.mark_rule(t_.sp_default_drop);
      return {};
    }
    const testutil::TinyNetwork& t_;
  };
  suite.add(std::make_unique<ThreeRuleTest>(tiny_));

  const SuiteAnalyzer analyzer(mgr_, tiny_.net);
  const SuiteAnalysis analysis = analyzer.analyze(transfer_, suite);
  ASSERT_EQ(analysis.greedy_order.size(), 2u);
  EXPECT_EQ(analysis.greedy_order[0], 1u);  // "big" first
  // Cumulative coverage is monotone and ends at the full value.
  EXPECT_LE(analysis.greedy_cumulative[0], analysis.greedy_cumulative[1] + 1e-12);
  EXPECT_NEAR(analysis.greedy_cumulative.back(), analysis.full, 1e-12);
}

TEST_F(AnalysisTest, RealSuiteContributions) {
  // On a fat-tree: DefaultRouteCheck and ToRContract cover disjoint rule
  // populations, so both have positive marginal value; a duplicated
  // DefaultRouteCheck is redundant.
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, tree.network);
  const dataplane::Transfer transfer(index);

  nettest::TestSuite suite("real");
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());
  suite.add(std::make_unique<nettest::ToRContract>());
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());

  const SuiteAnalyzer analyzer(mgr, tree.network);
  const SuiteAnalysis analysis = analyzer.analyze(transfer, suite);
  EXPECT_TRUE(analysis.tests[0].redundant);   // duplicated with [2]
  EXPECT_FALSE(analysis.tests[1].redundant);  // unique contract coverage
  EXPECT_TRUE(analysis.tests[2].redundant);
  EXPECT_GT(analysis.full, analysis.tests[1].solo);
}

TEST_F(AnalysisTest, BudgetedAnalysisClampsMarginalsAndFlagsTruncation) {
  // Regression: under a tripping budget the leave-one-out run can cover
  // more than the (degraded) full-suite run, which used to produce
  // negative marginals. Marginals must clamp at 0 and the analysis must
  // carry the truncated flag instead of throwing.
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, tree.network);
  const dataplane::Transfer transfer(index);

  nettest::TestSuite suite("budgeted");
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());
  suite.add(std::make_unique<nettest::ToRContract>());

  ResourceBudget budget;
  // The unbudgeted index above already allocated well past this cap, so
  // every analyzer-internal covered-set computation degrades.
  budget.with_max_bdd_nodes(1000);
  const SuiteAnalyzer analyzer(mgr, tree.network, &budget);
  const SuiteAnalysis analysis = analyzer.analyze(transfer, suite);

  EXPECT_TRUE(analysis.truncated);
  ASSERT_EQ(analysis.tests.size(), 2u);
  for (const TestContribution& t : analysis.tests) {
    EXPECT_GE(t.marginal, 0.0) << t.name;
    EXPECT_GE(t.solo, 0.0) << t.name;
  }
}

TEST_F(AnalysisTest, SuggestionsExerciseUntestedRules) {
  CoverageTracker tracker;
  tracker.mark_rule(tiny_.l1_to_p1);
  const CoverageEngine engine(mgr_, tiny_.net, tracker.trace());

  const auto suggestions = suggest_tests(engine, 100);
  EXPECT_EQ(suggestions.size(), 8u);  // 9 rules - 1 tested
  for (const TestSuggestion& s : suggestions) {
    // The sampled packet really exercises the rule: it lies in the rule's
    // disjoint match set.
    EXPECT_TRUE(engine.match_sets().match_set(s.rule).contains(s.sample))
        << s.to_string(tiny_.net);
    EXPECT_EQ(tiny_.net.rule(s.rule).device, s.device);
  }
}

TEST_F(AnalysisTest, SuggestionsRespectBudgetAndFilter) {
  const coverage::CoverageTrace empty;
  const CoverageEngine engine(mgr_, tiny_.net, empty);
  EXPECT_EQ(suggest_tests(engine, 3).size(), 3u);
  const auto spine_only = suggest_tests(engine, 100, role_filter(net::Role::Spine));
  EXPECT_EQ(spine_only.size(), 3u);
  for (const auto& s : spine_only) {
    EXPECT_EQ(tiny_.net.device(s.device).role, net::Role::Spine);
  }
}

TEST_F(AnalysisTest, SuggestionsSkipAclShadowedSpace) {
  // Block everything except TCP/80 at leaf1; suggestions for leaf1 FIB
  // rules must sample from the permitted space only.
  net::MatchSpec permit_web;
  permit_web.proto = 6;
  permit_web.dst_port = net::PortRange{80, 80};
  tiny_.net.add_rule(tiny_.leaf1, permit_web, net::Action::permit(),
                     net::RouteKind::Security, 0, net::TableKind::Acl);
  const coverage::CoverageTrace empty;
  const CoverageEngine engine(mgr_, tiny_.net, empty);
  for (const auto& s : suggest_tests(engine, 100)) {
    if (s.device == tiny_.leaf1 &&
        tiny_.net.rule(s.rule).table == net::TableKind::Fib) {
      EXPECT_EQ(s.sample.proto, 6) << s.to_string(tiny_.net);
      EXPECT_EQ(s.sample.dst_port, 80);
    }
  }
}

}  // namespace
}  // namespace yardstick::ys
