// Tests for the Yardstick engine (phase 2) and tracker (phase 1).
#include <gtest/gtest.h>

#include "nettest/state_checks.hpp"
#include "test_util.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::ys {
namespace {

using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::TinyNetwork;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : tiny_(make_tiny()) {}

  [[nodiscard]] PacketSet dst(const Ipv4Prefix& p) {
    return PacketSet::dst_prefix(mgr_, p);
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  CoverageTracker tracker_;
};

TEST_F(EngineTest, TrackerDisabledIsNoOp) {
  tracker_.set_enabled(false);
  tracker_.mark_packet(net::device_location(tiny_.leaf1), dst(tiny_.p1));
  tracker_.mark_rule(tiny_.l1_to_p1);
  EXPECT_EQ(tracker_.packet_calls(), 0u);
  EXPECT_EQ(tracker_.rule_calls(), 0u);
  EXPECT_TRUE(tracker_.trace().marked_packets().empty());
}

TEST_F(EngineTest, LogModeFoldsToSameTrace) {
  CoverageTracker dedup(CoverageTracker::Mode::Dedup);
  CoverageTracker log(CoverageTracker::Mode::Log);
  for (auto* t : {&dedup, &log}) {
    t->mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p1));
    t->mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p2));
    t->mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p1));
    t->mark_rule(tiny_.sp_to_p1);
  }
  EXPECT_GT(log.log_entries(), 0u);
  EXPECT_EQ(log.trace().marked_packets(), dedup.trace().marked_packets());
  EXPECT_EQ(log.trace().marked_rules(), dedup.trace().marked_rules());
  EXPECT_EQ(log.log_entries(), 0u);  // folded on read
}

TEST_F(EngineTest, TrackerReset) {
  tracker_.mark_rule(tiny_.l1_to_p1);
  tracker_.reset();
  EXPECT_TRUE(tracker_.trace().marked_rules().empty());
  EXPECT_EQ(tracker_.rule_calls(), 0u);
}

TEST_F(EngineTest, SingleComponentQueries) {
  tracker_.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p2));
  const CoverageEngine engine(mgr_, tiny_.net, tracker_.trace());
  EXPECT_DOUBLE_EQ(engine.rule_coverage(tiny_.l1_to_p2), 1.0);
  EXPECT_DOUBLE_EQ(engine.rule_coverage(tiny_.l1_to_p1), 0.0);
  EXPECT_GT(engine.device_coverage(tiny_.leaf1), 0.0);
  EXPECT_DOUBLE_EQ(engine.device_coverage(tiny_.spine), 0.0);
  EXPECT_GT(engine.interface_coverage(tiny_.l1_up), 0.0);
  EXPECT_DOUBLE_EQ(engine.interface_coverage(tiny_.l1_host), 0.0);
}

TEST_F(EngineTest, CollectionQueriesWithFilters) {
  tracker_.mark_rule(tiny_.l1_default);
  const CoverageEngine engine(mgr_, tiny_.net, tracker_.trace());
  const double all_frac =
      engine.rules_coverage(coverage::fractional_aggregator());
  EXPECT_NEAR(all_frac, 1.0 / 9.0, 1e-12);
  const double tor_frac = engine.rules_coverage(coverage::fractional_aggregator(),
                                                role_filter(net::Role::ToR));
  EXPECT_NEAR(tor_frac, 1.0 / 6.0, 1e-12);
  const double spine_frac = engine.rules_coverage(coverage::fractional_aggregator(),
                                                  role_filter(net::Role::Spine));
  EXPECT_DOUBLE_EQ(spine_frac, 0.0);
}

TEST_F(EngineTest, FlowCoverageQuery) {
  for (const net::RuleId rid : {tiny_.l1_to_p2, tiny_.sp_to_p2, tiny_.l2_to_p2}) {
    tracker_.mark_rule(rid);
  }
  const CoverageEngine engine(mgr_, tiny_.net, tracker_.trace());
  EXPECT_DOUBLE_EQ(engine.flow_coverage(tiny_.leaf1, tiny_.l1_host, dst(tiny_.p2)), 1.0);
  EXPECT_DOUBLE_EQ(engine.flow_coverage(tiny_.leaf1, tiny_.l1_host, dst(tiny_.p1)), 0.0);
}

TEST_F(EngineTest, PathCoverageSweep) {
  for (const net::RuleId rid : {tiny_.l1_to_p2, tiny_.sp_to_p2, tiny_.l2_to_p2}) {
    tracker_.mark_rule(rid);
  }
  const CoverageEngine engine(mgr_, tiny_.net, tracker_.trace());
  const PathCoverageResult result = engine.path_coverage();
  EXPECT_EQ(result.total_paths, 6u);
  // Covered: the leaf1 -> leaf2 p2 path (all three rules inspected) and
  // leaf2's one-rule p2 hairpin path (l2_to_p2 inspected). Everything
  // else involves uninspected rules.
  EXPECT_EQ(result.covered_paths, 2u);
  EXPECT_NEAR(result.fractional, 2.0 / 6.0, 1e-12);
  EXPECT_FALSE(result.truncated);
}

TEST_F(EngineTest, PathCoverageBudgetTruncates) {
  const CoverageEngine engine(mgr_, tiny_.net, tracker_.trace());
  coverage::PathExplorerOptions options;
  options.max_paths = 3;
  const PathCoverageResult result = engine.path_coverage(options);
  EXPECT_EQ(result.total_paths, 3u);
  EXPECT_TRUE(result.truncated);
}

TEST_F(EngineTest, UntestedRulesAndInterfaces) {
  tracker_.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p2));
  const CoverageEngine engine(mgr_, tiny_.net, tracker_.trace());
  const auto untested = engine.untested_rules();
  // 9 rules total; l1_to_p2 / sp_to_p2 / l2_to_p2 covered? No: the marks
  // were only reported at leaf1, so only l1_to_p2 is covered.
  EXPECT_EQ(untested.size(), 8u);
  const auto tor_untested = engine.untested_rules(role_filter(net::Role::ToR));
  EXPECT_EQ(tor_untested.size(), 5u);
  const auto ifaces = engine.untested_interfaces();
  EXPECT_FALSE(ifaces.empty());
}

TEST_F(EngineTest, ReportShapesAndText) {
  nettest::DefaultRouteCheck check;
  const dataplane::MatchSetIndex index(mgr_, tiny_.net);
  const dataplane::Transfer transfer(index);
  (void)check.run(transfer, tracker_);
  const CoverageEngine engine(mgr_, tiny_.net, tracker_.trace());
  const CoverageReport report = engine.report();

  ASSERT_EQ(report.by_role.size(), 2u);  // ToR + Spine
  EXPECT_EQ(report.by_role[0].role, net::Role::ToR);
  EXPECT_EQ(report.by_role[0].device_count, 2u);
  // DefaultRouteCheck fails on the spine's null default (not forwarding) —
  // but it still marked the rule, so spine rule coverage is non-zero.
  EXPECT_GT(report.by_role[1].metrics.rule_fractional, 0.0);
  // Weighted rule coverage is high everywhere (default routes dominate).
  EXPECT_GT(report.overall.rule_weighted, 0.9);
  // Fractional rule coverage is low (only defaults covered).
  EXPECT_NEAR(report.overall.rule_fractional, 3.0 / 9.0, 1e-12);

  const std::string text = report.to_text();
  EXPECT_NE(text.find("ToR"), std::string::npos);
  EXPECT_NE(text.find("default"), std::string::npos);
  EXPECT_NE(text.find("ALL"), std::string::npos);

  bool has_default_gap = false;
  for (const auto& gap : report.gaps) {
    if (gap.kind == net::RouteKind::Default) {
      has_default_gap = true;
      EXPECT_EQ(gap.untested, 0u);
      EXPECT_EQ(gap.total, 3u);
    }
  }
  EXPECT_TRUE(has_default_gap);
}

TEST_F(EngineTest, MonotonicityAcrossEngineRuns) {
  // Engine-level monotonicity: adding marks never lowers any headline.
  std::vector<MetricRow> rows;
  const auto snapshot = [&] {
    const CoverageEngine engine(mgr_, tiny_.net, tracker_.trace());
    rows.push_back(engine.report().overall);
  };
  snapshot();
  tracker_.mark_rule(tiny_.l1_default);
  snapshot();
  tracker_.mark_packet(net::to_location(tiny_.l1_host), dst(tiny_.p2));
  snapshot();
  tracker_.mark_packet(net::device_location(tiny_.spine), PacketSet::all(mgr_));
  snapshot();
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].device_fractional, rows[i - 1].device_fractional);
    EXPECT_GE(rows[i].interface_fractional, rows[i - 1].interface_fractional);
    EXPECT_GE(rows[i].rule_fractional, rows[i - 1].rule_fractional);
    EXPECT_GE(rows[i].rule_weighted, rows[i - 1].rule_weighted - 1e-12);
  }
}

}  // namespace
}  // namespace yardstick::ys
