// Tests for the fat-tree and regional topology generators, including
// forwarding sanity on the generated FIBs.
#include <gtest/gtest.h>

#include "dataplane/simulator.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "topo/regional.hpp"

namespace yardstick::topo {
namespace {

using net::PortKind;
using net::Role;
using packet::Ipv4Prefix;
using packet::PacketSet;

TEST(FatTreeTest, RejectsBadArity) {
  EXPECT_THROW(make_fat_tree({.k = 3}), std::invalid_argument);
  EXPECT_THROW(make_fat_tree({.k = 0}), std::invalid_argument);
}

class FatTreeSizes : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeSizes, RouterCountIsFiveKSquaredOverFour) {
  const int k = GetParam();
  const FatTree tree = make_fat_tree({.k = k, .with_wan = false});
  EXPECT_EQ(tree.tors.size(), static_cast<size_t>(k * k / 2));
  EXPECT_EQ(tree.aggs.size(), static_cast<size_t>(k * k / 2));
  EXPECT_EQ(tree.cores.size(), static_cast<size_t>(k * k / 4));
  EXPECT_EQ(tree.network.device_count(), static_cast<size_t>(5 * k * k / 4));
}

TEST_P(FatTreeSizes, WiringDegrees) {
  const int k = GetParam();
  const FatTree tree = make_fat_tree({.k = k, .with_wan = false});
  for (const net::DeviceId tor : tree.tors) {
    EXPECT_EQ(tree.network.neighbors(tor).size(), static_cast<size_t>(k / 2));
  }
  for (const net::DeviceId agg : tree.aggs) {
    EXPECT_EQ(tree.network.neighbors(agg).size(), static_cast<size_t>(k));
  }
  for (const net::DeviceId core : tree.cores) {
    EXPECT_EQ(tree.network.neighbors(core).size(), static_cast<size_t>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, FatTreeSizes, ::testing::Values(2, 4, 8));

TEST(FatTreeTest, EveryTorHasOneHostedPrefixAndPort) {
  const FatTree tree = make_fat_tree({.k = 4});
  for (const net::DeviceId tor : tree.tors) {
    EXPECT_EQ(tree.network.device(tor).host_prefixes.size(), 1u);
    EXPECT_EQ(tree.network.ports_of_kind(tor, PortKind::HostPort).size(), 1u);
  }
  // Hosted prefixes are pairwise distinct.
  std::set<uint32_t> addresses;
  for (const net::DeviceId tor : tree.tors) {
    addresses.insert(tree.network.device(tor).host_prefixes.front().address());
  }
  EXPECT_EQ(addresses.size(), tree.tors.size());
}

TEST(FatTreeTest, WanAttachmentAndWideAreaPrefixes) {
  const FatTree tree = make_fat_tree({.k = 4, .with_wan = true, .wide_area_prefix_count = 3});
  ASSERT_TRUE(tree.wan.valid());
  EXPECT_EQ(tree.network.neighbors(tree.wan).size(), tree.cores.size());
  EXPECT_EQ(tree.routing.wide_area_prefixes.at(tree.wan).size(), 3u);
  EXPECT_EQ(tree.network.ports_of_kind(tree.wan, PortKind::ExternalPort).size(), 1u);
}

TEST(FatTreeTest, LoopbackOption) {
  const FatTree without = make_fat_tree({.k = 4, .with_loopbacks = false});
  EXPECT_TRUE(without.network.device(without.tors[0]).loopbacks.empty());
  FatTreeParams params{.k = 4};
  params.with_loopbacks = true;
  const FatTree with = make_fat_tree(params);
  for (const net::Device& dev : with.network.devices()) {
    if (dev.role == Role::Wan) continue;
    EXPECT_EQ(dev.loopbacks.size(), 1u) << dev.name;
  }
}

TEST(FatTreeTest, EndToEndForwardingAfterFibBuild) {
  FatTree tree = make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, tree.network);
  const dataplane::Transfer transfer(index);
  const dataplane::ConcreteSimulator sim(transfer);

  // First ToR to last ToR (different pods) and to the WAN.
  const net::DeviceId src = tree.tors.front();
  const net::DeviceId dst = tree.tors.back();
  packet::ConcretePacket pkt;
  pkt.dst_ip = tree.network.device(dst).host_prefixes.front().first() + 7;
  const auto trace = sim.run(src, net::InterfaceId{}, pkt);
  EXPECT_EQ(trace.disposition, dataplane::Disposition::Delivered);
  EXPECT_EQ(tree.network.interface(trace.egress).device, dst);

  pkt.dst_ip = 0x08080808u;  // not hosted anywhere -> default to WAN
  const auto wan_trace = sim.run(src, net::InterfaceId{}, pkt);
  EXPECT_EQ(wan_trace.disposition, dataplane::Disposition::Delivered);
  EXPECT_EQ(tree.network.interface(wan_trace.egress).device, tree.wan);
}

TEST(RegionalTest, RejectsBadParameters) {
  RegionalParams p;
  p.datacenters = 0;
  EXPECT_THROW(make_regional(p), std::invalid_argument);
}

TEST(RegionalTest, LayerCounts) {
  RegionalParams p;  // defaults: 2 DCs, 2 pods, 4 tors/pod, 2 aggs/pod, 4 spines, 4 hubs, 2 wans
  const RegionalNetwork region = make_regional(p);
  EXPECT_EQ(region.tors.size(), static_cast<size_t>(p.datacenters * p.pods_per_dc * p.tors_per_pod));
  EXPECT_EQ(region.aggs.size(), static_cast<size_t>(p.datacenters * p.pods_per_dc * p.aggs_per_pod));
  EXPECT_EQ(region.spines.size(), static_cast<size_t>(p.datacenters * p.spines_per_dc));
  EXPECT_EQ(region.hubs.size(), static_cast<size_t>(p.hubs));
  EXPECT_EQ(region.wans.size(), static_cast<size_t>(p.wans));
}

TEST(RegionalTest, EveryRouterHasLoopbackAndLocalPort) {
  const RegionalNetwork region = make_regional({});
  for (const net::Device& dev : region.network.devices()) {
    EXPECT_EQ(dev.loopbacks.size(), 1u) << dev.name;
    EXPECT_EQ(region.network.ports_of_kind(dev.id, PortKind::LocalPort).size(), 1u);
  }
}

TEST(RegionalTest, HubsWithoutDefaultAreConfigured) {
  RegionalParams p;
  p.hubs_without_default = 2;
  const RegionalNetwork region = make_regional(p);
  EXPECT_EQ(region.routing.no_default_devices.size(), 2u);
}

TEST(RegionalTest, CrossDatacenterForwarding) {
  RegionalParams p;
  RegionalNetwork region = make_regional(p);
  routing::FibBuilder::compute_and_build(region.network, region.routing);

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, region.network);
  const dataplane::Transfer transfer(index);
  const dataplane::ConcreteSimulator sim(transfer);

  // ToR in DC0 to a ToR in DC1 must cross spine + hub layers.
  const net::DeviceId src = region.tors.front();
  const net::DeviceId dst = region.tors.back();
  packet::ConcretePacket pkt;
  pkt.dst_ip = region.network.device(dst).host_prefixes.front().first() + 3;
  const auto trace = sim.run(src, net::InterfaceId{}, pkt);
  ASSERT_EQ(trace.disposition, dataplane::Disposition::Delivered);
  EXPECT_EQ(region.network.interface(trace.egress).device, dst);
  bool crossed_hub = false;
  for (const auto& hop : trace.hops) {
    if (region.network.device(hop.device).role == Role::RegionalHub) crossed_hub = true;
  }
  EXPECT_TRUE(crossed_hub);
}

TEST(RegionalTest, WideAreaTrafficExitsViaWan) {
  RegionalNetwork region = make_regional({});
  routing::FibBuilder::compute_and_build(region.network, region.routing);

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, region.network);
  const dataplane::Transfer transfer(index);
  const dataplane::ConcreteSimulator sim(transfer);

  packet::ConcretePacket pkt;
  pkt.dst_ip = Ipv4Prefix::parse("100.64.0.0/16").first() + 9;
  const auto trace = sim.run(region.tors.front(), net::InterfaceId{}, pkt);
  ASSERT_EQ(trace.disposition, dataplane::Disposition::Delivered);
  EXPECT_EQ(region.network.device(region.network.interface(trace.egress).device).role,
            Role::Wan);
}

TEST(RegionalTest, LoopbackReachableAcrossRegion) {
  RegionalNetwork region = make_regional({});
  routing::FibBuilder::compute_and_build(region.network, region.routing);

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, region.network);
  const dataplane::Transfer transfer(index);
  const dataplane::ConcreteSimulator sim(transfer);

  const net::DeviceId spine = region.spines.back();
  packet::ConcretePacket pkt;
  pkt.dst_ip = region.network.device(spine).loopbacks.front().first();
  const auto trace = sim.run(region.tors.front(), net::InterfaceId{}, pkt);
  ASSERT_EQ(trace.disposition, dataplane::Disposition::Delivered);
  EXPECT_EQ(region.network.interface(trace.egress).device, spine);
  EXPECT_EQ(region.network.interface(trace.egress).kind, PortKind::LocalPort);
}

}  // namespace
}  // namespace yardstick::topo
