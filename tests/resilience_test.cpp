// Resilience tests: resource budgets degrade gracefully (truncated
// results, never crashes or hangs), and the fault-injection harness can
// provoke failures at precise internal moments.
#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/budget.hpp"
#include "dataplane/match_sets.hpp"
#include "fault_injection.hpp"
#include "test_util.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/json.hpp"
#include "yardstick/persist.hpp"

namespace yardstick::ys {
namespace {

using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::ScopedFault;
using testutil::TinyNetwork;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool exists(const std::string& path) { return std::ifstream(path).good(); }

/// Atomic saves stage through unique "<path>.tmp.<pid>.<seq>" names; any
/// survivor after a save — failed or not — is a cleanup bug.
bool temp_leftovers(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return false;
  bool found = false;
  while (const dirent* entry = ::readdir(d)) {
    if (std::string(entry->d_name).rfind(prefix, 0) == 0) {
      found = true;
      break;
    }
  }
  ::closedir(d);
  return found;
}

class ResilienceTest : public ::testing::Test {
 protected:
  ResilienceTest() : tiny_(make_tiny()) {}
  ~ResilienceTest() override { fault::reset(); }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  coverage::CoverageTrace trace_;
};

// --- resource budgets: graceful degradation ---

TEST_F(ResilienceTest, UnbudgetedEngineIsNotTruncated) {
  const CoverageEngine engine(mgr_, tiny_.net, trace_);
  EXPECT_FALSE(engine.truncated());
  EXPECT_FALSE(engine.metrics().truncated);
  EXPECT_FALSE(engine.report().truncated);
}

TEST_F(ResilienceTest, NodeBudgetTripReturnsTruncatedResults) {
  // A cap far below what the tiny network's match sets need: construction
  // must complete (no throw, no hang) and every downstream artifact must
  // carry the truncated flag.
  ResourceBudget budget;
  budget.with_max_bdd_nodes(64);
  const CoverageEngine engine(mgr_, tiny_.net, trace_, &budget);
  EXPECT_TRUE(engine.truncated());

  const MetricRow row = engine.metrics();
  EXPECT_TRUE(row.truncated);

  const CoverageReport report = engine.report();
  EXPECT_TRUE(report.truncated);
  EXPECT_NE(report.to_text().find("TRUNCATED"), std::string::npos);
  EXPECT_NE(report_to_json(report).find("\"truncated\":true"), std::string::npos);

  const PathCoverageResult paths = engine.path_coverage();
  EXPECT_TRUE(paths.truncated);
}

TEST_F(ResilienceTest, PreCancelledBudgetDegradesConstruction) {
  ResourceBudget budget;
  budget.request_cancel();
  const CoverageEngine engine(mgr_, tiny_.net, trace_, &budget);
  EXPECT_TRUE(engine.truncated());
  EXPECT_TRUE(engine.report().truncated);
}

TEST_F(ResilienceTest, TruncatedMetricsStayWellFormed) {
  // Degraded metrics are still numbers in [0, 1] — never NaN, never an
  // exception — and the truncated flag (not the values) is the signal that
  // they cannot be trusted. (Rule marks only: they are manager-independent.)
  trace_.mark_rule(tiny_.l1_to_p2);
  trace_.mark_rule(tiny_.sp_to_p2);
  ResourceBudget budget;
  budget.with_max_bdd_nodes(64);
  const CoverageEngine degraded(mgr_, tiny_.net, trace_, &budget);
  const MetricRow partial = degraded.metrics();
  EXPECT_TRUE(partial.truncated);
  for (const double v : {partial.device_fractional, partial.interface_fractional,
                         partial.rule_fractional, partial.rule_weighted}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

// --- fault injection: budget trips at precise internal moments ---

TEST_F(ResilienceTest, BudgetTripAtNthBddAllocationDegradesMatchSets) {
  const ScopedFault boom("bdd.make", testutil::trip_budget("injected bdd-nodes cap"),
                         /*nth=*/50);
  const dataplane::MatchSetIndex index(mgr_, tiny_.net);
  EXPECT_TRUE(index.truncated());
}

TEST_F(ResilienceTest, CancelAtNthDfsStepTruncatesPathSweep) {
  const CoverageEngine engine(mgr_, tiny_.net, trace_);
  ResourceBudget budget;
  const ScopedFault boom("path.dfs", testutil::cancel(budget), /*nth=*/2);
  coverage::PathExplorerOptions options;
  options.budget = &budget;
  const PathCoverageResult result = engine.path_coverage(options);
  EXPECT_TRUE(result.truncated);
}

TEST_F(ResilienceTest, PreExpiredDeadlineTruncatesPathSweep) {
  const CoverageEngine engine(mgr_, tiny_.net, trace_);
  ResourceBudget budget;
  budget.with_deadline(0.0);
  coverage::PathExplorerOptions options;
  options.budget = &budget;
  const PathCoverageResult result = engine.path_coverage(options);
  EXPECT_TRUE(result.truncated);
}

TEST_F(ResilienceTest, BudgetExceededPathEndIsDistinct) {
  EXPECT_STREQ(to_string(coverage::PathEnd::BudgetExceeded), "budget-exceeded");
  EXPECT_STREQ(to_string(static_cast<coverage::PathEnd>(250)), "invalid");
}

// --- crash-safe persistence ---

TEST_F(ResilienceTest, InterruptedSaveNeverLeavesPartialFile) {
  trace_.mark_packet(net::to_location(tiny_.l1_host),
                     PacketSet::dst_prefix(mgr_, tiny_.p1));
  const std::string path = ::testing::TempDir() + "/resilience_commit.trace";
  save_trace(path, trace_, mgr_);
  const std::string committed = slurp(path);
  ASSERT_FALSE(committed.empty());

  // Crash between flush and rename: the destination keeps its previous
  // content and the temp file is cleaned up.
  coverage::CoverageTrace bigger = trace_;
  bigger.mark_rule(tiny_.sp_to_p1);
  {
    const ScopedFault boom("persist.save.commit", testutil::throw_io("injected crash"));
    EXPECT_THROW(save_trace(path, bigger, mgr_), IoError);
  }
  EXPECT_EQ(slurp(path), committed);
  EXPECT_FALSE(temp_leftovers(path));

  // The retry (fault disarmed) succeeds and the new content is complete.
  save_trace(path, bigger, mgr_);
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  EXPECT_EQ(load_trace(path, mgr2).marked_rules().size(), 1u);
  std::remove(path.c_str());
}

TEST_F(ResilienceTest, InterruptedWriteLeavesNoFileAtFreshDestination) {
  const std::string path = ::testing::TempDir() + "/resilience_fresh.trace";
  std::remove(path.c_str());
  {
    const ScopedFault boom("persist.save.write", testutil::throw_io("injected disk full"));
    EXPECT_THROW(save_trace(path, trace_, mgr_), IoError);
  }
  EXPECT_FALSE(exists(path));
  EXPECT_FALSE(temp_leftovers(path));
}

TEST_F(ResilienceTest, FailedFsyncAbortsTheSaveBeforeCommit) {
  // fsync failing means the temp file's bytes may not be durable: the
  // save must abort without renaming, leaving the old content in place.
  trace_.mark_packet(net::to_location(tiny_.l1_host),
                     PacketSet::dst_prefix(mgr_, tiny_.p1));
  const std::string path = ::testing::TempDir() + "/resilience_fsync.trace";
  save_trace(path, trace_, mgr_);
  const std::string committed = slurp(path);
  {
    const ScopedFault boom("persist.save.fsync", testutil::throw_io("injected fsync"));
    EXPECT_THROW(save_trace(path, trace_, mgr_), IoError);
  }
  EXPECT_EQ(slurp(path), committed);
  EXPECT_FALSE(temp_leftovers(path));
  std::remove(path.c_str());
}

TEST_F(ResilienceTest, FailedDirectorySyncStillLeavesTheCommittedFile) {
  // The parent-directory fsync makes the rename itself durable. If IT
  // fails the rename has already happened: the error is reported, but
  // the committed (complete, self-checksummed) file must never be
  // deleted — deleting it would turn a maybe-lost rename into a
  // certainly-lost trace.
  const std::string path = ::testing::TempDir() + "/resilience_dirsync.trace";
  std::remove(path.c_str());
  {
    const ScopedFault boom("persist.save.dirsync", testutil::throw_io("injected dirsync"));
    EXPECT_THROW(save_trace(path, trace_, mgr_), IoError);
  }
  EXPECT_TRUE(exists(path));
  EXPECT_FALSE(temp_leftovers(path));
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  (void)load_trace(path, mgr2);  // complete and readable
  std::remove(path.c_str());
}

TEST_F(ResilienceTest, ConcurrentSavesToOnePathNeverClobberEachOther) {
  // Two savers racing on the same destination used to share one fixed
  // "<path>.tmp" staging name, so one could rename the other's half-written
  // bytes into place. With O_EXCL per-save temp names, every save commits a
  // complete file: whoever renames last wins, and the winner's content is
  // always loadable.
  trace_.mark_packet(net::to_location(tiny_.l1_host),
                     PacketSet::dst_prefix(mgr_, tiny_.p1));
  coverage::CoverageTrace other = trace_;
  other.mark_rule(tiny_.sp_to_p1);
  const std::string path = ::testing::TempDir() + "/resilience_race.trace";
  std::remove(path.c_str());

  std::vector<std::thread> savers;
  for (int round = 0; round < 8; ++round) {
    savers.emplace_back([&, round] {
      save_trace(path, round % 2 == 0 ? trace_ : other, mgr_);
    });
  }
  for (std::thread& t : savers) t.join();

  // The survivor is one of the two saved traces, never an interleaving.
  bdd::BddManager mgr2(packet::kNumHeaderBits);
  const coverage::CoverageTrace winner = load_trace(path, mgr2);
  EXPECT_LE(winner.marked_rules().size(), 1u);
  EXPECT_EQ(winner.marked_packets().entries().size(), 1u);
  EXPECT_FALSE(temp_leftovers(path));
  std::remove(path.c_str());
}

// --- taxonomy plumbing ---

TEST_F(ResilienceTest, ErrorCodesRoundTripThroughCatch) {
  try {
    throw BudgetExceededError("bdd-nodes 64");
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), Error::BudgetExceeded);
    EXPECT_EQ(e.context().budget, "bdd-nodes 64");
    EXPECT_TRUE(is_resource_exhaustion(e.code()));
  }
  try {
    throw InvalidInputError("bad k", {.source = "cli"});
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bad k"), std::string::npos);
  }
  EXPECT_FALSE(is_resource_exhaustion(Error::CorruptTrace));
  EXPECT_FALSE(is_resource_exhaustion(Error::IoError));
}

TEST_F(ResilienceTest, FaultCountdownFiresExactlyOnce) {
  int fired = 0;
  fault::arm("unit.count", 3, [&] { ++fired; });
  for (int i = 0; i < 10; ++i) fault::fire("unit.count");
  EXPECT_EQ(fired, 1);  // fires on the 3rd crossing, then disarms
  fault::reset();
}

}  // namespace
}  // namespace yardstick::ys
