// Tests for suite optimization: set-cover minimization (known minimal
// subsets, slack monotonicity, edge cases), cost-aware prioritization,
// gap-witness synthesis + dataplane replay, and thread-count bit-identity
// of everything derived from the coverage matrix.
#include <gtest/gtest.h>

#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "test_util.hpp"
#include "topo/acl.hpp"
#include "topo/fattree.hpp"
#include "yardstick/optimize.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick::ys {
namespace {

using packet::PacketSet;

/// Marks a fixed set of rules (state inspection), so tests control the
/// coverage matrix exactly.
class MarkRulesTest final : public nettest::NetworkTest {
 public:
  MarkRulesTest(std::string name, std::vector<net::RuleId> rules)
      : name_(std::move(name)), rules_(std::move(rules)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] nettest::TestCategory category() const override {
    return nettest::TestCategory::StateInspection;
  }
  [[nodiscard]] nettest::TestResult run(const dataplane::Transfer&,
                                        CoverageTracker& tracker) const override {
    for (const net::RuleId r : rules_) tracker.mark_rule(r);
    nettest::TestResult res;
    res.name = name_;
    res.checks = rules_.size();
    return res;
  }

 private:
  std::string name_;
  std::vector<net::RuleId> rules_;
};

class SuiteOptimizeTest : public ::testing::Test {
 protected:
  SuiteOptimizeTest()
      : tiny_(testutil::make_tiny()), index_(mgr_, tiny_.net), transfer_(index_) {}

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  testutil::TinyNetwork tiny_;
  dataplane::MatchSetIndex index_;
  dataplane::Transfer transfer_;
};

TEST_F(SuiteOptimizeTest, MinimizationFindsKnownMinimalSubset) {
  // alpha covers {l1_to_p1}; beta covers {sp_to_p1, sp_to_p2}; gamma
  // duplicates alpha. The unique minimum cover is {beta, alpha} (gamma
  // loses the name tie-break).
  nettest::TestSuite suite("s");
  suite.add(std::make_unique<MarkRulesTest>(
      "alpha", std::vector<net::RuleId>{tiny_.l1_to_p1}));
  suite.add(std::make_unique<MarkRulesTest>(
      "beta", std::vector<net::RuleId>{tiny_.sp_to_p1, tiny_.sp_to_p2}));
  suite.add(std::make_unique<MarkRulesTest>(
      "gamma", std::vector<net::RuleId>{tiny_.l1_to_p1}));

  const SuiteCoverageMatrix m = build_suite_matrix(transfer_, suite);
  const MinimizeResult min = minimize_suite(m);

  ASSERT_EQ(min.selected.size(), 2u);
  EXPECT_EQ(min.selected[0].name, "beta");   // biggest gain first
  EXPECT_EQ(min.selected[1].name, "alpha");  // name beats gamma on the tie
  EXPECT_EQ(min.selected[0].added_rules, 2u);
  EXPECT_EQ(min.selected[1].added_rules, 1u);
  // Exact preservation, stated in the same doubles the engine computes.
  EXPECT_EQ(min.achieved_coverage, min.full_coverage);
  EXPECT_EQ(min.dropped(m), std::vector<std::string>{"gamma"});
  EXPECT_TRUE(min.contains(0));
  EXPECT_TRUE(min.contains(1));
  EXPECT_FALSE(min.contains(2));
}

TEST_F(SuiteOptimizeTest, SlackKnobIsMonotoneAndPrefixStable) {
  nettest::TestSuite suite("s");
  suite.add(std::make_unique<MarkRulesTest>(
      "a", std::vector<net::RuleId>{tiny_.l1_to_p1}));
  suite.add(std::make_unique<MarkRulesTest>(
      "b", std::vector<net::RuleId>{tiny_.sp_to_p1, tiny_.sp_to_p2}));
  suite.add(std::make_unique<MarkRulesTest>(
      "c", std::vector<net::RuleId>{tiny_.l2_to_p2}));
  suite.add(std::make_unique<MarkRulesTest>(
      "d", std::vector<net::RuleId>{tiny_.l2_default}));
  const SuiteCoverageMatrix m = build_suite_matrix(transfer_, suite);

  std::vector<MinimizeResult> results;
  for (const double f : {0.2, 0.5, 0.8, 0.95, 1.0}) {
    results.push_back(minimize_suite(m, f));
    EXPECT_GE(results.back().achieved_coverage,
              f * results.back().full_coverage);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    // Sizes are monotone in the knob and looser selections are prefixes of
    // stricter ones (greedy order does not depend on the target).
    ASSERT_GE(results[i].selected.size(), results[i - 1].selected.size());
    for (size_t j = 0; j < results[i - 1].selected.size(); ++j) {
      EXPECT_EQ(results[i].selected[j].index, results[i - 1].selected[j].index);
    }
  }
  EXPECT_EQ(results.back().achieved_coverage, results.back().full_coverage);
}

TEST_F(SuiteOptimizeTest, EmptySuiteMinimizesToNothing) {
  const nettest::TestSuite suite("empty");
  const SuiteCoverageMatrix m = build_suite_matrix(transfer_, suite);
  EXPECT_EQ(m.test_count(), 0u);

  const MinimizeResult min = minimize_suite(m);
  EXPECT_TRUE(min.selected.empty());
  EXPECT_EQ(min.achieved_coverage, min.full_coverage);

  const PrioritizeResult pri = prioritize_suite(m);
  EXPECT_TRUE(pri.order.empty());
  EXPECT_EQ(pri.full_coverage, m.coverage_of(0));
}

TEST_F(SuiteOptimizeTest, AllRedundantSuiteKeepsExactlyOne) {
  // Three byte-identical tests under different names: any one preserves
  // full coverage; the name tie-break keeps the lexicographically first.
  nettest::TestSuite suite("s");
  for (const char* name : {"charlie", "alice", "bob"}) {
    suite.add(std::make_unique<MarkRulesTest>(
        name, std::vector<net::RuleId>{tiny_.sp_to_p1}));
  }
  const SuiteCoverageMatrix m = build_suite_matrix(transfer_, suite);
  const MinimizeResult min = minimize_suite(m);
  ASSERT_EQ(min.selected.size(), 1u);
  EXPECT_EQ(min.selected[0].name, "alice");
  EXPECT_EQ(min.achieved_coverage, min.full_coverage);
}

TEST_F(SuiteOptimizeTest, ZeroCoverageSuiteSelectsNothing) {
  // A test that marks nothing cannot help; minimization must terminate
  // with an empty selection instead of spinning on zero-gain candidates.
  nettest::TestSuite suite("s");
  suite.add(std::make_unique<MarkRulesTest>("noop", std::vector<net::RuleId>{}));
  const SuiteCoverageMatrix m = build_suite_matrix(transfer_, suite);
  const MinimizeResult min = minimize_suite(m);
  EXPECT_TRUE(min.selected.empty());
  EXPECT_EQ(min.achieved_coverage, min.full_coverage);
}

TEST_F(SuiteOptimizeTest, PrioritizationOrdersByMarginalCoveragePerSecond) {
  // Hand-built matrix so the cost side is deterministic: "fast-small"
  // buys 1 rule for 0.01s (100 rules/s); "slow-big" buys 3 rules for 1s
  // (3 rules/s). Value-per-second greedy schedules fast-small first even
  // though slow-big has the larger marginal.
  SuiteCoverageMatrix m;
  m.rule_count = 4;
  m.vacuous.assign(4, 0);
  m.names = {"slow-big", "fast-small"};
  m.seconds = {1.0, 0.01};
  m.covers = {{1, 1, 1, 0}, {0, 0, 0, 1}};

  const PrioritizeResult pri = prioritize_suite(m);
  ASSERT_EQ(pri.order.size(), 2u);
  EXPECT_EQ(pri.order[0].name, "fast-small");
  EXPECT_EQ(pri.order[1].name, "slow-big");
  // The cumulative curve ends at full coverage and total cost.
  EXPECT_EQ(pri.order.back().cumulative_coverage, pri.full_coverage);
  EXPECT_DOUBLE_EQ(pri.order.back().cumulative_seconds, 1.01);
  EXPECT_DOUBLE_EQ(pri.order[0].marginal, 0.25);
  EXPECT_DOUBLE_EQ(pri.order[1].marginal, 0.75);
}

TEST_F(SuiteOptimizeTest, PrioritizationDegradesToCoverageGreedyAtZeroCost) {
  // All-zero seconds (instant tests): cross-multiplied ratios tie, so the
  // order falls back to pure coverage greedy with the name tie-break.
  SuiteCoverageMatrix m;
  m.rule_count = 3;
  m.vacuous.assign(3, 0);
  m.names = {"small", "big"};
  m.seconds = {0.0, 0.0};
  m.covers = {{1, 0, 0}, {0, 1, 1}};

  const PrioritizeResult pri = prioritize_suite(m);
  ASSERT_EQ(pri.order.size(), 2u);
  EXPECT_EQ(pri.order[0].name, "big");
  EXPECT_EQ(pri.order[1].name, "small");
}

TEST_F(SuiteOptimizeTest, GapWitnessesReplayThroughTheTransferFunction) {
  // Cover one rule; every other rule must show up with a witness that,
  // pushed through the dataplane's concrete first-match lookup, hits
  // exactly the rule it claims to exercise.
  CoverageTracker tracker;
  tracker.mark_rule(tiny_.l1_to_p1);
  const CoverageEngine engine(mgr_, tiny_.net, tracker.trace());

  const GapReport report = build_gap_report(engine);
  EXPECT_EQ(report.uncovered_rules, 8u);  // 9 rules - 1 covered
  EXPECT_EQ(report.state_only, 0u);
  size_t replayed = 0;
  for (const DeviceGaps& d : report.devices) {
    for (const GapWitness& g : d.gaps) {
      ASSERT_FALSE(g.state_only);
      const net::RuleId hit =
          transfer_.lookup(d.device, net::InterfaceId{}, g.witness,
                           tiny_.net.rule(g.rule).table);
      EXPECT_EQ(hit, g.rule) << g.content_key;
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, report.uncovered_rules);
}

TEST_F(SuiteOptimizeTest, GapReportIsExhaustiveAndGroupedByDevice) {
  const coverage::CoverageTrace empty;
  const CoverageEngine engine(mgr_, tiny_.net, empty);
  const GapReport report = build_gap_report(engine);

  // Exhaustive: one entry per untested rule, same set as the engine's.
  const std::vector<net::RuleId> untested = engine.untested_rules();
  EXPECT_EQ(report.uncovered_rules, untested.size());
  size_t total = 0;
  std::vector<net::DeviceId> device_order;
  for (const DeviceGaps& d : report.devices) {
    total += d.gaps.size();
    device_order.push_back(d.device);
    for (const GapWitness& g : d.gaps) {
      EXPECT_EQ(tiny_.net.rule(g.rule).device, d.device);
    }
  }
  EXPECT_EQ(total, untested.size());
  // Devices appear in network order.
  const std::vector<net::DeviceId> expected{tiny_.leaf1, tiny_.spine, tiny_.leaf2};
  EXPECT_EQ(device_order, expected);
}

TEST_F(SuiteOptimizeTest, AclShadowedRuleBecomesStateOnly) {
  // leaf1 permits only TCP/80; a UDP-only FIB rule on leaf1 has an empty
  // exercisable space — no injected packet can cover it, and the report
  // must say so instead of fabricating a witness.
  net::MatchSpec permit_web;
  permit_web.proto = 6;
  permit_web.dst_port = net::PortRange{80, 80};
  tiny_.net.add_rule(tiny_.leaf1, permit_web, net::Action::permit(),
                     net::RouteKind::Security, 0, net::TableKind::Acl);
  net::MatchSpec udp_only;
  udp_only.proto = 17;
  const net::RuleId udp_rule =
      tiny_.net.add_rule(tiny_.leaf1, udp_only, net::Action::forward({tiny_.l1_up}),
                         net::RouteKind::Other, 1);

  const coverage::CoverageTrace empty;
  const CoverageEngine engine(mgr_, tiny_.net, empty);
  const GapReport report = build_gap_report(engine);
  EXPECT_GE(report.state_only, 1u);
  bool found = false;
  for (const DeviceGaps& d : report.devices) {
    for (const GapWitness& g : d.gaps) {
      if (g.rule == udp_rule) {
        found = true;
        EXPECT_TRUE(g.state_only);
      } else if (!g.state_only && d.device == tiny_.leaf1 &&
                 tiny_.net.rule(g.rule).table == net::TableKind::Fib) {
        // Witnesses on the ACL'd device sample the permitted space only.
        EXPECT_EQ(g.witness.proto, 6) << g.content_key;
        EXPECT_EQ(g.witness.dst_port, 80) << g.content_key;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SuiteOptimizeTest, ByteIdenticalTwinsCollapseUnderTheContentKey) {
  // Re-adding l1_to_p1 verbatim creates a shadowed twin: it is vacuous
  // (empty disjoint match set) so it never gets its own gap entry, and the
  // surviving representative is annotated as standing for both.
  const net::Rule& orig = tiny_.net.rule(tiny_.l1_to_p1);
  tiny_.net.add_rule(orig.device, orig.match, orig.action, orig.kind, orig.priority,
                     orig.table);
  const coverage::CoverageTrace empty;
  const CoverageEngine engine(mgr_, tiny_.net, empty);
  const GapReport report = build_gap_report(engine);
  bool found = false;
  for (const DeviceGaps& d : report.devices) {
    for (const GapWitness& g : d.gaps) {
      if (g.rule == tiny_.l1_to_p1) {
        found = true;
        EXPECT_EQ(g.collapsed, 2u) << g.content_key;
        EXPECT_EQ(g.content_key, net::rule_content_key(tiny_.net, tiny_.l1_to_p1));
      } else {
        EXPECT_EQ(g.collapsed, 1u) << g.content_key;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SuiteOptimizeTest, MatrixAndMinimizationAreBitIdenticalAcrossThreadCounts) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);

  auto run_at = [&](unsigned threads) {
    bdd::BddManager mgr(packet::kNumHeaderBits);
    const dataplane::MatchSetIndex index(mgr, tree.network);
    const dataplane::Transfer transfer(index);
    nettest::TestSuite suite("s");
    suite.add(std::make_unique<nettest::DefaultRouteCheck>());
    suite.add(std::make_unique<nettest::ToRContract>());
    suite.add(std::make_unique<nettest::DefaultRouteCheck>());
    return build_suite_matrix(transfer, suite, nullptr, threads);
  };
  const SuiteCoverageMatrix m1 = run_at(1);
  const SuiteCoverageMatrix m4 = run_at(4);
  const SuiteCoverageMatrix m8 = run_at(8);

  EXPECT_EQ(m1.covers, m4.covers);
  EXPECT_EQ(m1.covers, m8.covers);
  EXPECT_EQ(m1.vacuous, m4.vacuous);
  EXPECT_EQ(m1.vacuous_count, m8.vacuous_count);

  const MinimizeResult r1 = minimize_suite(m1);
  const MinimizeResult r4 = minimize_suite(m4);
  ASSERT_EQ(r1.selected.size(), r4.selected.size());
  for (size_t i = 0; i < r1.selected.size(); ++i) {
    EXPECT_EQ(r1.selected[i].index, r4.selected[i].index);
    EXPECT_EQ(r1.selected[i].cumulative_coverage, r4.selected[i].cumulative_coverage);
  }
  EXPECT_EQ(r1.achieved_coverage, r4.achieved_coverage);
}

TEST_F(SuiteOptimizeTest, GapReportJsonIsBitIdenticalAcrossThreadCounts) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);

  auto gap_json_at = [&](unsigned threads) {
    bdd::BddManager mgr(packet::kNumHeaderBits);
    nettest::TestSuite suite("s");
    suite.add(std::make_unique<nettest::DefaultRouteCheck>());
    suite.add(std::make_unique<nettest::ToRContract>());
    bdd::BddManager run_mgr(packet::kNumHeaderBits);
    const dataplane::MatchSetIndex index(run_mgr, tree.network);
    const dataplane::Transfer transfer(index);
    CoverageTracker tracker;
    (void)suite.run_all(transfer, tracker);
    const CoverageEngine engine(run_mgr, tree.network, tracker.trace(),
                                EngineOptions{nullptr, threads, "", 0.0});
    const GapReport report = build_gap_report(engine);
    const SuiteCoverageMatrix m = build_suite_matrix(transfer, suite, nullptr, threads);
    return optimize_to_json(m, nullptr, nullptr, &report);
  };
  const std::string j1 = gap_json_at(1);
  const std::string j4 = gap_json_at(4);
  const std::string j8 = gap_json_at(8);
  // Timing fields are part of the matrix section; strip nothing — the gap
  // section is the whole comparison, so serialize only it.
  const auto gap_section = [](const std::string& s) {
    return s.substr(s.find("\"gap_report\""));
  };
  EXPECT_EQ(gap_section(j1), gap_section(j4));
  EXPECT_EQ(gap_section(j1), gap_section(j8));
}

TEST_F(SuiteOptimizeTest, MinimizedFatTreeSuiteRecomputesToFullCoverage) {
  // The acceptance criterion, in-process: the minimized k=4 suite is a
  // strict subset whose engine-recomputed fractional rule coverage equals
  // the full suite's bit for bit.
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, tree.network);
  const dataplane::Transfer transfer(index);

  nettest::TestSuite suite("fattree");
  suite.add(std::make_unique<nettest::DefaultRouteCheck>());
  suite.add(std::make_unique<nettest::ToRContract>());
  suite.add(std::make_unique<nettest::ToRReachability>());
  suite.add(std::make_unique<nettest::ToRPingmesh>());

  const SuiteCoverageMatrix m = build_suite_matrix(transfer, suite);
  const MinimizeResult min = minimize_suite(m);
  ASSERT_LT(min.selected.size(), suite.size());  // strict subset
  ASSERT_FALSE(min.selected.empty());

  CoverageTracker full_tracker;
  (void)suite.run_all(transfer, full_tracker);
  CoverageTracker subset_tracker;
  for (const SelectedTest& s : min.selected) {
    (void)suite.test(s.index).run(transfer, subset_tracker);
  }
  const CoverageEngine full_engine(mgr, tree.network, full_tracker.trace());
  const CoverageEngine subset_engine(mgr, tree.network, subset_tracker.trace());
  EXPECT_EQ(full_engine.metrics().rule_fractional,
            subset_engine.metrics().rule_fractional);
  EXPECT_EQ(min.achieved_coverage, full_engine.metrics().rule_fractional);
}

}  // namespace
}  // namespace yardstick::ys
