// Coverage-under-failure tests (DESIGN.md §13): ScenarioSpec parsing and
// resolution, deterministic random scenario generation, the transforming-rule
// overlay (tunnel encap/decap round trip, ECMP rehash under link failure,
// tunnel rules counted by the coverage engine), and the ScenarioRunner's
// baseline-vs-scenario diff — bit-identical across thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/status.hpp"
#include "dataplane/simulator.hpp"
#include "nettest/transform_checks.hpp"
#include "routing/fib_builder.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "topo/regional.hpp"
#include "topo/transforms.hpp"
#include "yardstick/engine.hpp"

namespace yardstick {
namespace {

using scenario::ScenarioSpec;

/// Small one-pod regional network with two tunnels (tor0 <-> tor1) and one
/// NAT rule per WAN. Tunnel 0: ingress tors[0] -> egress tors[1]; tunnel 1
/// runs the other way (round-robin ingress, offset egress).
class ScenarioTest : public ::testing::Test {
 protected:
  static topo::RegionalParams small_params() {
    topo::RegionalParams p;
    p.datacenters = 1;
    p.pods_per_dc = 1;
    p.tors_per_pod = 2;
    p.aggs_per_pod = 2;
    p.spines_per_dc = 2;
    p.hubs = 2;
    p.wans = 1;
    p.host_ports_per_tor = 2;
    p.wide_area_prefix_count = 4;
    p.hubs_without_default = 0;
    return p;
  }

  ScenarioTest() : region_(topo::make_regional(small_params())) {
    state_ = topo::plan_transforms(region_, {.tunnels = 2, .nat_rules_per_wan = 1});
    rebuild();
  }

  /// Recompute FIBs for the current failure sets and re-apply the overlay —
  /// the same post-FIB sequence the runner performs per scenario.
  void rebuild() {
    routing::FibBuilder::compute_and_build(region_.network, region_.routing);
    topo::install_transform_rules(region_.network, state_, region_.routing);
  }

  [[nodiscard]] nettest::TestSuite transform_suite() const {
    nettest::TestSuite suite("transforms");
    suite.add(std::make_unique<nettest::TunnelRoundTripCheck>());
    suite.add(std::make_unique<nettest::NatTranslationCheck>());
    return suite;
  }

  [[nodiscard]] const std::string& name(net::DeviceId id) const {
    return region_.network.device(id).name;
  }

  /// The encap rule a tunnel plan installed on its ingress ToR.
  [[nodiscard]] const net::Rule* encap_rule(const topo::TunnelPlan& plan) const {
    for (const net::RuleId rid : region_.network.table(plan.ingress)) {
      const net::Rule& rule = region_.network.rule(rid);
      if (rule.kind == net::RouteKind::Tunnel && rule.match.dst_prefix == plan.vip) {
        return &rule;
      }
    }
    return nullptr;
  }

  topo::RegionalNetwork region_;
  topo::TransformState state_;
};

TEST_F(ScenarioTest, SpecParsesAndRoundTrips) {
  const std::string text =
      "# hand-picked sweep\n"
      "scenario spine-loss\n"
      "device dc0-spine-0\n"
      "\n"
      "scenario tor-uplink\n"
      "link dc0-pod0-tor-0 dc0-pod0-agg-0\n"
      "link dc0-pod0-tor-0 dc0-pod0-agg-1\n";
  const ScenarioSpec spec = ScenarioSpec::parse(text);
  ASSERT_EQ(spec.scenarios.size(), 2u);
  EXPECT_EQ(spec.scenarios[0].name, "spine-loss");
  ASSERT_EQ(spec.scenarios[0].down_devices.size(), 1u);
  EXPECT_EQ(spec.scenarios[0].down_devices[0], "dc0-spine-0");
  EXPECT_TRUE(spec.scenarios[0].down_links.empty());
  EXPECT_EQ(spec.scenarios[1].name, "tor-uplink");
  ASSERT_EQ(spec.scenarios[1].down_links.size(), 2u);
  EXPECT_EQ(spec.scenarios[1].down_links[1].second, "dc0-pod0-agg-1");
  // to_text() round-trips through parse().
  EXPECT_EQ(ScenarioSpec::parse(spec.to_text()).to_text(), spec.to_text());
}

TEST_F(ScenarioTest, SpecRejectsMalformedInput) {
  EXPECT_THROW((void)ScenarioSpec::parse(""), ys::InvalidInputError);
  EXPECT_THROW((void)ScenarioSpec::parse("# only comments\n"), ys::InvalidInputError);
  // Directive before any scenario.
  EXPECT_THROW((void)ScenarioSpec::parse("device d0\n"), ys::InvalidInputError);
  // Duplicate scenario name.
  EXPECT_THROW((void)ScenarioSpec::parse("scenario a\ndevice d\nscenario a\ndevice d\n"),
               ys::InvalidInputError);
  // A scenario must fail something.
  EXPECT_THROW((void)ScenarioSpec::parse("scenario empty\n"), ys::InvalidInputError);
  // Arity errors and unknown directives.
  EXPECT_THROW((void)ScenarioSpec::parse("scenario a\nlink only-one\n"),
               ys::InvalidInputError);
  EXPECT_THROW((void)ScenarioSpec::parse("scenario a\nfrobnicate d\n"),
               ys::InvalidInputError);
  EXPECT_THROW((void)ScenarioSpec::load("/nonexistent/sweep.spec"), ys::IoError);
}

TEST_F(ScenarioTest, ResolveMapsNamesAndRejectsUnknowns) {
  scenario::Scenario ok;
  ok.name = "ok";
  ok.down_devices.push_back(name(region_.spines[0]));
  ok.down_links.emplace_back(name(region_.tors[0]), name(region_.aggs[0]));
  const scenario::ResolvedScenario resolved = scenario::resolve(ok, region_.network);
  EXPECT_EQ(resolved.devices.size(), 1u);
  EXPECT_EQ(resolved.links.size(), 1u);
  EXPECT_TRUE(resolved.devices.contains(region_.spines[0]));

  scenario::Scenario bad_device;
  bad_device.name = "bad";
  bad_device.down_devices.push_back("no-such-router");
  EXPECT_THROW((void)scenario::resolve(bad_device, region_.network),
               ys::InvalidInputError);

  // Two real devices with no connecting link (ToR and WAN are tiers apart).
  scenario::Scenario bad_link;
  bad_link.name = "bad";
  bad_link.down_links.emplace_back(name(region_.tors[0]), name(region_.wans[0]));
  EXPECT_THROW((void)scenario::resolve(bad_link, region_.network),
               ys::InvalidInputError);
}

TEST_F(ScenarioTest, RandomLinkScenariosAreSeedDeterministic) {
  const ScenarioSpec a = scenario::random_link_scenarios(region_.network, 3, 42, 2);
  const ScenarioSpec b = scenario::random_link_scenarios(region_.network, 3, 42, 2);
  EXPECT_EQ(a.to_text(), b.to_text());
  ASSERT_EQ(a.scenarios.size(), 3u);
  for (const scenario::Scenario& s : a.scenarios) {
    ASSERT_EQ(s.down_links.size(), 2u);
    // Links within a scenario are distinct, and every name resolves.
    const scenario::ResolvedScenario r = scenario::resolve(s, region_.network);
    EXPECT_EQ(r.links.size(), 2u);
  }
  const ScenarioSpec c = scenario::random_link_scenarios(region_.network, 3, 43, 2);
  EXPECT_NE(a.to_text(), c.to_text());
  EXPECT_THROW((void)scenario::random_link_scenarios(region_.network, 0, 1),
               ys::InvalidInputError);
}

TEST_F(ScenarioTest, TunnelEncapDecapRoundTripsConcretely) {
  ASSERT_EQ(state_.tunnels.size(), 2u);
  const topo::TunnelPlan& plan = state_.tunnels[0];
  EXPECT_EQ(plan.ingress, region_.tors[0]);
  EXPECT_EQ(plan.egress, region_.tors[1]);

  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, region_.network);
  const dataplane::Transfer transfer(index);
  const dataplane::ConcreteSimulator sim(transfer);

  packet::ConcretePacket pkt;
  pkt.dst_ip = plan.vip.address();
  const dataplane::ConcreteTrace trace =
      sim.run(plan.ingress, net::InterfaceId{}, pkt);
  ASSERT_EQ(trace.disposition, dataplane::Disposition::Delivered);
  // Decap restored the inner destination and delivered behind the egress.
  EXPECT_EQ(trace.final_packet.dst_ip, plan.inner_dst);
  EXPECT_EQ(region_.network.interface(trace.egress).device, plan.egress);
  // The encapped leg actually crossed the fabric.
  ASSERT_GE(trace.hops.size(), 3u);
  EXPECT_EQ(trace.hops.front().device, plan.ingress);
  EXPECT_EQ(trace.hops.back().device, plan.egress);
}

TEST_F(ScenarioTest, TransformChecksPassAndEngineCountsTunnelRules) {
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, region_.network);
  const dataplane::Transfer transfer(index);
  ys::CoverageTracker tracker;
  for (const nettest::TestResult& r : transform_suite().run_all(transfer, tracker)) {
    EXPECT_TRUE(r.passed()) << r.name << ": "
                            << (r.failure_messages.empty() ? ""
                                                           : r.failure_messages[0]);
    EXPECT_GT(r.checks, 0u) << r.name;
  }

  // Every tunnel and NAT rule the overlay installed is covered: the checks
  // flood exactly the headers those rules match.
  const ys::CoverageEngine engine(mgr, region_.network, tracker.trace());
  size_t transform_rules = 0;
  for (const net::Rule& rule : region_.network.rules()) {
    if (rule.kind != net::RouteKind::Tunnel && rule.kind != net::RouteKind::Nat) {
      continue;
    }
    ++transform_rules;
    EXPECT_GT(engine.rule_coverage(rule.id), 0.0)
        << to_string(rule.kind) << " rule on " << name(rule.device) << " untested";
    EXPECT_GT(engine.covered_sets().covered_size(rule.id), bdd::Uint128{0});
  }
  // 2 tunnels x (encap + decap) + 1 NAT rule on the single WAN.
  EXPECT_EQ(transform_rules, 5u);
}

TEST_F(ScenarioTest, EncapEcmpGroupRehashesUnderLinkFailure) {
  const topo::TunnelPlan& plan = state_.tunnels[0];
  const net::Rule* encap = encap_rule(plan);
  ASSERT_NE(encap, nullptr);
  ASSERT_EQ(encap->action.out_interfaces.size(), 2u);  // both agg uplinks

  // Fail one ingress uplink: the group rehashes to the survivor.
  scenario::Scenario s;
  s.name = "uplink";
  s.down_links.emplace_back(name(plan.ingress), name(region_.aggs[0]));
  const scenario::ResolvedScenario r = scenario::resolve(s, region_.network);
  region_.routing.failed_links.insert(r.links.begin(), r.links.end());
  rebuild();
  encap = encap_rule(plan);
  ASSERT_NE(encap, nullptr);
  ASSERT_EQ(encap->action.out_interfaces.size(), 1u);
  EXPECT_EQ(region_.network.neighbor(encap->action.out_interfaces[0]),
            region_.aggs[1]);

  // Fail the second uplink too: the encap blackholes rather than vanishing.
  s.down_links.emplace_back(name(plan.ingress), name(region_.aggs[1]));
  const scenario::ResolvedScenario r2 = scenario::resolve(s, region_.network);
  region_.routing.failed_links.insert(r2.links.begin(), r2.links.end());
  rebuild();
  encap = encap_rule(plan);
  ASSERT_NE(encap, nullptr);
  EXPECT_EQ(encap->action.type, net::ActionType::Drop);
}

/// Spec used by the runner tests: a spine failure (sheds that device's
/// rules), a double link failure isolating tunnel 0's ingress uplinks (the
/// tunnel check goes dark), and the egress ToR failing outright (its decap
/// rule — covered at baseline — is lost, so ATUs become unreachable).
std::string runner_spec_text(const topo::RegionalNetwork& region) {
  const auto& n = region.network;
  std::string text;
  text += "scenario spine-loss\ndevice " + n.device(region.spines[0]).name + "\n\n";
  text += "scenario tor-uplink\n";
  text += "link " + n.device(region.tors[0]).name + " " +
          n.device(region.aggs[0]).name + "\n";
  text += "link " + n.device(region.tors[0]).name + " " +
          n.device(region.aggs[1]).name + "\n\n";
  text += "scenario egress-down\ndevice " + n.device(region.tors[1]).name + "\n";
  return text;
}

TEST_F(ScenarioTest, RunnerDiffsBaselineAgainstScenarios) {
  const ScenarioSpec spec = ScenarioSpec::parse(runner_spec_text(region_));
  const nettest::TestSuite suite = transform_suite();
  scenario::ScenarioRunner runner(region_.network, region_.routing, suite);
  runner.set_post_fib_hook([this](net::Network& network,
                                  const routing::RoutingConfig& routing) {
    topo::install_transform_rules(network, state_, routing);
  });
  const scenario::ScenarioReport report = runner.run(spec);

  EXPECT_TRUE(report.baseline_failing_tests.empty());
  EXPECT_GT(report.baseline_rule_count, 0u);
  ASSERT_EQ(report.scenarios.size(), 3u);

  const scenario::ScenarioDiff& spine = report.scenarios[0];
  EXPECT_EQ(spine.name, "spine-loss");
  EXPECT_GT(spine.rules_lost, 0u);  // the failed spine's FIB empties

  const scenario::ScenarioDiff& uplink = report.scenarios[1];
  EXPECT_EQ(uplink.name, "tor-uplink");
  // With both ingress uplinks down the tunnel blackholes: the round-trip
  // check passed at baseline and fails now — a dark test.
  ASSERT_EQ(uplink.dark_tests.size(), 1u);
  EXPECT_EQ(uplink.dark_tests[0], "tunnel-round-trip");

  const scenario::ScenarioDiff& egress = report.scenarios[2];
  EXPECT_EQ(egress.name, "egress-down");
  EXPECT_GT(egress.rules_lost, 0u);
  // The lost decap rule carried baseline test evidence.
  EXPECT_GT(egress.unreachable_atus, bdd::Uint128{0});
  EXPECT_FALSE(egress.top_deltas.empty());

  // The runner restored the baseline: a second run reproduces the report
  // byte for byte (text and JSON).
  scenario::ScenarioRunner again(region_.network, region_.routing, suite);
  again.set_post_fib_hook([this](net::Network& network,
                                 const routing::RoutingConfig& routing) {
    topo::install_transform_rules(network, state_, routing);
  });
  const scenario::ScenarioReport second = again.run(spec);
  EXPECT_EQ(second.to_text(), report.to_text());
  EXPECT_EQ(scenario::report_to_json(second), scenario::report_to_json(report));
}

TEST_F(ScenarioTest, RunnerReportIsBitIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = ScenarioSpec::parse(runner_spec_text(region_));
  const nettest::TestSuite suite = transform_suite();

  std::string baseline_text;
  std::string baseline_json;
  for (const unsigned threads : {1u, 4u, 8u}) {
    scenario::ScenarioRunnerOptions options;
    options.engine.threads = threads;
    scenario::ScenarioRunner runner(region_.network, region_.routing, suite, options);
    runner.set_post_fib_hook([this](net::Network& network,
                                    const routing::RoutingConfig& routing) {
      topo::install_transform_rules(network, state_, routing);
    });
    const scenario::ScenarioReport report = runner.run(spec);
    const std::string text = report.to_text();
    const std::string json = scenario::report_to_json(report);
    if (threads == 1) {
      baseline_text = text;
      baseline_json = json;
      EXPECT_NE(text.find("scenario"), std::string::npos);
      EXPECT_NE(json.find("\"unreachable_atus\""), std::string::npos);
    } else {
      EXPECT_EQ(text, baseline_text) << "threads=" << threads;
      EXPECT_EQ(json, baseline_json) << "threads=" << threads;
    }
  }
}

TEST_F(ScenarioTest, RunnerRejectsUnknownNamesBeforeTouchingState) {
  const size_t rules_before = region_.network.rule_count();
  const ScenarioSpec spec = ScenarioSpec::parse("scenario bad\ndevice absent-router\n");
  const nettest::TestSuite suite = transform_suite();
  scenario::ScenarioRunner runner(region_.network, region_.routing, suite);
  EXPECT_THROW((void)runner.run(spec), ys::InvalidInputError);
  EXPECT_EQ(region_.network.rule_count(), rules_before);
}

}  // namespace
}  // namespace yardstick
