// Tests for waypoint (firewall-traversal) checks.
#include <gtest/gtest.h>

#include "nettest/waypoint.hpp"
#include "test_util.hpp"

namespace yardstick::nettest {
namespace {

using packet::Ipv4Prefix;
using packet::PacketSet;
using testutil::make_tiny;
using testutil::TinyNetwork;

class WaypointTest : public ::testing::Test {
 protected:
  WaypointTest() : tiny_(make_tiny()), index_(mgr_, tiny_.net), transfer_(index_) {}

  [[nodiscard]] WaypointQuery query(net::DeviceId waypoint) {
    WaypointQuery q;
    q.source = tiny_.leaf1;
    q.source_interface = tiny_.l1_host;
    q.headers = PacketSet::dst_prefix(mgr_, tiny_.p2);
    q.waypoint = waypoint;
    return q;
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  TinyNetwork tiny_;
  dataplane::MatchSetIndex index_;
  dataplane::Transfer transfer_;
  ys::CoverageTracker tracker_;
};

TEST_F(WaypointTest, SymbolicPassesWhenAllTrafficTraverses) {
  // Everything leaf1 -> p2 flows through the spine.
  const TestResult result =
      WaypointCheck("ViaSpine", {query(tiny_.spine)}).run(transfer_, tracker_);
  EXPECT_TRUE(result.passed());
  EXPECT_GT(tracker_.packet_calls(), 0u);
}

TEST_F(WaypointTest, SymbolicFailsWhenTrafficBypasses) {
  // leaf2 is not on the leaf1 -> p2... it IS the destination. Use leaf1's
  // own hairpin traffic (to p1), which never touches the spine.
  WaypointQuery q = query(tiny_.spine);
  q.headers = PacketSet::dst_prefix(mgr_, tiny_.p1);
  const TestResult result = WaypointCheck("Hairpin", {q}).run(transfer_, tracker_);
  EXPECT_FALSE(result.passed());
}

TEST_F(WaypointTest, SymbolicIgnoresDroppedTraffic) {
  // Traffic that dies at the spine's null route is never delivered, so it
  // imposes no waypoint obligation.
  WaypointQuery q = query(tiny_.leaf2);
  q.headers = PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse("99.0.0.0/8"));
  EXPECT_TRUE(WaypointCheck("DroppedOk", {q}).run(transfer_, tracker_).passed());
}

TEST_F(WaypointTest, ConcreteTracerouteTraversal) {
  const TestResult via =
      TracerouteWaypointCheck("ViaSpine", {query(tiny_.spine)}).run(transfer_, tracker_);
  EXPECT_TRUE(via.passed());

  WaypointQuery q = query(tiny_.spine);
  q.headers = PacketSet::dst_prefix(mgr_, tiny_.p1);  // hairpins at leaf1
  const TestResult bypass =
      TracerouteWaypointCheck("Bypass", {q}).run(transfer_, tracker_);
  EXPECT_FALSE(bypass.passed());
}

TEST_F(WaypointTest, ConcreteReportsUndelivered) {
  WaypointQuery q = query(tiny_.spine);
  q.headers = PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse("99.0.0.0/8"));
  const TestResult result =
      TracerouteWaypointCheck("Dead", {q}).run(transfer_, tracker_);
  EXPECT_FALSE(result.passed());
  EXPECT_NE(result.failure_messages.front().find("dropped"), std::string::npos);
}

}  // namespace
}  // namespace yardstick::nettest
