// Property tests for CoverageTrace::merge — the algebra the daemon's
// crash-recovery story rests on.
//
// yardstickd may apply the same delta twice (WAL replay + client
// re-delivery), in any arrival order, sharded across any number of
// sessions. Recovery converging to bit-identical snapshots therefore
// requires merge to be associative, commutative and idempotent, with
// canonical persist-v2 bytes as the equality oracle. These tests state
// exactly those laws over randomized traces (seeded xorshift — failures
// replay).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "coverage/trace.hpp"
#include "packet/fields.hpp"
#include "packet/packet_set.hpp"
#include "yardstick/persist.hpp"

namespace yardstick {
namespace {

using coverage::CoverageTrace;
using packet::Ipv4Prefix;
using packet::PacketSet;

/// Deterministic PRNG: the same seed always builds the same traces.
struct XorShift {
  uint64_t state;
  explicit XorShift(uint64_t seed) : state(seed | 1) {}
  uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  uint64_t below(uint64_t n) { return next() % n; }
};

class TraceMergeProperty : public ::testing::Test {
 protected:
  [[nodiscard]] PacketSet random_prefix(XorShift& rng) {
    const uint32_t addr = static_cast<uint32_t>(rng.next());
    const uint8_t len = static_cast<uint8_t>(8 + rng.below(21));  // /8../28
    const uint32_t mask = len == 0 ? 0 : ~uint32_t{0} << (32 - len);
    const uint32_t base = addr & mask;
    const std::string cidr = std::to_string((base >> 24) & 0xff) + "." +
                             std::to_string((base >> 16) & 0xff) + "." +
                             std::to_string((base >> 8) & 0xff) + "." +
                             std::to_string(base & 0xff) + "/" + std::to_string(len);
    return PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse(cidr));
  }

  /// A random trace: a handful of located packet sets (locations drawn
  /// from a small pool so traces overlap) and a handful of rules.
  [[nodiscard]] CoverageTrace random_trace(XorShift& rng) {
    CoverageTrace t;
    const size_t locations = 1 + rng.below(4);
    for (size_t i = 0; i < locations; ++i) {
      t.mark_packet(static_cast<packet::LocationId>(1 + rng.below(6)),
                    random_prefix(rng));
    }
    const size_t rules = rng.below(5);
    for (size_t i = 0; i < rules; ++i) {
      t.mark_rule(net::RuleId{static_cast<uint32_t>(rng.below(64))});
    }
    return t;
  }

  /// Equality oracle: canonical persist-v2 bytes (sorted rules, location
  /// order fixed, ROBDD emission deterministic).
  [[nodiscard]] std::string canon(const CoverageTrace& t) {
    return ys::serialize_trace(t, mgr_);
  }

  [[nodiscard]] static CoverageTrace merged(const CoverageTrace& a,
                                            const CoverageTrace& b) {
    CoverageTrace out;
    out.merge(a);
    out.merge(b);
    return out;
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
};

TEST_F(TraceMergeProperty, MergeIsCommutative) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    XorShift rng(seed * 0x9e3779b97f4a7c15ull);
    const CoverageTrace a = random_trace(rng);
    const CoverageTrace b = random_trace(rng);
    EXPECT_EQ(canon(merged(a, b)), canon(merged(b, a))) << "seed " << seed;
  }
}

TEST_F(TraceMergeProperty, MergeIsAssociative) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    XorShift rng(seed * 0xd1b54a32d192ed03ull);
    const CoverageTrace a = random_trace(rng);
    const CoverageTrace b = random_trace(rng);
    const CoverageTrace c = random_trace(rng);
    CoverageTrace left = merged(a, b);
    left.merge(c);
    CoverageTrace right = random_trace(rng);  // overwritten below
    right = merged(b, c);
    CoverageTrace a_then_right;
    a_then_right.merge(a);
    a_then_right.merge(right);
    EXPECT_EQ(canon(left), canon(a_then_right)) << "seed " << seed;
  }
}

TEST_F(TraceMergeProperty, MergeIsIdempotent) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    XorShift rng(seed * 0xbf58476d1ce4e5b9ull);
    const CoverageTrace a = random_trace(rng);
    CoverageTrace once;
    once.merge(a);
    CoverageTrace thrice;  // re-delivered deltas after a lost ack
    thrice.merge(a);
    thrice.merge(a);
    thrice.merge(a);
    EXPECT_EQ(canon(once), canon(thrice)) << "seed " << seed;
    EXPECT_EQ(canon(once), canon(a)) << "seed " << seed;
  }
}

TEST_F(TraceMergeProperty, ShardOrderNeverChangesTheMergedTrace) {
  // The daemon merges per-session traces in session-id order precisely so
  // arrival interleaving cannot matter; this checks the stronger claim
  // that ANY merge order yields the same canonical bytes.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    XorShift rng(seed * 0x94d049bb133111ebull);
    std::vector<CoverageTrace> shards;
    shards.reserve(5);
    for (size_t i = 0; i < 5; ++i) shards.push_back(random_trace(rng));

    std::vector<size_t> order(shards.size());
    std::iota(order.begin(), order.end(), 0);
    std::string reference;
    for (int permutation = 0; permutation < 16; ++permutation) {
      CoverageTrace total;
      for (const size_t i : order) total.merge(shards[i]);
      const std::string bytes = canon(total);
      if (reference.empty()) {
        reference = bytes;
      } else {
        EXPECT_EQ(bytes, reference) << "seed " << seed << " perm " << permutation;
      }
      // Deterministic shuffle of the merge order.
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.below(i)]);
      }
    }
  }
}

TEST_F(TraceMergeProperty, MergeMatchesTheUnionOfMarkCalls) {
  // Sharding a stream of mark calls across traces and merging must equal
  // making every call on one trace — the exact claim behind running test
  // shards against separate daemon sessions.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    XorShift rng(seed * 0x2545f4914f6cdd1dull);
    CoverageTrace whole;
    std::vector<CoverageTrace> shards(3);
    for (int call = 0; call < 24; ++call) {
      const size_t shard = rng.below(shards.size());
      if (rng.below(2) == 0) {
        const auto loc = static_cast<packet::LocationId>(1 + rng.below(6));
        const PacketSet ps = random_prefix(rng);
        whole.mark_packet(loc, ps);
        shards[shard].mark_packet(loc, ps);
      } else {
        const net::RuleId rid{static_cast<uint32_t>(rng.below(64))};
        whole.mark_rule(rid);
        shards[shard].mark_rule(rid);
      }
    }
    CoverageTrace total;
    for (const CoverageTrace& s : shards) total.merge(s);
    EXPECT_EQ(canon(total), canon(whole)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace yardstick
