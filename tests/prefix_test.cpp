// Tests for IPv4 prefix parsing and arithmetic.
#include <gtest/gtest.h>

#include "packet/prefix.hpp"

namespace yardstick::packet {
namespace {

TEST(Ipv4Test, ParseAndFormatRoundTrip) {
  EXPECT_EQ(parse_ipv4("10.1.2.3"), 0x0a010203u);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(ipv4_to_string(0x0a010203u), "10.1.2.3");
  EXPECT_EQ(ipv4_to_string(0xffffffffu), "255.255.255.255");
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ipv4("10.1.2").has_value());
  EXPECT_FALSE(parse_ipv4("10.1.2.3.4").has_value());
  EXPECT_FALSE(parse_ipv4("10.1.2.256").has_value());
  EXPECT_FALSE(parse_ipv4("10..2.3").has_value());
  EXPECT_FALSE(parse_ipv4("a.b.c.d").has_value());
  EXPECT_FALSE(parse_ipv4("").has_value());
}

TEST(PrefixTest, ParseCidr) {
  const Ipv4Prefix p = Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(p.address(), 0x0a000000u);
  EXPECT_EQ(p.length(), 8);
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
  EXPECT_EQ(Ipv4Prefix::parse("1.2.3.4").length(), 32);
}

TEST(PrefixTest, ParseRejectsBadLength) {
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0/x"), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0/8"), std::invalid_argument);
}

TEST(PrefixTest, AddressMaskedToLength) {
  const Ipv4Prefix p(0x0a0102ffu, 24);
  EXPECT_EQ(p.address(), 0x0a010200u);
}

TEST(PrefixTest, Contains) {
  const Ipv4Prefix p = Ipv4Prefix::parse("192.168.0.0/16");
  EXPECT_TRUE(p.contains(0xc0a80101u));
  EXPECT_FALSE(p.contains(0xc0a90101u));
  EXPECT_TRUE(p.contains(Ipv4Prefix::parse("192.168.5.0/24")));
  EXPECT_FALSE(p.contains(Ipv4Prefix::parse("192.0.0.0/8")));
  EXPECT_TRUE(p.overlaps(Ipv4Prefix::parse("192.0.0.0/8")));
  EXPECT_FALSE(p.overlaps(Ipv4Prefix::parse("10.0.0.0/8")));
}

TEST(PrefixTest, DefaultRouteContainsEverything) {
  const Ipv4Prefix d = default_route_prefix();
  EXPECT_EQ(d.length(), 0);
  EXPECT_EQ(d.mask(), 0u);
  EXPECT_TRUE(d.contains(0u));
  EXPECT_TRUE(d.contains(0xffffffffu));
  EXPECT_EQ(d.size(), uint64_t{1} << 32);
}

TEST(PrefixTest, FirstLastSize) {
  const Ipv4Prefix p = Ipv4Prefix::parse("10.1.0.0/16");
  EXPECT_EQ(p.first(), 0x0a010000u);
  EXPECT_EQ(p.last(), 0x0a01ffffu);
  EXPECT_EQ(p.size(), 65536u);
  const Ipv4Prefix host = Ipv4Prefix::parse("10.1.2.3/32");
  EXPECT_EQ(host.first(), host.last());
  EXPECT_EQ(host.size(), 1u);
}

TEST(PrefixTest, SubnetCarving) {
  const Ipv4Prefix base = Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(base.subnet(24, 0).to_string(), "10.0.0.0/24");
  EXPECT_EQ(base.subnet(24, 256).to_string(), "10.1.0.0/24");
  EXPECT_EQ(base.subnet(31, 1).to_string(), "10.0.0.2/31");
  EXPECT_THROW(base.subnet(4, 0), std::invalid_argument);
}

TEST(PrefixTest, SlashThirtyOneSides) {
  const Ipv4Prefix link = Ipv4Prefix::parse("172.16.0.4/31");
  EXPECT_EQ(link.first(), 0xac100004u);
  EXPECT_EQ(link.last(), 0xac100005u);
}

TEST(PrefixTest, Ordering) {
  EXPECT_LT(Ipv4Prefix::parse("10.0.0.0/8"), Ipv4Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(Ipv4Prefix::parse("10.0.0.0/8"), Ipv4Prefix(0x0a000000u, 8));
}

}  // namespace
}  // namespace yardstick::packet
