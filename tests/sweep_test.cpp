// Parameterized sweeps over topology sizes: the generated forwarding
// state and the paper test suite must be correct at every scale, not just
// the fixture sizes other test files use.
#include <gtest/gtest.h>

#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "topo/regional.hpp"
#include "yardstick/engine.hpp"

namespace yardstick {
namespace {

class FatTreeSweep : public ::testing::TestWithParam<int> {
 protected:
  FatTreeSweep() : tree_(topo::make_fat_tree({.k = GetParam()})) {
    routing::FibBuilder::compute_and_build(tree_.network, tree_.routing);
    index_.emplace(mgr_, tree_.network);
    transfer_.emplace(*index_);
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  topo::FatTree tree_;
  std::optional<dataplane::MatchSetIndex> index_;
  std::optional<dataplane::Transfer> transfer_;
};

TEST_P(FatTreeSweep, EveryRouterHasAForwardingDefault) {
  for (const net::Device& dev : tree_.network.devices()) {
    if (dev.role == net::Role::Wan) continue;
    bool found = false;
    for (const net::RuleId rid : tree_.network.table(dev.id)) {
      const net::Rule& rule = tree_.network.rule(rid);
      if (rule.match.dst_prefix->length() == 0) {
        found = rule.action.type == net::ActionType::Forward &&
                !rule.action.out_interfaces.empty();
      }
    }
    EXPECT_TRUE(found) << dev.name;
  }
}

TEST_P(FatTreeSweep, EcmpWidthMatchesTopology) {
  // A ToR's route to a different-pod prefix fans across all its k/2 aggs.
  const int half = GetParam() / 2;
  const net::DeviceId src = tree_.tors.front();
  const net::DeviceId dst = tree_.tors.back();
  const auto prefix = tree_.network.device(dst).host_prefixes.front();
  for (const net::RuleId rid : tree_.network.table(src)) {
    const net::Rule& rule = tree_.network.rule(rid);
    if (rule.match.dst_prefix == prefix) {
      EXPECT_EQ(rule.action.out_interfaces.size(), static_cast<size_t>(half));
    }
  }
}

TEST_P(FatTreeSweep, SuitePassesAtThisScale) {
  ys::CoverageTracker tracker;
  EXPECT_TRUE(nettest::DefaultRouteCheck().run(*transfer_, tracker).passed());
  EXPECT_TRUE(nettest::ToRContract().run(*transfer_, tracker).passed());
  EXPECT_TRUE(nettest::ToRPingmesh().run(*transfer_, tracker).passed());
  // Coverage accumulates sensibly at any scale.
  const ys::CoverageEngine engine(mgr_, tree_.network, tracker.trace());
  const auto report = engine.report();
  EXPECT_GT(report.overall.rule_fractional, 0.0);
  EXPECT_LE(report.overall.rule_fractional, 1.0);
  EXPECT_DOUBLE_EQ(report.overall.device_fractional, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Arity, FatTreeSweep, ::testing::Values(2, 4, 6, 8));

struct RegionalCase {
  int datacenters, pods, tors, aggs, spines, hubs, wans;
};

class RegionalSweep : public ::testing::TestWithParam<RegionalCase> {
 protected:
  RegionalSweep() {
    const RegionalCase& c = GetParam();
    topo::RegionalParams p;
    p.datacenters = c.datacenters;
    p.pods_per_dc = c.pods;
    p.tors_per_pod = c.tors;
    p.aggs_per_pod = c.aggs;
    p.spines_per_dc = c.spines;
    p.hubs = c.hubs;
    p.wans = c.wans;
    p.host_ports_per_tor = 2;
    p.hubs_without_default = 0;
    region_ = topo::make_regional(p);
    routing::FibBuilder::compute_and_build(region_.network, region_.routing);
    index_.emplace(mgr_, region_.network);
    transfer_.emplace(*index_);
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  topo::RegionalNetwork region_;
  std::optional<dataplane::MatchSetIndex> index_;
  std::optional<dataplane::Transfer> transfer_;
};

TEST_P(RegionalSweep, InternalAndConnectedChecksPass) {
  ys::CoverageTracker tracker;
  const auto internal = nettest::InternalRouteCheck().run(*transfer_, tracker);
  EXPECT_TRUE(internal.passed()) << (internal.failure_messages.empty()
                                         ? ""
                                         : internal.failure_messages.front());
  EXPECT_TRUE(nettest::ConnectedRouteCheck().run(*transfer_, tracker).passed());
  EXPECT_TRUE(nettest::DefaultRouteCheck().run(*transfer_, tracker).passed());
}

TEST_P(RegionalSweep, AllTorPairsReach) {
  ys::CoverageTracker tracker;
  const auto result = nettest::ToRReachability().run(*transfer_, tracker);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
}

INSTANTIATE_TEST_SUITE_P(Shapes, RegionalSweep,
                         ::testing::Values(RegionalCase{1, 1, 1, 1, 1, 1, 1},
                                           RegionalCase{1, 2, 2, 2, 2, 2, 1},
                                           RegionalCase{2, 1, 2, 1, 2, 2, 2},
                                           RegionalCase{3, 2, 2, 2, 2, 3, 2}));

TEST(PathDeadlineTest, TightDeadlineTruncatesSweep) {
  // Regression: the sweep deadline used to be checked only every 1024
  // emitted paths, so a sweep stuck inside one huge DFS subtree could blow
  // far past its budget. The deadline is now gated per DFS node: an
  // already-expired deadline must stop the sweep almost immediately.
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  bdd::BddManager mgr(packet::kNumHeaderBits);
  ys::CoverageTracker tracker;
  const ys::CoverageEngine engine(mgr, tree.network, tracker.trace());

  const ys::PathCoverageResult unbounded = engine.path_coverage();
  ASSERT_GT(unbounded.total_paths, 0u);
  EXPECT_FALSE(unbounded.truncated);

  const ys::PathCoverageResult tight = engine.path_coverage({}, 1e-9);
  EXPECT_TRUE(tight.truncated);
  EXPECT_LT(tight.total_paths, unbounded.total_paths);
}

TEST(LinkFailureTest, TrafficRoutesAroundFailedLink) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  // Fail one ToR-agg link: the ToR still reaches everything via its other
  // agg, and neither BGP nor the static default uses the dead link.
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const net::DeviceId tor = tree.tors.front();
  const auto nbrs = tree.network.neighbors(tor);
  ASSERT_FALSE(nbrs.empty());
  const net::LinkId dead = tree.network.interface(nbrs[0].first).link;
  ASSERT_TRUE(dead.valid());
  tree.routing.failed_links.insert(dead);
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);

  // No rule on the ToR forwards out the failed interface.
  for (const net::RuleId rid : tree.network.table(tor)) {
    for (const net::InterfaceId out : tree.network.rule(rid).action.out_interfaces) {
      EXPECT_NE(out, nbrs[0].first);
    }
  }
  // And end-to-end reachability still holds.
  bdd::BddManager mgr(packet::kNumHeaderBits);
  const dataplane::MatchSetIndex index(mgr, tree.network);
  const dataplane::Transfer transfer(index);
  ys::CoverageTracker tracker;
  EXPECT_TRUE(nettest::ToRPingmesh().run(transfer, tracker).passed());
  // The dead link's /31 connected route is gone on both ends.
  const net::Link& link = tree.network.link(dead);
  for (const net::InterfaceId side : {link.a, link.b}) {
    for (const net::RuleId rid :
         tree.network.table(tree.network.interface(side).device)) {
      EXPECT_NE(tree.network.rule(rid).match.dst_prefix, link.subnet);
    }
  }
}

}  // namespace
}  // namespace yardstick
