// End-to-end tests of the yardstick CLI binary (spawned as a subprocess).
// Skipped gracefully when the binary is not where the build puts it.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

const char* cli_path() {
  // ctest runs test binaries from build/tests; the CLI lives next door.
  static const std::array<const char*, 3> candidates{
      "../tools/yardstick", "build/tools/yardstick", "./tools/yardstick"};
  for (const char* path : candidates) {
    if (std::ifstream(path).good()) return path;
  }
  return nullptr;
}

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  CommandResult result;
  const std::string command = std::string(cli_path()) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

#define REQUIRE_CLI()                                             \
  if (cli_path() == nullptr) {                                    \
    GTEST_SKIP() << "yardstick CLI binary not found; run from the \
build tree";                                                      \
  }

TEST(CliTest, UsageOnBadArguments) {
  REQUIRE_CLI();
  EXPECT_EQ(run_cli("bogus").exit_code, 2);
  EXPECT_EQ(run_cli("").exit_code, 2);
  EXPECT_NE(run_cli("fattree --k").exit_code, 0);
  EXPECT_NE(run_cli("regional --suite").exit_code, 0);
}

TEST(CliTest, FatTreeSuitePasses) {
  REQUIRE_CLI();
  const CommandResult r = run_cli("fattree --k 4 --suite fattree");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ToRReachability"), std::string::npos);
  EXPECT_NE(r.output.find("coverage report"), std::string::npos);
  EXPECT_EQ(r.output.find("FAIL"), std::string::npos);
}

TEST(CliTest, JsonOutputIsWellFormedish) {
  REQUIRE_CLI();
  const CommandResult r = run_cli("fattree --k 4 --suite original --json");
  EXPECT_EQ(r.exit_code, 0);
  const size_t json_start = r.output.find('{');
  ASSERT_NE(json_start, std::string::npos);
  const std::string json = r.output.substr(json_start);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"tests\""), std::string::npos);
}

TEST(CliTest, TraceSaveAndLoadRoundTrip) {
  REQUIRE_CLI();
  const std::string trace = ::testing::TempDir() + "/cli_trace.txt";
  const CommandResult save =
      run_cli("fattree --k 4 --suite original --save-trace " + trace);
  EXPECT_EQ(save.exit_code, 0) << save.output;
  const CommandResult load = run_cli("fattree --k 4 --load-trace " + trace);
  EXPECT_EQ(load.exit_code, 0) << load.output;
  EXPECT_NE(load.output.find("coverage report"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(CliTest, NetworkFileMode) {
  REQUIRE_CLI();
  const std::string net_file = ::testing::TempDir() + "/cli_net.txt";
  {
    std::ofstream out(net_file);
    out << "network v1\n"
        << "device wan role wan\n"
        << "device tor role tor\n"
        << "interface wan internet0 kind external\n"
        << "interface wan eth0\n"
        << "interface tor host0 kind host\n"
        << "interface tor eth0\n"
        << "link tor:eth0 wan:eth0 subnet 172.16.0.0/31\n"
        << "host-prefix tor 10.0.1.0/24\n";
  }
  const CommandResult r = run_cli("file " + net_file + " --suite original");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("devices=2"), std::string::npos);
  // A malformed network file maps to the invalid-input exit code.
  {
    std::ofstream out(net_file);
    out << "network v1\ndevice tor role sprocket\n";
  }
  const CommandResult malformed = run_cli("file " + net_file);
  EXPECT_EQ(malformed.exit_code, 3);
  EXPECT_NE(malformed.output.find("unknown role"), std::string::npos);
  std::remove(net_file.c_str());
  // Missing file is a clean I/O error exit, not a crash.
  const CommandResult missing = run_cli("file /nonexistent.net");
  EXPECT_EQ(missing.exit_code, 5);
  EXPECT_NE(missing.output.find("error"), std::string::npos);
}

TEST(CliTest, CorruptTraceMapsToItsExitCode) {
  REQUIRE_CLI();
  const std::string trace = ::testing::TempDir() + "/cli_corrupt.trace";
  {
    std::ofstream out(trace);
    out << "yardstick-trace v2\nnodes 0\nrules 0\nlocations 0\nchecksum feedfacefeedface\n";
  }
  const CommandResult r = run_cli("fattree --k 4 --load-trace " + trace);
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("corrupt-trace"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(CliTest, BudgetFlagsProduceTruncatedPartialResults) {
  REQUIRE_CLI();
  // Offline phase (--load-trace) under a tiny node cap: metric computation
  // cannot stop the run — it degrades to a truncated report, exit 0.
  const std::string trace = ::testing::TempDir() + "/cli_budget.trace";
  ASSERT_EQ(run_cli("fattree --k 4 --suite original --save-trace " + trace).exit_code, 0);
  const CommandResult r =
      run_cli("fattree --k 4 --load-trace " + trace + " --max-bdd-nodes 64");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("TRUNCATED"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("budget exhausted"), std::string::npos);
  // JSON output carries the machine-readable flag.
  const CommandResult js = run_cli("fattree --k 4 --load-trace " + trace +
                                   " --max-bdd-nodes 64 --json");
  EXPECT_EQ(js.exit_code, 0) << js.output;
  EXPECT_NE(js.output.find("\"truncated\":true"), std::string::npos) << js.output;
  std::remove(trace.c_str());
  // Bad budget values are usage errors.
  EXPECT_EQ(run_cli("fattree --deadline 0").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --max-bdd-nodes -3").exit_code, 2);
}

TEST(CliTest, NumericFlagsRejectGarbageAndOutOfRangeValues) {
  REQUIRE_CLI();
  // Every numeric flag goes through a checked parser: non-numeric tokens,
  // trailing junk, and out-of-range values are usage errors (exit 2), not
  // silently-wrapped integers.
  EXPECT_EQ(run_cli("fattree --k banana").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --k 4x").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --k 0").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --k -4").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --k 99999999999999999999").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --threads -1").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --paths 5x").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --paths nan").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --suggest 1.5").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --deadline abc").exit_code, 2);
  EXPECT_EQ(run_cli("fattree --max-bdd-nodes 1e9").exit_code, 2);
  EXPECT_EQ(run_cli("serve --tcp 0").exit_code, 2);
  EXPECT_EQ(run_cli("serve --queue -1").exit_code, 2);
  // The original wrap bug: 70000 % 65536 = 4464 used to bind a wrong port.
  EXPECT_EQ(run_cli("serve --tcp 70000").exit_code, 2);
  EXPECT_EQ(run_cli("ingest fattree --tcp-port 70000").exit_code, 2);
  EXPECT_EQ(run_cli("ingest fattree --tcp-port 0").exit_code, 2);
  EXPECT_EQ(run_cli("ingest fattree --shard 3 2").exit_code, 2);
  EXPECT_EQ(run_cli("ingest fattree --batch-events 0").exit_code, 2);
  EXPECT_EQ(run_cli("ingest fattree --max-attempts 0").exit_code, 2);
}

TEST(CliTest, IncrementalCacheRoundTrip) {
  REQUIRE_CLI();
  const std::string dir = ::testing::TempDir() + "/cli_cache";
  const std::string cache = dir + "/coverage.cache";
  std::remove(cache.c_str());
  const std::string base = "fattree --k 4 --suite original --json --cache-dir " + dir;

  const CommandResult cold = run_cli(base);
  EXPECT_EQ(cold.exit_code, 0) << cold.output;
  EXPECT_NE(cold.output.find("cache: full rebuild"), std::string::npos) << cold.output;
  EXPECT_TRUE(std::ifstream(cache).good());

  const CommandResult warm = run_cli(base);
  EXPECT_EQ(warm.exit_code, 0) << warm.output;
  EXPECT_NE(warm.output.find("records reused"), std::string::npos) << warm.output;
  EXPECT_NE(warm.output.find("0 device(s) invalidated"), std::string::npos)
      << warm.output;

  // The cache stats line goes to stderr; the JSON report on stdout must be
  // byte-identical between warm and cache-free runs (timings aside — they
  // are wall-clock measurements, keyed out by the CI normalizer too).
  const CommandResult scratch = run_cli("fattree --k 4 --suite original --json");
  const auto strip = [](const std::string& output) {
    // Keep only the JSON object; the human-readable lines differ.
    const size_t start = output.find('{');
    std::string json = output.substr(start == std::string::npos ? 0 : start);
    const size_t timings = json.find("\"timings\"");
    return timings == std::string::npos ? json : json.substr(0, timings);
  };
  EXPECT_EQ(strip(warm.output), strip(scratch.output));
  std::remove(cache.c_str());
}

TEST(CliTest, AnalyzeAndSuggestFlags) {
  REQUIRE_CLI();
  const CommandResult r =
      run_cli("fattree --k 4 --suite original --analyze --suggest 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("suite analysis"), std::string::npos);
  EXPECT_NE(r.output.find("suggested probes"), std::string::npos);
}

}  // namespace
