// Correctness suite for phase-boundary mark-compact GC (BddManager::collect)
// and its satellites: the remap contract, budget charge balance on every
// path, the importer memo (NodeIndexMap) rekeying, the dedicated complement
// memo, reserve_nodes' single-rehash guarantee, and GcRootTracker's handle
// fixup. The cross-thread bit-identity of full engine runs with GC on/off
// lives in parallel_determinism_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "bdd/bdd.hpp"
#include "common/budget.hpp"
#include "packet/gc_roots.hpp"
#include "packet/packet_set.hpp"

namespace yardstick {
namespace {

// Deterministic LCG so every run builds the same functions.
uint64_t next_rand(uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return state >> 33;
}

bdd::Bdd random_cube(bdd::BddManager& m, uint64_t& state, int width) {
  bdd::Bdd acc = m.one();
  for (int i = 0; i < width; ++i) {
    const bdd::Var v = static_cast<bdd::Var>(next_rand(state) % m.num_vars());
    acc &= (next_rand(state) & 1) != 0 ? m.var(v) : m.nvar(v);
  }
  return acc;
}

bdd::Bdd random_function(bdd::BddManager& m, uint64_t& state, int cubes, int width) {
  bdd::Bdd acc = m.zero();
  for (int i = 0; i < cubes; ++i) acc |= random_cube(m, state, width);
  return acc;
}

TEST(BddGc, SemanticIdentityAcrossCollect) {
  bdd::BddManager m(32);
  uint64_t state = 42;
  std::vector<bdd::Bdd> fs;
  for (int i = 0; i < 16; ++i) fs.push_back(random_function(m, state, 8, 6));
  // Pure garbage: results nobody keeps.
  for (int i = 0; i < 16; ++i) (void)(fs[i] ^ fs[(i + 7) % 16]);

  std::vector<bdd::Uint128> counts;
  std::vector<size_t> sizes;
  for (const bdd::Bdd& f : fs) {
    counts.push_back(f.count());
    sizes.push_back(f.node_count());
  }
  const bool f0_implies_union = fs[0].implies(fs[0] | fs[1]);

  const size_t before = m.arena_size();
  std::vector<bdd::NodeIndex> roots;
  for (const bdd::Bdd& f : fs) roots.push_back(f.index());
  const bdd::GcResult gc = m.collect(roots);

  EXPECT_EQ(gc.live_nodes + gc.reclaimed, before);
  EXPECT_EQ(m.arena_size(), gc.live_nodes);
  EXPECT_GT(gc.reclaimed, 0u);

  for (size_t i = 0; i < fs.size(); ++i) {
    const bdd::NodeIndex idx = gc.map(fs[i].index());
    ASSERT_NE(idx, bdd::GcResult::kDeadNode);
    fs[i] = bdd::Bdd(&m, idx);
    EXPECT_TRUE(counts[i] == fs[i].count()) << "count changed for function " << i;
    EXPECT_EQ(sizes[i], fs[i].node_count()) << "shape changed for function " << i;
  }
  // Operations on remapped handles still behave.
  EXPECT_EQ(f0_implies_union, fs[0].implies(fs[0] | fs[1]));
  EXPECT_EQ(fs[2] & fs[2], fs[2]);
  EXPECT_TRUE(((fs[3] | !fs[3]) == m.one()));
}

TEST(BddGc, RemapContract) {
  bdd::BddManager m(16);
  const bdd::Bdd f = m.var(0) & m.var(1);
  const bdd::Bdd g = m.var(2) & m.var(3) & m.var(4);  // nodes unique to g

  const std::vector<bdd::NodeIndex> roots = {f.index()};
  const bdd::GcResult gc = m.collect(roots);

  // Terminals map to themselves; dead roots map to kDeadNode.
  EXPECT_EQ(gc.map(bdd::kFalse), bdd::kFalse);
  EXPECT_EQ(gc.map(bdd::kTrue), bdd::kTrue);
  EXPECT_EQ(gc.map(g.index()), bdd::GcResult::kDeadNode);
  ASSERT_NE(gc.map(f.index()), bdd::GcResult::kDeadNode);

  // Canonicity after compaction: hash-consing still finds the survivors.
  const bdd::NodeIndex fi = gc.map(f.index());
  const bdd::BddNode& n = m.node(fi);
  EXPECT_EQ(m.make(n.var, n.low, n.high), fi);
  EXPECT_EQ((m.var(0) & m.var(1)).index(), fi);
  // And a rebuilt g is a fresh, live function again.
  const bdd::Bdd g2 = m.var(2) & m.var(3) & m.var(4);
  EXPECT_TRUE(g2.count() == bdd::pow2(16 - 3));
}

TEST(BddGc, CollectIsIdempotentWhenNothingDied) {
  bdd::BddManager m(24);
  uint64_t state = 7;
  bdd::Bdd f = random_function(m, state, 10, 5);
  std::vector<bdd::NodeIndex> roots = {f.index()};
  const bdd::GcResult first = m.collect(roots);
  f = bdd::Bdd(&m, first.map(f.index()));

  roots = {f.index()};
  const bdd::GcResult second = m.collect(roots);
  EXPECT_EQ(second.reclaimed, 0u);
  EXPECT_EQ(second.map(f.index()), f.index());  // identity remap
  EXPECT_EQ(second.live_nodes, first.live_nodes);
}

TEST(BddGc, BudgetChargeBalancedAcrossCollectAndDetach) {
  ys::ResourceBudget budget;
  bdd::BddManager m(32);
  uint64_t state = 99;
  const bdd::Bdd keep = random_function(m, state, 12, 6);

  m.set_budget(&budget);
  EXPECT_EQ(budget.used_bdd_nodes(), m.arena_size());

  // Growth while attached is charged one node at a time.
  (void)random_function(m, state, 12, 6);
  EXPECT_EQ(budget.used_bdd_nodes(), m.arena_size());
  const size_t peak_before_gc = budget.peak_bdd_nodes();
  EXPECT_GE(peak_before_gc, m.arena_size());

  // collect() returns exactly the reclaimed charge to the pool...
  const std::vector<bdd::NodeIndex> roots = {keep.index()};
  const bdd::GcResult gc = m.collect(roots);
  EXPECT_GT(gc.reclaimed, 0u);
  EXPECT_EQ(budget.used_bdd_nodes(), m.arena_size());
  // ...and never lowers the high-water mark.
  EXPECT_EQ(budget.peak_bdd_nodes(), peak_before_gc);

  // Detach releases the rest, leaving the shared pool balanced.
  m.set_budget(nullptr);
  EXPECT_EQ(budget.used_bdd_nodes(), 0u);
}

TEST(BddGc, BudgetChargeBalancedOnExceptionPath) {
  ys::ResourceBudget budget;
  budget.with_max_bdd_nodes(64);
  bdd::BddManager m(32);
  m.set_budget(&budget);
  uint64_t state = 1;
  bool threw = false;
  try {
    for (int i = 0; i < 1000; ++i) (void)random_function(m, state, 16, 8);
  } catch (const ys::StatusError& e) {
    threw = ys::is_resource_exhaustion(e.code());
  }
  EXPECT_TRUE(threw);
  EXPECT_LE(budget.used_bdd_nodes(), 64u);
  // The failed allocation charged nothing: the manager's own charge still
  // matches its arena, so detaching drains the pool to zero.
  EXPECT_EQ(budget.used_bdd_nodes(), m.arena_size());
  m.set_budget(nullptr);
  EXPECT_EQ(budget.used_bdd_nodes(), 0u);
}

TEST(BddGc, DueTriggerRespectsThresholdAndFloor) {
  bdd::BddManager m(32);
  uint64_t state = 5;
  EXPECT_FALSE(m.gc_due());  // disarmed by default

  m.set_gc_threshold(0.5, /*min_arena=*/16);
  bdd::Bdd keep = random_function(m, state, 10, 6);
  ASSERT_GE(m.arena_size(), 16u);
  // Fresh manager: everything beyond the terminals was allocated since the
  // last (nonexistent) collection, so the dead-fraction upper bound is ~1.
  EXPECT_TRUE(m.gc_due());

  const std::vector<bdd::NodeIndex> roots = {keep.index()};
  const bdd::GcResult gc = m.collect(roots);
  keep = bdd::Bdd(&m, gc.map(keep.index()));
  EXPECT_FALSE(m.gc_due());  // nothing allocated since the collection

  // An armed-but-never-firing threshold (the overhead-probe mode).
  m.set_gc_threshold(1.0, 16);
  (void)random_function(m, state, 10, 6);
  EXPECT_FALSE(m.gc_due());

  // A high floor suppresses small-arena collections outright.
  m.set_gc_threshold(0.1, m.arena_size() * 100);
  EXPECT_FALSE(m.gc_due());
}

TEST(BddGc, StatsExposeGcCounters) {
  bdd::BddManager m(24);
  uint64_t state = 3;
  const bdd::Bdd keep = random_function(m, state, 10, 5);
  (void)random_function(m, state, 10, 5);
  EXPECT_EQ(m.stats().gc_runs, 0u);

  const std::vector<bdd::NodeIndex> roots = {keep.index()};
  const bdd::GcResult gc = m.collect(roots);
  const bdd::BddManager::Stats s = m.stats();
  EXPECT_EQ(s.gc_runs, 1u);
  EXPECT_EQ(s.gc_reclaimed_nodes, gc.reclaimed);
  EXPECT_EQ(s.arena_nodes, gc.live_nodes);
}

TEST(BddGc, NegationMemoIsCorrectAndCounted) {
  bdd::BddManager m(24);
  uint64_t state = 11;
  const bdd::Bdd f = random_function(m, state, 8, 5);

  const bdd::BddManager::Stats s0 = m.stats();
  const bdd::Bdd nf = !f;
  EXPECT_EQ(f & nf, m.zero());
  EXPECT_EQ(f | nf, m.one());
  EXPECT_TRUE(f.count() + nf.count() == bdd::pow2(24));

  // Involution comes straight from the memo (both directions are inserted).
  const bdd::Bdd back = !nf;
  EXPECT_EQ(back, f);
  const bdd::BddManager::Stats s1 = m.stats();
  EXPECT_GT(s1.neg_cache_misses, s0.neg_cache_misses);
  EXPECT_GT(s1.neg_cache_hits, s0.neg_cache_hits);

  // Terminals never touch the memo.
  EXPECT_EQ(!m.zero(), m.one());
  EXPECT_EQ(!m.one(), m.zero());
}

TEST(BddGc, ReserveNodesRehashesOnce) {
  bdd::BddManager m(16);
  const uint64_t growths0 = m.stats().unique_table_growths;
  m.reserve_nodes(1 << 18);  // far beyond the initial table
  EXPECT_EQ(m.stats().unique_table_growths, growths0 + 1);
  m.reserve_nodes(16);  // already capacious: no rehash at all
  EXPECT_EQ(m.stats().unique_table_growths, growths0 + 1);
  // The reservation is usable: bulk building stays rehash-free.
  uint64_t state = 13;
  (void)random_function(m, state, 30, 6);
  EXPECT_EQ(m.stats().unique_table_growths, growths0 + 1);
}

TEST(BddGc, OpCacheRightSizedByCollect) {
  bdd::BddManager m(32);
  uint64_t state = 21;
  const bdd::Bdd keep = random_function(m, state, 10, 6);
  const size_t cache_before = m.stats().op_cache_entries;
  EXPECT_NE(cache_before, 0u);
  EXPECT_EQ(cache_before & (cache_before - 1), 0u) << "capacity must stay a power of two";

  const std::vector<bdd::NodeIndex> roots = {keep.index()};
  (void)m.collect(roots);
  const size_t cache_after = m.stats().op_cache_entries;
  EXPECT_LE(cache_after, cache_before);  // collect never grows the cache
  EXPECT_EQ(cache_after & (cache_after - 1), 0u);
}

TEST(NodeIndexMap, InsertFindGrow) {
  bdd::NodeIndexMap map(/*initial_capacity=*/16);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(5), nullptr);
  // Push far past the initial capacity to exercise growth + re-slotting.
  for (uint32_t i = 0; i < 500; ++i) map.insert(i + 2, i * 3 + 2);
  EXPECT_EQ(map.size(), 500u);
  for (uint32_t i = 0; i < 500; ++i) {
    const bdd::NodeIndex* v = map.find(i + 2);
    ASSERT_NE(v, nullptr) << "key " << i + 2;
    EXPECT_EQ(*v, i * 3 + 2);
  }
  EXPECT_EQ(map.find(1000), nullptr);
}

TEST(NodeIndexMap, RemapValuesDropsDeadAndRenumbers) {
  bdd::NodeIndexMap map;
  for (uint32_t i = 0; i < 100; ++i) map.insert(i + 2, i * 3 + 2);  // values 2..299
  bdd::GcResult gc;
  gc.remap.resize(300, bdd::GcResult::kDeadNode);
  for (uint32_t v = 0; v < 300; ++v) {
    if (v % 2 == 0) gc.remap[v] = v / 2;  // evens survive, renumbered
  }
  map.remap_values(gc);
  size_t survivors = 0;
  for (uint32_t i = 0; i < 100; ++i) {
    const uint32_t value = i * 3 + 2;
    const bdd::NodeIndex* v = map.find(i + 2);
    if (value % 2 == 0) {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, value / 2);
      ++survivors;
    } else {
      EXPECT_EQ(v, nullptr);
    }
  }
  EXPECT_EQ(map.size(), survivors);
}

TEST(BddGc, ImporterMemoFollowsDestinationCollect) {
  bdd::BddManager src(24);
  bdd::BddManager dst(24);
  uint64_t state = 17;
  const bdd::Bdd f = random_function(src, state, 8, 5);
  const bdd::Bdd g = random_function(src, state, 8, 5);

  bdd::BddImporter imp(dst, src);
  bdd::Bdd fd = imp.import(f);
  const bdd::Bdd gd = imp.import(g);
  EXPECT_TRUE(fd.count() == f.count());
  EXPECT_TRUE(gd.count() == g.count());
  const size_t memo_full = imp.imported_nodes();

  // Collect the destination keeping only f's copy; rekey the memo.
  const std::vector<bdd::NodeIndex> roots = {fd.index()};
  const bdd::GcResult gc = dst.collect(roots);
  imp.rekey_destination(gc);
  fd = bdd::Bdd(&dst, gc.map(fd.index()));
  EXPECT_LT(imp.imported_nodes(), memo_full) << "dead copies must leave the memo";

  // Re-importing f is a pure memo hit on the renumbered entries...
  const size_t memo_after_rekey = imp.imported_nodes();
  const bdd::Bdd fd2 = imp.import(f);
  EXPECT_EQ(fd2, fd);
  EXPECT_EQ(imp.imported_nodes(), memo_after_rekey) << "memo hit must not re-copy";
  // ...and g re-imports from scratch, semantically intact.
  const bdd::Bdd gd2 = imp.import(g);
  EXPECT_TRUE(gd2.count() == g.count());
}

TEST(BddGc, RootTrackerFixesHandlesAcrossCollect) {
  bdd::BddManager m(packet::kNumHeaderBits);
  m.set_gc_threshold(0.25, /*min_arena=*/16);
  packet::GcRootTracker tracker(m);

  // Pre-sized result vector: the tracker may hold raw pointers into it.
  std::vector<packet::PacketSet> results(12);
  uint64_t state = 31;
  for (size_t i = 0; i < results.size(); ++i) {
    results[i] = packet::PacketSet(random_function(m, state, 6, 5));
    tracker.track(results[i]);
  }
  std::vector<bdd::Uint128> counts;
  for (const packet::PacketSet& ps : results) counts.push_back(ps.raw().count());

  ASSERT_TRUE(tracker.due());
  const bdd::GcResult gc = tracker.collect();
  EXPECT_GT(gc.reclaimed, 0u);

  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].valid());
    EXPECT_TRUE(counts[i] == results[i].raw().count()) << "set " << i;
  }
  // The manager stays fully usable: operations across fixed-up handles.
  const packet::PacketSet u = results[0].union_with(results[1]);
  EXPECT_TRUE(results[0].raw().implies(u.raw()));
}

}  // namespace
}  // namespace yardstick
