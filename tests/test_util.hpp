// Shared fixtures: small hand-built networks used across test files.
#pragma once

#include "netmodel/network.hpp"
#include "packet/packet_set.hpp"

namespace yardstick::testutil {

using net::Action;
using net::DeviceId;
using net::InterfaceId;
using net::MatchSpec;
using net::PortKind;
using net::Role;
using net::RouteKind;
using net::RuleId;
using packet::Ipv4Prefix;

/// leaf1 --- spine --- leaf2, each leaf with one host port and one hosted
/// /24; the spine carries both /24s plus a null-routed default. Rules are
/// installed by hand (no routing substrate) so tests control every entry.
struct TinyNetwork {
  net::Network net;
  DeviceId leaf1, spine, leaf2;
  InterfaceId l1_host, l1_up, sp_d1, sp_d2, l2_up, l2_host;
  Ipv4Prefix p1 = Ipv4Prefix::parse("10.0.1.0/24");
  Ipv4Prefix p2 = Ipv4Prefix::parse("10.0.2.0/24");
  // Rule handles (suffix: device _ destination).
  RuleId l1_to_p1, l1_to_p2, l1_default;
  RuleId sp_to_p1, sp_to_p2, sp_default_drop;
  RuleId l2_to_p1, l2_to_p2, l2_default;
};

inline TinyNetwork make_tiny() {
  TinyNetwork t;
  net::Network& n = t.net;
  t.leaf1 = n.add_device("leaf1", Role::ToR, 65001);
  t.spine = n.add_device("spine", Role::Spine, 65003);
  t.leaf2 = n.add_device("leaf2", Role::ToR, 65001);

  t.l1_host = n.add_interface(t.leaf1, "host0", PortKind::HostPort);
  t.l1_up = n.add_interface(t.leaf1, "eth0");
  t.sp_d1 = n.add_interface(t.spine, "eth0");
  t.sp_d2 = n.add_interface(t.spine, "eth1");
  t.l2_up = n.add_interface(t.leaf2, "eth0");
  t.l2_host = n.add_interface(t.leaf2, "host0", PortKind::HostPort);

  n.add_link(t.l1_up, t.sp_d1, Ipv4Prefix::parse("172.16.0.0/31"));
  n.add_link(t.l2_up, t.sp_d2, Ipv4Prefix::parse("172.16.0.2/31"));

  n.device(t.leaf1).host_prefixes.push_back(t.p1);
  n.device(t.leaf2).host_prefixes.push_back(t.p2);

  // LPM order via priority = 32 - prefix length.
  t.l1_to_p1 = n.add_rule(t.leaf1, MatchSpec::for_dst(t.p1),
                          Action::forward({t.l1_host}), RouteKind::Internal, 8);
  t.l1_to_p2 = n.add_rule(t.leaf1, MatchSpec::for_dst(t.p2),
                          Action::forward({t.l1_up}), RouteKind::Internal, 8);
  t.l1_default = n.add_rule(t.leaf1, MatchSpec::for_dst(Ipv4Prefix::parse("0.0.0.0/0")),
                            Action::forward({t.l1_up}), RouteKind::Default, 32);

  t.sp_to_p1 = n.add_rule(t.spine, MatchSpec::for_dst(t.p1),
                          Action::forward({t.sp_d1}), RouteKind::Internal, 8);
  t.sp_to_p2 = n.add_rule(t.spine, MatchSpec::for_dst(t.p2),
                          Action::forward({t.sp_d2}), RouteKind::Internal, 8);
  t.sp_default_drop =
      n.add_rule(t.spine, MatchSpec::for_dst(Ipv4Prefix::parse("0.0.0.0/0")),
                 Action::drop(), RouteKind::Default, 32);

  t.l2_to_p1 = n.add_rule(t.leaf2, MatchSpec::for_dst(t.p1),
                          Action::forward({t.l2_up}), RouteKind::Internal, 8);
  t.l2_to_p2 = n.add_rule(t.leaf2, MatchSpec::for_dst(t.p2),
                          Action::forward({t.l2_host}), RouteKind::Internal, 8);
  t.l2_default = n.add_rule(t.leaf2, MatchSpec::for_dst(Ipv4Prefix::parse("0.0.0.0/0")),
                            Action::forward({t.l2_up}), RouteKind::Default, 32);
  return t;
}

/// A concrete packet destined into `prefix` (first address + offset).
inline packet::ConcretePacket packet_to(const Ipv4Prefix& prefix, uint32_t offset = 1) {
  packet::ConcretePacket p;
  p.dst_ip = prefix.first() + offset;
  p.src_ip = 0xc0a80001u;
  p.proto = 6;
  p.src_port = 12345;
  p.dst_port = 80;
  return p;
}

}  // namespace yardstick::testutil
