// Stress and growth-path tests for the BDD engine: unique-table resizing,
// persistent count-memo growth, deep structures at full header width, and
// quantification over large functions.
#include <gtest/gtest.h>

#include <set>

#include "bdd/bdd.hpp"
#include "packet/packet_set.hpp"

namespace yardstick::bdd {
namespace {

using packet::Ipv4Prefix;
using packet::PacketSet;

TEST(BddStressTest, UniqueTableGrowsPastInitialCapacity) {
  // Initial unique capacity is 64K; build well past it and verify
  // canonicity still holds afterwards.
  BddManager mgr(packet::kNumHeaderBits);
  Bdd acc = mgr.zero();
  // Sparse scattered /24s force large intermediate unions; interleave two
  // address planes so intermediate results do not collapse into prefixes.
  for (uint32_t i = 0; i < 3000; ++i) {
    const uint32_t addr = (i * 2654435761u) & 0xFFFFFF00u;  // Knuth scatter
    acc = acc | PacketSet::dst_prefix(mgr, Ipv4Prefix(addr, 24)).raw();
  }
  EXPECT_GT(mgr.arena_size(), size_t{1} << 16);
  // Rebuild the same function from scratch: hash consing must give the
  // exact same root despite multiple table growths in between.
  Bdd again = mgr.zero();
  for (uint32_t i = 0; i < 3000; ++i) {
    const uint32_t addr = (i * 2654435761u) & 0xFFFFFF00u;
    again = again | PacketSet::dst_prefix(mgr, Ipv4Prefix(addr, 24)).raw();
  }
  EXPECT_EQ(acc, again);
  // Scattered multiplications can collide; count the distinct /24s.
  std::set<uint32_t> distinct;
  for (uint32_t i = 0; i < 3000; ++i) distinct.insert((i * 2654435761u) & 0xFFFFFF00u);
  EXPECT_EQ(acc.count(), Uint128{distinct.size()} * pow2(80));
}

TEST(BddStressTest, CountMemoSurvivesArenaGrowth) {
  BddManager mgr(packet::kNumHeaderBits);
  const Bdd early = PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8")).raw();
  const Uint128 early_count = early.count();  // memoized now
  // Grow the arena substantially (forces count-memo resizing).
  Bdd acc = mgr.zero();
  for (uint32_t i = 0; i < 2000; ++i) {
    acc = acc | PacketSet::dst_prefix(mgr, Ipv4Prefix(0xC0000000u + (i << 10), 26)).raw();
    if ((i & 0xff) == 0) (void)acc.count();  // interleave counting with growth
  }
  // Memo for the early node must still answer correctly.
  EXPECT_EQ(early.count(), early_count);
  EXPECT_EQ(early.count(), pow2(96));
}

TEST(BddStressTest, ExistsOverWideFunction) {
  BddManager mgr(packet::kNumHeaderBits);
  // Union of many prefixes, then forget the whole dst field: result is
  // the universe (every dst had some member).
  PacketSet acc = PacketSet::none(mgr);
  for (uint32_t i = 0; i < 64; ++i) {
    acc = acc.union_with(PacketSet::dst_prefix(mgr, Ipv4Prefix(i << 26, 6)));
  }
  EXPECT_TRUE(acc.full());  // 64 disjoint /6s cover the space
  const PacketSet partial =
      PacketSet::dst_prefix(mgr, Ipv4Prefix::parse("10.0.0.0/8"))
          .intersect(PacketSet::field_equals(mgr, packet::Field::DstPort, 80));
  EXPECT_EQ(partial.forget_field(packet::Field::DstIp),
            PacketSet::field_equals(mgr, packet::Field::DstPort, 80));
}

TEST(BddStressTest, DeepChainEvaluation) {
  // A conjunction across every variable exercises the full depth.
  BddManager mgr(120);
  Bdd all_ones = mgr.one();
  for (Var v = 0; v < 120; ++v) all_ones = all_ones & mgr.var(v);
  EXPECT_EQ(all_ones.count(), Uint128{1});
  EXPECT_EQ(all_ones.node_count(), 122u);  // 120 vars + 2 terminals
  const std::vector<bool> assignment(120, true);
  EXPECT_TRUE(mgr.evaluate(all_ones, assignment));
  std::vector<bool> almost = assignment;
  almost[119] = false;
  EXPECT_FALSE(mgr.evaluate(all_ones, almost));
}

TEST(BddStressTest, XorLadderStaysCanonical) {
  // XOR chains are the classic blowup-free worst case for ROBDDs: linear
  // nodes, exponential minterms.
  BddManager mgr(64);
  Bdd parity = mgr.zero();
  for (Var v = 0; v < 64; ++v) parity = parity ^ mgr.var(v);
  EXPECT_EQ(parity.count(), pow2(63));  // half of all assignments
  EXPECT_EQ(parity.node_count(), 2u + 2u * 63u + 1u);  // canonical parity DAG
  EXPECT_EQ(parity ^ parity, mgr.zero());
}

TEST(BddStressTest, FuzzCollectUnderTinyThreshold) {
  // Fuzz-style GC stress: random boolean workload with an aggressive
  // trigger (collect whenever 10% of a tiny arena is garbage). Every kept
  // function must survive every collection with its model count and its
  // canonical identity intact.
  BddManager mgr(40);
  mgr.set_gc_threshold(0.1, /*min_arena=*/64);
  uint64_t state = 0xfeedULL;
  const auto rnd = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };

  std::vector<Bdd> kept;
  std::vector<Uint128> counts;
  size_t collections = 0;
  for (int step = 0; step < 4000; ++step) {
    // Random literal conjunction, then a random combine with a kept set.
    Bdd f = mgr.one();
    for (int j = 0; j < 4; ++j) {
      const Var v = static_cast<Var>(rnd() % 40);
      f = f & ((rnd() & 1) != 0 ? mgr.var(v) : mgr.nvar(v));
    }
    if (!kept.empty()) {
      const Bdd& other = kept[rnd() % kept.size()];
      switch (rnd() % 3) {
        case 0: f = f | other; break;
        case 1: f = f ^ other; break;
        default: f = f - other; break;
      }
    }
    if (kept.size() < 24) {
      kept.push_back(f);
      counts.push_back(f.count());
    } else {
      const size_t victim = rnd() % kept.size();
      kept[victim] = f;  // old function becomes garbage
      counts[victim] = f.count();
    }

    if (mgr.gc_due()) {
      std::vector<NodeIndex> roots;
      roots.reserve(kept.size());
      for (const Bdd& k : kept) roots.push_back(k.index());
      const GcResult gc = mgr.collect(roots);
      for (Bdd& k : kept) {
        const NodeIndex ni = gc.map(k.index());
        ASSERT_NE(ni, GcResult::kDeadNode);
        k = Bdd(&mgr, ni);
      }
      ++collections;
    }
  }
  EXPECT_GT(collections, 0u) << "the tiny threshold must actually fire";
  EXPECT_EQ(mgr.stats().gc_runs, collections);
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].count(), counts[i]) << "function " << i;
  }
  // Canonicity end-to-end: re-running an operation on survivors dedups.
  if (kept.size() >= 2) {
    EXPECT_EQ(kept[0] | kept[1], kept[0] | kept[1]);
    EXPECT_EQ((kept[0] & kept[1]).index(), (kept[0] & kept[1]).index());
  }
}

TEST(BddStressTest, CacheStatsAccumulate) {
  BddManager mgr(32);
  const Bdd a = mgr.var(0) & mgr.var(5) & mgr.var(9);
  const Bdd b = mgr.var(1) & mgr.var(5) & mgr.var(11);
  (void)(a | b);
  (void)(a | b);  // second time should hit the cache
  const auto stats = mgr.cache_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace yardstick::bdd
