// The parallel offline phase must be a pure performance feature: sharded
// builds (per-thread BDD managers merged by structural import) and the
// concurrent path sweep have to produce bit-identical match sets, covered
// sets, metric rows and path-universe results for every thread count —
// including 0 (hardware concurrency) — and degrade to the same truncated
// flags under a tripping resource budget.
#include <gtest/gtest.h>

#include <memory>

#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "topo/regional.hpp"
#include "yardstick/engine.hpp"
#include "yardstick/tracker.hpp"

namespace yardstick {
namespace {

/// One engine run at a given thread count, self-contained: its own
/// manager, its own structural copy of the shared trace, its own engine.
struct EngineRun {
  std::unique_ptr<bdd::BddManager> mgr;
  coverage::CoverageTrace trace;
  std::unique_ptr<ys::CoverageEngine> engine;
};

EngineRun run_engine(const net::Network& network, const coverage::CoverageTrace& trace,
                     unsigned threads, const ys::ResourceBudget* budget = nullptr,
                     double gc_threshold = 0.0) {
  EngineRun run;
  run.mgr = std::make_unique<bdd::BddManager>(packet::kNumHeaderBits);
  run.trace = trace.imported_into(*run.mgr);
  run.engine = std::make_unique<ys::CoverageEngine>(
      *run.mgr, network, run.trace,
      ys::EngineOptions{budget, threads, /*cache_dir=*/"", gc_threshold});
  return run;
}

void expect_same_sets(const net::Network& network, const ys::CoverageEngine& serial,
                      const ys::CoverageEngine& parallel, unsigned threads) {
  for (const net::Rule& rule : network.rules()) {
    EXPECT_EQ(serial.match_sets().match_set_size(rule.id),
              parallel.match_sets().match_set_size(rule.id))
        << "match set of rule " << rule.id.value << " at " << threads << " threads";
    EXPECT_EQ(serial.covered_sets().covered_size(rule.id),
              parallel.covered_sets().covered_size(rule.id))
        << "covered set of rule " << rule.id.value << " at " << threads << " threads";
  }
}

void expect_same_metrics(const ys::MetricRow& serial, const ys::MetricRow& parallel,
                         unsigned threads) {
  EXPECT_EQ(serial.device_fractional, parallel.device_fractional) << threads << " threads";
  EXPECT_EQ(serial.interface_fractional, parallel.interface_fractional)
      << threads << " threads";
  EXPECT_EQ(serial.rule_fractional, parallel.rule_fractional) << threads << " threads";
  EXPECT_EQ(serial.rule_weighted, parallel.rule_weighted) << threads << " threads";
  EXPECT_EQ(serial.truncated, parallel.truncated) << threads << " threads";
}

constexpr unsigned kThreadCounts[] = {2, 4, 0};

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  /// Runs the fat-tree paper suite once (in a scratch manager) and returns
  /// the resulting trace, with a couple of rules marked via state
  /// inspection so both Algorithm 1 branches are exercised.
  coverage::CoverageTrace fat_tree_trace(const topo::FatTree& tree) {
    const dataplane::MatchSetIndex index(scratch_, tree.network);
    const dataplane::Transfer transfer(index);
    ys::CoverageTracker tracker;
    (void)nettest::DefaultRouteCheck().run(transfer, tracker);
    (void)nettest::ToRContract().run(transfer, tracker);
    (void)nettest::ToRPingmesh().run(transfer, tracker);
    coverage::CoverageTrace trace = tracker.trace();
    const net::DeviceId tor = tree.tors.front();
    const auto& fib = tree.network.table(tor);
    if (!fib.empty()) trace.mark_rule(fib.front());
    return trace;
  }

  bdd::BddManager scratch_{packet::kNumHeaderBits};
};

TEST_F(ParallelDeterminismTest, FatTreeSetsAndMetricsBitIdentical) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const coverage::CoverageTrace trace = fat_tree_trace(tree);

  const EngineRun serial = run_engine(tree.network, trace, 1);
  ASSERT_FALSE(serial.engine->truncated());
  const ys::MetricRow serial_row = serial.engine->metrics();

  for (const unsigned threads : kThreadCounts) {
    const EngineRun parallel = run_engine(tree.network, trace, threads);
    EXPECT_FALSE(parallel.engine->truncated());
    expect_same_sets(tree.network, *serial.engine, *parallel.engine, threads);
    expect_same_metrics(serial_row, parallel.engine->metrics(), threads);
  }
}

TEST_F(ParallelDeterminismTest, FatTreePathSweepBitIdentical) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const coverage::CoverageTrace trace = fat_tree_trace(tree);

  const EngineRun serial = run_engine(tree.network, trace, 1);
  const ys::PathCoverageResult want = serial.engine->path_coverage();
  ASSERT_GT(want.total_paths, 0u);
  ASSERT_FALSE(want.truncated);

  for (const unsigned threads : kThreadCounts) {
    const EngineRun parallel = run_engine(tree.network, trace, threads);
    const ys::PathCoverageResult got = parallel.engine->path_coverage();
    EXPECT_EQ(want.total_paths, got.total_paths) << threads << " threads";
    EXPECT_EQ(want.covered_paths, got.covered_paths) << threads << " threads";
    EXPECT_EQ(want.fractional, got.fractional) << threads << " threads";
    EXPECT_EQ(want.mean, got.mean) << threads << " threads";
    EXPECT_EQ(want.truncated, got.truncated) << threads << " threads";
  }
}

TEST_F(ParallelDeterminismTest, RegionalSetsAndMetricsBitIdentical) {
  topo::RegionalParams params;
  params.datacenters = 2;
  params.pods_per_dc = 1;
  params.tors_per_pod = 2;
  params.aggs_per_pod = 2;
  params.spines_per_dc = 2;
  params.hubs = 2;
  params.wans = 1;
  params.host_ports_per_tor = 2;
  params.wide_area_prefix_count = 4;
  params.hubs_without_default = 1;
  topo::RegionalNetwork region = topo::make_regional(params);
  routing::FibBuilder::compute_and_build(region.network, region.routing);

  coverage::CoverageTrace trace;
  {
    const dataplane::MatchSetIndex index(scratch_, region.network);
    const dataplane::Transfer transfer(index);
    ys::CoverageTracker tracker;
    (void)nettest::DefaultRouteCheck().run(transfer, tracker);
    (void)nettest::InternalRouteCheck().run(transfer, tracker);
    (void)nettest::ConnectedRouteCheck().run(transfer, tracker);
    trace = tracker.trace();
  }

  const EngineRun serial = run_engine(region.network, trace, 1);
  const ys::MetricRow serial_row = serial.engine->metrics();
  for (const unsigned threads : kThreadCounts) {
    const EngineRun parallel = run_engine(region.network, trace, threads);
    expect_same_sets(region.network, *serial.engine, *parallel.engine, threads);
    expect_same_metrics(serial_row, parallel.engine->metrics(), threads);
  }
}

TEST_F(ParallelDeterminismTest, GcOnOffBitIdenticalAcrossThreadCounts) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const coverage::CoverageTrace trace = fat_tree_trace(tree);

  // Ground truth: serial, GC off.
  const EngineRun serial = run_engine(tree.network, trace, 1);
  ASSERT_FALSE(serial.engine->truncated());
  const ys::MetricRow serial_row = serial.engine->metrics();

  // GC only renumbers shard-private nodes, so an aggressive threshold must
  // leave every set and metric bit-identical at any thread count —
  // including 1, where an armed GC forces the sharded path.
  for (const unsigned threads : {1u, 4u, 8u}) {
    const EngineRun gc_run =
        run_engine(tree.network, trace, threads, nullptr, /*gc_threshold=*/0.05);
    EXPECT_FALSE(gc_run.engine->truncated()) << threads << " threads";
    expect_same_sets(tree.network, *serial.engine, *gc_run.engine, threads);
    expect_same_metrics(serial_row, gc_run.engine->metrics(), threads);
  }
}

TEST_F(ParallelDeterminismTest, GcUnderBudgetKeepsAccountingBalanced) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const coverage::CoverageTrace trace = fat_tree_trace(tree);

  // Roomy cap: the build completes; GC'd shards must return their charge so
  // the budget drains back to exactly the primary manager's arena.
  ys::ResourceBudget budget;
  budget.with_max_bdd_nodes(50'000'000);
  const EngineRun run =
      run_engine(tree.network, trace, 4, &budget, /*gc_threshold=*/0.05);
  EXPECT_FALSE(run.engine->truncated());
  EXPECT_EQ(budget.used_bdd_nodes(), run.mgr->arena_size());
  EXPECT_GE(budget.peak_bdd_nodes(), budget.used_bdd_nodes());
}

TEST_F(ParallelDeterminismTest, TrippingBudgetTruncatesInEveryMode) {
  topo::FatTree tree = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(tree.network, tree.routing);
  const coverage::CoverageTrace trace = fat_tree_trace(tree);

  for (const unsigned threads : {1u, 2u, 4u}) {
    // A node cap far below what the fat tree needs: the build must complete
    // degraded (no exception), flag itself truncated, and still answer
    // metric queries with well-formed partial results.
    ys::ResourceBudget budget;
    budget.with_max_bdd_nodes(2000);
    const EngineRun run = run_engine(tree.network, trace, threads, &budget);
    EXPECT_TRUE(run.engine->truncated()) << threads << " threads";
    const ys::MetricRow row = run.engine->metrics();
    EXPECT_TRUE(row.truncated) << threads << " threads";
    EXPECT_GE(row.rule_fractional, 0.0);
    EXPECT_LE(row.rule_fractional, 1.0);
  }
}

}  // namespace
}  // namespace yardstick
