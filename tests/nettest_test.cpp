// Tests for the test-tool substrate: all seven paper tests plus the
// generic reachability/probe utilities, on generated networks.
#include <gtest/gtest.h>

#include "nettest/contract_checks.hpp"
#include "nettest/reachability.hpp"
#include "nettest/state_checks.hpp"
#include "routing/fib_builder.hpp"
#include "topo/fattree.hpp"
#include "topo/regional.hpp"

namespace yardstick::nettest {
namespace {

using packet::Ipv4Prefix;
using packet::PacketSet;

class FatTreeFixture : public ::testing::Test {
 protected:
  FatTreeFixture() : tree_(topo::make_fat_tree({.k = 4})) {
    routing::FibBuilder::compute_and_build(tree_.network, tree_.routing);
    index_.emplace(mgr_, tree_.network);
    transfer_.emplace(*index_);
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  topo::FatTree tree_;
  std::optional<dataplane::MatchSetIndex> index_;
  std::optional<dataplane::Transfer> transfer_;
  ys::CoverageTracker tracker_;
};

TEST_F(FatTreeFixture, DefaultRouteCheckPasses) {
  const TestResult result = DefaultRouteCheck().run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
  EXPECT_EQ(result.checks, tree_.network.device_count() - 1);  // WAN excluded
  EXPECT_EQ(tracker_.rule_calls(), result.checks);
  EXPECT_EQ(tracker_.packet_calls(), 0u);
}

TEST_F(FatTreeFixture, DefaultRouteCheckCatchesNullRoute) {
  // Null-route one agg's default and rebuild: the check must fail on it.
  topo::FatTree broken = topo::make_fat_tree({.k = 4});
  broken.routing.null_default_devices.insert(broken.aggs.front());
  routing::FibBuilder::compute_and_build(broken.network, broken.routing);
  const dataplane::MatchSetIndex index(mgr_, broken.network);
  const dataplane::Transfer transfer(index);
  const TestResult result = DefaultRouteCheck().run(transfer, tracker_);
  EXPECT_FALSE(result.passed());
  EXPECT_EQ(result.failures, 1u);
  EXPECT_NE(result.failure_messages.front().find("null"), std::string::npos);
}

TEST_F(FatTreeFixture, ConnectedRouteCheckPasses) {
  const TestResult result = ConnectedRouteCheck().run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed());
  // Two checks (both ends) per addressed link.
  EXPECT_EQ(result.checks, 2 * tree_.network.link_count());
  EXPECT_GT(tracker_.rule_calls(), 0u);
}

TEST_F(FatTreeFixture, ToRContractPasses) {
  const TestResult result = ToRContract().run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
  EXPECT_GT(result.checks, 0u);
  EXPECT_GT(tracker_.packet_calls(), 0u);
  EXPECT_EQ(tracker_.rule_calls(), 0u);
}

TEST_F(FatTreeFixture, ToRReachabilityPasses) {
  const TestResult result = ToRReachability().run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
  const size_t tors = tree_.tors.size();
  EXPECT_EQ(result.checks, tors * (tors - 1));
}

TEST_F(FatTreeFixture, ToRPingmeshPasses) {
  const TestResult result = ToRPingmesh().run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
  const size_t tors = tree_.tors.size();
  EXPECT_EQ(result.checks, tors * (tors - 1));
  EXPECT_GT(tracker_.packet_calls(), result.checks);  // one per hop
}

TEST_F(FatTreeFixture, ToRReachabilityCatchesBrokenForwarding) {
  // Null-route the victim ToR's own hosted prefix (a point all paths
  // traverse — breaking a single ECMP branch is legitimately masked by
  // multipath): symbolic reachability must notice.
  topo::FatTree broken = topo::make_fat_tree({.k = 4});
  routing::FibBuilder::compute_and_build(broken.network, broken.routing);
  const net::DeviceId victim = broken.tors.front();
  const Ipv4Prefix prefix = broken.network.device(victim).host_prefixes[0];
  for (const net::RuleId rid : broken.network.table(victim)) {
    net::Rule& rule = broken.network.mutable_rule(rid);
    if (rule.match.dst_prefix == prefix) rule.action = net::Action::drop();
  }
  const dataplane::MatchSetIndex index(mgr_, broken.network);
  const dataplane::Transfer transfer(index);
  const TestResult result = ToRReachability().run(transfer, tracker_);
  EXPECT_FALSE(result.passed());
}

TEST_F(FatTreeFixture, ProbeMarksEveryHop) {
  packet::ConcretePacket pkt;
  pkt.dst_ip =
      tree_.network.device(tree_.tors.back()).host_prefixes.front().first() + 1;
  const auto src_ports =
      tree_.network.ports_of_kind(tree_.tors.front(), net::PortKind::HostPort);
  const dataplane::ConcreteTrace trace =
      probe(*transfer_, tracker_, tree_.tors.front(), src_ports[0], pkt);
  EXPECT_EQ(trace.disposition, dataplane::Disposition::Delivered);
  EXPECT_EQ(tracker_.packet_calls(), trace.hops.size());
}

class RegionalFixture : public ::testing::Test {
 protected:
  RegionalFixture() : region_(topo::make_regional(small_params())) {
    routing::FibBuilder::compute_and_build(region_.network, region_.routing);
    index_.emplace(mgr_, region_.network);
    transfer_.emplace(*index_);
  }

  static topo::RegionalParams small_params() {
    topo::RegionalParams p;
    p.datacenters = 2;
    p.pods_per_dc = 1;
    p.tors_per_pod = 2;
    p.aggs_per_pod = 2;
    p.spines_per_dc = 2;
    p.hubs = 2;
    p.wans = 1;
    p.host_ports_per_tor = 2;
    p.hubs_without_default = 1;
    return p;
  }

  bdd::BddManager mgr_{packet::kNumHeaderBits};
  topo::RegionalNetwork region_;
  std::optional<dataplane::MatchSetIndex> index_;
  std::optional<dataplane::Transfer> transfer_;
  ys::CoverageTracker tracker_;
};

TEST_F(RegionalFixture, DefaultRouteCheckRespectsExclusions) {
  // Without exclusions the no-default hub fails the check.
  const TestResult strict = DefaultRouteCheck().run(*transfer_, tracker_);
  EXPECT_FALSE(strict.passed());
  // With the §7.2 exclusion list it passes.
  std::unordered_set<net::DeviceId> excluded(region_.routing.no_default_devices.begin(),
                                             region_.routing.no_default_devices.end());
  const TestResult tolerant = DefaultRouteCheck(excluded).run(*transfer_, tracker_);
  EXPECT_TRUE(tolerant.passed()) << (tolerant.failure_messages.empty()
                                         ? ""
                                         : tolerant.failure_messages.front());
}

TEST_F(RegionalFixture, InternalRouteCheckPasses) {
  const TestResult result = InternalRouteCheck().run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
  EXPECT_GT(result.checks, region_.network.device_count());
}

TEST_F(RegionalFixture, InternalRouteCheckCatchesMissingRoute) {
  // Null-route a ToR loopback at one spine: the spine's local contract for
  // that prefix is violated.
  const net::DeviceId spine = region_.spines.front();
  const Ipv4Prefix lo = region_.network.device(region_.tors.front()).loopbacks.front();
  for (const net::RuleId rid : region_.network.table(spine)) {
    net::Rule& rule = region_.network.mutable_rule(rid);
    if (rule.match.dst_prefix == lo) rule.action = net::Action::drop();
  }
  const dataplane::MatchSetIndex index(mgr_, region_.network);
  const dataplane::Transfer transfer(index);
  const TestResult result = InternalRouteCheck().run(transfer, tracker_);
  EXPECT_FALSE(result.passed());
}

TEST_F(RegionalFixture, AggCanReachTorLoopbackPasses) {
  const TestResult result = AggCanReachTorLoopback().run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
  // One check per (agg, ToR loopback) pair.
  EXPECT_EQ(result.checks, region_.aggs.size() * region_.tors.size());
}

TEST_F(RegionalFixture, ConnectedRouteCheckPasses) {
  const TestResult result = ConnectedRouteCheck().run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed());
}

TEST_F(RegionalFixture, GenericReachabilityTest) {
  // Leaf-to-WAN: packets to wide-area space from a ToR must all be
  // delivered (out the WAN's external port).
  const net::DeviceId wan = region_.wans.front();
  const auto external = region_.network.ports_of_kind(wan, net::PortKind::ExternalPort);
  ASSERT_EQ(external.size(), 1u);
  const PacketSet wide = PacketSet::dst_prefix(mgr_, Ipv4Prefix::parse("100.64.0.0/16"));

  std::vector<ReachabilityQuery> queries;
  ReachabilityQuery q;
  q.source = region_.tors.front();
  q.source_interface =
      region_.network.ports_of_kind(q.source, net::PortKind::HostPort).front();
  q.headers = wide;
  q.expected_egress = external.front();
  q.expected_delivered = wide;
  queries.push_back(q);

  const TestResult result =
      ReachabilityTest("LeafToWan", std::move(queries)).run(*transfer_, tracker_);
  EXPECT_TRUE(result.passed()) << (result.failure_messages.empty()
                                       ? ""
                                       : result.failure_messages.front());
}

TEST_F(RegionalFixture, SuiteRunsAllAndAccumulatesCoverage) {
  TestSuite suite("original");
  suite.add(std::make_unique<DefaultRouteCheck>(std::unordered_set<net::DeviceId>(
           region_.routing.no_default_devices.begin(),
           region_.routing.no_default_devices.end())))
      .add(std::make_unique<AggCanReachTorLoopback>());
  const auto results = suite.run_all(*transfer_, tracker_);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].passed());
  EXPECT_TRUE(results[1].passed());
  EXPECT_GT(tracker_.rule_calls(), 0u);
  EXPECT_GT(tracker_.packet_calls(), 0u);
  EXPECT_EQ(to_string(results[0].category), std::string("state-inspection"));
  EXPECT_EQ(to_string(results[1].category), std::string("local-symbolic"));
}

}  // namespace
}  // namespace yardstick::nettest
