// Tests for the network model container and id/location helpers.
#include <gtest/gtest.h>

#include "netmodel/network.hpp"

namespace yardstick::net {
namespace {

TEST(StrongIdTest, DistinctTypesAndValidity) {
  const DeviceId d{3};
  EXPECT_TRUE(d.valid());
  EXPECT_FALSE(DeviceId{}.valid());
  EXPECT_EQ(d, DeviceId{3});
  EXPECT_NE(d, DeviceId{4});
  EXPECT_LT(DeviceId{1}, DeviceId{2});
  // Distinct tag types do not compare (compile-time property; hash works).
  EXPECT_EQ(std::hash<DeviceId>{}(d), std::hash<DeviceId>{}(DeviceId{3}));
}

TEST(LocationTest, InterfaceAndDeviceLocationsDisjoint) {
  const InterfaceId intf{12};
  const DeviceId dev{5};
  EXPECT_FALSE(is_device_location(to_location(intf)));
  EXPECT_TRUE(is_device_location(device_location(dev)));
  EXPECT_EQ(device_of_location(device_location(dev)), dev);
  EXPECT_EQ(from_location(to_location(intf)), intf);
  EXPECT_FALSE(is_device_location(packet::kNoLocation));
}

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = net_.add_device("a", Role::ToR, 65001);
    b_ = net_.add_device("b", Role::Aggregation, 65002);
    a0_ = net_.add_interface(a_, "eth0");
    b0_ = net_.add_interface(b_, "eth0");
    host_ = net_.add_interface(a_, "host0", PortKind::HostPort);
  }

  Network net_;
  DeviceId a_, b_;
  InterfaceId a0_, b0_, host_;
};

TEST_F(NetworkTest, BasicTopology) {
  EXPECT_EQ(net_.device_count(), 2u);
  EXPECT_EQ(net_.interface_count(), 3u);
  EXPECT_EQ(net_.device(a_).name, "a");
  EXPECT_EQ(net_.interface(host_).kind, PortKind::HostPort);
  EXPECT_TRUE(net_.interface(host_).host_facing());
  EXPECT_FALSE(net_.interface(a0_).host_facing());
}

TEST_F(NetworkTest, DuplicateDeviceNameRejected) {
  EXPECT_THROW(net_.add_device("a", Role::ToR), std::invalid_argument);
}

TEST_F(NetworkTest, LinkAssignsSlash31Addresses) {
  const auto subnet = packet::Ipv4Prefix::parse("172.16.0.0/31");
  net_.add_link(a0_, b0_, subnet);
  EXPECT_EQ(net_.interface(a0_).peer, b0_);
  EXPECT_EQ(net_.interface(b0_).peer, a0_);
  EXPECT_EQ(net_.interface(a0_).address->address(), subnet.first() & ~1u);
  ASSERT_TRUE(net_.interface(b0_).address.has_value());
  EXPECT_EQ(net_.neighbor(a0_), b_);
  EXPECT_EQ(net_.neighbor(host_), DeviceId{});
}

TEST_F(NetworkTest, LinkRejectsNonSlash31AndDoubleLink) {
  EXPECT_THROW(net_.add_link(a0_, b0_, packet::Ipv4Prefix::parse("172.16.0.0/30")),
               std::invalid_argument);
  net_.add_link(a0_, b0_);
  EXPECT_THROW(net_.add_link(a0_, b0_), std::invalid_argument);
}

TEST_F(NetworkTest, NeighborsAndLookup) {
  net_.add_link(a0_, b0_);
  const auto nbrs = net_.neighbors(a_);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].second, b_);
  EXPECT_EQ(net_.find_device("b"), b_);
  EXPECT_FALSE(net_.find_device("zzz").has_value());
  EXPECT_EQ(net_.interface_towards(a_, b_), a0_);
  EXPECT_FALSE(net_.interface_towards(b_, DeviceId{99}).has_value());
}

TEST_F(NetworkTest, RulesSortedByPriority) {
  const RuleId low = net_.add_rule(a_, MatchSpec{}, Action::drop(), RouteKind::Other, 10);
  const RuleId high = net_.add_rule(a_, MatchSpec{}, Action::drop(), RouteKind::Other, 1);
  const RuleId mid = net_.add_rule(a_, MatchSpec{}, Action::drop(), RouteKind::Other, 5);
  const auto table = net_.table(a_);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0], high);
  EXPECT_EQ(table[1], mid);
  EXPECT_EQ(table[2], low);
}

TEST_F(NetworkTest, EqualPrioritiesKeepInsertionOrder) {
  const RuleId first = net_.add_rule(a_, MatchSpec{}, Action::drop(), RouteKind::Other, 5);
  const RuleId second = net_.add_rule(a_, MatchSpec{}, Action::drop(), RouteKind::Other, 5);
  const auto table = net_.table(a_);
  EXPECT_EQ(table[0], first);
  EXPECT_EQ(table[1], second);
}

TEST_F(NetworkTest, ClearRules) {
  net_.add_rule(a_, MatchSpec{}, Action::drop());
  net_.clear_rules();
  EXPECT_EQ(net_.rule_count(), 0u);
  EXPECT_TRUE(net_.table(a_).empty());
}

TEST_F(NetworkTest, PortsOfKind) {
  EXPECT_EQ(net_.ports_of_kind(a_, PortKind::HostPort),
            (std::vector<InterfaceId>{host_}));
  EXPECT_TRUE(net_.ports_of_kind(b_, PortKind::HostPort).empty());
}

TEST_F(NetworkTest, RolesAndSummary) {
  EXPECT_EQ(net_.devices_with_role(Role::ToR), (std::vector<DeviceId>{a_}));
  EXPECT_NE(net_.summary().find("devices=2"), std::string::npos);
}

TEST(RuleTest, ToStringMentionsMatchAndAction) {
  Rule r;
  r.id = RuleId{7};
  r.match = MatchSpec::for_dst(packet::Ipv4Prefix::parse("10.0.0.0/8"));
  r.action = Action::forward({InterfaceId{3}});
  EXPECT_NE(r.to_string().find("10.0.0.0/8"), std::string::npos);
  EXPECT_NE(r.to_string().find("fwd"), std::string::npos);
  r.action = Action::drop();
  EXPECT_NE(r.to_string().find("drop"), std::string::npos);
}

}  // namespace
}  // namespace yardstick::net
