// Observability layer invariants (DESIGN.md §9):
//   * counters and histograms are exact under concurrent updates — sharded
//     workers may hammer the same handles,
//   * spans nest correctly in the recorded timeline (complete events nest
//     by [ts, ts+dur] containment, which is what the Chrome viewer draws),
//   * disabled mode allocates nothing — the switch is off by default in
//     production runs, so its cost must be a load-and-branch,
//   * both expositions (JSON, Prometheus text) are well-formed, because
//     dashboards and scrapers consume them unvalidated.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// --- Global allocation counting (for the disabled-mode zero-alloc test) ---
//
// Replacing the global operator new/delete pair counts every allocation in
// the process; the test reads the counter before and after the code under
// test. Counting is always on — it is two relaxed atomic ops per
// allocation, which does not perturb what the tests assert.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace yardstick::obs {
namespace {

/// Enables observability for one test and restores the default (off) and
/// a clean tracer/registry state on the way out, even on assertion failure.
class ScopedObservability {
 public:
  ScopedObservability() { set_enabled(true); }
  ~ScopedObservability() {
    Tracer::global().clear();
    metrics().reset_values();
    set_enabled(false);
  }
};

/// Minimal recursive-descent JSON well-formedness checker (the same idiom
/// json_format_test.cpp uses to reject nan/inf tokens).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool well_formed() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(ObsMetricsTest, CounterIsExactUnderConcurrentIncrements) {
  ScopedObservability on;
  Counter& counter = metrics().counter("ys.obs_test.concurrent_counter");
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kAddsPerThread = 50'000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

TEST(ObsMetricsTest, HistogramIsExactUnderConcurrentObserves) {
  ScopedObservability on;
  Histogram& hist =
      metrics().histogram("ys.obs_test.concurrent_histogram", {1.0, 10.0, 100.0});
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kObservesPerThread = 20'000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&hist] {
      for (uint64_t i = 0; i < kObservesPerThread; ++i) {
        hist.observe(5.0);   // lands in (1, 10]
        hist.observe(500.0); // lands in +Inf
      }
    });
  }
  for (std::thread& t : pool) t.join();

  const uint64_t per_value = kThreads * kObservesPerThread;
  EXPECT_EQ(hist.count(), 2 * per_value);
  EXPECT_EQ(hist.bucket(0), 0u);          // (-inf, 1]
  EXPECT_EQ(hist.bucket(1), per_value);   // (1, 10]
  EXPECT_EQ(hist.bucket(2), 0u);          // (10, 100]
  EXPECT_EQ(hist.bucket(3), per_value);   // +Inf
  // The CAS-loop sum is exact for these integral observations.
  EXPECT_DOUBLE_EQ(hist.sum(), 5.0 * per_value + 500.0 * per_value);
}

TEST(ObsMetricsTest, DisabledUpdatesAreDropped) {
  Counter& counter = metrics().counter("ys.obs_test.disabled_counter");
  Gauge& gauge = metrics().gauge("ys.obs_test.disabled_gauge");
  ASSERT_FALSE(enabled());
  counter.add(42);
  gauge.set(7.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(ObsMetricsTest, NameReuseAcrossTypesThrows) {
  (void)metrics().counter("ys.obs_test.typed_once");
  EXPECT_THROW((void)metrics().gauge("ys.obs_test.typed_once"), std::logic_error);
  (void)metrics().histogram("ys.obs_test.bounded_once", {1.0, 2.0});
  // Same name, same bounds: the existing histogram comes back.
  (void)metrics().histogram("ys.obs_test.bounded_once", {1.0, 2.0});
  EXPECT_THROW((void)metrics().histogram("ys.obs_test.bounded_once", {3.0}),
               std::logic_error);
}

TEST(ObsMetricsTest, ResetValuesKeepsHandlesValid) {
  ScopedObservability on;
  Counter& counter = metrics().counter("ys.obs_test.reset_counter");
  counter.add(5);
  EXPECT_EQ(counter.value(), 5u);
  metrics().reset_values();
  EXPECT_EQ(counter.value(), 0u);
  counter.add(1);  // the cached handle still works after reset
  EXPECT_EQ(counter.value(), 1u);
}

TEST(ObsTracerTest, SpansNestAndSortParentFirst) {
  ScopedObservability on;
  {
    Span outer("obs_test.outer", "test");
    outer.arg("k", 4);
    {
      Span inner("obs_test.inner", "test");
    }
  }
  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);

  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (std::strcmp(e.name, "obs_test.outer") == 0) outer = &e;
    if (std::strcmp(e.name, "obs_test.inner") == 0) inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  // Same thread, and the inner interval is contained in the outer one —
  // the containment the trace viewers use to draw nesting.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->ts_us, inner->ts_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, inner->ts_us + inner->dur_us);
  // snapshot() orders parent before child even at equal timestamps.
  EXPECT_EQ(events[0].name, outer->name);

  ASSERT_EQ(outer->num_args, 1);
  EXPECT_STREQ(outer->args[0].key, "k");
  EXPECT_EQ(outer->args[0].value, 4u);
}

TEST(ObsTracerTest, EventsFromMultipleThreadsAllLand) {
  ScopedObservability on;
  constexpr unsigned kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("obs_test.worker_span", "test");
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(Tracer::global().event_count(), kThreads * kSpansPerThread);
  EXPECT_EQ(Tracer::global().dropped_count(), 0u);
}

TEST(ObsTracerTest, DisabledModeAllocatesNothing) {
  // Warm the cold paths first: registration allocates by design, and the
  // calling thread's trace buffer is created on first enabled use.
  Counter& counter = metrics().counter("ys.obs_test.zero_alloc_counter");
  Gauge& gauge = metrics().gauge("ys.obs_test.zero_alloc_gauge");
  Histogram& hist = metrics().histogram("ys.obs_test.zero_alloc_histogram", {1.0, 2.0});
  ASSERT_FALSE(enabled());

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    Span span("obs_test.disabled_span", "test");
    span.arg("i", static_cast<uint64_t>(i));
    counter.add();
    gauge.set(static_cast<double>(i));
    hist.observe(static_cast<double>(i));
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled-mode hot path must not allocate";
}

TEST(ObsExpositionTest, JsonIsWellFormedAndComplete) {
  ScopedObservability on;
  metrics().counter("ys.obs_test.json_counter", "a counter").add(3);
  metrics().gauge("ys.obs_test.json_gauge", "a gauge").set(1.5);
  Histogram& hist = metrics().histogram("ys.obs_test.json_histogram", {1.0, 10.0});
  hist.observe(0.5);
  hist.observe(5.0);
  // Non-finite gauge values must serialize as 0 (repo-wide JSON contract).
  metrics().gauge("ys.obs_test.json_degraded_gauge")
      .set(std::numeric_limits<double>::quiet_NaN());

  const std::string json = metrics().to_json();
  EXPECT_TRUE(JsonChecker(json).well_formed()) << json;
  EXPECT_NE(json.find("\"ys.obs_test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"ys.obs_test.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"ys.obs_test.json_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos) << "only the quoted \"+Inf\" le label may "
                                                    "contain inf";
}

TEST(ObsExpositionTest, PrometheusFormatAndCumulativeBuckets) {
  ScopedObservability on;
  metrics().counter("ys.obs_test.prom_counter", "events seen").add(7);
  metrics().gauge("ys.obs_test.prom_gauge", "current level").set(2.5);
  Histogram& hist = metrics().histogram("ys.obs_test.prom_histogram", {1.0, 10.0});
  hist.observe(0.5);
  hist.observe(5.0);
  hist.observe(50.0);

  const std::string text = metrics().to_prometheus();
  // Names map '.' → '_' and each series carries HELP/TYPE headers.
  EXPECT_NE(text.find("# HELP ys_obs_test_prom_counter events seen"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ys_obs_test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("ys_obs_test_prom_counter 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ys_obs_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("ys_obs_test_prom_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ys_obs_test_prom_histogram histogram"), std::string::npos);
  // Cumulative buckets: le="1" has 1 observation, le="10" has 2, +Inf all 3.
  EXPECT_NE(text.find("ys_obs_test_prom_histogram_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ys_obs_test_prom_histogram_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("ys_obs_test_prom_histogram_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ys_obs_test_prom_histogram_count 3"), std::string::npos);
  EXPECT_NE(text.find("ys_obs_test_prom_histogram_sum 55.5"), std::string::npos);
  // Every non-comment line is `name[{labels}] value`.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(line[0]))) << line;
    // The series name (everything before the value) has every '.' mapped.
    EXPECT_EQ(line.substr(0, space).find('.'), std::string::npos)
        << "unmapped '.' in: " << line;
  }
}

}  // namespace
}  // namespace yardstick::obs
